//! A minimal JSON reader/writer for the serving layer's wire format.
//!
//! The container builds fully offline, so `serde_json` is not
//! available; this module covers exactly what the request/response
//! schema needs — objects, arrays, strings with escapes, numbers,
//! booleans, null — with strict parsing (trailing garbage is an
//! error). Numbers are held as `f64`, which is exact for every integer
//! the protocol carries below 2^53; budgets above that are clamped at
//! parse time rather than silently rounded.

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered, so emitted objects are reproducible.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object; `None` for absent keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// A non-negative integer, clamped to `u64::MAX` above 2^53 (the
    /// mantissa limit — such budgets are all "effectively unlimited").
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => {
                Some(if *n >= 9_007_199_254_740_992.0 {
                    u64::MAX
                } else {
                    *n as u64
                })
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// Parse one JSON document; anything but trailing whitespace after the
/// value is an error.
///
/// # Errors
/// A human-readable message with a byte offset.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Maximum container nesting. The parser recurses per `{`/`[`, so
/// without a cap a pathological line like `[[[[…` overflows the
/// stack — a panic the daemon's armor must never see. The protocol's
/// real shapes nest 3 deep.
pub const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting (bounded by [`MAX_DEPTH`]).
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    /// Record one level of container nesting; errors past the cap
    /// (parsing aborts, so error paths never unwind the count).
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by the
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            '\r' => write!(f, "\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let src =
            r#"{"id":"r1","params":{"n":32},"fuel":1000,"ok":true,"note":null,"xs":[1,2.5,-3]}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(
            v.get("params").unwrap().get("n").unwrap().as_i64(),
            Some(32)
        );
        assert_eq!(v.get("fuel").unwrap().as_u64(), Some(1000));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 3);
        let reparsed = parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn escapes_survive_a_round_trip() {
        let v = Json::Str("line1\nline2\t\"quoted\" \\ \u{1}".to_string());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn huge_budgets_clamp_instead_of_rounding() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing_the_stack() {
        // Well past any sane stack budget if the cap were absent.
        let deep = "[".repeat(200_000);
        let err = parse(&deep).expect_err("must not recurse unboundedly");
        assert!(err.contains("nesting"), "{err}");
        // Mixed container spam is caught too.
        let mixed = "[{\"a\":".repeat(100_000);
        assert!(parse(&mixed).is_err());
        // Depth within the cap still parses, and siblings don't
        // accumulate depth.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        assert!(parse(r#"[[1],[2],[3],{"a":[4]}]"#).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&over).is_err());
    }
}
