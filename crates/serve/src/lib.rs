//! # hac-serve
//!
//! A multi-tenant serving layer over the `hac` pipeline: one process
//! hosts many concurrent requests, each compiled once (a cache keyed
//! by source hash skips parse/schedule/lower on repeats) and executed
//! under a per-request [`Meter`] admitted against a process-wide
//! [`SharedCeiling`].
//!
//! The layer inherits the repo's determinism contract: a request's
//! outcome — answer digest, exhaustion point, fuel left, counters — is
//! a pure function of its own program, inputs, and budget. Admission
//! follows a weighted fair schedule across tenants (see [`sched`]);
//! execution may be concurrent, and the ceiling's settlement rule (see
//! [`SharedCeiling`]) guarantees a heavy tenant exhausting its budget
//! can never perturb a light tenant's result. Deadlines are converted
//! to fuel *before* execution by a [`DeadlineGovernor`], so no engine
//! ever reads the clock. The compiled-program cache is bounded
//! ([`cache`]) and a persistent TCP daemon ([`daemon`]) serves the
//! same JSON-lines protocol over real sockets.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use hac_core::deadline::DeadlineGovernor;
use hac_core::pipeline::{
    compile, run_delta, run_units, run_with_meter, CompileOptions, Compiled, Engine, ExecMode,
    ExecState, RunOptions, Unit,
};
use hac_lang::env::ConstEnv;
use hac_runtime::error::RuntimeError;
use hac_runtime::governor::{FaultPlan, Limits, Meter, SharedCeiling};
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads::XorShift;

pub mod cache;
pub mod chaos;
pub mod daemon;
pub mod json;
pub mod sched;

use cache::{
    CacheStats, CachedOutcome, FamilyEntry, FamilyProbe, FullProbe, ProgramCache, ResultCache,
    ResultCacheStats,
};
use json::Json;

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Default engine for requests that don't pick one.
    pub engine: Engine,
    /// Default execution mode.
    pub mode: ExecMode,
    /// ParTape workers *within* one request.
    pub threads: usize,
    /// Global resource pool shared by all requests; `None` caps are
    /// uncapped.
    pub ceiling: Limits,
    /// Stripe count for the ceiling's atomic counters.
    pub stripes: usize,
    /// Deadline→fuel converter; `None` means `deadline_ms` requests
    /// are rejected.
    pub deadline: Option<DeadlineGovernor>,
    /// Compiled-program cache capacity in entries; 0 means unbounded.
    /// Defaults to a finite 256 — an unbounded cache lets a tenant
    /// cycling unique programs grow the process without limit.
    pub cache_cap: usize,
    /// Queue-depth watermark for overload shedding in
    /// [`Server::run_batch`]: past this many pending requests, new
    /// arrivals from the lowest-stride-share tenant are shed with a
    /// structured `"overloaded"` response carrying a clock-free
    /// `retry_after_ops` hint (see [`sched::fair_schedule`]). `0`
    /// (the default) disables shedding.
    pub shed_watermark: usize,
    /// Default per-request retry budget for [`EngineFault`] outcomes
    /// the engine layer could not absorb: the server re-admits and
    /// re-executes up to this many extra attempts before surfacing
    /// the fault (requests override with their own `retry_budget`).
    ///
    /// [`EngineFault`]: RuntimeError::EngineFault
    pub retry_budget: u32,
    /// Engine fault plan applied to every request's *first* attempt;
    /// `None` defers to the ambient `HAC_FAULT_PLAN` environment.
    /// The daemon routes a chaos plan's engine tokens here, and tests
    /// use it to inject faults hermetically. Retries always run the
    /// empty plan (the injected fault is modeled as transient).
    pub faults: Option<FaultPlan>,
    /// Materialized-result cache capacity in entries (full outcomes +
    /// family snapshots combined); **0 disables result caching**
    /// (every request bypasses the cache) — note the asymmetry with
    /// [`ServeOptions::cache_cap`], where 0 means unbounded.
    pub result_cache_cap: usize,
    /// Run the vector-fusion pass when compiling request programs (the
    /// pipeline's default); `--no-fuse` serving pins the scalar tape,
    /// so the differential suites can compare fused and unfused
    /// servers end to end.
    pub fuse: bool,
}

/// Default [`ServeOptions::cache_cap`].
pub const DEFAULT_CACHE_CAP: usize = 256;

/// Default [`ServeOptions::result_cache_cap`].
pub const DEFAULT_RESULT_CACHE_CAP: usize = 256;

/// Default [`ServeOptions::retry_budget`].
pub const DEFAULT_RETRY_BUDGET: u32 = 1;

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            engine: Engine::ParTape,
            mode: ExecMode::Auto,
            threads: 1,
            ceiling: Limits::unlimited(),
            stripes: 8,
            deadline: None,
            cache_cap: DEFAULT_CACHE_CAP,
            shed_watermark: 0,
            retry_budget: DEFAULT_RETRY_BUDGET,
            faults: None,
            result_cache_cap: DEFAULT_RESULT_CACHE_CAP,
            fuse: true,
        }
    }
}

/// One tenant request.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: String,
    pub source: String,
    /// `param` bindings, in the order given.
    pub params: Vec<(String, i64)>,
    /// Per-request fuel cap (reserved from the ceiling at admission).
    pub fuel: Option<u64>,
    /// Per-request memory cap in bytes.
    pub mem_bytes: Option<u64>,
    /// Wall-clock deadline, converted to fuel by the server's
    /// [`DeadlineGovernor`] before execution.
    pub deadline_ms: Option<u64>,
    /// Seed for deterministic `input` array filling.
    pub seed: u64,
    pub engine: Option<Engine>,
    pub mode: Option<ExecMode>,
    /// Tenant this request bills to; `None` joins the shared default
    /// tenant `""` for fair-scheduling purposes.
    pub tenant: Option<String>,
    /// Fair-share weight (≥ 1). A tenant's effective weight is the one
    /// declared on its first-arriving request; see [`sched`].
    pub weight: Option<u64>,
    /// Extra execution attempts granted when a run dies with an
    /// [`EngineFault`](RuntimeError::EngineFault) the engine layer
    /// could not absorb; `None` takes the server's
    /// [`ServeOptions::retry_budget`].
    pub retry_budget: Option<u32>,
}

impl Request {
    /// A request with defaults for everything but id and source.
    pub fn new(id: impl Into<String>, source: impl Into<String>) -> Request {
        Request {
            id: id.into(),
            source: source.into(),
            params: Vec::new(),
            fuel: None,
            mem_bytes: None,
            deadline_ms: None,
            seed: 0xC0FFEE,
            engine: None,
            mode: None,
            tenant: None,
            weight: None,
            retry_budget: None,
        }
    }

    /// Parse the wire form. Unknown keys are ignored so the schema can
    /// grow; `file` is *not* resolved here (the CLI reads files and
    /// substitutes `source` before handing requests over).
    ///
    /// # Errors
    /// A message naming the offending field.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or("request needs a string `id`")?
            .to_string();
        let source = v
            .get("source")
            .and_then(Json::as_str)
            .ok_or("request needs a string `source`")?
            .to_string();
        let mut req = Request::new(id, source);
        if let Some(params) = v.get("params") {
            let obj = params.as_obj().ok_or("`params` must be an object")?;
            for (k, pv) in obj {
                let n = pv
                    .as_i64()
                    .ok_or_else(|| format!("param `{k}` must be an integer"))?;
                req.params.push((k.clone(), n));
            }
        }
        if let Some(f) = v.get("fuel") {
            req.fuel = Some(f.as_u64().ok_or("`fuel` must be a non-negative integer")?);
        }
        if let Some(m) = v.get("mem_bytes") {
            req.mem_bytes = Some(
                m.as_u64()
                    .ok_or("`mem_bytes` must be a non-negative integer")?,
            );
        }
        if let Some(d) = v.get("deadline_ms") {
            req.deadline_ms = Some(
                d.as_u64()
                    .ok_or("`deadline_ms` must be a non-negative integer")?,
            );
        }
        if let Some(s) = v.get("seed") {
            req.seed = s.as_u64().ok_or("`seed` must be a non-negative integer")?;
        }
        if let Some(e) = v.get("engine") {
            let e = e.as_str().ok_or("`engine` must be a string")?;
            req.engine = Some(engine_from_str(e)?);
        }
        if let Some(m) = v.get("mode") {
            let m = m.as_str().ok_or("`mode` must be a string")?;
            req.mode = Some(mode_from_str(m)?);
        }
        if let Some(t) = v.get("tenant") {
            req.tenant = Some(t.as_str().ok_or("`tenant` must be a string")?.to_string());
        }
        // `priority` is accepted as an alias for `weight`.
        if let Some(w) = v.get("weight").or_else(|| v.get("priority")) {
            let w = w
                .as_u64()
                .filter(|&w| w >= 1)
                .ok_or("`weight` must be a positive integer")?;
            req.weight = Some(w);
        }
        if let Some(r) = v.get("retry_budget") {
            let r = r
                .as_u64()
                .filter(|&r| r <= u64::from(u32::MAX))
                .ok_or("`retry_budget` must be a non-negative integer")?;
            req.retry_budget = Some(r as u32);
        }
        Ok(req)
    }

    /// The wire form (inverse of [`Request::from_json`]); used by
    /// clients driving the daemon and by the simulator tests.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("source".to_string(), Json::Str(self.source.clone())),
        ];
        if !self.params.is_empty() {
            let params = self
                .params
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect();
            fields.push(("params".to_string(), Json::Obj(params)));
        }
        if let Some(f) = self.fuel {
            fields.push(("fuel".to_string(), Json::Num(f as f64)));
        }
        if let Some(m) = self.mem_bytes {
            fields.push(("mem_bytes".to_string(), Json::Num(m as f64)));
        }
        if let Some(d) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Json::Num(d as f64)));
        }
        fields.push(("seed".to_string(), Json::Num(self.seed as f64)));
        if let Some(e) = self.engine {
            let name = match e {
                Engine::TreeWalk => "treewalk",
                Engine::Tape => "tape",
                Engine::ParTape => "partape",
            };
            fields.push(("engine".to_string(), Json::Str(name.to_string())));
        }
        if let Some(m) = self.mode {
            let name = match m {
                ExecMode::Auto => "auto",
                ExecMode::ForceThunked => "thunked",
                ExecMode::ForceChecked => "checked",
            };
            fields.push(("mode".to_string(), Json::Str(name.to_string())));
        }
        if let Some(t) = &self.tenant {
            fields.push(("tenant".to_string(), Json::Str(t.clone())));
        }
        if let Some(w) = self.weight {
            fields.push(("weight".to_string(), Json::Num(w as f64)));
        }
        if let Some(r) = self.retry_budget {
            fields.push(("retry_budget".to_string(), Json::Num(f64::from(r))));
        }
        Json::Obj(fields)
    }
}

/// Parse an engine name (the CLI's `--engine` vocabulary).
///
/// # Errors
/// Unknown names.
pub fn engine_from_str(s: &str) -> Result<Engine, String> {
    match s {
        "treewalk" => Ok(Engine::TreeWalk),
        "tape" => Ok(Engine::Tape),
        "partape" => Ok(Engine::ParTape),
        other => Err(format!("unknown engine `{other}`")),
    }
}

/// Parse a mode name (the CLI's `--mode` vocabulary).
///
/// # Errors
/// Unknown names.
pub fn mode_from_str(s: &str) -> Result<ExecMode, String> {
    match s {
        "auto" => Ok(ExecMode::Auto),
        "thunked" => Ok(ExecMode::ForceThunked),
        "checked" => Ok(ExecMode::ForceChecked),
        other => Err(format!("unknown mode `{other}`")),
    }
}

/// How a request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Ran to completion.
    Ok,
    /// Its own budget (or the shared pool, for lazily-drawing
    /// requests) ran out mid-execution.
    Limit,
    /// Admission failed: the ceiling could not cover the requested
    /// reservation, or the request itself was malformed.
    Rejected,
    /// Parse or compile failure.
    CompileError,
    /// Any other runtime failure.
    RuntimeError,
    /// Shed before admission: the batch queue was past the server's
    /// [`shed watermark`](ServeOptions::shed_watermark) and this was a
    /// newest arrival of the lowest-share tenant. The response carries
    /// a `retry_after_ops` hint.
    Overloaded,
    /// Rejected at admission by the cost certificate: the compiler
    /// proved the declared budget cannot cover the program's exact
    /// cost, so the run never started. The error carries the evaluated
    /// bound.
    OverCertificate,
}

impl Status {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Limit => "limit",
            Status::Rejected => "rejected",
            Status::CompileError => "compile_error",
            Status::RuntimeError => "runtime_error",
            Status::Overloaded => "overloaded",
            Status::OverCertificate => "over-certificate",
        }
    }
}

/// How the materialized-result cache served a request. Absent (JSON
/// `null`) when the request bypassed the cache: caching off, an
/// active fault plan, a lazily-drawing meter, or a failure before
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultClass {
    /// Served verbatim from a cached outcome — zero engine ops spent.
    Hit,
    /// Served by replaying only the trailing `bigupd` over a family
    /// snapshot, metered for exactly the recomputed elements.
    Delta,
    /// Full recomputation: cold, or any delta/wait fallback.
    Miss,
}

impl ResultClass {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ResultClass::Hit => "hit",
            ResultClass::Delta => "delta",
            ResultClass::Miss => "miss",
        }
    }
}

/// Compilation-report verdict counts, echoed per response so tenants
/// can see what the scheduler did with their program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Verdicts {
    pub units: usize,
    pub thunkless: usize,
    pub thunked: usize,
    pub updates: usize,
}

/// One tenant response.
#[derive(Debug, Clone)]
pub struct Response {
    pub id: String,
    pub status: Status,
    /// Tenant the request billed to (echoed back; daemon connections
    /// may attribute it).
    pub tenant: Option<String>,
    /// Admission ordinal: the position in the server's realized
    /// admission sequence (dense, starting at 0). `None` only for
    /// requests rejected before admission processing began.
    pub admitted: Option<u64>,
    /// `Some(true)` = compiled-program cache hit; `None` when the
    /// request never reached the cache.
    pub cache_hit: Option<bool>,
    /// Cache entries evicted to make room for this request's program
    /// (0 on hits and when the cache is under capacity).
    pub evictions: u64,
    /// How the result cache served this request; `None` when it was
    /// bypassed. Hit- and delta-served responses are byte-identical
    /// (digest and error class) to the cold full recomputation — this
    /// field and `delta_elems` are the only tells.
    pub result_cache: Option<ResultClass>,
    /// Elements recomputed by a delta-served response (the update's
    /// static write count); `None` otherwise.
    pub delta_elems: Option<u64>,
    /// FNV-1a digest over every output array and scalar (sorted by
    /// name), so equality of answers is checkable without shipping
    /// arrays.
    pub answer_digest: Option<String>,
    /// Fuel remaining at the end, when the request was fuel-limited.
    pub fuel_left: Option<u64>,
    /// Parallel regions that faulted and were recovered sequentially.
    pub engine_faults: u64,
    /// FNV-1a digest over every VM and thunked-path work counter, in a
    /// fixed field order — two runs with equal digests did bit-equal
    /// metered work. `None` when the run produced no counters.
    pub counters_digest: Option<String>,
    pub verdicts: Option<Verdicts>,
    /// Execution attempts consumed (1 = no retry). Stays 1 for
    /// requests that never reached execution.
    pub attempts: u64,
    /// Only on `overloaded` responses: the admitted fuel of the
    /// backlog that displaced this request. Clock-free; dividing by a
    /// calibrated ops/ms rate yields a wall-clock backoff.
    pub retry_after_ops: Option<u64>,
    pub error: Option<String>,
}

impl Response {
    fn failed(id: &str, status: Status, cache_hit: Option<bool>, error: String) -> Response {
        Response {
            id: id.to_string(),
            status,
            tenant: None,
            admitted: None,
            cache_hit,
            evictions: 0,
            result_cache: None,
            delta_elems: None,
            answer_digest: None,
            fuel_left: None,
            engine_faults: 0,
            counters_digest: None,
            verdicts: None,
            attempts: 1,
            retry_after_ops: None,
            error: Some(error),
        }
    }

    /// The wire form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            (
                "status".to_string(),
                Json::Str(self.status.as_str().to_string()),
            ),
            (
                "tenant".to_string(),
                self.tenant
                    .as_ref()
                    .map_or(Json::Null, |t| Json::Str(t.clone())),
            ),
            (
                "admitted".to_string(),
                self.admitted.map_or(Json::Null, |o| Json::Num(o as f64)),
            ),
            (
                "cache".to_string(),
                match self.cache_hit {
                    Some(true) => Json::Str("hit".to_string()),
                    Some(false) => Json::Str("miss".to_string()),
                    None => Json::Null,
                },
            ),
            ("evictions".to_string(), Json::Num(self.evictions as f64)),
            (
                "result_cache".to_string(),
                self.result_cache
                    .map_or(Json::Null, |c| Json::Str(c.as_str().to_string())),
            ),
            (
                "delta_elems".to_string(),
                self.delta_elems.map_or(Json::Null, |d| Json::Num(d as f64)),
            ),
            (
                "answer_digest".to_string(),
                self.answer_digest
                    .as_ref()
                    .map_or(Json::Null, |d| Json::Str(d.clone())),
            ),
            (
                "fuel_left".to_string(),
                self.fuel_left.map_or(Json::Null, |f| Json::Num(f as f64)),
            ),
            (
                "engine_faults".to_string(),
                Json::Num(self.engine_faults as f64),
            ),
            (
                "counters_digest".to_string(),
                self.counters_digest
                    .as_ref()
                    .map_or(Json::Null, |d| Json::Str(d.clone())),
            ),
        ];
        fields.push((
            "verdicts".to_string(),
            self.verdicts.map_or(Json::Null, |v| {
                Json::Obj(vec![
                    ("units".to_string(), Json::Num(v.units as f64)),
                    ("thunkless".to_string(), Json::Num(v.thunkless as f64)),
                    ("thunked".to_string(), Json::Num(v.thunked as f64)),
                    ("updates".to_string(), Json::Num(v.updates as f64)),
                ])
            }),
        ));
        fields.push(("attempts".to_string(), Json::Num(self.attempts as f64)));
        fields.push((
            "retry_after_ops".to_string(),
            self.retry_after_ops
                .map_or(Json::Null, |r| Json::Num(r as f64)),
        ));
        fields.push((
            "error".to_string(),
            self.error
                .as_ref()
                .map_or(Json::Null, |e| Json::Str(e.clone())),
        ));
        Json::Obj(fields)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest the outputs of a run: every array and scalar, sorted by
/// name, values as exact bit patterns. Two runs with equal digests
/// produced bit-identical answers.
fn digest_output(out: &hac_core::pipeline::ExecOutput) -> String {
    let mut h = FNV_OFFSET;
    let mut names: Vec<&String> = out.arrays.keys().collect();
    names.sort();
    for n in names {
        h = fnv1a(h, n.as_bytes());
        h = fnv1a(h, &[0]);
        for v in out.arrays[n].data() {
            h = fnv1a(h, &v.to_bits().to_le_bytes());
        }
    }
    let mut snames: Vec<&String> = out.scalars.keys().collect();
    snames.sort();
    for n in snames {
        h = fnv1a(h, n.as_bytes());
        h = fnv1a(h, &[1]);
        h = fnv1a(h, &out.scalars[n].to_bits().to_le_bytes());
    }
    format!("{h:016x}")
}

/// Digest every work counter in a fixed field order. Engine-fault
/// recoveries are deliberately included: a run that recovered is
/// observable in `engine_faults`, never in answers or the other
/// counters.
fn digest_counters(c: &hac_core::pipeline::ExecCounters) -> String {
    let mut h = FNV_OFFSET;
    for v in [
        c.vm.stores,
        c.vm.loads,
        c.vm.check_ops,
        c.vm.loop_iterations,
        c.vm.temp_elements,
        c.vm.elements_copied,
        c.vm.array_allocs,
        c.vm.tape_ops,
        c.vm.engine_faults,
        c.thunked.thunks_allocated,
        c.thunked.demands,
        c.thunked.memo_hits,
    ] {
        h = fnv1a(h, &v.to_le_bytes());
    }
    format!("{h:016x}")
}

fn verdicts_of(compiled: &Compiled) -> Verdicts {
    let mut v = Verdicts {
        units: compiled.units.len(),
        ..Verdicts::default()
    };
    for u in &compiled.units {
        match u {
            Unit::Thunkless { .. } => v.thunkless += 1,
            Unit::Thunked { .. } => v.thunked += 1,
            Unit::Update { .. } => v.updates += 1,
            _ => {}
        }
    }
    v
}

/// Fill `input` arrays deterministically from `seed` (the same scheme
/// as the CLI's `--fill random`).
fn fill_inputs(compiled: &Compiled, seed: u64) -> HashMap<String, ArrayBuf> {
    let mut rng = XorShift::new(seed);
    let mut out = HashMap::new();
    for unit in &compiled.units {
        if let Unit::Input { name, bounds } = unit {
            let mut buf = ArrayBuf::new(bounds, 0.0);
            for v in buf.data_mut() {
                *v = (rng.next_f64() * 10.0).round() / 10.0;
            }
            out.insert(name.clone(), buf);
        }
    }
    out
}

fn limit_key(h: u64, v: Option<u64>) -> u64 {
    match v {
        Some(v) => fnv1a(fnv1a(h, &[1]), &v.to_le_bytes()),
        None => fnv1a(h, &[0]),
    }
}

/// The memoized-result key: every bit of request state the terminal
/// outcome is a pure function of — source, params, seed, mode,
/// engine, and the *effective* limits (post deadline conversion and
/// certificate fill-in). Limits are in the key so error outcomes
/// (which quote budgets) cache soundly and a hit never needs a budget
/// re-check. Thread count is deliberately absent: the determinism
/// contract makes outcomes thread-invariant.
fn result_key(req: &Request, mode: ExecMode, engine: Engine, limits: Limits) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, req.source.as_bytes());
    let mut params = req.params.clone();
    params.sort();
    for (k, v) in &params {
        h = fnv1a(h, k.as_bytes());
        h = fnv1a(h, &v.to_le_bytes());
    }
    h = fnv1a(h, &req.seed.to_le_bytes());
    h = fnv1a(h, &[mode as u8, engine as u8, 0xF1]);
    h = limit_key(h, limits.fuel);
    h = limit_key(h, limits.mem_bytes);
    h
}

/// The family key shared by every request whose params differ only in
/// the update's own parameters: like [`result_key`] but excluding
/// limits and the delta parameters' *values* (their names still key —
/// the prefix state is identical across the family precisely because
/// those parameters appear nowhere outside the trailing update).
fn family_key(req: &Request, delta_params: &[String], mode: ExecMode, engine: Engine) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, req.source.as_bytes());
    let mut params: Vec<&(String, i64)> = req
        .params
        .iter()
        .filter(|(k, _)| !delta_params.iter().any(|d| d == k))
        .collect();
    params.sort();
    for (k, v) in params {
        h = fnv1a(h, k.as_bytes());
        h = fnv1a(h, &v.to_le_bytes());
    }
    let mut names: Vec<&String> = delta_params.iter().collect();
    names.sort();
    for n in names {
        h = fnv1a(h, n.as_bytes());
        h = fnv1a(h, &[2]);
    }
    h = fnv1a(h, &req.seed.to_le_bytes());
    h = fnv1a(h, &[mode as u8, engine as u8, 0xFA]);
    h
}

/// The request's effective limits: its own caps, with a deadline
/// converted to fuel at the calibrated rate (the *tighter* of the two
/// fuel numbers wins when both are given). A free function so the
/// pure classification predictor shares it with admission.
fn effective_limits(deadline: Option<&DeadlineGovernor>, req: &Request) -> Result<Limits, String> {
    let mut fuel = req.fuel;
    if let Some(ms) = req.deadline_ms {
        let gov = deadline
            .ok_or("deadline_ms given but the server has no calibrated deadline governor")?;
        let budget = gov.fuel_for_deadline(ms);
        fuel = Some(fuel.map_or(budget, |f| f.min(budget)));
    }
    Ok(Limits {
        fuel,
        mem_bytes: req.mem_bytes,
    })
}

/// Whether `options` puts an effective fault plan in force: an
/// explicit non-empty plan, or (when `faults` is `None`) an ambient
/// `HAC_FAULT_PLAN`. Fault-injected runs are not pure functions of
/// the request, so they bypass the result cache.
fn faults_active(options: &ServeOptions) -> bool {
    match &options.faults {
        Some(p) => !p.points.is_empty() || !p.snapshot,
        None => hac_core::codegen::ambient_fault_plan_active(),
    }
}

/// How the result cache serves an admitted request, decided on the
/// sequential admission path. Every variant but `Bypass` and `Hit`
/// names `Pending` slots this request must resolve before returning.
enum ResultRoute {
    /// Result caching is off for this request.
    Bypass,
    /// A cached outcome was `Ready` at admission: serve it verbatim.
    Hit(Arc<CachedOutcome>),
    /// An earlier-admitted filler is computing this exact outcome:
    /// wait for it (safe — waits only ever target earlier ordinals).
    WaitHit { key: u64, token: u64 },
    /// A family snapshot was `Ready`: replay only the update.
    Delta {
        key: u64,
        token: u64,
        fam: Arc<FamilyEntry>,
    },
    /// An earlier-admitted filler is snapshotting this family: wait,
    /// then replay the update against its snapshot.
    WaitDelta {
        key: u64,
        token: u64,
        fkey: u64,
        ftoken: u64,
    },
    /// Cold: run the full pipeline and fill the result slot — and the
    /// family slot, when this request was elected the family filler.
    Miss {
        key: u64,
        token: u64,
        family: Option<FamilyFill>,
    },
}

/// The family-filler obligation: snapshot the prefix into `fkey`
/// (whose bytes were ceiling-reserved at admission).
struct FamilyFill {
    fkey: u64,
    token: u64,
}

/// Drop guard for a filler's `Pending` slots: any path that returns
/// (or panics) without resolving them marks the slots `Failed` and
/// refunds family bytes, so waiters never block on a dead filler.
/// Disarmed piecewise as each obligation is met.
struct FillGuard<'a> {
    server: &'a Server,
    full: Option<(u64, u64)>,
    family: Option<(u64, u64)>,
}

impl Drop for FillGuard<'_> {
    fn drop(&mut self) {
        if self.full.is_none() && self.family.is_none() {
            return;
        }
        let mut rc = self.server.results.lock().expect("result cache lock");
        if let Some((key, token)) = self.full.take() {
            rc.fail_full(key, token);
        }
        if let Some((fkey, token)) = self.family.take() {
            let bytes = rc.fail_family(fkey, token);
            self.server.ceiling.refund_mem(bytes);
        }
        drop(rc);
        self.server.results_cv.notify_all();
    }
}

/// A multi-tenant server: bounded compiled-program cache + shared
/// ceiling + weighted fair admission.
///
/// `Server` is `Sync`; one instance serves concurrent callers.
pub struct Server {
    options: ServeOptions,
    ceiling: Arc<SharedCeiling>,
    /// Bounded cache of compiled programs keyed by FNV(source, params,
    /// mode, engine); recency is stamped in admission ordinals.
    cache: Mutex<ProgramCache>,
    /// Materialized-result cache: memoized outcomes and family
    /// snapshots. Membership changes only on the admission path;
    /// execution threads resolve `Pending` slots and wake waiters
    /// through `results_cv`.
    results: Mutex<ResultCache>,
    /// Wakes requests parked on a `Pending` result/family slot.
    results_cv: Condvar,
    /// Life-to-date requests shed by the overload watermark.
    shed: AtomicU64,
    /// Life-to-date engine-fault retries executed (attempts beyond
    /// the first, across all requests).
    retried: AtomicU64,
    /// Life-to-date certificate ledger: admissions whose program had a
    /// closed certificate.
    cert_certified: AtomicU64,
    /// Admissions whose certificate was open (metered fallback).
    cert_open: AtomicU64,
    /// Requests rejected by the certificate before execution.
    cert_rejected: AtomicU64,
}

/// Life-to-date overload/retry counters (see [`Server::server_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests shed with an `overloaded` response.
    pub shed: u64,
    /// Extra execution attempts spent recovering engine faults.
    pub retried: u64,
}

/// Life-to-date certificate-admission counters (see
/// [`Server::cert_stats`]). `rejected` counts a subset of `certified`:
/// a rejection requires a closed certificate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertStats {
    /// Admissions whose compiled program carried a closed certificate.
    pub certified: u64,
    /// Admissions that fell back to the metered path (`cost: open`).
    pub open: u64,
    /// Requests rejected before execution with `over-certificate`.
    pub rejected: u64,
}

/// A request past compilation and admission, ready to execute.
struct Admitted {
    id: String,
    tenant: Option<String>,
    ordinal: u64,
    compiled: Arc<Compiled>,
    meter: Meter,
    /// Effective limits the meter was admitted under, kept so a retry
    /// can re-admit an identical meter from the ceiling.
    limits: Limits,
    /// Extra attempts allowed on an unabsorbed engine fault.
    retry_budget: u32,
    cache_hit: bool,
    evictions: u64,
    seed: u64,
    /// How the result cache serves this request (decided at
    /// admission).
    route: ResultRoute,
}

impl Server {
    /// Build a server; the ceiling is allocated once here and shared
    /// by every request the server ever admits.
    pub fn new(options: ServeOptions) -> Server {
        let ceiling = SharedCeiling::new(options.ceiling, options.stripes);
        let cache = Mutex::new(ProgramCache::new(options.cache_cap));
        let results = Mutex::new(ResultCache::new(options.result_cache_cap));
        Server {
            options,
            ceiling,
            cache,
            results,
            results_cv: Condvar::new(),
            shed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            cert_certified: AtomicU64::new(0),
            cert_open: AtomicU64::new(0),
            cert_rejected: AtomicU64::new(0),
        }
    }

    /// The server-wide configuration (read-only).
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// The shared pool (tests observe accounting through this).
    pub fn ceiling(&self) -> &Arc<SharedCeiling> {
        &self.ceiling
    }

    /// Life-to-date compiled-program cache counters: lookups, hits,
    /// misses, insertions, evictions, live entries, capacity.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Life-to-date result-cache counters: lookups, realized
    /// hits/deltas/misses, insertions, evictions, live entries,
    /// capacity, and family-snapshot residency in bytes.
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        self.results
            .lock()
            .expect("result cache lock")
            .result_stats()
    }

    /// Life-to-date overload/retry counters.
    pub fn server_stats(&self) -> ServerStats {
        ServerStats {
            shed: self.shed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
        }
    }

    /// Life-to-date certificate-admission counters.
    pub fn cert_stats(&self) -> CertStats {
        CertStats {
            certified: self.cert_certified.load(Ordering::Relaxed),
            open: self.cert_open.load(Ordering::Relaxed),
            rejected: self.cert_rejected.load(Ordering::Relaxed),
        }
    }

    /// The fair admission order the scheduler predicts for `reqs` —
    /// the exact permutation [`Server::run_batch`] realizes. Exposed
    /// so tests (and capacity planners) can check realized order
    /// against the prediction.
    pub fn predicted_order(reqs: &[Request]) -> Vec<usize> {
        Self::predicted_schedule(reqs, 0).order
    }

    /// The full schedule — admission order *and* shed set — the server
    /// realizes for `reqs` under `shed_watermark` (0 disables
    /// shedding). A pure function of the request list, so a simulator
    /// predicts sheds exactly; [`Server::run_batch`] realizes this
    /// with the server's own watermark.
    pub fn predicted_schedule(reqs: &[Request], shed_watermark: usize) -> sched::Schedule {
        let arrivals: Vec<(&str, u64)> = reqs
            .iter()
            .map(|r| {
                (
                    r.tenant.as_deref().unwrap_or(""),
                    r.weight.unwrap_or(sched::DEFAULT_WEIGHT),
                )
            })
            .collect();
        sched::fair_schedule(&arrivals, shed_watermark)
    }

    /// The result-cache classification — `hit`, `delta`, `miss`, or
    /// `None` (bypass / shed / rejected / compile error) — a server
    /// built from `options` realizes for each request of `reqs`, in
    /// input order, as a *pure* function of the request list (the
    /// result-cache sibling of [`Server::predicted_schedule`]).
    ///
    /// The prediction replays the admission sequence against a scratch
    /// [`ResultCache`] with every filler assumed to succeed instantly,
    /// so it is exact on a **fresh** server whose ceiling admits every
    /// request (uncapped or ample) and whose runs all succeed; fillers
    /// that fail or lose their slot to races shift realized `hit`s to
    /// `miss`es, never the reverse.
    pub fn predicted_result_classes(
        options: &ServeOptions,
        reqs: &[Request],
    ) -> Vec<Option<ResultClass>> {
        let schedule = Self::predicted_schedule(reqs, options.shed_watermark);
        let mut classes: Vec<Option<ResultClass>> = vec![None; reqs.len()];
        if options.result_cache_cap == 0 || faults_active(options) {
            return classes;
        }
        let mut rc = ResultCache::new(options.result_cache_cap);
        let dummy_outcome = Arc::new(CachedOutcome {
            status: Status::Ok,
            answer_digest: None,
            counters_digest: None,
            fuel_left: None,
            engine_faults: 0,
            error: None,
        });
        // Only the keys and recency drive classification, so the slot
        // payloads can be placeholders.
        let dummy_family = Arc::new(FamilyEntry {
            state: ExecState::default(),
            prefix_fuel: None,
            prefix_mem: None,
        });
        // Every scheduled (non-shed) request consumes one admission
        // ordinal, rejected ones included. Recency comparisons are
        // offset-invariant, so starting from 0 predicts any fresh
        // server regardless of its ordinal origin.
        for (ord, &idx) in (0u64..).zip(schedule.order.iter()) {
            let req = &reqs[idx];
            let mode = req.mode.unwrap_or(options.mode);
            let engine = req.engine.unwrap_or(options.engine);
            let Ok(mut limits) = effective_limits(options.deadline.as_ref(), req) else {
                continue;
            };
            let Ok(program) = hac_lang::parser::parse_program(&req.source) else {
                continue;
            };
            let mut env = ConstEnv::new();
            for (k, v) in &req.params {
                env.bind(k, *v);
            }
            let Ok(compiled) = compile(
                &program,
                &env,
                &CompileOptions {
                    mode,
                    engine,
                    fuse: options.fuse,
                    ..CompileOptions::default()
                },
            ) else {
                continue;
            };
            // Mirror certificate admission: exact certs reject
            // under-budget requests and pin uncapped fuel under a
            // fuel-capped ceiling.
            let cert = &compiled.cert;
            if cert.is_exact() {
                let cert_fuel = cert.fuel_value().unwrap_or(u64::MAX);
                let cert_mem = cert.mem_value().unwrap_or(u64::MAX);
                if limits.fuel.is_some_and(|f| f < cert_fuel)
                    || limits.mem_bytes.is_some_and(|m| m < cert_mem)
                {
                    continue;
                }
                if limits.fuel.is_none() && options.ceiling.fuel.is_some() {
                    limits.fuel = Some(cert_fuel);
                }
            }
            // A capped ceiling with no per-request cap draws the pool
            // lazily — the realized route is Bypass.
            if (options.ceiling.fuel.is_some() && limits.fuel.is_none())
                || (options.ceiling.mem_bytes.is_some() && limits.mem_bytes.is_none())
            {
                continue;
            }
            let key = result_key(req, mode, engine, limits);
            let cost = (compiled.units.len() as u64).max(1);
            match rc.probe_full(key, ord) {
                FullProbe::Ready(_) | FullProbe::Pending { .. } => {
                    classes[idx] = Some(ResultClass::Hit);
                    continue;
                }
                FullProbe::Absent | FullProbe::Failed => {}
            }
            rc.install_full(key, ord, cost);
            // The filler is assumed to succeed: resolve its slot
            // before the next replay step, like the real fill would.
            rc.fill_full(key, ord, Arc::clone(&dummy_outcome));
            match &compiled.delta {
                None => classes[idx] = Some(ResultClass::Miss),
                Some(plan) => {
                    let fkey = family_key(req, &plan.params, mode, engine);
                    match rc.probe_family(fkey, ord) {
                        FamilyProbe::Ready(_) | FamilyProbe::Pending { .. } => {
                            classes[idx] = Some(ResultClass::Delta);
                        }
                        FamilyProbe::Absent | FamilyProbe::Failed => {
                            rc.install_family(
                                fkey,
                                ord,
                                cost.saturating_sub(1).max(1),
                                plan.prefix_bytes,
                            );
                            rc.fill_family(fkey, ord, Arc::clone(&dummy_family));
                            classes[idx] = Some(ResultClass::Miss);
                        }
                    }
                }
            }
        }
        classes
    }

    fn cache_key(&self, req: &Request, mode: ExecMode, engine: Engine) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, req.source.as_bytes());
        let mut params = req.params.clone();
        params.sort();
        for (k, v) in &params {
            h = fnv1a(h, k.as_bytes());
            h = fnv1a(h, &v.to_le_bytes());
        }
        h = fnv1a(h, &[mode as u8, engine as u8]);
        h
    }

    /// Compile via the bounded cache, stamping recency (and any
    /// eviction) with the request's admission ordinal. Returns the
    /// program, whether it was a hit, and how many entries were
    /// evicted to make room. Compile *errors* are not cached: they are
    /// cheap to reproduce (the front end rejects early) and rare.
    fn compile_cached(
        &self,
        req: &Request,
        mode: ExecMode,
        engine: Engine,
        ordinal: u64,
    ) -> Result<(Arc<Compiled>, bool, u64), String> {
        let key = self.cache_key(req, mode, engine);
        if let Some(hit) = self.cache.lock().expect("cache lock").lookup(key, ordinal) {
            return Ok((hit, true, 0));
        }
        let program = hac_lang::parser::parse_program(&req.source)
            .map_err(|e| format!("parse error: {e}"))?;
        let mut env = ConstEnv::new();
        for (k, v) in &req.params {
            env.bind(k, *v);
        }
        let compiled = compile(
            &program,
            &env,
            &CompileOptions {
                mode,
                engine,
                fuse: self.options.fuse,
                ..CompileOptions::default()
            },
        )
        .map_err(|e| format!("compile error: {e}"))?;
        let compiled = Arc::new(compiled);
        let evicted =
            self.cache
                .lock()
                .expect("cache lock")
                .insert(key, Arc::clone(&compiled), ordinal);
        Ok((compiled, false, evicted))
    }

    /// Decide how the result cache serves an admitted request. Runs
    /// on the sequential admission path, so cache membership,
    /// eviction, and filler election are pure functions of the
    /// admission sequence — execution threads later only resolve the
    /// slots installed here.
    #[allow(clippy::too_many_arguments)]
    fn route_result(
        &self,
        req: &Request,
        compiled: &Compiled,
        mode: ExecMode,
        engine: Engine,
        limits: Limits,
        meter: &Meter,
        ordinal: u64,
    ) -> ResultRoute {
        // Bypass gates, all admission-computable: caching off, a fault
        // plan in force, or a meter that draws the shared pool lazily
        // (its exhaustion point depends on sibling requests, so its
        // outcome is not a pure function of the request).
        if self.options.result_cache_cap == 0
            || faults_active(&self.options)
            || meter.draws_lazily()
            || meter.draws_mem_lazily()
        {
            return ResultRoute::Bypass;
        }
        let key = result_key(req, mode, engine, limits);
        let cost = (compiled.units.len() as u64).max(1);
        let mut rc = self.results.lock().expect("result cache lock");
        match rc.probe_full(key, ordinal) {
            FullProbe::Ready(o) => return ResultRoute::Hit(o),
            FullProbe::Pending { token } => return ResultRoute::WaitHit { key, token },
            FullProbe::Absent | FullProbe::Failed => {}
        }
        // Cold at the full key: this request becomes its filler.
        let mut freed = rc.install_full(key, ordinal, cost);
        let route = match &compiled.delta {
            None => ResultRoute::Miss {
                key,
                token: ordinal,
                family: None,
            },
            Some(plan) => {
                let fkey = family_key(req, &plan.params, mode, engine);
                match rc.probe_family(fkey, ordinal) {
                    FamilyProbe::Ready(fam) => ResultRoute::Delta {
                        key,
                        token: ordinal,
                        fam,
                    },
                    FamilyProbe::Pending { token } => ResultRoute::WaitDelta {
                        key,
                        token: ordinal,
                        fkey,
                        ftoken: token,
                    },
                    FamilyProbe::Absent | FamilyProbe::Failed => {
                        // Elect this request the family filler — if
                        // the pool covers the snapshot's residency
                        // (charged now, deterministically, from the
                        // plan's static byte count).
                        if self.ceiling.reserve_mem(plan.prefix_bytes) {
                            let ev = rc.install_family(
                                fkey,
                                ordinal,
                                cost.saturating_sub(1).max(1),
                                plan.prefix_bytes,
                            );
                            freed.entries += ev.entries;
                            freed.bytes += ev.bytes;
                            ResultRoute::Miss {
                                key,
                                token: ordinal,
                                family: Some(FamilyFill {
                                    fkey,
                                    token: ordinal,
                                }),
                            }
                        } else {
                            ResultRoute::Miss {
                                key,
                                token: ordinal,
                                family: None,
                            }
                        }
                    }
                }
            }
        };
        drop(rc);
        if freed.bytes > 0 {
            self.ceiling.refund_mem(freed.bytes);
        }
        route
    }

    /// Compile and admit one request (the sequential admission phase).
    /// Every request that reaches this point consumes one reservation
    /// ordinal from the ceiling — the deterministic clock that stamps
    /// cache recency and the response's `admitted` field. `Err` is an
    /// early response (boxed — it is much larger than the `Ok` arm):
    /// malformed, compile failure, or rejection.
    fn admit(&self, req: &Request) -> Result<Admitted, Box<Response>> {
        let ordinal = self.ceiling.take_ordinal();
        let stamp = |mut resp: Response| {
            resp.tenant = req.tenant.clone();
            resp.admitted = Some(ordinal);
            Box::new(resp)
        };
        let mode = req.mode.unwrap_or(self.options.mode);
        let engine = req.engine.unwrap_or(self.options.engine);
        let mut limits = effective_limits(self.options.deadline.as_ref(), req)
            .map_err(|e| stamp(Response::failed(&req.id, Status::Rejected, None, e)))?;
        let (compiled, cache_hit, evictions) = self
            .compile_cached(req, mode, engine, ordinal)
            .map_err(|e| {
                stamp(Response::failed(
                    &req.id,
                    Status::CompileError,
                    Some(false),
                    e,
                ))
            })?;
        // Certificate admission: when the compiler proved an exact
        // cost, a budget below it certifiably cannot finish — reject
        // before spending any execution, quoting the evaluated bound.
        // A request that declared no fuel under a fuel-capped ceiling
        // is admitted all-or-nothing at exactly its certified cost
        // instead of drawing lazy blocks from the pool. Inexact
        // (upper-bound) and open certificates never reject: the
        // metered path remains the authority there.
        let cert = &compiled.cert;
        if cert.is_closed() {
            self.cert_certified.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cert_open.fetch_add(1, Ordering::Relaxed);
        }
        if cert.is_exact() {
            let cert_fuel = cert.fuel_value().unwrap_or(u64::MAX);
            let cert_mem = cert.mem_value().unwrap_or(u64::MAX);
            let mut why = Vec::new();
            if let Some(f) = limits.fuel {
                if f < cert_fuel {
                    why.push(format!("fuel budget {f} < certified cost {cert_fuel}"));
                }
            }
            if let Some(m) = limits.mem_bytes {
                if m < cert_mem {
                    why.push(format!("mem budget {m} < certified peak {cert_mem} bytes"));
                }
            }
            if !why.is_empty() {
                self.cert_rejected.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::failed(
                    &req.id,
                    Status::OverCertificate,
                    Some(cache_hit),
                    format!("over certificate: {}", why.join("; ")),
                );
                resp.evictions = evictions;
                return Err(stamp(resp));
            }
            if limits.fuel.is_none() && self.ceiling.fuel_capped() {
                limits.fuel = Some(cert_fuel);
            }
        }
        let meter = Meter::admit(limits, &self.ceiling).map_err(|e| {
            let mut resp =
                Response::failed(&req.id, Status::Rejected, Some(cache_hit), e.to_string());
            resp.evictions = evictions;
            stamp(resp)
        })?;
        let route = self.route_result(req, &compiled, mode, engine, limits, &meter, ordinal);
        Ok(Admitted {
            id: req.id.clone(),
            tenant: req.tenant.clone(),
            ordinal,
            compiled,
            meter,
            limits,
            retry_budget: req.retry_budget.unwrap_or(self.options.retry_budget),
            cache_hit,
            evictions,
            seed: req.seed,
            route,
        })
    }

    /// Execute an admitted request along its result route and settle
    /// its meter. Hit- and delta-served responses are byte-identical
    /// (digest and error class) to the cold full recomputation — the
    /// `result_cache`/`delta_elems` fields are the only tells — and
    /// every fallback lands on the full metered run, which stays the
    /// authority for outcomes.
    fn execute(&self, mut adm: Admitted) -> Response {
        match std::mem::replace(&mut adm.route, ResultRoute::Bypass) {
            ResultRoute::Bypass => self.execute_full(adm, None, None, false),
            ResultRoute::Hit(o) => self.serve_cached(adm, &o),
            ResultRoute::WaitHit { key, token } => match self.await_full(key, token) {
                Some(o) => self.serve_cached(adm, &o),
                // The filler died (or its slot was evicted): run full.
                // No fill — membership changed only at admission.
                None => self.execute_full(adm, None, None, true),
            },
            ResultRoute::Delta { key, token, fam } => self.serve_delta(adm, key, token, &fam),
            ResultRoute::WaitDelta {
                key,
                token,
                fkey,
                ftoken,
            } => match self.await_family(fkey, ftoken) {
                Some(fam) => self.serve_delta(adm, key, token, &fam),
                None => self.execute_full(adm, Some((key, token)), None, true),
            },
            ResultRoute::Miss { key, token, family } => {
                self.execute_full(adm, Some((key, token)), family, true)
            }
        }
    }

    /// Block until the `Pending` full slot installed as `(key, token)`
    /// resolves; `None` means the filler failed or the slot vanished.
    /// Waits only while that exact install is pending — a re-installed
    /// slot belongs to a *later* ordinal, and waiting on one could
    /// deadlock a single-worker batch. The install this waits on was
    /// admitted earlier, so its filler is already running (workers
    /// drain in admission order): the wait always makes progress.
    fn await_full(&self, key: u64, token: u64) -> Option<Arc<CachedOutcome>> {
        let mut rc = self.results.lock().expect("result cache lock");
        loop {
            match rc.peek_full(key) {
                FullProbe::Ready(o) => return Some(o),
                FullProbe::Pending { token: t } if t == token => {
                    rc = self.results_cv.wait(rc).expect("result cache lock");
                }
                _ => return None,
            }
        }
    }

    /// [`Server::await_full`] for family slots.
    fn await_family(&self, fkey: u64, ftoken: u64) -> Option<Arc<FamilyEntry>> {
        let mut rc = self.results.lock().expect("result cache lock");
        loop {
            match rc.peek_family(fkey) {
                FamilyProbe::Ready(f) => return Some(f),
                FamilyProbe::Pending { token: t } if t == ftoken => {
                    rc = self.results_cv.wait(rc).expect("result cache lock");
                }
                _ => return None,
            }
        }
    }

    /// Serve a memoized outcome verbatim. Zero engine ops: the meter
    /// settles untouched, refunding the whole reservation to the pool.
    fn serve_cached(&self, mut adm: Admitted, o: &CachedOutcome) -> Response {
        adm.meter.settle();
        self.results.lock().expect("result cache lock").record_hit();
        Response {
            id: adm.id,
            status: o.status,
            tenant: adm.tenant,
            admitted: Some(adm.ordinal),
            cache_hit: Some(adm.cache_hit),
            evictions: adm.evictions,
            result_cache: Some(ResultClass::Hit),
            delta_elems: None,
            answer_digest: o.answer_digest.clone(),
            fuel_left: o.fuel_left,
            engine_faults: o.engine_faults,
            counters_digest: o.counters_digest.clone(),
            verdicts: Some(verdicts_of(&adm.compiled)),
            attempts: 1,
            retry_after_ops: None,
            error: o.error.clone(),
        }
    }

    /// Serve by replaying only the trailing update over a family
    /// snapshot. The probe runs on a standalone meter priced at
    /// `budget − prefix`, so exhaustion lands exactly where the cold
    /// run's would; *any* probe failure is discarded and the full
    /// metered run on the admitted meter becomes the authority (its
    /// error text embeds the request's own limits, the probe's would
    /// not). On success the admitted meter is charged for precisely
    /// what the cold run would have spent, so the pool's settlement
    /// is identical.
    fn serve_delta(&self, mut adm: Admitted, key: u64, token: u64, fam: &FamilyEntry) -> Response {
        let writes = adm
            .compiled
            .delta
            .as_ref()
            .expect("delta route requires a plan")
            .writes;
        // A budget the snapshot cannot price (unmeasured prefix) or
        // cannot cover (prefix alone exceeds it) falls back to the
        // full run, which reproduces cold's outcome — including a
        // cold prefix exhaustion — exactly.
        let probe_fuel = match (adm.limits.fuel, fam.prefix_fuel) {
            (None, _) => None,
            (Some(f), Some(pf)) if pf <= f => Some(f - pf),
            _ => return self.execute_full(adm, Some((key, token)), None, true),
        };
        let probe_mem = match (adm.limits.mem_bytes, fam.prefix_mem) {
            (None, _) => None,
            (Some(m), Some(pm)) if pm <= m => Some(m - pm),
            _ => return self.execute_full(adm, Some((key, token)), None, true),
        };
        let mut probe = Meter::new(Limits {
            fuel: probe_fuel,
            mem_bytes: probe_mem,
        });
        let funcs = FuncTable::new();
        let run_opts = RunOptions {
            threads: Some(self.options.threads),
            limits: Limits::unlimited(),
            faults: self.options.faults.clone(),
            ceiling: None,
        };
        match run_delta(&adm.compiled, &fam.state, &funcs, &run_opts, &mut probe) {
            Ok(out) => {
                // The probe's closing balance *is* the cold run's:
                // (budget − prefix) − delta = budget − total. Charge
                // the admitted meter down to it and settle, so the
                // pool sees exactly the recomputed work spent.
                if let (Some(f), Some(left)) = (adm.limits.fuel, out.fuel_left) {
                    adm.meter.consume_fuel(f - left);
                }
                adm.meter.settle();
                let outcome = Arc::new(CachedOutcome {
                    status: Status::Ok,
                    answer_digest: Some(digest_output(&out)),
                    counters_digest: Some(digest_counters(&out.counters)),
                    fuel_left: out.fuel_left,
                    engine_faults: out.counters.vm.engine_faults,
                    error: None,
                });
                {
                    let mut rc = self.results.lock().expect("result cache lock");
                    rc.fill_full(key, token, Arc::clone(&outcome));
                    rc.record_delta();
                }
                self.results_cv.notify_all();
                Response {
                    id: adm.id,
                    status: Status::Ok,
                    tenant: adm.tenant,
                    admitted: Some(adm.ordinal),
                    cache_hit: Some(adm.cache_hit),
                    evictions: adm.evictions,
                    result_cache: Some(ResultClass::Delta),
                    delta_elems: Some(writes),
                    answer_digest: outcome.answer_digest.clone(),
                    fuel_left: outcome.fuel_left,
                    engine_faults: outcome.engine_faults,
                    counters_digest: outcome.counters_digest.clone(),
                    verdicts: Some(verdicts_of(&adm.compiled)),
                    attempts: 1,
                    retry_after_ops: None,
                    error: None,
                }
            }
            Err(_) => self.execute_full(adm, Some((key, token)), None, true),
        }
    }

    /// Run the full pipeline split at the trailing update, publishing
    /// the family snapshot between the halves. Byte-equivalent to
    /// [`run_with_meter`] — same units, same state threading, same
    /// meter — plus a clone of the prefix state (and its measured
    /// cost) published for the family.
    #[allow(clippy::too_many_arguments)]
    fn run_split(
        &self,
        compiled: &Compiled,
        limits: Limits,
        inputs: &HashMap<String, ArrayBuf>,
        funcs: &FuncTable,
        opts: &RunOptions,
        meter: &mut Meter,
        guard: &mut FillGuard<'_>,
    ) -> Result<hac_core::pipeline::ExecOutput, RuntimeError> {
        let last = compiled.units.len() - 1;
        let mut state = ExecState::default();
        run_units(compiled, 0..last, &mut state, inputs, funcs, opts, meter)?;
        // What the prefix charged — measurable whenever the cap is
        // finite (routing already excluded lazily-drawing meters).
        let prefix_fuel = limits.fuel.map(|f| f - meter.fuel_left());
        let prefix_mem = limits.mem_bytes.map(|m| m - meter.mem_left());
        if let Some((fkey, token)) = guard.family.take() {
            let entry = Arc::new(FamilyEntry {
                state: state.clone(),
                prefix_fuel,
                prefix_mem,
            });
            // A fill that misses (slot evicted meanwhile) wastes only
            // the clone; the eviction already refunded its bytes.
            self.results
                .lock()
                .expect("result cache lock")
                .fill_family(fkey, token, entry);
            self.results_cv.notify_all();
        }
        run_units(
            compiled,
            last..compiled.units.len(),
            &mut state,
            inputs,
            funcs,
            opts,
            meter,
        )?;
        Ok(state.into_output(meter))
    }

    /// Resolve a routed request's full-slot obligation from its final
    /// response and count the realized miss.
    fn finish_routed(&self, guard: &mut FillGuard<'_>, routed: bool, resp: &Response) {
        if !routed {
            return;
        }
        let mut rc = self.results.lock().expect("result cache lock");
        if let Some((key, token)) = guard.full.take() {
            let outcome = Arc::new(CachedOutcome {
                status: resp.status,
                answer_digest: resp.answer_digest.clone(),
                counters_digest: resp.counters_digest.clone(),
                fuel_left: resp.fuel_left,
                engine_faults: resp.engine_faults,
                error: resp.error.clone(),
            });
            rc.fill_full(key, token, outcome);
        }
        rc.record_miss();
        drop(rc);
        self.results_cv.notify_all();
    }

    /// Execute an admitted request on the full pipeline and settle its
    /// meter, resolving any fill obligations (`fill` = this request's
    /// `Pending` full slot, `family` = its family-filler election;
    /// `routed` marks requests the result cache classifies). A run
    /// that dies with an [`EngineFault`](RuntimeError::EngineFault)
    /// the engine layer could not absorb is treated as transient: the
    /// meter is settled (refunding the pool), a fresh one is
    /// re-admitted under the same limits, and the run repeats — up to
    /// `retry_budget` extra attempts. Retries pin the *empty* fault
    /// plan (overriding `HAC_FAULT_PLAN`): a plan-driven fault would
    /// recur at the same coordinates forever, and the retry models the
    /// fault not recurring. A successful retry is therefore
    /// byte-identical to a fault-free run except for `attempts`.
    /// (Routed requests never carry a fault plan, so fills and retries
    /// cannot co-occur.)
    fn execute_full(
        &self,
        mut adm: Admitted,
        fill: Option<(u64, u64)>,
        family: Option<FamilyFill>,
        routed: bool,
    ) -> Response {
        let inputs = fill_inputs(&adm.compiled, adm.seed);
        let funcs = FuncTable::new();
        let verdicts = Some(verdicts_of(&adm.compiled));
        let mut guard = FillGuard {
            server: self,
            full: fill,
            family: family.map(|f| (f.fkey, f.token)),
        };
        let mut attempts: u64 = 1;
        loop {
            let run_opts = RunOptions {
                threads: Some(self.options.threads),
                limits: Limits::unlimited(), // the meter already embodies them
                faults: if attempts == 1 {
                    // `None` defers to the ambient HAC_FAULT_PLAN.
                    self.options.faults.clone()
                } else {
                    Some(FaultPlan::default())
                },
                ceiling: None,
            };
            let out = if guard.family.is_some() {
                self.run_split(
                    &adm.compiled,
                    adm.limits,
                    &inputs,
                    &funcs,
                    &run_opts,
                    &mut adm.meter,
                    &mut guard,
                )
            } else {
                run_with_meter(&adm.compiled, &inputs, &funcs, &run_opts, &mut adm.meter)
            };
            let fuel_left = adm.meter.fuel_limited().then(|| adm.meter.fuel_left());
            adm.meter.settle();
            match out {
                Ok(out) => {
                    let resp = Response {
                        id: adm.id,
                        status: Status::Ok,
                        tenant: adm.tenant,
                        admitted: Some(adm.ordinal),
                        cache_hit: Some(adm.cache_hit),
                        evictions: adm.evictions,
                        result_cache: routed.then_some(ResultClass::Miss),
                        delta_elems: None,
                        answer_digest: Some(digest_output(&out)),
                        fuel_left: out.fuel_left,
                        engine_faults: out.counters.vm.engine_faults,
                        counters_digest: Some(digest_counters(&out.counters)),
                        verdicts,
                        attempts,
                        retry_after_ops: None,
                        error: None,
                    };
                    self.finish_routed(&mut guard, routed, &resp);
                    return resp;
                }
                Err(e) => {
                    if matches!(e, RuntimeError::EngineFault { .. })
                        && attempts <= u64::from(adm.retry_budget)
                    {
                        // The settle above refunded the pool; if the
                        // re-admission loses a race for that budget,
                        // surface the original fault rather than a
                        // confusing rejection.
                        if let Ok(meter) = Meter::admit(adm.limits, &self.ceiling) {
                            adm.meter = meter;
                            attempts += 1;
                            self.retried.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                    let status = match &e {
                        RuntimeError::FuelExhausted { .. }
                        | RuntimeError::MemLimitExceeded { .. }
                        | RuntimeError::CeilingExhausted { .. } => Status::Limit,
                        _ => Status::RuntimeError,
                    };
                    let resp = Response {
                        id: adm.id,
                        status,
                        tenant: adm.tenant,
                        admitted: Some(adm.ordinal),
                        cache_hit: Some(adm.cache_hit),
                        evictions: adm.evictions,
                        result_cache: routed.then_some(ResultClass::Miss),
                        delta_elems: None,
                        answer_digest: None,
                        fuel_left,
                        engine_faults: 0,
                        counters_digest: None,
                        verdicts,
                        attempts,
                        retry_after_ops: None,
                        error: Some(e.to_string()),
                    };
                    self.finish_routed(&mut guard, routed, &resp);
                    return resp;
                }
            }
        }
    }

    /// Serve one request start to finish.
    pub fn handle(&self, req: &Request) -> Response {
        match self.admit(req) {
            Ok(adm) => self.execute(adm),
            Err(resp) => *resp,
        }
    }

    /// Serve a batch: admission strictly in the weighted fair order
    /// ([`Server::predicted_order`] — a pure function of the request
    /// list, so rejection and cache eviction are deterministic), then
    /// execution on up to `workers` threads, which drain jobs in
    /// admission order. Responses come back in **input order**. Each
    /// admitted request's outcome is independent of sibling scheduling
    /// — the settlement rule fixes its budget at admission.
    ///
    /// When the batch exceeds [`ServeOptions::shed_watermark`] (and
    /// the watermark is non-zero), the excess is shed per
    /// [`sched::fair_schedule`] with `overloaded` responses carrying a
    /// `retry_after_ops` hint — the surviving backlog priced by
    /// effective fuel caps, with certified-but-uncapped survivors
    /// priced at their evaluated certificate bound. Survivors are then
    /// scheduled **as if the shed requests never arrived**: their
    /// responses are byte-identical (ordinals included) to a batch of
    /// only the survivors.
    pub fn run_batch(&self, reqs: &[Request], workers: usize) -> Vec<Response> {
        let schedule = Self::predicted_schedule(reqs, self.options.shed_watermark);
        let mut slots: Vec<Option<Response>> = (0..reqs.len()).map(|_| None).collect();
        // `jobs` holds (input index, admitted request) in admission
        // order; workers pull from its front, so execution starts in
        // the same fair order admission ran in.
        let mut jobs: Vec<(usize, Admitted)> = Vec::with_capacity(reqs.len());
        for &i in &schedule.order {
            match self.admit(&reqs[i]) {
                Ok(adm) => jobs.push((i, adm)),
                Err(resp) => slots[i] = Some(*resp),
            }
        }
        if !schedule.shed.is_empty() {
            // The hint prices the surviving backlog: an admitted
            // request contributes its effective fuel cap, falling back
            // to its certificate's evaluated fuel bound when it ran
            // uncapped (certified survivors no longer count as 0); a
            // request that failed admission contributes its declared
            // fuel — it was part of the queue when the shed decision
            // was made, and nothing tighter was proved for it.
            let mut admitted_fuel: HashMap<usize, u64> = HashMap::new();
            for (i, adm) in &jobs {
                let fuel = adm
                    .limits
                    .fuel
                    .or_else(|| adm.compiled.cert.fuel_value())
                    .unwrap_or(0);
                admitted_fuel.insert(*i, fuel);
            }
            let backlog_ops: u64 = schedule
                .order
                .iter()
                .map(|&i| {
                    admitted_fuel
                        .get(&i)
                        .copied()
                        .unwrap_or_else(|| reqs[i].fuel.unwrap_or(0))
                })
                .sum();
            for &i in &schedule.shed {
                self.shed.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::failed(
                    &reqs[i].id,
                    Status::Overloaded,
                    None,
                    format!(
                        "shed: queue depth {} past watermark {}",
                        reqs.len(),
                        self.options.shed_watermark
                    ),
                );
                resp.tenant = reqs[i].tenant.clone();
                resp.retry_after_ops = Some(backlog_ops);
                slots[i] = Some(resp);
            }
        }
        let workers = workers.max(1).min(reqs.len().max(1));
        if workers == 1 {
            for (i, adm) in jobs {
                slots[i] = Some(self.execute(adm));
            }
        } else {
            let queue: Vec<Mutex<Option<(usize, Admitted)>>> =
                jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
            let next = AtomicUsize::new(0);
            let done = Mutex::new(&mut slots);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= queue.len() {
                            break;
                        }
                        let job = queue[k].lock().expect("job lock").take();
                        if let Some((i, adm)) = job {
                            let resp = self.execute(adm);
                            done.lock().expect("slot lock")[i] = Some(resp);
                        }
                    });
                }
            });
        }
        slots
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECURRENCE: &str = "param n;\nletrec* a = array (1,n) \
        ([ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]);\n";

    fn req(id: &str, n: i64) -> Request {
        let mut r = Request::new(id, RECURRENCE);
        r.params.push(("n".to_string(), n));
        r
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let server = Server::new(ServeOptions::default());
        let a = server.handle(&req("a", 16));
        let b = server.handle(&req("b", 16));
        assert_eq!(a.status, Status::Ok);
        assert_eq!(a.cache_hit, Some(false));
        assert_eq!(b.cache_hit, Some(true));
        assert_eq!(a.answer_digest, b.answer_digest);
        assert_eq!(a.counters_digest, b.counters_digest);
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.live, 1);
    }

    #[test]
    fn different_params_compile_separately() {
        let server = Server::new(ServeOptions::default());
        let a = server.handle(&req("a", 16));
        let b = server.handle(&req("b", 17));
        assert_ne!(a.answer_digest, b.answer_digest);
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
    }

    #[test]
    fn over_budget_requests_are_rejected_at_admission() {
        let server = Server::new(ServeOptions {
            ceiling: Limits {
                fuel: Some(100),
                mem_bytes: None,
            },
            ..ServeOptions::default()
        });
        let mut r = req("big", 16);
        r.fuel = Some(1_000);
        let resp = server.handle(&r);
        assert_eq!(resp.status, Status::Rejected);
        assert!(resp.error.as_deref().unwrap().contains("ceiling"));
        // Nothing held: a fitting request still runs.
        let mut ok = req("small", 16);
        ok.fuel = Some(100);
        assert_eq!(server.handle(&ok).status, Status::Ok);
    }

    #[test]
    fn deadline_without_governor_is_rejected() {
        let server = Server::new(ServeOptions::default());
        let mut r = req("d", 16);
        r.deadline_ms = Some(5);
        let resp = server.handle(&r);
        assert_eq!(resp.status, Status::Rejected);
    }

    #[test]
    fn deadline_converts_to_fuel_deterministically() {
        let server = Server::new(ServeOptions {
            deadline: Some(DeadlineGovernor::with_rate(10)),
            ..ServeOptions::default()
        });
        // 2 ms × 10 ops/ms = 20 fuel: not enough for n=1000 — and the
        // recurrence has an exact certificate (n-1 = 999 fuel), so the
        // shortfall is proved at admission, before any execution.
        let mut r = req("d", 1000);
        r.deadline_ms = Some(2);
        let resp = server.handle(&r);
        assert_eq!(resp.status, Status::OverCertificate);
        assert!(resp.error.as_deref().unwrap().contains("fuel budget 20"));
        // Same deadline, tiny program: plenty.
        let mut ok = req("ok", 8);
        ok.deadline_ms = Some(2);
        assert_eq!(server.handle(&ok).status, Status::Ok);
    }

    #[test]
    fn exact_certificates_reject_before_execution() {
        let server = Server::new(ServeOptions::default());
        // RECURRENCE at n=16 certifies fuel n-1 = 15 and mem 8n = 128.
        let mut short_fuel = req("f", 16);
        short_fuel.fuel = Some(10);
        let resp = server.handle(&short_fuel);
        assert_eq!(resp.status, Status::OverCertificate);
        assert_eq!(
            resp.error.as_deref(),
            Some("over certificate: fuel budget 10 < certified cost 15")
        );
        // Never executed: no digests, no verdicts, no fuel accounting.
        assert_eq!(resp.answer_digest, None);
        assert_eq!(resp.counters_digest, None);
        assert_eq!(resp.verdicts, None);
        assert_eq!(resp.fuel_left, None);

        let mut short_mem = req("m", 16);
        short_mem.mem_bytes = Some(100);
        let resp = server.handle(&short_mem);
        assert_eq!(resp.status, Status::OverCertificate);
        assert_eq!(
            resp.error.as_deref(),
            Some("over certificate: mem budget 100 < certified peak 128 bytes")
        );

        // Budgets exactly at the certificate run — and run to zero.
        let mut at = req("at", 16);
        at.fuel = Some(15);
        at.mem_bytes = Some(128);
        let resp = server.handle(&at);
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
        assert_eq!(resp.fuel_left, Some(0), "the certificate is tight");

        let cs = server.cert_stats();
        assert_eq!((cs.certified, cs.open, cs.rejected), (3, 0, 2));
    }

    #[test]
    fn uncapped_requests_admit_all_or_nothing_at_their_certificate() {
        let server = Server::new(ServeOptions {
            ceiling: Limits {
                fuel: Some(100),
                mem_bytes: None,
            },
            ..ServeOptions::default()
        });
        // No declared fuel under a fuel-capped ceiling: admission
        // draws exactly the certified cost from the pool instead of
        // lazy blocks — all-or-nothing, and tight.
        let resp = server.handle(&req("u", 16));
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
        assert_eq!(resp.fuel_left, Some(0));
        assert_eq!(server.ceiling().fuel_available(), 100 - 15);
        // The pool has 85 left; a certified 15-op run still fits. (A
        // fresh seed keeps it a result-cache miss — a hit would spend
        // nothing and leave the pool at 85.)
        let mut u2 = req("u2", 16);
        u2.seed = 7;
        assert_eq!(server.handle(&u2).status, Status::Ok);
        assert_eq!(server.ceiling().fuel_available(), 100 - 30);
        // … and one certified past the remaining pool is rejected by
        // the ceiling at admission, not run partially.
        let big = req("big", 1000); // certifies 999 > 70 remaining
        let resp = server.handle(&big);
        assert_eq!(resp.status, Status::Rejected);
        assert!(resp.error.as_deref().unwrap().contains("ceiling"));
    }

    #[test]
    fn open_certificates_fall_back_to_the_metered_path() {
        // Mutually recursive groups are thunked: demand-driven cost,
        // so the certificate is open and starved budgets surface as
        // plain runtime limits, not certificate rejections.
        const MUTUAL: &str = "param n;\nletrec* a = array (1,n) \
            ([ 1 := 1 ] ++ [ i := b!(i-1) + 1 | i <- [2..n] ])\n\
            and b = array (1,n) [ i := a!i * 2 | i <- [1..n] ];\n";
        let server = Server::new(ServeOptions::default());
        let mut r = Request::new("open", MUTUAL);
        r.params.push(("n".to_string(), 64));
        r.fuel = Some(1);
        let resp = server.handle(&r);
        assert_eq!(resp.status, Status::Limit, "{:?}", resp.error);
        let cs = server.cert_stats();
        assert_eq!((cs.certified, cs.open, cs.rejected), (0, 1, 0));
    }

    #[test]
    fn shed_hint_prices_uncapped_survivors_by_certificate() {
        let server = Server::new(ServeOptions {
            shed_watermark: 3,
            ..ServeOptions::default()
        });
        // Four undeclared-budget requests from one tenant, one from
        // another: two shed. Under an uncapped ceiling the survivors
        // run meterless — but their certificates still price the
        // backlog, so the hint is 3 × (n-1) instead of 0.
        let mut reqs: Vec<Request> = (0..4)
            .map(|i| {
                let mut r = req(&format!("a{i}"), 16);
                r.tenant = Some("a".to_string());
                r
            })
            .collect();
        let mut b = req("b0", 16);
        b.tenant = Some("b".to_string());
        reqs.push(b);
        let schedule = Server::predicted_schedule(&reqs, 3);
        assert_eq!(schedule.shed, vec![2, 3]);
        let out = server.run_batch(&reqs, 2);
        for &i in &schedule.shed {
            assert_eq!(out[i].status, Status::Overloaded);
            assert_eq!(out[i].retry_after_ops, Some(15 * 3));
        }
    }

    #[test]
    fn batch_preserves_queue_order_and_ids() {
        let server = Server::new(ServeOptions::default());
        let reqs: Vec<Request> = (0..6).map(|i| req(&format!("r{i}"), 8 + i)).collect();
        let out = server.run_batch(&reqs, 3);
        assert_eq!(out.len(), 6);
        for (i, resp) in out.iter().enumerate() {
            assert_eq!(resp.id, format!("r{i}"));
            assert_eq!(resp.status, Status::Ok);
        }
    }

    #[test]
    fn request_json_round_trip() {
        let wire = r#"{"id":"r1","source":"param n;","params":{"n":4},
            "fuel":50,"mem_bytes":4096,"deadline_ms":7,"seed":9,
            "engine":"tape","mode":"thunked","tenant":"acme","weight":3}"#;
        let req = Request::from_json(&json::parse(wire).unwrap()).unwrap();
        assert_eq!(req.id, "r1");
        assert_eq!(req.params, vec![("n".to_string(), 4)]);
        assert_eq!(req.fuel, Some(50));
        assert_eq!(req.mem_bytes, Some(4096));
        assert_eq!(req.deadline_ms, Some(7));
        assert_eq!(req.seed, 9);
        assert_eq!(req.engine, Some(Engine::Tape));
        assert_eq!(req.mode, Some(ExecMode::ForceThunked));
        assert_eq!(req.tenant.as_deref(), Some("acme"));
        assert_eq!(req.weight, Some(3));
        // `to_json` is the exact inverse.
        let back = Request::from_json(&req.to_json()).unwrap();
        assert_eq!(format!("{:?}", back), format!("{:?}", req));
        // `priority` aliases `weight`; zero weights are malformed.
        let alias = json::parse(r#"{"id":"p","source":"x","priority":5}"#).unwrap();
        assert_eq!(Request::from_json(&alias).unwrap().weight, Some(5));
        let zero = json::parse(r#"{"id":"p","source":"x","weight":0}"#).unwrap();
        assert!(Request::from_json(&zero).is_err());
    }

    #[test]
    fn batch_admits_in_fair_order_and_stamps_ordinals() {
        let server = Server::new(ServeOptions::default());
        // Tenant a floods 4 requests ahead of b's 2; weights equal, so
        // the fair schedule interleaves them: a0 b4 a1 b5 a2 a3.
        let mut reqs: Vec<Request> = (0..4)
            .map(|i| {
                let mut r = req(&format!("a{i}"), 8);
                r.tenant = Some("a".to_string());
                r
            })
            .collect();
        for i in 0..2 {
            let mut r = req(&format!("b{i}"), 8);
            r.tenant = Some("b".to_string());
            reqs.push(r);
        }
        let predicted = Server::predicted_order(&reqs);
        assert_eq!(predicted, vec![0, 4, 1, 5, 2, 3]);
        let out = server.run_batch(&reqs, 2);
        // Responses in input order; ordinals realize the prediction.
        let mut realized: Vec<usize> = (0..reqs.len()).collect();
        realized.sort_by_key(|&i| out[i].admitted.expect("all admitted"));
        assert_eq!(realized, predicted);
        for (i, resp) in out.iter().enumerate() {
            assert_eq!(resp.id, reqs[i].id);
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.tenant, reqs[i].tenant);
        }
    }

    #[test]
    fn response_json_has_the_full_schema() {
        let server = Server::new(ServeOptions::default());
        let resp = server.handle(&req("a", 8));
        let j = resp.to_json();
        for key in [
            "id",
            "status",
            "tenant",
            "admitted",
            "cache",
            "evictions",
            "result_cache",
            "delta_elems",
            "answer_digest",
            "fuel_left",
            "engine_faults",
            "counters_digest",
            "verdicts",
            "attempts",
            "retry_after_ops",
            "error",
        ] {
            assert!(j.get(key).is_some(), "missing `{key}` in {j}");
        }
        assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(j.get("attempts").unwrap().as_u64(), Some(1));
        let v = j.get("verdicts").unwrap();
        assert_eq!(v.get("thunkless").unwrap().as_u64(), Some(1));
    }

    /// A delta-eligible kernel: `ui`/`uv` touch only the trailing
    /// `bigupd`, so sliding them reuses the cached prefix.
    const POKE: &str = "param n; param ui; param uv;\n\
        input a (1,n);\n\
        b = bigupd a [ ui := uv / 10 ];\n\
        result b;\n";

    fn poke(id: &str, n: i64, ui: i64, uv: i64) -> Request {
        let mut r = Request::new(id, POKE);
        r.params.push(("n".to_string(), n));
        r.params.push(("ui".to_string(), ui));
        r.params.push(("uv".to_string(), uv));
        r
    }

    #[test]
    fn repeat_requests_hit_the_result_cache() {
        let server = Server::new(ServeOptions::default());
        let a = server.handle(&req("a", 16));
        let b = server.handle(&req("b", 16));
        assert_eq!(a.result_cache, Some(ResultClass::Miss));
        assert_eq!(b.result_cache, Some(ResultClass::Hit));
        assert_eq!(b.delta_elems, None);
        assert_eq!(a.answer_digest, b.answer_digest);
        assert_eq!(a.counters_digest, b.counters_digest);
        assert_eq!(a.fuel_left, b.fuel_left);
        let rs = server.result_cache_stats();
        assert_eq!((rs.hits, rs.deltas, rs.misses), (1, 0, 1));
        assert_eq!(rs.live, 1);
    }

    #[test]
    fn result_cache_cap_zero_bypasses() {
        let server = Server::new(ServeOptions {
            result_cache_cap: 0,
            ..ServeOptions::default()
        });
        let a = server.handle(&req("a", 16));
        let b = server.handle(&req("b", 16));
        assert_eq!(a.result_cache, None);
        assert_eq!(b.result_cache, None);
        let rs = server.result_cache_stats();
        assert_eq!((rs.lookups, rs.hits, rs.misses), (0, 0, 0));
    }

    #[test]
    fn cached_hits_spend_no_pool_fuel() {
        let server = Server::new(ServeOptions {
            ceiling: Limits {
                fuel: Some(100),
                mem_bytes: None,
            },
            ..ServeOptions::default()
        });
        assert_eq!(server.handle(&req("a", 16)).status, Status::Ok);
        assert_eq!(server.ceiling().fuel_available(), 100 - 15);
        // The hit settles its untouched reservation back: the pool is
        // exactly where the first run left it.
        let b = server.handle(&req("b", 16));
        assert_eq!(b.result_cache, Some(ResultClass::Hit));
        assert_eq!(b.fuel_left, Some(0));
        assert_eq!(server.ceiling().fuel_available(), 100 - 15);
    }

    #[test]
    fn sliding_update_params_serve_deltas_byte_identically() {
        let server = Server::new(ServeOptions::default());
        let a = server.handle(&poke("a", 8, 3, 55));
        assert_eq!(a.status, Status::Ok, "{:?}", a.error);
        assert_eq!(a.result_cache, Some(ResultClass::Miss));
        let b = server.handle(&poke("b", 8, 5, 99));
        assert_eq!(b.status, Status::Ok, "{:?}", b.error);
        assert_eq!(b.result_cache, Some(ResultClass::Delta));
        assert_eq!(b.delta_elems, Some(1));
        // Byte-identical to a cold full run of the same request.
        let cold = Server::new(ServeOptions {
            result_cache_cap: 0,
            ..ServeOptions::default()
        });
        let c = cold.handle(&poke("c", 8, 5, 99));
        assert_eq!(c.result_cache, None);
        assert_eq!(b.answer_digest, c.answer_digest);
        assert_eq!(b.counters_digest, c.counters_digest);
        assert_eq!(b.fuel_left, c.fuel_left);
        let rs = server.result_cache_stats();
        assert_eq!((rs.hits, rs.deltas, rs.misses), (0, 1, 1));
    }

    #[test]
    fn delta_exhaustion_falls_back_to_the_metered_full_run() {
        // A fuel budget the *prefix alone* fits but the whole run does
        // not: the probe exhausts mid-delta, and the fallback full run
        // must reproduce the cold error class and text.
        let server = Server::new(ServeOptions::default());
        let mut warm = poke("warm", 8, 3, 55);
        warm.fuel = Some(1_000);
        assert_eq!(server.handle(&warm).status, Status::Ok);
        let mut tight = poke("tight", 8, 5, 99);
        tight.fuel = Some(8); // the input copy alone spends the budget
        let t = server.handle(&tight);
        let cold = Server::new(ServeOptions {
            result_cache_cap: 0,
            ..ServeOptions::default()
        });
        let mut ctl = poke("ctl", 8, 5, 99);
        ctl.fuel = Some(8);
        let c = cold.handle(&ctl);
        assert_eq!(t.status, c.status);
        assert_eq!(t.error, c.error);
        assert_eq!(t.fuel_left, c.fuel_left);
    }

    #[test]
    fn realized_classes_match_the_pure_prediction() {
        let reqs = vec![
            req("a", 16),
            poke("p1", 8, 3, 55),
            req("b", 16),
            poke("p2", 8, 5, 99),
            req("c", 17),
            poke("p3", 8, 3, 55),
        ];
        let options = ServeOptions::default();
        let predicted = Server::predicted_result_classes(&options, &reqs);
        assert_eq!(
            predicted,
            vec![
                Some(ResultClass::Miss),
                Some(ResultClass::Miss),
                Some(ResultClass::Hit),
                Some(ResultClass::Delta),
                Some(ResultClass::Miss),
                Some(ResultClass::Hit),
            ]
        );
        let server = Server::new(options);
        let realized: Vec<Option<ResultClass>> =
            reqs.iter().map(|r| server.handle(r).result_cache).collect();
        assert_eq!(realized, predicted);
    }

    #[test]
    fn fault_plans_bypass_the_result_cache() {
        let mut plan = FaultPlan::default();
        plan.points.push(hac_runtime::FaultPoint {
            region: 0,
            chunk: 0,
            kind: hac_runtime::FaultKind::Panic,
        });
        let server = Server::new(ServeOptions {
            faults: Some(plan),
            ..ServeOptions::default()
        });
        let resp = server.handle(&req("a", 16));
        assert_eq!(resp.result_cache, None);
        assert_eq!(server.result_cache_stats().lookups, 0);
    }

    #[test]
    fn batch_sheds_past_the_watermark_with_a_backlog_hint() {
        let server = Server::new(ServeOptions {
            shed_watermark: 3,
            ..ServeOptions::default()
        });
        // Tenant a floods 4 requests, b sends 1: depth 5 is 2 past the
        // watermark, and a (the diluted share) loses its two newest.
        let mut reqs: Vec<Request> = (0..4)
            .map(|i| {
                let mut r = req(&format!("a{i}"), 8);
                r.tenant = Some("a".to_string());
                r.fuel = Some(1_000);
                r
            })
            .collect();
        let mut b = req("b0", 8);
        b.tenant = Some("b".to_string());
        b.fuel = Some(500);
        reqs.push(b);
        let schedule = Server::predicted_schedule(&reqs, 3);
        assert_eq!(schedule.shed, vec![2, 3]);
        let out = server.run_batch(&reqs, 2);
        for &i in &schedule.shed {
            assert_eq!(out[i].status, Status::Overloaded, "{}", out[i].id);
            assert_eq!(out[i].admitted, None, "shed before admission");
            // The hint is the surviving backlog's declared fuel.
            assert_eq!(out[i].retry_after_ops, Some(1_000 + 1_000 + 500));
            assert_eq!(out[i].tenant.as_deref(), Some("a"));
        }
        assert_eq!(server.server_stats().shed, 2);
        // Survivors are byte-identical to a batch of only the
        // survivors on a fresh server — the shed never happened, as
        // far as they can tell.
        let survivors: Vec<usize> = (0..reqs.len())
            .filter(|i| !schedule.shed.contains(i))
            .collect();
        let alone: Vec<Request> = survivors.iter().map(|&i| reqs[i].clone()).collect();
        let fresh = Server::new(ServeOptions {
            shed_watermark: 3,
            ..ServeOptions::default()
        });
        let alone_out = fresh.run_batch(&alone, 2);
        for (k, &i) in survivors.iter().enumerate() {
            assert_eq!(
                out[i].to_json().to_string(),
                alone_out[k].to_json().to_string()
            );
        }
        assert_eq!(fresh.server_stats().shed, 0);
    }

    #[test]
    fn watermark_zero_never_sheds() {
        let server = Server::new(ServeOptions::default());
        let reqs: Vec<Request> = (0..8).map(|i| req(&format!("r{i}"), 8)).collect();
        let out = server.run_batch(&reqs, 2);
        assert!(out.iter().all(|r| r.status == Status::Ok));
        assert_eq!(server.server_stats().shed, 0);
    }

    #[test]
    fn engine_fault_retry_restores_the_fault_free_outcome() {
        // An in-place update region (write set ∩ read set ≠ ∅) is not
        // retry-safe; with `nosnapshot` an injected worker panic
        // surfaces as an EngineFault the engine layer cannot absorb.
        let mut r = Request::new("s", hac_workloads::saxpy_source());
        r.params = vec![("m".to_string(), 4), ("n".to_string(), 64)];
        // The clean baseline pins an empty plan so an ambient
        // HAC_FAULT_PLAN (CI's fault-injection job) cannot leak
        // absorbed faults into its counters digest.
        let clean_server = Server::new(ServeOptions {
            threads: 2,
            faults: Some(FaultPlan::default()),
            ..ServeOptions::default()
        });
        let clean = clean_server.handle(&r);
        assert_eq!(clean.status, Status::Ok);
        assert_eq!(clean.attempts, 1);

        let faulty = ServeOptions {
            threads: 2,
            faults: Some(FaultPlan::parse("nosnapshot,r0c0:panic").unwrap()),
            ..ServeOptions::default()
        };

        // Budget 0: the fault surfaces as a runtime error.
        let no_retry = Server::new(ServeOptions {
            retry_budget: 0,
            ..faulty.clone()
        });
        let resp = no_retry.handle(&r);
        assert_eq!(resp.status, Status::RuntimeError);
        assert!(resp.error.as_deref().unwrap().contains("engine fault"));
        assert_eq!(resp.attempts, 1);
        assert_eq!(no_retry.server_stats().retried, 0);

        // Default budget (1): the retry runs the empty plan and the
        // outcome is the clean one, except `attempts`.
        let retrying = Server::new(faulty.clone());
        let resp = retrying.handle(&r);
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.attempts, 2);
        assert_eq!(resp.answer_digest, clean.answer_digest);
        assert_eq!(resp.counters_digest, clean.counters_digest);
        assert_eq!(retrying.server_stats().retried, 1);

        // A request's own budget overrides the server default.
        let server = Server::new(faulty);
        let mut stubborn = r.clone();
        stubborn.retry_budget = Some(0);
        assert_eq!(server.handle(&stubborn).status, Status::RuntimeError);
    }
}
