//! Weighted fair admission scheduling.
//!
//! The server admits requests in an order computed by a stride (WFQ)
//! scheduler rather than raw queue order, so a tenant flooding the
//! queue is *throttled* — interleaved in proportion to its weight —
//! instead of monopolizing the pool until it exhausts. The schedule is
//! a **pure function of the request list and the tenant weights**:
//! virtual time is counted in admissions, never in seconds, and every
//! tie breaks on the arrival ordinal, so the same request list always
//! yields the same admission order on every machine and at every
//! worker count.
//!
//! The rule: each tenant `t` with weight `w_t` has a virtual finish
//! time `F_t = (admitted_t + 1) / w_t` for its next pending request.
//! The scheduler repeatedly admits the earliest-arrived pending
//! request of the tenant with the smallest `F_t` (fractions compared
//! exactly by cross-multiplication — no floats, no drift), then
//! advances that tenant's count. Backlogged tenants with weights
//! `w_1 : w_2` therefore interleave so that after any prefix of `k`
//! admissions each tenant has `k·w_i / Σw` requests admitted, give or
//! take one — the classical stride-scheduling fairness bound.
//!
//! Requests that name no tenant all fall into the shared default
//! tenant `""`. A tenant's weight is the weight declared on its
//! **first-arriving** request (later declarations are ignored), so
//! weights are also a pure function of the list.

/// Weight used when a request declares none.
pub const DEFAULT_WEIGHT: u64 = 1;

/// One tenant's scheduling state while an order is being computed.
struct TenantState {
    weight: u64,
    admitted: u64,
    /// Arrival ordinals of this tenant's pending requests, in arrival
    /// order (consumed front to back).
    pending: std::collections::VecDeque<usize>,
}

/// Compute the fair admission order for `arrivals`, given per-request
/// `(tenant, declared_weight)` pairs in arrival order. Returns a
/// permutation of `0..arrivals.len()`: the arrival ordinals in the
/// order they should be admitted.
///
/// Weights are clamped to at least 1; a tenant's effective weight is
/// taken from its first-arriving request. With every request in one
/// tenant (or every tenant at equal weight and one request each) the
/// result degenerates to arrival order, so untagged workloads behave
/// exactly as the old queue-order admission did.
pub fn fair_order(arrivals: &[(&str, u64)]) -> Vec<usize> {
    let mut tenants: Vec<TenantState> = Vec::new();
    let mut index: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (ordinal, (tenant, weight)) in arrivals.iter().enumerate() {
        let slot = *index.entry(tenant).or_insert_with(|| {
            tenants.push(TenantState {
                weight: (*weight).max(1),
                admitted: 0,
                pending: std::collections::VecDeque::new(),
            });
            tenants.len() - 1
        });
        tenants[slot].pending.push_back(ordinal);
    }
    let mut order = Vec::with_capacity(arrivals.len());
    for _ in 0..arrivals.len() {
        // The candidate with the smallest virtual finish time
        // (admitted+1)/weight; ties go to the earliest-arrived pending
        // request. Compared exactly: a/wa < b/wb  ⇔  a·wb < b·wa.
        let mut best: Option<(u128, u64, usize, usize)> = None;
        for (slot, t) in tenants.iter().enumerate() {
            let Some(&head) = t.pending.front() else {
                continue;
            };
            let finish_num = u128::from(t.admitted + 1);
            let key = (finish_num, t.weight, head);
            let better = match best {
                None => true,
                Some((bn, bw, bhead, _)) => {
                    let lhs = key.0 * u128::from(bw);
                    let rhs = bn * u128::from(t.weight);
                    lhs < rhs || (lhs == rhs && head < bhead)
                }
            };
            if better {
                best = Some((key.0, key.1, head, slot));
            }
        }
        let (_, _, head, slot) = best.expect("a pending request remains");
        tenants[slot].pending.pop_front();
        tenants[slot].admitted += 1;
        order.push(head);
    }
    order
}

/// A fair schedule with overload shedding applied: the admission
/// `order` over the surviving arrivals, and the `shed` set — both
/// permutation-disjoint index lists into the original arrival list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Arrival ordinals admitted, in fair admission order.
    pub order: Vec<usize>,
    /// Arrival ordinals shed before admission, ascending.
    pub shed: Vec<usize>,
}

/// Compute the fair admission order for `arrivals` after shedding down
/// to `shed_watermark` pending requests (`0` disables shedding).
///
/// **Shed rule** — a pure function of the arrival list and the
/// watermark, so the simulator can predict shed sets exactly: while
/// more than `shed_watermark` arrivals remain, shed the **newest
/// pending arrival of the tenant with the lowest stride share per
/// pending request** — the tenant minimizing `weight / pending`,
/// compared exactly by cross-multiplication. A tenant flooding the
/// queue dilutes its own per-request share and therefore loses its
/// newest requests first; a light tenant's backlog is untouched until
/// the flooder has been pared back to parity. Ties break toward the
/// tenant holding the globally newest pending arrival, so the choice
/// is total. Survivors are then ordered by [`fair_order`] exactly as
/// if the shed requests had never arrived.
pub fn fair_schedule(arrivals: &[(&str, u64)], shed_watermark: usize) -> Schedule {
    let mut shed: Vec<usize> = Vec::new();
    if shed_watermark > 0 && arrivals.len() > shed_watermark {
        // Per-tenant pending stacks (newest last) and effective weights.
        let weights = tenant_weights(arrivals);
        let mut pending: Vec<(usize, Vec<usize>)> = weights
            .iter()
            .enumerate()
            .map(|(slot, _)| (slot, Vec::new()))
            .collect();
        for (ordinal, (tenant, _)) in arrivals.iter().enumerate() {
            let slot = weights
                .iter()
                .position(|(t, _)| t == tenant)
                .expect("tenant table covers every arrival");
            pending[slot].1.push(ordinal);
        }
        for _ in 0..arrivals.len() - shed_watermark {
            // victim tenant: min weight/pending, exact comparison
            // w_a/p_a < w_b/p_b  ⇔  w_a·p_b < w_b·p_a; ties go to the
            // tenant whose newest pending arrival is globally newest.
            let mut victim: Option<(u64, usize, usize)> = None; // (weight, pending, slot)
            for &(slot, ref stack) in &pending {
                if stack.is_empty() {
                    continue;
                }
                let w = weights[slot].1;
                let p = stack.len();
                let newest = *stack.last().expect("nonempty");
                let better = match victim {
                    None => true,
                    Some((bw, bp, bslot)) => {
                        let lhs = u128::from(w) * bp as u128;
                        let rhs = u128::from(bw) * p as u128;
                        let b_newest = *pending
                            .iter()
                            .find(|(s, _)| *s == bslot)
                            .expect("slot exists")
                            .1
                            .last()
                            .expect("nonempty");
                        lhs < rhs || (lhs == rhs && newest > b_newest)
                    }
                };
                if better {
                    victim = Some((w, p, slot));
                }
            }
            let (_, _, slot) = victim.expect("watermark < arrivals ⇒ someone pending");
            let stack = &mut pending
                .iter_mut()
                .find(|(s, _)| *s == slot)
                .expect("slot exists")
                .1;
            shed.push(stack.pop().expect("nonempty"));
        }
        shed.sort_unstable();
    }
    // Order the survivors exactly as if the shed requests never
    // arrived: filter, schedule, map back to original ordinals.
    let mut survivors: Vec<usize> = Vec::with_capacity(arrivals.len() - shed.len());
    let mut filtered: Vec<(&str, u64)> = Vec::with_capacity(arrivals.len() - shed.len());
    for (ordinal, arr) in arrivals.iter().enumerate() {
        if shed.binary_search(&ordinal).is_err() {
            survivors.push(ordinal);
            filtered.push(*arr);
        }
    }
    let order = fair_order(&filtered)
        .into_iter()
        .map(|i| survivors[i])
        .collect();
    Schedule { order, shed }
}

/// The effective `(tenant, weight)` table for `arrivals` — each tenant
/// once, in first-arrival order, with its effective (first-declared,
/// clamped) weight. Useful for reporting and golden files.
pub fn tenant_weights<'a>(arrivals: &[(&'a str, u64)]) -> Vec<(&'a str, u64)> {
    let mut seen: Vec<(&str, u64)> = Vec::new();
    for (tenant, weight) in arrivals {
        if !seen.iter().any(|(t, _)| t == tenant) {
            seen.push((tenant, (*weight).max(1)));
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untagged_requests_keep_arrival_order() {
        let arrivals: Vec<(&str, u64)> = (0..6).map(|_| ("", 1)).collect();
        assert_eq!(fair_order(&arrivals), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn equal_weights_round_robin_by_arrival() {
        // a a a b b b: once both are backlogged the schedule
        // interleaves them, starting with the earlier arrival.
        let arrivals = vec![("a", 1), ("a", 1), ("a", 1), ("b", 1), ("b", 1), ("b", 1)];
        assert_eq!(fair_order(&arrivals), vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn heavier_tenant_gets_proportionally_more_slots() {
        // Tenant a at weight 2, b at weight 1, both backlogged with 6
        // requests: every prefix holds roughly twice as many a's.
        let mut arrivals = Vec::new();
        for _ in 0..6 {
            arrivals.push(("a", 2));
            arrivals.push(("b", 1));
        }
        let order = fair_order(&arrivals);
        let mut a_seen = 0usize;
        let mut b_seen = 0usize;
        for (k, &i) in order.iter().enumerate() {
            if i % 2 == 0 {
                a_seen += 1;
            } else {
                b_seen += 1;
            }
            let k = k + 1;
            // While both tenants stay backlogged, admitted_a stays
            // within one request of the 2/3 ideal (once one queue
            // drains the other rightly takes every remaining slot).
            if a_seen < 6 && b_seen < 6 {
                assert!(
                    (a_seen * 3).abs_diff(k * 2) <= 3,
                    "prefix {k}: a={a_seen} b={b_seen}"
                );
            }
        }
        assert_eq!(a_seen, 6);
        assert_eq!(b_seen, 6);
    }

    #[test]
    fn first_declared_weight_wins() {
        let arrivals = vec![("a", 3), ("a", 100), ("b", 1)];
        assert_eq!(tenant_weights(&arrivals), vec![("a", 3), ("b", 1)]);
        // Weight 0 clamps to 1.
        let arrivals = vec![("z", 0)];
        assert_eq!(tenant_weights(&arrivals), vec![("z", 1)]);
    }

    #[test]
    fn shedding_disabled_at_watermark_zero_or_under_capacity() {
        let arrivals = vec![("a", 1), ("b", 1), ("a", 1)];
        let s = fair_schedule(&arrivals, 0);
        assert!(s.shed.is_empty());
        assert_eq!(s.order, fair_order(&arrivals));
        let s = fair_schedule(&arrivals, 3);
        assert!(s.shed.is_empty());
        let s = fair_schedule(&arrivals, 8);
        assert!(s.shed.is_empty());
    }

    #[test]
    fn flooding_tenant_sheds_its_newest_arrivals_first() {
        // Tenant a floods 6 requests, b sends 2; equal weights, so a's
        // per-request share (1/6) is lowest and a's newest arrivals
        // are shed until parity.
        let mut arrivals: Vec<(&str, u64)> = (0..6).map(|_| ("a", 1)).collect();
        arrivals.push(("b", 1));
        arrivals.push(("b", 1));
        let s = fair_schedule(&arrivals, 5);
        assert_eq!(s.shed, vec![3, 4, 5], "a's newest arrivals go first");
        assert_eq!(s.order.len(), 5);
        // Survivors are ordered exactly as if the shed never arrived.
        let survivors = vec![("a", 1), ("a", 1), ("a", 1), ("b", 1), ("b", 1)];
        let want: Vec<usize> = fair_order(&survivors)
            .into_iter()
            .map(|i| [0, 1, 2, 6, 7][i])
            .collect();
        assert_eq!(s.order, want);
    }

    #[test]
    fn heavier_tenant_keeps_more_of_its_backlog() {
        // a (weight 3) and b (weight 1), 4 requests each, watermark 4:
        // b's share per pending request is lower throughout, so b
        // sheds until its backlog is small enough for the ratio to
        // flip (3/4 vs 1/p flips at p=1: 3·p < 1·4 ⇔ p < 4/3).
        let mut arrivals: Vec<(&str, u64)> = Vec::new();
        for _ in 0..4 {
            arrivals.push(("a", 3));
            arrivals.push(("b", 1));
        }
        let s = fair_schedule(&arrivals, 4);
        let shed_b = s.shed.iter().filter(|&&i| i % 2 == 1).count();
        let shed_a = s.shed.len() - shed_b;
        assert_eq!(s.shed.len(), 4);
        assert_eq!((shed_a, shed_b), (1, 3), "weight 3:1 ⇒ shed ratio ~1:3");
        let mut all: Vec<usize> = s.order.iter().chain(&s.shed).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>(), "partition is exact");
    }

    #[test]
    fn shed_set_is_a_pure_function_of_the_list() {
        let arrivals = vec![
            ("x", 5),
            ("y", 2),
            ("x", 5),
            ("", 1),
            ("y", 2),
            ("x", 5),
            ("", 1),
        ];
        for watermark in 0..=arrivals.len() + 1 {
            let a = fair_schedule(&arrivals, watermark);
            let b = fair_schedule(&arrivals, watermark);
            assert_eq!(a, b, "watermark {watermark}");
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_list() {
        let arrivals = vec![
            ("x", 5),
            ("y", 2),
            ("x", 5),
            ("", 1),
            ("y", 2),
            ("x", 5),
            ("", 1),
        ];
        let a = fair_order(&arrivals);
        let b = fair_order(&arrivals);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..arrivals.len()).collect::<Vec<_>>());
    }
}
