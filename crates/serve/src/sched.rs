//! Weighted fair admission scheduling.
//!
//! The server admits requests in an order computed by a stride (WFQ)
//! scheduler rather than raw queue order, so a tenant flooding the
//! queue is *throttled* — interleaved in proportion to its weight —
//! instead of monopolizing the pool until it exhausts. The schedule is
//! a **pure function of the request list and the tenant weights**:
//! virtual time is counted in admissions, never in seconds, and every
//! tie breaks on the arrival ordinal, so the same request list always
//! yields the same admission order on every machine and at every
//! worker count.
//!
//! The rule: each tenant `t` with weight `w_t` has a virtual finish
//! time `F_t = (admitted_t + 1) / w_t` for its next pending request.
//! The scheduler repeatedly admits the earliest-arrived pending
//! request of the tenant with the smallest `F_t` (fractions compared
//! exactly by cross-multiplication — no floats, no drift), then
//! advances that tenant's count. Backlogged tenants with weights
//! `w_1 : w_2` therefore interleave so that after any prefix of `k`
//! admissions each tenant has `k·w_i / Σw` requests admitted, give or
//! take one — the classical stride-scheduling fairness bound.
//!
//! Requests that name no tenant all fall into the shared default
//! tenant `""`. A tenant's weight is the weight declared on its
//! **first-arriving** request (later declarations are ignored), so
//! weights are also a pure function of the list.

/// Weight used when a request declares none.
pub const DEFAULT_WEIGHT: u64 = 1;

/// One tenant's scheduling state while an order is being computed.
struct TenantState {
    weight: u64,
    admitted: u64,
    /// Arrival ordinals of this tenant's pending requests, in arrival
    /// order (consumed front to back).
    pending: std::collections::VecDeque<usize>,
}

/// Compute the fair admission order for `arrivals`, given per-request
/// `(tenant, declared_weight)` pairs in arrival order. Returns a
/// permutation of `0..arrivals.len()`: the arrival ordinals in the
/// order they should be admitted.
///
/// Weights are clamped to at least 1; a tenant's effective weight is
/// taken from its first-arriving request. With every request in one
/// tenant (or every tenant at equal weight and one request each) the
/// result degenerates to arrival order, so untagged workloads behave
/// exactly as the old queue-order admission did.
pub fn fair_order(arrivals: &[(&str, u64)]) -> Vec<usize> {
    let mut tenants: Vec<TenantState> = Vec::new();
    let mut index: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (ordinal, (tenant, weight)) in arrivals.iter().enumerate() {
        let slot = *index.entry(tenant).or_insert_with(|| {
            tenants.push(TenantState {
                weight: (*weight).max(1),
                admitted: 0,
                pending: std::collections::VecDeque::new(),
            });
            tenants.len() - 1
        });
        tenants[slot].pending.push_back(ordinal);
    }
    let mut order = Vec::with_capacity(arrivals.len());
    for _ in 0..arrivals.len() {
        // The candidate with the smallest virtual finish time
        // (admitted+1)/weight; ties go to the earliest-arrived pending
        // request. Compared exactly: a/wa < b/wb  ⇔  a·wb < b·wa.
        let mut best: Option<(u128, u64, usize, usize)> = None;
        for (slot, t) in tenants.iter().enumerate() {
            let Some(&head) = t.pending.front() else {
                continue;
            };
            let finish_num = u128::from(t.admitted + 1);
            let key = (finish_num, t.weight, head);
            let better = match best {
                None => true,
                Some((bn, bw, bhead, _)) => {
                    let lhs = key.0 * u128::from(bw);
                    let rhs = bn * u128::from(t.weight);
                    lhs < rhs || (lhs == rhs && head < bhead)
                }
            };
            if better {
                best = Some((key.0, key.1, head, slot));
            }
        }
        let (_, _, head, slot) = best.expect("a pending request remains");
        tenants[slot].pending.pop_front();
        tenants[slot].admitted += 1;
        order.push(head);
    }
    order
}

/// The effective `(tenant, weight)` table for `arrivals` — each tenant
/// once, in first-arrival order, with its effective (first-declared,
/// clamped) weight. Useful for reporting and golden files.
pub fn tenant_weights<'a>(arrivals: &[(&'a str, u64)]) -> Vec<(&'a str, u64)> {
    let mut seen: Vec<(&str, u64)> = Vec::new();
    for (tenant, weight) in arrivals {
        if !seen.iter().any(|(t, _)| t == tenant) {
            seen.push((tenant, (*weight).max(1)));
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untagged_requests_keep_arrival_order() {
        let arrivals: Vec<(&str, u64)> = (0..6).map(|_| ("", 1)).collect();
        assert_eq!(fair_order(&arrivals), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn equal_weights_round_robin_by_arrival() {
        // a a a b b b: once both are backlogged the schedule
        // interleaves them, starting with the earlier arrival.
        let arrivals = vec![("a", 1), ("a", 1), ("a", 1), ("b", 1), ("b", 1), ("b", 1)];
        assert_eq!(fair_order(&arrivals), vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn heavier_tenant_gets_proportionally_more_slots() {
        // Tenant a at weight 2, b at weight 1, both backlogged with 6
        // requests: every prefix holds roughly twice as many a's.
        let mut arrivals = Vec::new();
        for _ in 0..6 {
            arrivals.push(("a", 2));
            arrivals.push(("b", 1));
        }
        let order = fair_order(&arrivals);
        let mut a_seen = 0usize;
        let mut b_seen = 0usize;
        for (k, &i) in order.iter().enumerate() {
            if i % 2 == 0 {
                a_seen += 1;
            } else {
                b_seen += 1;
            }
            let k = k + 1;
            // While both tenants stay backlogged, admitted_a stays
            // within one request of the 2/3 ideal (once one queue
            // drains the other rightly takes every remaining slot).
            if a_seen < 6 && b_seen < 6 {
                assert!(
                    (a_seen * 3).abs_diff(k * 2) <= 3,
                    "prefix {k}: a={a_seen} b={b_seen}"
                );
            }
        }
        assert_eq!(a_seen, 6);
        assert_eq!(b_seen, 6);
    }

    #[test]
    fn first_declared_weight_wins() {
        let arrivals = vec![("a", 3), ("a", 100), ("b", 1)];
        assert_eq!(tenant_weights(&arrivals), vec![("a", 3), ("b", 1)]);
        // Weight 0 clamps to 1.
        let arrivals = vec![("z", 0)];
        assert_eq!(tenant_weights(&arrivals), vec![("z", 1)]);
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_list() {
        let arrivals = vec![
            ("x", 5),
            ("y", 2),
            ("x", 5),
            ("", 1),
            ("y", 2),
            ("x", 5),
            ("", 1),
        ];
        let a = fair_order(&arrivals);
        let b = fair_order(&arrivals);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..arrivals.len()).collect::<Vec<_>>());
    }
}
