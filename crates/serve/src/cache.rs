//! A bounded, deterministically-evicting compiled-program cache.
//!
//! The unbounded `HashMap` the server used before this module was a
//! footgun: a tenant cycling unique programs grows the process without
//! limit. `ProgramCache` holds at most `cap` entries and evicts by a
//! **cost-aware LRU** rule whose clock is the *admission ordinal* —
//! the dense per-request counter handed out by
//! [`SharedCeiling::take_ordinal`](hac_runtime::governor::SharedCeiling::take_ordinal)
//! — never wall time. Eviction is therefore a pure function of the
//! request sequence: the same workload always evicts the same entries
//! in the same order, at any worker count (admission is sequential).
//!
//! The victim rule: evict the entry minimizing
//! `(last_used + cost, last_used, key)`, where `cost` is the number of
//! compiled units in the program — a deterministic proxy for how
//! expensive the entry is to rebuild. Costlier programs thus survive a
//! few ordinals longer than cheap ones touched at the same time, and
//! the final `key` component makes the choice total even for equal
//! scores.
//!
//! Evicting is never incorrect, only slower: a re-admitted evicted
//! program recompiles from the same source and parameters, and the
//! repo's determinism contract guarantees the rebuilt program behaves
//! bit-identically (the eviction proptests pin this).
//!
//! Each cached [`Compiled`] carries its cost certificate
//! (`Compiled::cert`), so a cache hit reuses the certificate along
//! with the tape — certificate admission never recompiles or re-derives
//! bounds on the hot path.

//! ## The materialized-result cache
//!
//! [`ResultCache`] lives next to the program cache and shares its
//! ordinal clock and victim rule, but caches *evaluated outcomes*:
//! full entries memoize a request's terminal response fields (digests,
//! fuel left, error class), and family entries snapshot the execution
//! state of a `bigupd`-rooted program just before its trailing update
//! so sliding-parameter requests replay only the update (the delta
//! path). Determinism is preserved by doing every membership change —
//! install and eviction — on the sequential admission path; execution
//! threads only *resolve* slots in place (`Pending → Ready/Failed`)
//! and never alter membership or recency. Family snapshots hold real
//! arrays, so their bytes are charged to the shared ceiling by the
//! server at install and refunded on eviction or failure
//! (`ResultCacheStats::resident_bytes` tracks the residency).

use std::collections::HashMap;
use std::sync::Arc;

use hac_core::pipeline::{Compiled, ExecState};

use crate::Status;

/// Counters over the cache's whole life. Reconciliation invariants,
/// enforced by the eviction proptests:
/// `hits + misses == lookups` and `insertions - evictions == live`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub lookups: u64,
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Entries currently resident.
    pub live: u64,
    /// The configured capacity (0 = unbounded).
    pub cap: u64,
}

#[derive(Debug)]
struct Entry {
    program: Arc<Compiled>,
    /// Admission ordinal of the last request that looked this entry up
    /// (or inserted it).
    last_used: u64,
    /// Rebuild-cost proxy: compiled unit count, clamped to ≥ 1.
    cost: u64,
}

/// The bounded cache. Not internally synchronized — the server wraps
/// it in a `Mutex` (lookups and insertions happen on the sequential
/// admission path, so the lock is uncontended in steady state).
#[derive(Debug)]
pub struct ProgramCache {
    cap: usize,
    entries: HashMap<u64, Entry>,
    stats: CacheStats,
}

impl ProgramCache {
    /// A cache holding at most `cap` entries; `cap == 0` means
    /// unbounded (the pre-eviction behavior, available via
    /// `--cache-cap 0` for embedders that key a small closed program
    /// set).
    pub fn new(cap: usize) -> ProgramCache {
        ProgramCache {
            cap,
            entries: HashMap::new(),
            stats: CacheStats {
                cap: cap as u64,
                ..CacheStats::default()
            },
        }
    }

    /// Look `key` up, stamping the entry's recency with `ordinal` on a
    /// hit.
    pub fn lookup(&mut self, key: u64, ordinal: u64) -> Option<Arc<Compiled>> {
        self.stats.lookups += 1;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = ordinal;
                self.stats.hits += 1;
                Some(Arc::clone(&e.program))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly compiled program under `key`, evicting as many
    /// victims as needed to respect the capacity. Returns how many
    /// entries were evicted (0 or 1 in steady state; more only after a
    /// capacity reconfiguration). Re-inserting an existing key
    /// refreshes it in place and never evicts.
    pub fn insert(&mut self, key: u64, program: Arc<Compiled>, ordinal: u64) -> u64 {
        let cost = (program.units.len() as u64).max(1);
        if let Some(e) = self.entries.get_mut(&key) {
            e.program = program;
            e.last_used = ordinal;
            e.cost = cost;
            return 0;
        }
        let mut evicted = 0;
        if self.cap > 0 {
            while self.entries.len() >= self.cap {
                let victim = self
                    .entries
                    .iter()
                    .map(|(k, e)| (e.last_used + e.cost, e.last_used, *k))
                    .min()
                    .expect("cap > 0 and len >= cap imply an entry");
                self.entries.remove(&victim.2);
                self.stats.evictions += 1;
                self.stats.live -= 1;
                evicted += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                program,
                last_used: ordinal,
                cost,
            },
        );
        self.stats.insertions += 1;
        self.stats.live += 1;
        evicted
    }

    /// A copy of the life-to-date counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counters over the result cache's whole life. `hits + deltas`
/// counts requests served without a full recomputation;
/// `hits + deltas + misses` equals the routed requests that reached
/// execution (bypassed requests never touch the cache).
/// `resident_bytes` is the memory held by family snapshots — the same
/// number charged against the shared ceiling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Admission-time full-key probes (one per routed request).
    pub lookups: u64,
    /// Requests served verbatim from a cached outcome.
    pub hits: u64,
    /// Requests served by replaying only the trailing update over a
    /// family snapshot.
    pub deltas: u64,
    /// Requests that ran the full pipeline (including every fallback).
    pub misses: u64,
    /// Slots resolved `Ready` by their filler.
    pub insertions: u64,
    /// Entries removed by the capacity rule.
    pub evictions: u64,
    /// Entries currently resident (full + family, any state).
    pub live: u64,
    /// The configured capacity (0 = result caching off).
    pub cap: u64,
    /// Bytes held by resident family snapshots.
    pub resident_bytes: u64,
}

/// A memoized terminal outcome: every response field that is a pure
/// function of the full result key. Limits are part of that key, so
/// error outcomes (exhaustions, runtime failures) cache as readily as
/// successes — a hit serves them byte-identically with no budget
/// re-checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedOutcome {
    pub status: Status,
    pub answer_digest: Option<String>,
    pub counters_digest: Option<String>,
    pub fuel_left: Option<u64>,
    pub engine_faults: u64,
    pub error: Option<String>,
}

/// A family snapshot: the execution state of a delta-eligible program
/// after every unit but the trailing update, plus what that prefix
/// charged, so a delta probe can run under `budget − prefix`.
#[derive(Debug)]
pub struct FamilyEntry {
    /// Arrays, scalars, and counters after the prefix (inputs
    /// included — the update reads them from here, never from the
    /// request).
    pub state: ExecState,
    /// Fuel the prefix charged under the filler's meter; `None` when
    /// the filler ran fuel-unlimited (unmeasurable — fuel-capped
    /// requests must then fall back to a full run).
    pub prefix_fuel: Option<u64>,
    /// Bytes the prefix charged; `None` when the filler ran
    /// mem-unlimited.
    pub prefix_mem: Option<u64>,
}

#[derive(Debug)]
enum FullState {
    Pending,
    Ready(Arc<CachedOutcome>),
    Failed,
}

#[derive(Debug)]
enum FamState {
    Pending,
    Ready(Arc<FamilyEntry>),
    Failed,
}

#[derive(Debug)]
struct FullSlot {
    state: FullState,
    /// Install token (the installer's admission ordinal): fills and
    /// fails only land when their token matches, so a filler whose
    /// slot was evicted and re-installed cannot resolve the newcomer.
    token: u64,
    last_used: u64,
    cost: u64,
}

#[derive(Debug)]
struct FamSlot {
    state: FamState,
    token: u64,
    last_used: u64,
    cost: u64,
    /// Ceiling bytes this slot holds (zeroed when a failure refunds
    /// them early, so eviction never double-refunds).
    bytes: u64,
}

/// What an admission-time probe (or an execution-time peek) found.
#[derive(Debug, Clone)]
pub enum FullProbe {
    Absent,
    /// A filler admitted earlier is still executing; `token`
    /// identifies that install so waiters never block on a
    /// later-admitted re-install.
    Pending {
        token: u64,
    },
    Ready(Arc<CachedOutcome>),
    Failed,
}

/// [`FullProbe`] for family slots.
#[derive(Debug, Clone)]
pub enum FamilyProbe {
    Absent,
    Pending { token: u64 },
    Ready(Arc<FamilyEntry>),
    Failed,
}

/// What an install displaced: evicted entry count plus any family
/// bytes freed (the server refunds them to the ceiling).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Evicted {
    pub entries: u64,
    pub bytes: u64,
}

/// The materialized-result cache: full outcomes and family snapshots
/// under one capacity, evicted by the program cache's cost-aware-LRU
/// rule on the shared admission-ordinal clock. Like [`ProgramCache`]
/// it is not internally synchronized; the server wraps it in a
/// `Mutex` paired with a `Condvar` for slot waiters.
///
/// Membership and recency change **only** through the admission-path
/// methods ([`ResultCache::probe_full`], [`ResultCache::install_full`],
/// [`ResultCache::probe_family`], [`ResultCache::install_family`]) —
/// eviction is therefore a pure function of the admission sequence.
/// Execution threads resolve slots with the fill/fail methods, which
/// change state in place and never touch membership.
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    full: HashMap<u64, FullSlot>,
    family: HashMap<u64, FamSlot>,
    stats: ResultCacheStats,
}

impl ResultCache {
    /// A cache holding at most `cap` entries (full + family combined).
    /// `cap == 0` disables result caching — the server bypasses the
    /// cache entirely, so a zero-cap instance only ever reports stats.
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            cap,
            full: HashMap::new(),
            family: HashMap::new(),
            stats: ResultCacheStats {
                cap: cap as u64,
                ..ResultCacheStats::default()
            },
        }
    }

    /// Admission-time probe of the full key: counts one lookup and
    /// stamps recency on `Ready`.
    pub fn probe_full(&mut self, key: u64, ordinal: u64) -> FullProbe {
        self.stats.lookups += 1;
        match self.full.get_mut(&key) {
            Some(slot) => {
                if let FullState::Ready(o) = &slot.state {
                    slot.last_used = ordinal;
                    return FullProbe::Ready(Arc::clone(o));
                }
                match &slot.state {
                    FullState::Pending => FullProbe::Pending { token: slot.token },
                    FullState::Failed => FullProbe::Failed,
                    FullState::Ready(_) => unreachable!(),
                }
            }
            None => FullProbe::Absent,
        }
    }

    /// Execution-time peek (no stats, no recency) for waiters parked
    /// on a `Pending` slot.
    pub fn peek_full(&self, key: u64) -> FullProbe {
        match self.full.get(&key) {
            Some(slot) => match &slot.state {
                FullState::Pending => FullProbe::Pending { token: slot.token },
                FullState::Ready(o) => FullProbe::Ready(Arc::clone(o)),
                FullState::Failed => FullProbe::Failed,
            },
            None => FullProbe::Absent,
        }
    }

    /// Install a `Pending` full slot: the installing request becomes
    /// the slot's filler. Replaces a `Failed` tombstone in place;
    /// inserting a new key first evicts to capacity.
    pub fn install_full(&mut self, key: u64, ordinal: u64, cost: u64) -> Evicted {
        let cost = cost.max(1);
        if let Some(slot) = self.full.get_mut(&key) {
            slot.state = FullState::Pending;
            slot.token = ordinal;
            slot.last_used = ordinal;
            slot.cost = cost;
            return Evicted::default();
        }
        let evicted = self.evict_to_cap();
        self.full.insert(
            key,
            FullSlot {
                state: FullState::Pending,
                token: ordinal,
                last_used: ordinal,
                cost,
            },
        );
        self.stats.live += 1;
        evicted
    }

    /// Resolve a `Pending` full slot to `Ready`. Lands only when the
    /// slot still exists, is pending, and carries `token` (otherwise
    /// the slot was evicted or re-installed and the fill is dropped).
    /// Returns whether it landed.
    pub fn fill_full(&mut self, key: u64, token: u64, outcome: Arc<CachedOutcome>) -> bool {
        match self.full.get_mut(&key) {
            Some(slot) if slot.token == token && matches!(slot.state, FullState::Pending) => {
                slot.state = FullState::Ready(outcome);
                self.stats.insertions += 1;
                true
            }
            _ => false,
        }
    }

    /// Resolve a `Pending` full slot to `Failed` (the filler died
    /// without an outcome). Token-gated like [`ResultCache::fill_full`].
    pub fn fail_full(&mut self, key: u64, token: u64) {
        if let Some(slot) = self.full.get_mut(&key) {
            if slot.token == token && matches!(slot.state, FullState::Pending) {
                slot.state = FullState::Failed;
            }
        }
    }

    /// Admission-time probe of a family key (no lookup count — the
    /// full-key probe already counted this request).
    pub fn probe_family(&mut self, fkey: u64, ordinal: u64) -> FamilyProbe {
        match self.family.get_mut(&fkey) {
            Some(slot) => {
                if let FamState::Ready(f) = &slot.state {
                    slot.last_used = ordinal;
                    return FamilyProbe::Ready(Arc::clone(f));
                }
                match &slot.state {
                    FamState::Pending => FamilyProbe::Pending { token: slot.token },
                    FamState::Failed => FamilyProbe::Failed,
                    FamState::Ready(_) => unreachable!(),
                }
            }
            None => FamilyProbe::Absent,
        }
    }

    /// Execution-time peek for delta waiters.
    pub fn peek_family(&self, fkey: u64) -> FamilyProbe {
        match self.family.get(&fkey) {
            Some(slot) => match &slot.state {
                FamState::Pending => FamilyProbe::Pending { token: slot.token },
                FamState::Ready(f) => FamilyProbe::Ready(Arc::clone(f)),
                FamState::Failed => FamilyProbe::Failed,
            },
            None => FamilyProbe::Absent,
        }
    }

    /// Install a `Pending` family slot holding `bytes` of (already
    /// ceiling-reserved) snapshot memory.
    pub fn install_family(&mut self, fkey: u64, ordinal: u64, cost: u64, bytes: u64) -> Evicted {
        let cost = cost.max(1);
        if let Some(slot) = self.family.get_mut(&fkey) {
            // Replacing a tombstone: its bytes were refunded when it
            // failed (or it never held any), so only the delta counts.
            let freed = slot.bytes;
            self.stats.resident_bytes -= freed;
            slot.state = FamState::Pending;
            slot.token = ordinal;
            slot.last_used = ordinal;
            slot.cost = cost;
            slot.bytes = bytes;
            self.stats.resident_bytes += bytes;
            return Evicted {
                entries: 0,
                bytes: freed,
            };
        }
        let evicted = self.evict_to_cap();
        self.family.insert(
            fkey,
            FamSlot {
                state: FamState::Pending,
                token: ordinal,
                last_used: ordinal,
                cost,
                bytes,
            },
        );
        self.stats.live += 1;
        self.stats.resident_bytes += bytes;
        evicted
    }

    /// Resolve a `Pending` family slot to `Ready`. Token-gated;
    /// returns whether it landed (a dropped fill wastes only the
    /// snapshot clone — its install's bytes were refunded when the
    /// slot was evicted).
    pub fn fill_family(&mut self, fkey: u64, token: u64, entry: Arc<FamilyEntry>) -> bool {
        match self.family.get_mut(&fkey) {
            Some(slot) if slot.token == token && matches!(slot.state, FamState::Pending) => {
                slot.state = FamState::Ready(entry);
                self.stats.insertions += 1;
                true
            }
            _ => false,
        }
    }

    /// Resolve a `Pending` family slot to `Failed`, releasing its
    /// bytes early. Returns the bytes the caller must refund to the
    /// ceiling (0 when the fail did not land).
    pub fn fail_family(&mut self, fkey: u64, token: u64) -> u64 {
        match self.family.get_mut(&fkey) {
            Some(slot) if slot.token == token && matches!(slot.state, FamState::Pending) => {
                let bytes = std::mem::take(&mut slot.bytes);
                self.stats.resident_bytes -= bytes;
                slot.state = FamState::Failed;
                bytes
            }
            _ => 0,
        }
    }

    /// Count one realized hit (served from a cached outcome).
    pub fn record_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Count one realized delta.
    pub fn record_delta(&mut self) {
        self.stats.deltas += 1;
    }

    /// Count one realized miss (full run, including fallbacks).
    pub fn record_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// A copy of the life-to-date counters.
    pub fn result_stats(&self) -> ResultCacheStats {
        self.stats
    }

    /// Evict until there is room for one more entry. The victim rule
    /// is the program cache's, totalized across both maps: minimize
    /// `(last_used + cost, last_used, map, key)`. Pending slots are
    /// evicted like any other — membership must stay a pure function
    /// of the admission sequence, and fillers/waiters tolerate a
    /// vanished slot (token-gated fills drop; waiters fall back to a
    /// full run).
    fn evict_to_cap(&mut self) -> Evicted {
        let mut out = Evicted::default();
        if self.cap == 0 {
            return out;
        }
        while self.full.len() + self.family.len() >= self.cap {
            let full_victim = self
                .full
                .iter()
                .map(|(k, s)| (s.last_used + s.cost, s.last_used, 0u8, *k))
                .min();
            let fam_victim = self
                .family
                .iter()
                .map(|(k, s)| (s.last_used + s.cost, s.last_used, 1u8, *k))
                .min();
            let Some(victim) = full_victim.min(fam_victim) else {
                break;
            };
            if victim.2 == 0 {
                self.full.remove(&victim.3);
            } else {
                let slot = self.family.remove(&victim.3).expect("victim exists");
                self.stats.resident_bytes -= slot.bytes;
                out.bytes += slot.bytes;
            }
            self.stats.evictions += 1;
            self.stats.live -= 1;
            out.entries += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_core::pipeline::{compile, CompileOptions};
    use hac_lang::env::ConstEnv;

    fn compiled(n: i64) -> Arc<Compiled> {
        let src = "param n;\nlet a = array (1,2) [ i := n | i <- [1..2] ];\n";
        let program = hac_lang::parser::parse_program(src).unwrap();
        let mut env = ConstEnv::new();
        env.bind("n", n);
        Arc::new(compile(&program, &env, &CompileOptions::default()).unwrap())
    }

    #[test]
    fn capacity_is_respected_and_counters_reconcile() {
        let mut c = ProgramCache::new(3);
        let p = compiled(1);
        for key in 0..10u64 {
            assert!(c.lookup(key, key).is_none());
            c.insert(key, Arc::clone(&p), key);
            assert!(c.len() <= 3, "cap exceeded at key {key}");
        }
        let s = c.stats();
        assert_eq!(s.lookups, 10);
        assert_eq!(s.hits + s.misses, s.lookups);
        assert_eq!(s.insertions - s.evictions, s.live);
        assert_eq!(s.live, 3);
        assert_eq!(s.evictions, 7);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let mut c = ProgramCache::new(2);
        let p = compiled(1);
        c.insert(10, Arc::clone(&p), 0);
        c.insert(20, Arc::clone(&p), 1);
        // Touch 10 so 20 becomes the LRU victim.
        assert!(c.lookup(10, 2).is_some());
        c.insert(30, Arc::clone(&p), 3);
        assert!(c.lookup(10, 4).is_some());
        assert!(c.lookup(20, 5).is_none(), "20 was evicted");
        assert!(c.lookup(30, 6).is_some());
    }

    #[test]
    fn zero_cap_is_unbounded() {
        let mut c = ProgramCache::new(0);
        let p = compiled(1);
        for key in 0..100u64 {
            c.insert(key, Arc::clone(&p), key);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn reinserting_a_key_refreshes_without_eviction() {
        let mut c = ProgramCache::new(2);
        let p = compiled(1);
        c.insert(1, Arc::clone(&p), 0);
        c.insert(2, Arc::clone(&p), 1);
        assert_eq!(c.insert(1, Arc::clone(&p), 2), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().insertions, 2, "refresh is not an insertion");
    }

    fn outcome() -> Arc<CachedOutcome> {
        Arc::new(CachedOutcome {
            status: Status::Ok,
            answer_digest: Some("d".to_string()),
            counters_digest: Some("c".to_string()),
            fuel_left: None,
            engine_faults: 0,
            error: None,
        })
    }

    fn family() -> Arc<FamilyEntry> {
        Arc::new(FamilyEntry {
            state: ExecState::default(),
            prefix_fuel: Some(3),
            prefix_mem: None,
        })
    }

    #[test]
    fn result_slots_resolve_through_the_pending_protocol() {
        let mut c = ResultCache::new(8);
        assert!(matches!(c.probe_full(7, 0), FullProbe::Absent));
        c.install_full(7, 0, 2);
        assert!(matches!(
            c.probe_full(7, 1),
            FullProbe::Pending { token: 0 }
        ));
        assert!(c.fill_full(7, 0, outcome()));
        assert!(matches!(c.probe_full(7, 2), FullProbe::Ready(_)));
        // A second fill with a stale token is dropped.
        assert!(!c.fill_full(7, 0, outcome()));
        let s = c.result_stats();
        assert_eq!((s.lookups, s.insertions, s.live), (3, 1, 1));
    }

    #[test]
    fn failed_slots_are_tombstones_until_reinstalled() {
        let mut c = ResultCache::new(8);
        c.install_full(7, 0, 1);
        c.fail_full(7, 0);
        assert!(matches!(c.probe_full(7, 1), FullProbe::Failed));
        // Re-install in place: no membership change, fresh token.
        assert_eq!(c.install_full(7, 2, 1), Evicted::default());
        assert!(matches!(
            c.probe_full(7, 3),
            FullProbe::Pending { token: 2 }
        ));
        assert_eq!(c.result_stats().live, 1);
    }

    #[test]
    fn family_bytes_are_charged_and_refunded_exactly_once() {
        let mut c = ResultCache::new(8);
        c.install_family(9, 0, 1, 640);
        assert_eq!(c.result_stats().resident_bytes, 640);
        // Failure refunds early; the tombstone holds nothing.
        assert_eq!(c.fail_family(9, 0), 640);
        assert_eq!(c.result_stats().resident_bytes, 0);
        // A stale fail (wrong token) refunds nothing.
        assert_eq!(c.fail_family(9, 0), 0);
        // Re-install charges again; fill keeps the charge resident.
        c.install_family(9, 1, 1, 640);
        assert!(c.fill_family(9, 1, family()));
        assert_eq!(c.result_stats().resident_bytes, 640);
        assert!(matches!(c.probe_family(9, 2), FamilyProbe::Ready(_)));
    }

    #[test]
    fn eviction_spans_both_maps_and_frees_family_bytes() {
        let mut c = ResultCache::new(2);
        c.install_full(1, 0, 1);
        assert!(c.fill_full(1, 0, outcome()));
        c.install_family(2, 1, 1, 100);
        assert!(c.fill_family(2, 1, family()));
        // Touch the family entry so the full entry is the victim.
        assert!(matches!(c.probe_family(2, 2), FamilyProbe::Ready(_)));
        let ev = c.install_full(3, 3, 1);
        assert_eq!(
            ev,
            Evicted {
                entries: 1,
                bytes: 0
            }
        );
        assert!(matches!(c.probe_full(1, 4), FullProbe::Absent));
        // Now the family snapshot is the stalest; evicting it frees
        // its bytes for the caller to refund.
        assert!(matches!(c.probe_full(3, 5), FullProbe::Pending { .. }));
        let ev = c.install_full(4, 6, 1);
        assert_eq!(
            ev,
            Evicted {
                entries: 1,
                bytes: 100
            }
        );
        assert_eq!(c.result_stats().resident_bytes, 0);
        let s = c.result_stats();
        assert_eq!((s.evictions, s.live), (2, 2));
    }
}
