//! A bounded, deterministically-evicting compiled-program cache.
//!
//! The unbounded `HashMap` the server used before this module was a
//! footgun: a tenant cycling unique programs grows the process without
//! limit. `ProgramCache` holds at most `cap` entries and evicts by a
//! **cost-aware LRU** rule whose clock is the *admission ordinal* —
//! the dense per-request counter handed out by
//! [`SharedCeiling::take_ordinal`](hac_runtime::governor::SharedCeiling::take_ordinal)
//! — never wall time. Eviction is therefore a pure function of the
//! request sequence: the same workload always evicts the same entries
//! in the same order, at any worker count (admission is sequential).
//!
//! The victim rule: evict the entry minimizing
//! `(last_used + cost, last_used, key)`, where `cost` is the number of
//! compiled units in the program — a deterministic proxy for how
//! expensive the entry is to rebuild. Costlier programs thus survive a
//! few ordinals longer than cheap ones touched at the same time, and
//! the final `key` component makes the choice total even for equal
//! scores.
//!
//! Evicting is never incorrect, only slower: a re-admitted evicted
//! program recompiles from the same source and parameters, and the
//! repo's determinism contract guarantees the rebuilt program behaves
//! bit-identically (the eviction proptests pin this).
//!
//! Each cached [`Compiled`] carries its cost certificate
//! (`Compiled::cert`), so a cache hit reuses the certificate along
//! with the tape — certificate admission never recompiles or re-derives
//! bounds on the hot path.

use std::collections::HashMap;
use std::sync::Arc;

use hac_core::pipeline::Compiled;

/// Counters over the cache's whole life. Reconciliation invariants,
/// enforced by the eviction proptests:
/// `hits + misses == lookups` and `insertions - evictions == live`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub lookups: u64,
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Entries currently resident.
    pub live: u64,
    /// The configured capacity (0 = unbounded).
    pub cap: u64,
}

#[derive(Debug)]
struct Entry {
    program: Arc<Compiled>,
    /// Admission ordinal of the last request that looked this entry up
    /// (or inserted it).
    last_used: u64,
    /// Rebuild-cost proxy: compiled unit count, clamped to ≥ 1.
    cost: u64,
}

/// The bounded cache. Not internally synchronized — the server wraps
/// it in a `Mutex` (lookups and insertions happen on the sequential
/// admission path, so the lock is uncontended in steady state).
#[derive(Debug)]
pub struct ProgramCache {
    cap: usize,
    entries: HashMap<u64, Entry>,
    stats: CacheStats,
}

impl ProgramCache {
    /// A cache holding at most `cap` entries; `cap == 0` means
    /// unbounded (the pre-eviction behavior, available via
    /// `--cache-cap 0` for embedders that key a small closed program
    /// set).
    pub fn new(cap: usize) -> ProgramCache {
        ProgramCache {
            cap,
            entries: HashMap::new(),
            stats: CacheStats {
                cap: cap as u64,
                ..CacheStats::default()
            },
        }
    }

    /// Look `key` up, stamping the entry's recency with `ordinal` on a
    /// hit.
    pub fn lookup(&mut self, key: u64, ordinal: u64) -> Option<Arc<Compiled>> {
        self.stats.lookups += 1;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = ordinal;
                self.stats.hits += 1;
                Some(Arc::clone(&e.program))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly compiled program under `key`, evicting as many
    /// victims as needed to respect the capacity. Returns how many
    /// entries were evicted (0 or 1 in steady state; more only after a
    /// capacity reconfiguration). Re-inserting an existing key
    /// refreshes it in place and never evicts.
    pub fn insert(&mut self, key: u64, program: Arc<Compiled>, ordinal: u64) -> u64 {
        let cost = (program.units.len() as u64).max(1);
        if let Some(e) = self.entries.get_mut(&key) {
            e.program = program;
            e.last_used = ordinal;
            e.cost = cost;
            return 0;
        }
        let mut evicted = 0;
        if self.cap > 0 {
            while self.entries.len() >= self.cap {
                let victim = self
                    .entries
                    .iter()
                    .map(|(k, e)| (e.last_used + e.cost, e.last_used, *k))
                    .min()
                    .expect("cap > 0 and len >= cap imply an entry");
                self.entries.remove(&victim.2);
                self.stats.evictions += 1;
                self.stats.live -= 1;
                evicted += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                program,
                last_used: ordinal,
                cost,
            },
        );
        self.stats.insertions += 1;
        self.stats.live += 1;
        evicted
    }

    /// A copy of the life-to-date counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_core::pipeline::{compile, CompileOptions};
    use hac_lang::env::ConstEnv;

    fn compiled(n: i64) -> Arc<Compiled> {
        let src = "param n;\nlet a = array (1,2) [ i := n | i <- [1..2] ];\n";
        let program = hac_lang::parser::parse_program(src).unwrap();
        let mut env = ConstEnv::new();
        env.bind("n", n);
        Arc::new(compile(&program, &env, &CompileOptions::default()).unwrap())
    }

    #[test]
    fn capacity_is_respected_and_counters_reconcile() {
        let mut c = ProgramCache::new(3);
        let p = compiled(1);
        for key in 0..10u64 {
            assert!(c.lookup(key, key).is_none());
            c.insert(key, Arc::clone(&p), key);
            assert!(c.len() <= 3, "cap exceeded at key {key}");
        }
        let s = c.stats();
        assert_eq!(s.lookups, 10);
        assert_eq!(s.hits + s.misses, s.lookups);
        assert_eq!(s.insertions - s.evictions, s.live);
        assert_eq!(s.live, 3);
        assert_eq!(s.evictions, 7);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let mut c = ProgramCache::new(2);
        let p = compiled(1);
        c.insert(10, Arc::clone(&p), 0);
        c.insert(20, Arc::clone(&p), 1);
        // Touch 10 so 20 becomes the LRU victim.
        assert!(c.lookup(10, 2).is_some());
        c.insert(30, Arc::clone(&p), 3);
        assert!(c.lookup(10, 4).is_some());
        assert!(c.lookup(20, 5).is_none(), "20 was evicted");
        assert!(c.lookup(30, 6).is_some());
    }

    #[test]
    fn zero_cap_is_unbounded() {
        let mut c = ProgramCache::new(0);
        let p = compiled(1);
        for key in 0..100u64 {
            c.insert(key, Arc::clone(&p), key);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn reinserting_a_key_refreshes_without_eviction() {
        let mut c = ProgramCache::new(2);
        let p = compiled(1);
        c.insert(1, Arc::clone(&p), 0);
        c.insert(2, Arc::clone(&p), 1);
        assert_eq!(c.insert(1, Arc::clone(&p), 2), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().insertions, 2, "refresh is not an insertion");
    }
}
