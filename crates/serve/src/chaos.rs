//! Deterministic I/O chaos plans for the daemon.
//!
//! The engine layer already has [`FaultPlan`]: worker panics and
//! allocation failures injected at exact `(region, chunk)` coordinates,
//! with no clock and no RNG. This module extends that grammar to the
//! **I/O path** with connection-coordinate faults, so the daemon's
//! armor (deadlines, bounded reads, panic isolation, structured error
//! responses) can be exercised just as reproducibly as the engines.
//!
//! A chaos spec is a comma-separated token list. Tokens of the form
//! `c<N>[r<M>]:<kind>` are **connection faults**: they fire on the
//! `M`-th request (default 0) of the `N`-th connection the daemon
//! accepts. Connection ordinals are dense (0, 1, 2, …) and assigned at
//! accept time; request ordinals count the JSON lines read on that
//! connection. Every other token — `r<R>c<C>:panic`, `nosnapshot`,
//! `seed:<u64>` — is forwarded verbatim to
//! [`FaultPlan::parse_token`], so one spec string can fault both the
//! engines and the sockets: `"c1:garbage,r0c0:panic"`.
//!
//! The kinds, and what the daemon does when one fires:
//!
//! * `drop` — close the connection mid-response: the response to the
//!   faulted request is computed, **no bytes** of it are written, and
//!   the socket closes. The client sees EOF; the daemon survives.
//! * `stall` — the read deadline "fires" on the faulted request: the
//!   daemon behaves exactly as if [`set_read_timeout`] had tripped,
//!   writing a structured `{"error":"io-timeout"}` line and closing
//!   the connection, without actually waiting out a clock.
//! * `garbage` — a line of garbage bytes "arrives" before the faulted
//!   request: the malformed-line path fires (structured
//!   `{"error":"bad-request"}` response, `lines_rejected` ledger
//!   bump), and the *real* request is then served completely
//!   unperturbed.
//! * `shortwrite` — the response to the faulted request is truncated:
//!   only the first half of its bytes are written (never the trailing
//!   newline), then the connection closes.
//! * `panic` — the connection handler panics before serving the
//!   faulted request, exercising the accept loop's `catch_unwind`
//!   isolation (`panics_recovered` ledger bump).
//!
//! Every fired fault increments exactly one counter in the daemon's
//! `stats` ledger, so a test driving a plan can assert the ledger
//! *exactly* — and because the coordinates are ordinals rather than
//! clocks, every request a plan does not touch must produce a response
//! byte-identical to the fault-free run (`tests/daemon_chaos.rs` pins
//! this differentially).
//!
//! [`set_read_timeout`]: std::net::TcpStream::set_read_timeout

use hac_runtime::governor::FaultPlan;

/// What a connection fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFaultKind {
    /// Close the connection without writing the computed response.
    Drop,
    /// Simulate a fired read deadline: structured timeout error, close.
    Stall,
    /// Inject one garbage line ahead of the real request.
    Garbage,
    /// Write only the first half of the response bytes, then close.
    ShortWrite,
    /// Panic inside the connection handler (isolation check).
    Panic,
}

impl ConnFaultKind {
    /// The grammar name.
    pub fn as_str(self) -> &'static str {
        match self {
            ConnFaultKind::Drop => "drop",
            ConnFaultKind::Stall => "stall",
            ConnFaultKind::Garbage => "garbage",
            ConnFaultKind::ShortWrite => "shortwrite",
            ConnFaultKind::Panic => "panic",
        }
    }
}

/// One injection point: fire `kind` on request `request` (0-based line
/// ordinal) of connection `conn` (0-based accept ordinal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnFault {
    pub conn: u64,
    pub request: u64,
    pub kind: ConnFaultKind,
}

/// A deterministic I/O chaos plan: connection-coordinate faults plus an
/// embedded engine-level [`FaultPlan`] for any `r<R>c<C>` tokens the
/// spec carried. Parsed from `HAC_CHAOS_PLAN` / `--chaos-plan`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    pub conns: Vec<ConnFault>,
    /// Engine-level points riding in the same spec (unused by the
    /// daemon itself; surfaced so a driver can hand them to the
    /// engines).
    pub engine: FaultPlan,
}

impl ChaosPlan {
    /// The connection fault scheduled for `(conn, request)`, if any.
    pub fn lookup(&self, conn: u64, request: u64) -> Option<ConnFaultKind> {
        self.conns
            .iter()
            .find(|p| p.conn == conn && p.request == request)
            .map(|p| p.kind)
    }

    /// Whether any fault at all targets connection `conn` (used to
    /// skip per-line lookups on untouched connections).
    pub fn touches_conn(&self, conn: u64) -> bool {
        self.conns.iter().any(|p| p.conn == conn)
    }

    /// Parse a chaos spec. `c<N>[r<M>]:drop|stall|garbage|shortwrite|panic`
    /// tokens become connection faults; every other token must be valid
    /// under the engine fault-plan grammar and lands in
    /// [`ChaosPlan::engine`].
    ///
    /// # Errors
    /// A human-readable message naming the offending token.
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::default();
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match Self::parse_conn_token(tok)? {
                Some(point) => plan.conns.push(point),
                None => plan.engine.parse_token(tok)?,
            }
        }
        Ok(plan)
    }

    /// Parse one token as a connection fault. Returns `Ok(None)` when
    /// the token does not start with the `c<digit>` connection prefix
    /// (it belongs to the engine grammar), `Err` when it does but is
    /// malformed.
    fn parse_conn_token(tok: &str) -> Result<Option<ConnFault>, String> {
        let Some(rest) = tok.strip_prefix('c') else {
            return Ok(None);
        };
        if !rest.starts_with(|c: char| c.is_ascii_digit()) {
            return Ok(None);
        }
        let (coords, kind) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad chaos point `{tok}` (missing `:kind`)"))?;
        let (conn, request) = match coords.split_once('r') {
            Some((c, r)) => (
                c.parse::<u64>()
                    .map_err(|_| format!("bad connection ordinal in `{tok}`"))?,
                r.parse::<u64>()
                    .map_err(|_| format!("bad request ordinal in `{tok}`"))?,
            ),
            None => (
                coords
                    .parse::<u64>()
                    .map_err(|_| format!("bad connection ordinal in `{tok}`"))?,
                0,
            ),
        };
        let kind = match kind {
            "drop" => ConnFaultKind::Drop,
            "stall" => ConnFaultKind::Stall,
            "garbage" => ConnFaultKind::Garbage,
            "shortwrite" => ConnFaultKind::ShortWrite,
            "panic" => ConnFaultKind::Panic,
            other => return Err(format!("unknown chaos kind `{other}` in `{tok}`")),
        };
        Ok(Some(ConnFault {
            conn,
            request,
            kind,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_runtime::governor::FaultKind;

    #[test]
    fn parses_connection_coordinates_and_kinds() {
        let plan = ChaosPlan::parse("c0:drop, c3r2:garbage,c7:shortwrite,c1:stall,c4:panic")
            .expect("parse");
        assert_eq!(plan.conns.len(), 5);
        assert_eq!(plan.lookup(0, 0), Some(ConnFaultKind::Drop));
        assert_eq!(plan.lookup(3, 2), Some(ConnFaultKind::Garbage));
        assert_eq!(
            plan.lookup(3, 0),
            None,
            "request ordinal is part of the key"
        );
        assert_eq!(plan.lookup(7, 0), Some(ConnFaultKind::ShortWrite));
        assert_eq!(plan.lookup(1, 0), Some(ConnFaultKind::Stall));
        assert_eq!(plan.lookup(4, 0), Some(ConnFaultKind::Panic));
        assert!(plan.touches_conn(3));
        assert!(!plan.touches_conn(2));
        assert!(plan.engine.points.is_empty());
    }

    #[test]
    fn engine_tokens_ride_in_the_same_spec() {
        let plan = ChaosPlan::parse("c2:drop,r0c1:panic,nosnapshot,c5:garbage").expect("parse");
        assert_eq!(plan.conns.len(), 2);
        assert_eq!(plan.engine.points.len(), 1);
        assert_eq!(plan.engine.lookup(0, 1), Some(FaultKind::Panic));
        assert!(!plan.engine.snapshot);
    }

    #[test]
    fn malformed_tokens_are_rejected_with_the_token_named() {
        for bad in ["c1:explode", "c:drop", "cXr1:drop", "c1r:drop", "c1drop"] {
            let err = ChaosPlan::parse(bad).expect_err(bad);
            assert!(err.contains(bad) || err.contains("bad"), "{bad}: {err}");
        }
        // A bare engine token that is malformed still errors (forwarded).
        assert!(ChaosPlan::parse("r1c2:fire").is_err());
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        let plan = ChaosPlan::parse("").expect("parse");
        assert_eq!(plan, ChaosPlan::default());
        assert_eq!(plan.lookup(0, 0), None);
    }
}
