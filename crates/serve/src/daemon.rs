//! A persistent serving daemon over real TCP sockets.
//!
//! `hacc daemon --listen ADDR` binds a std-library [`TcpListener`] and
//! serves the exact JSON-lines protocol `hacc serve` speaks on
//! stdin/stdout — one request object per line, one response per line —
//! reusing [`Server`] unchanged underneath, so every determinism
//! guarantee (admission ordinals, bounded-cache eviction, settlement)
//! carries over to the socket path verbatim.
//!
//! Besides plain requests, a connection may send **control objects**:
//!
//! * `{"control":"tenant","tenant":"acme"}` — attribute every later
//!   request on this connection that names no tenant of its own to
//!   `acme` (per-connection tenant attribution).
//! * `{"control":"stats"}` — cache counters plus per-tenant served
//!   request counts (sorted by tenant name, so the reply is
//!   reproducible).
//! * `{"control":"shutdown"}` — graceful shutdown: the daemon replies
//!   `{"control":"shutdown","ok":true}`, stops accepting, lets every
//!   in-flight connection finish, and returns.
//!
//! The accept loop is **bounded**: at most
//! [`DaemonOptions::max_conns`] connections are served concurrently;
//! excess connections wait in the listen backlog until a slot frees.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::json::{self, Json};
use crate::{Request, Server};

/// Daemon-specific knobs (everything else lives in
/// [`ServeOptions`](crate::ServeOptions) on the wrapped server).
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Connections served concurrently; further accepts wait until a
    /// slot frees.
    pub max_conns: usize,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions { max_conns: 8 }
    }
}

/// State shared between the accept loop and connection handlers.
struct Shared {
    server: Arc<Server>,
    addr: SocketAddr,
    shutdown: AtomicBool,
    active: Mutex<usize>,
    slot_freed: Condvar,
    /// Requests served per tenant, in first-seen order.
    tenants: Mutex<Vec<(String, u64)>>,
}

impl Shared {
    fn record_tenant(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().expect("tenant lock");
        match tenants.iter_mut().find(|(t, _)| t == tenant) {
            Some((_, n)) => *n += 1,
            None => tenants.push((tenant.to_string(), 1)),
        }
    }
}

/// A daemon running on a background thread (the in-process form the
/// simulator tests drive; the CLI calls [`run`] on its main thread).
pub struct Daemon {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Daemon {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the daemon to shut down (send `{"control":"shutdown"}`
    /// over a connection first, or this blocks forever).
    ///
    /// # Errors
    /// Propagates accept-loop I/O errors.
    ///
    /// # Panics
    /// Panics if the daemon thread itself panicked.
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().expect("daemon thread panicked")
    }
}

/// Spawn the accept loop on a background thread and return immediately.
///
/// # Errors
/// Fails when the listener's local address cannot be read.
pub fn spawn(
    server: Arc<Server>,
    listener: TcpListener,
    options: DaemonOptions,
) -> std::io::Result<Daemon> {
    let addr = listener.local_addr()?;
    let thread = std::thread::spawn(move || run(server, listener, options));
    Ok(Daemon { addr, thread })
}

/// Serve connections until a `{"control":"shutdown"}` arrives, then
/// drain in-flight connections and return. Blocking; the CLI's
/// `hacc daemon` calls this on the main thread.
///
/// # Errors
/// Propagates listener I/O failures.
pub fn run(
    server: Arc<Server>,
    listener: TcpListener,
    options: DaemonOptions,
) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        server,
        addr,
        shutdown: AtomicBool::new(false),
        active: Mutex::new(0),
        slot_freed: Condvar::new(),
        tenants: Mutex::new(Vec::new()),
    });
    let max_conns = options.max_conns.max(1);
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        // Bounded accept: hold here until a connection slot frees (a
        // finishing handler notifies; a shutdown handler also frees
        // its slot, so this wait always wakes).
        {
            let mut active = shared.active.lock().expect("active lock");
            while *active >= max_conns && !shared.shutdown.load(Ordering::SeqCst) {
                active = shared.slot_freed.wait(active).expect("active lock");
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            *active += 1;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) => {
                *shared.active.lock().expect("active lock") -= 1;
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                return Err(e);
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection a shutdown handler made to
            // unblock `accept`; nothing will be read from it.
            drop(stream);
            *shared.active.lock().expect("active lock") -= 1;
            break;
        }
        // Reap finished handlers so a long-lived daemon's handle list
        // stays proportional to live connections.
        handlers.retain(|h| !h.is_finished());
        let sh = Arc::clone(&shared);
        handlers.push(std::thread::spawn(move || {
            serve_connection(&sh, stream);
            *sh.active.lock().expect("active lock") -= 1;
            sh.slot_freed.notify_one();
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
    Ok(())
}

/// One error-reply line (requests that never parsed far enough to
/// carry an id).
fn error_line(message: String) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Null),
        ("status".to_string(), Json::Str("rejected".to_string())),
        ("error".to_string(), Json::Str(message)),
    ])
}

/// Handle one control object; returns `true` when the connection
/// should stop reading (shutdown).
fn handle_control(shared: &Shared, control: &str, v: &Json, out: &mut TcpStream) -> bool {
    match control {
        "shutdown" => {
            let reply = Json::Obj(vec![
                ("control".to_string(), Json::Str("shutdown".to_string())),
                ("ok".to_string(), Json::Bool(true)),
            ]);
            let _ = writeln!(out, "{reply}");
            let _ = out.flush();
            shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop; it drops this wake-up
            // connection on arrival.
            let _ = TcpStream::connect(shared.addr);
            shared.slot_freed.notify_one();
            true
        }
        "stats" => {
            let s = shared.server.cache_stats();
            let cache = Json::Obj(vec![
                ("lookups".to_string(), Json::Num(s.lookups as f64)),
                ("hits".to_string(), Json::Num(s.hits as f64)),
                ("misses".to_string(), Json::Num(s.misses as f64)),
                ("insertions".to_string(), Json::Num(s.insertions as f64)),
                ("evictions".to_string(), Json::Num(s.evictions as f64)),
                ("live".to_string(), Json::Num(s.live as f64)),
                ("cap".to_string(), Json::Num(s.cap as f64)),
            ]);
            let mut tenants = shared.tenants.lock().expect("tenant lock").clone();
            tenants.sort();
            let tenants = Json::Obj(
                tenants
                    .into_iter()
                    .map(|(t, n)| (t, Json::Num(n as f64)))
                    .collect(),
            );
            let reply = Json::Obj(vec![
                ("control".to_string(), Json::Str("stats".to_string())),
                ("cache".to_string(), cache),
                ("tenants".to_string(), tenants),
            ]);
            let _ = writeln!(out, "{reply}");
            let _ = out.flush();
            false
        }
        "tenant" => {
            // Handled by the caller (needs the connection-local
            // default); this arm only validates the shape.
            let ok = v.get("tenant").and_then(Json::as_str).is_some();
            let reply = if ok {
                Json::Obj(vec![
                    ("control".to_string(), Json::Str("tenant".to_string())),
                    ("ok".to_string(), Json::Bool(true)),
                ])
            } else {
                error_line("`tenant` control needs a string `tenant`".to_string())
            };
            let _ = writeln!(out, "{reply}");
            let _ = out.flush();
            false
        }
        other => {
            let _ = writeln!(out, "{}", error_line(format!("unknown control `{other}`")));
            let _ = out.flush();
            false
        }
    }
}

/// Serve one connection's JSON-lines until EOF or shutdown.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(reader);
    let mut out = stream;
    // The connection's default tenant: applied to any request that
    // names none of its own.
    let mut conn_tenant: Option<String> = None;
    for line in reader.lines() {
        let Ok(line) = line else {
            break;
        };
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                let _ = writeln!(out, "{}", error_line(e));
                let _ = out.flush();
                continue;
            }
        };
        if let Some(control) = parsed.get("control").and_then(Json::as_str) {
            let control = control.to_string();
            if control == "tenant" {
                if let Some(t) = parsed.get("tenant").and_then(Json::as_str) {
                    conn_tenant = Some(t.to_string());
                }
            }
            if handle_control(shared, &control, &parsed, &mut out) {
                return;
            }
            continue;
        }
        let mut req = match Request::from_json(&parsed) {
            Ok(r) => r,
            Err(e) => {
                let _ = writeln!(out, "{}", error_line(e));
                let _ = out.flush();
                continue;
            }
        };
        if req.tenant.is_none() {
            req.tenant.clone_from(&conn_tenant);
        }
        let resp = shared.server.handle(&req);
        shared.record_tenant(req.tenant.as_deref().unwrap_or(""));
        let _ = writeln!(out, "{}", resp.to_json());
        let _ = out.flush();
    }
}
