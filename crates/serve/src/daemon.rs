//! A persistent serving daemon over real TCP sockets.
//!
//! `hacc daemon --listen ADDR` binds a std-library [`TcpListener`] and
//! serves the exact JSON-lines protocol `hacc serve` speaks on
//! stdin/stdout — one request object per line, one response per line —
//! reusing [`Server`] unchanged underneath, so every determinism
//! guarantee (admission ordinals, bounded-cache eviction, settlement)
//! carries over to the socket path verbatim.
//!
//! Besides plain requests, a connection may send **control objects**:
//!
//! * `{"control":"tenant","tenant":"acme"}` — attribute every later
//!   request on this connection that names no tenant of its own to
//!   `acme` (per-connection tenant attribution).
//! * `{"control":"stats"}` — cache counters, per-tenant served request
//!   counts (sorted by tenant name, so the reply is reproducible), the
//!   daemon's armor ledger, and the server's overload/retry counters.
//! * `{"control":"shutdown"}` — graceful shutdown: the daemon replies
//!   `{"control":"shutdown","ok":true}`, stops accepting, lets every
//!   in-flight connection finish, and returns.
//!
//! The accept loop is **bounded**: at most
//! [`DaemonOptions::max_conns`] connections are served concurrently;
//! excess connections wait in the listen backlog until a slot frees.
//!
//! ## Connection armor
//!
//! A public listener must survive clients that are slow, hostile, or
//! broken, without perturbing any other tenant's outcome:
//!
//! * **Deadlines** — [`DaemonOptions::io_timeout_ms`] arms
//!   `set_read_timeout`/`set_write_timeout` on every accepted socket.
//!   A fired read deadline produces a structured
//!   `{"error":"io-timeout"}` line and closes that one connection.
//! * **Bounded lines** — request lines are accumulated through a
//!   [`BufReader`] but never past
//!   [`DaemonOptions::max_line_bytes`]; an oversized line is drained
//!   and answered with `{"error":"line-too-long"}`, and the
//!   connection keeps serving. Malformed JSON and bad requests get
//!   `{"error":"bad-request"}` the same way — a parse failure never
//!   kills the connection, let alone the process.
//! * **Panic isolation** — each connection handler runs under
//!   [`catch_unwind`](std::panic::catch_unwind); a panicking handler
//!   is counted in `panics_recovered` and its slot freed, and the
//!   accept loop keeps serving.
//!
//! Every armor action increments exactly one counter in the `stats`
//! ledger, and connection/request ordinals (dense, assigned at accept
//! and per line read) drive the deterministic chaos plans of
//! [`chaos`](crate::chaos) — see `HAC_CHAOS_PLAN` / `--chaos-plan`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::chaos::{ChaosPlan, ConnFaultKind};
use crate::json::{self, Json};
use crate::{Request, Server};

/// Default [`DaemonOptions::max_line_bytes`]: 1 MiB.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Daemon-specific knobs (everything else lives in
/// [`ServeOptions`](crate::ServeOptions) on the wrapped server).
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Connections served concurrently; further accepts wait until a
    /// slot frees.
    pub max_conns: usize,
    /// Per-connection read/write deadline in milliseconds; `None`
    /// disarms both (a dead client can then hold a slot forever —
    /// fine for tests, not for a public listener).
    pub io_timeout_ms: Option<u64>,
    /// Hard cap on one request line's bytes (newline excluded). An
    /// oversized line is drained, answered with a structured
    /// `line-too-long` error, and the connection keeps serving. Also
    /// the bound on the per-connection read buffer the daemon will
    /// hold for a single line.
    pub max_line_bytes: usize,
    /// Deterministic I/O fault plan (see [`chaos`](crate::chaos));
    /// `None` injects nothing.
    pub chaos: Option<ChaosPlan>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            max_conns: 8,
            io_timeout_ms: None,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            chaos: None,
        }
    }
}

/// The daemon's armor ledger: every counter is bumped by exactly one
/// event kind, so chaos tests can assert the whole ledger exactly.
#[derive(Debug, Default)]
struct Counters {
    /// Connections accepted (also the source of dense connection
    /// ordinals for chaos coordinates).
    conns: AtomicU64,
    /// Handler panics contained by `catch_unwind`.
    panics_recovered: AtomicU64,
    /// Lines refused before reaching the server: oversized, malformed
    /// JSON, bad request shapes, unknown controls, injected garbage.
    lines_rejected: AtomicU64,
    /// Request-line bytes consumed off sockets, newlines included
    /// (oversized lines count in full — the bytes were read, then
    /// discarded).
    line_bytes_read: AtomicU64,
    /// Read deadlines that fired.
    io_timeouts: AtomicU64,
    /// Chaos: responses computed and then deliberately not written.
    dropped: AtomicU64,
    /// Chaos: simulated read-deadline firings.
    stalled: AtomicU64,
    /// Chaos: garbage lines injected ahead of real requests.
    garbage_injected: AtomicU64,
    /// Chaos: responses truncated to their first half.
    short_writes: AtomicU64,
}

/// A snapshot of the armor ledger (exposed for tests; the wire form is
/// the `daemon` object in the `stats` control reply).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    pub conns: u64,
    pub panics_recovered: u64,
    pub lines_rejected: u64,
    pub line_bytes_read: u64,
    pub io_timeouts: u64,
    pub dropped: u64,
    pub stalled: u64,
    pub garbage_injected: u64,
    pub short_writes: u64,
}

/// State shared between the accept loop and connection handlers.
struct Shared {
    server: Arc<Server>,
    options: DaemonOptions,
    addr: SocketAddr,
    shutdown: AtomicBool,
    active: Mutex<usize>,
    slot_freed: Condvar,
    /// Requests served per tenant, in first-seen order.
    tenants: Mutex<Vec<(String, u64)>>,
    counters: Counters,
}

impl Shared {
    fn record_tenant(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().expect("tenant lock");
        match tenants.iter_mut().find(|(t, _)| t == tenant) {
            Some((_, n)) => *n += 1,
            None => tenants.push((tenant.to_string(), 1)),
        }
    }

    fn stats(&self) -> DaemonStats {
        let c = &self.counters;
        DaemonStats {
            conns: c.conns.load(Ordering::SeqCst),
            panics_recovered: c.panics_recovered.load(Ordering::SeqCst),
            lines_rejected: c.lines_rejected.load(Ordering::SeqCst),
            line_bytes_read: c.line_bytes_read.load(Ordering::SeqCst),
            io_timeouts: c.io_timeouts.load(Ordering::SeqCst),
            dropped: c.dropped.load(Ordering::SeqCst),
            stalled: c.stalled.load(Ordering::SeqCst),
            garbage_injected: c.garbage_injected.load(Ordering::SeqCst),
            short_writes: c.short_writes.load(Ordering::SeqCst),
        }
    }
}

/// A daemon running on a background thread (the in-process form the
/// simulator tests drive; the CLI calls [`run`] on its main thread).
pub struct Daemon {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Daemon {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the daemon to shut down (send `{"control":"shutdown"}`
    /// over a connection first, or this blocks forever).
    ///
    /// # Errors
    /// Propagates accept-loop I/O errors.
    ///
    /// # Panics
    /// Panics if the daemon thread itself panicked.
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().expect("daemon thread panicked")
    }
}

/// Spawn the accept loop on a background thread and return immediately.
///
/// # Errors
/// Fails when the listener's local address cannot be read.
pub fn spawn(
    server: Arc<Server>,
    listener: TcpListener,
    options: DaemonOptions,
) -> std::io::Result<Daemon> {
    let addr = listener.local_addr()?;
    let thread = std::thread::spawn(move || run(server, listener, options));
    Ok(Daemon { addr, thread })
}

/// Serve connections until a `{"control":"shutdown"}` arrives, then
/// drain in-flight connections and return. Blocking; the CLI's
/// `hacc daemon` calls this on the main thread.
///
/// # Errors
/// Propagates listener I/O failures.
pub fn run(
    server: Arc<Server>,
    listener: TcpListener,
    options: DaemonOptions,
) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    let max_conns = options.max_conns.max(1);
    let io_timeout = options
        .io_timeout_ms
        .map(|ms| std::time::Duration::from_millis(ms.max(1)));
    let shared = Arc::new(Shared {
        server,
        options,
        addr,
        shutdown: AtomicBool::new(false),
        active: Mutex::new(0),
        slot_freed: Condvar::new(),
        tenants: Mutex::new(Vec::new()),
        counters: Counters::default(),
    });
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        // Bounded accept: hold here until a connection slot frees (a
        // finishing handler notifies; a shutdown handler also frees
        // its slot, so this wait always wakes).
        {
            let mut active = shared.active.lock().expect("active lock");
            while *active >= max_conns && !shared.shutdown.load(Ordering::SeqCst) {
                active = shared.slot_freed.wait(active).expect("active lock");
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            *active += 1;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) => {
                *shared.active.lock().expect("active lock") -= 1;
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                return Err(e);
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection a shutdown handler made to
            // unblock `accept`; nothing will be read from it.
            drop(stream);
            *shared.active.lock().expect("active lock") -= 1;
            break;
        }
        if let Some(t) = io_timeout {
            // Failure to arm a deadline is not fatal: the connection
            // is still served, just unarmored against slow peers.
            let _ = stream.set_read_timeout(Some(t));
            let _ = stream.set_write_timeout(Some(t));
        }
        // Dense connection ordinal: the accept loop is sequential, so
        // ordinals are assigned in accept order — the coordinate
        // system chaos plans aim at.
        let conn = shared.counters.conns.fetch_add(1, Ordering::SeqCst);
        // Reap finished handlers so a long-lived daemon's handle list
        // stays proportional to live connections.
        handlers.retain(|h| !h.is_finished());
        let sh = Arc::clone(&shared);
        handlers.push(std::thread::spawn(move || {
            // Panic isolation: a handler panic (a bug, or an injected
            // `cN:panic` chaos fault) closes its own socket and frees
            // its slot; the daemon keeps serving everyone else.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                serve_connection(&sh, stream, conn);
            }));
            if outcome.is_err() {
                sh.counters.panics_recovered.fetch_add(1, Ordering::SeqCst);
            }
            *sh.active.lock().expect("active lock") -= 1;
            sh.slot_freed.notify_one();
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
    Ok(())
}

/// One structured error line: `error` is a stable machine-readable
/// code (`bad-request`, `line-too-long`, `io-timeout`), `detail` the
/// human-readable specifics.
fn error_line(code: &str, detail: String) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Null),
        ("status".to_string(), Json::Str("rejected".to_string())),
        ("error".to_string(), Json::Str(code.to_string())),
        ("detail".to_string(), Json::Str(detail)),
    ])
}

/// Handle one control object; returns `true` when the connection
/// should stop reading (shutdown).
fn handle_control(shared: &Shared, control: &str, v: &Json, out: &mut TcpStream) -> bool {
    match control {
        "shutdown" => {
            let reply = Json::Obj(vec![
                ("control".to_string(), Json::Str("shutdown".to_string())),
                ("ok".to_string(), Json::Bool(true)),
            ]);
            let _ = writeln!(out, "{reply}");
            let _ = out.flush();
            shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop; it drops this wake-up
            // connection on arrival.
            let _ = TcpStream::connect(shared.addr);
            shared.slot_freed.notify_one();
            true
        }
        "stats" => {
            let s = shared.server.cache_stats();
            let cache = Json::Obj(vec![
                ("lookups".to_string(), Json::Num(s.lookups as f64)),
                ("hits".to_string(), Json::Num(s.hits as f64)),
                ("misses".to_string(), Json::Num(s.misses as f64)),
                ("insertions".to_string(), Json::Num(s.insertions as f64)),
                ("evictions".to_string(), Json::Num(s.evictions as f64)),
                ("live".to_string(), Json::Num(s.live as f64)),
                ("cap".to_string(), Json::Num(s.cap as f64)),
            ]);
            let r = shared.server.result_cache_stats();
            let result_cache = Json::Obj(vec![
                ("lookups".to_string(), Json::Num(r.lookups as f64)),
                ("hits".to_string(), Json::Num(r.hits as f64)),
                ("deltas".to_string(), Json::Num(r.deltas as f64)),
                ("misses".to_string(), Json::Num(r.misses as f64)),
                ("insertions".to_string(), Json::Num(r.insertions as f64)),
                ("evictions".to_string(), Json::Num(r.evictions as f64)),
                ("live".to_string(), Json::Num(r.live as f64)),
                ("cap".to_string(), Json::Num(r.cap as f64)),
                (
                    "resident_bytes".to_string(),
                    Json::Num(r.resident_bytes as f64),
                ),
            ]);
            let mut tenants = shared.tenants.lock().expect("tenant lock").clone();
            tenants.sort();
            let tenants = Json::Obj(
                tenants
                    .into_iter()
                    .map(|(t, n)| (t, Json::Num(n as f64)))
                    .collect(),
            );
            let d = shared.stats();
            let daemon = Json::Obj(vec![
                ("conns".to_string(), Json::Num(d.conns as f64)),
                (
                    "panics_recovered".to_string(),
                    Json::Num(d.panics_recovered as f64),
                ),
                (
                    "lines_rejected".to_string(),
                    Json::Num(d.lines_rejected as f64),
                ),
                (
                    "line_bytes_read".to_string(),
                    Json::Num(d.line_bytes_read as f64),
                ),
                (
                    "max_line_bytes".to_string(),
                    Json::Num(shared.options.max_line_bytes as f64),
                ),
                ("io_timeouts".to_string(), Json::Num(d.io_timeouts as f64)),
                ("dropped".to_string(), Json::Num(d.dropped as f64)),
                ("stalled".to_string(), Json::Num(d.stalled as f64)),
                (
                    "garbage_injected".to_string(),
                    Json::Num(d.garbage_injected as f64),
                ),
                ("short_writes".to_string(), Json::Num(d.short_writes as f64)),
            ]);
            let sv = shared.server.server_stats();
            let server = Json::Obj(vec![
                ("shed".to_string(), Json::Num(sv.shed as f64)),
                ("retried".to_string(), Json::Num(sv.retried as f64)),
            ]);
            let cs = shared.server.cert_stats();
            let certificates = Json::Obj(vec![
                ("certified".to_string(), Json::Num(cs.certified as f64)),
                ("open".to_string(), Json::Num(cs.open as f64)),
                ("rejected".to_string(), Json::Num(cs.rejected as f64)),
            ]);
            let reply = Json::Obj(vec![
                ("control".to_string(), Json::Str("stats".to_string())),
                ("cache".to_string(), cache),
                ("result_cache".to_string(), result_cache),
                ("tenants".to_string(), tenants),
                ("daemon".to_string(), daemon),
                ("server".to_string(), server),
                ("certificates".to_string(), certificates),
            ]);
            let _ = writeln!(out, "{reply}");
            let _ = out.flush();
            false
        }
        "tenant" => {
            // Handled by the caller (needs the connection-local
            // default); this arm only validates the shape.
            let ok = v.get("tenant").and_then(Json::as_str).is_some();
            let reply = if ok {
                Json::Obj(vec![
                    ("control".to_string(), Json::Str("tenant".to_string())),
                    ("ok".to_string(), Json::Bool(true)),
                ])
            } else {
                shared
                    .counters
                    .lines_rejected
                    .fetch_add(1, Ordering::SeqCst);
                error_line(
                    "bad-request",
                    "`tenant` control needs a string `tenant`".to_string(),
                )
            };
            let _ = writeln!(out, "{reply}");
            let _ = out.flush();
            false
        }
        other => {
            shared
                .counters
                .lines_rejected
                .fetch_add(1, Ordering::SeqCst);
            let _ = writeln!(
                out,
                "{}",
                error_line("bad-request", format!("unknown control `{other}`"))
            );
            let _ = out.flush();
            false
        }
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line (newline and any trailing `\r` stripped;
    /// invalid UTF-8 replaced, so it fails JSON parsing downstream
    /// with a structured error instead of killing the read loop).
    Line(String),
    /// The line exceeded the cap; its bytes were drained and dropped.
    TooLong,
    /// The read deadline fired.
    TimedOut,
    /// EOF or a hard socket error.
    Closed,
}

/// Read one newline-terminated line without ever buffering more than
/// `max` payload bytes, no matter how much the peer sends.
/// `bytes_read` is credited with every byte consumed (newlines and
/// discarded overflow included — they were read off the socket).
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    bytes_read: &AtomicU64,
) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return LineRead::TimedOut;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Closed,
        };
        if chunk.is_empty() {
            // EOF. A partial unterminated line is served as-is (the
            // same contract as `BufRead::lines`); nothing pending is
            // a clean close.
            return if overflow {
                LineRead::TooLong
            } else if buf.is_empty() {
                LineRead::Closed
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            };
        }
        let nl = chunk.iter().position(|&b| b == b'\n');
        let take = nl.map_or(chunk.len(), |p| p + 1);
        bytes_read.fetch_add(take as u64, Ordering::SeqCst);
        if !overflow {
            let keep = nl.map_or(take, |p| p);
            if buf.len() + keep > max {
                // Stop accumulating; keep draining to the newline so
                // the connection can resynchronize on the next line.
                overflow = true;
                buf = Vec::new();
            } else {
                buf.extend_from_slice(&chunk[..keep]);
            }
        }
        reader.consume(take);
        if nl.is_some() {
            if overflow {
                return LineRead::TooLong;
            }
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return LineRead::Line(String::from_utf8_lossy(&buf).into_owned());
        }
    }
}

/// Write one reply line, honoring any write-path chaos fault aimed at
/// it. Returns `false` when the connection must close (fault fired or
/// the write failed).
fn write_reply(
    shared: &Shared,
    out: &mut TcpStream,
    line: &str,
    fault: Option<ConnFaultKind>,
) -> bool {
    match fault {
        Some(ConnFaultKind::Drop) => {
            shared.counters.dropped.fetch_add(1, Ordering::SeqCst);
            false
        }
        Some(ConnFaultKind::ShortWrite) => {
            shared.counters.short_writes.fetch_add(1, Ordering::SeqCst);
            let bytes = line.as_bytes();
            let _ = out.write_all(&bytes[..bytes.len() / 2]);
            let _ = out.flush();
            false
        }
        _ => {
            let ok = writeln!(out, "{line}").is_ok();
            out.flush().is_ok() && ok
        }
    }
}

/// Serve one connection's JSON-lines until EOF, a deadline, a chaos
/// fault that closes it, or shutdown.
fn serve_connection(shared: &Shared, stream: TcpStream, conn: u64) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader);
    let mut out = stream;
    // The connection's default tenant: applied to any request that
    // names none of its own.
    let mut conn_tenant: Option<String> = None;
    // Skip per-line chaos lookups entirely on untouched connections.
    let chaos = shared
        .options
        .chaos
        .as_ref()
        .filter(|p| p.touches_conn(conn));
    // Dense request ordinal: every non-empty line this connection
    // sends, in arrival order (controls and rejected lines included).
    let mut request: u64 = 0;
    loop {
        let line = match read_bounded_line(
            &mut reader,
            shared.options.max_line_bytes,
            &shared.counters.line_bytes_read,
        ) {
            LineRead::Line(l) => l,
            LineRead::TooLong => {
                shared
                    .counters
                    .lines_rejected
                    .fetch_add(1, Ordering::SeqCst);
                request += 1;
                let reply = error_line(
                    "line-too-long",
                    format!(
                        "request line exceeds {} bytes",
                        shared.options.max_line_bytes
                    ),
                );
                let _ = writeln!(out, "{reply}");
                let _ = out.flush();
                continue;
            }
            LineRead::TimedOut => {
                shared.counters.io_timeouts.fetch_add(1, Ordering::SeqCst);
                let reply = error_line("io-timeout", "read deadline elapsed".to_string());
                let _ = writeln!(out, "{reply}");
                let _ = out.flush();
                return;
            }
            LineRead::Closed => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let ordinal = request;
        request += 1;
        let fault = chaos.and_then(|p| p.lookup(conn, ordinal));
        match fault {
            Some(ConnFaultKind::Stall) => {
                // The read deadline "fires" on this request — same
                // wire behavior as a real timeout, no clock involved.
                shared.counters.stalled.fetch_add(1, Ordering::SeqCst);
                let reply = error_line("io-timeout", "read deadline elapsed".to_string());
                let _ = writeln!(out, "{reply}");
                let _ = out.flush();
                return;
            }
            Some(ConnFaultKind::Panic) => {
                // Contained by the accept loop's catch_unwind.
                panic!("chaos: injected connection panic at c{conn}r{ordinal}");
            }
            Some(ConnFaultKind::Garbage) => {
                // A garbage line "arrived" just ahead of this request:
                // the malformed-line path fires, then the real request
                // is served completely unperturbed.
                shared
                    .counters
                    .garbage_injected
                    .fetch_add(1, Ordering::SeqCst);
                shared
                    .counters
                    .lines_rejected
                    .fetch_add(1, Ordering::SeqCst);
                let reply = error_line("bad-request", "chaos: injected garbage line".to_string());
                let _ = writeln!(out, "{reply}");
                let _ = out.flush();
            }
            _ => {}
        }
        let parsed = match json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                shared
                    .counters
                    .lines_rejected
                    .fetch_add(1, Ordering::SeqCst);
                if !write_reply(
                    shared,
                    &mut out,
                    &error_line("bad-request", e).to_string(),
                    fault,
                ) {
                    return;
                }
                continue;
            }
        };
        if let Some(control) = parsed.get("control").and_then(Json::as_str) {
            let control = control.to_string();
            if control == "tenant" {
                if let Some(t) = parsed.get("tenant").and_then(Json::as_str) {
                    conn_tenant = Some(t.to_string());
                }
            }
            if handle_control(shared, &control, &parsed, &mut out) {
                return;
            }
            continue;
        }
        let mut req = match Request::from_json(&parsed) {
            Ok(r) => r,
            Err(e) => {
                shared
                    .counters
                    .lines_rejected
                    .fetch_add(1, Ordering::SeqCst);
                if !write_reply(
                    shared,
                    &mut out,
                    &error_line("bad-request", e).to_string(),
                    fault,
                ) {
                    return;
                }
                continue;
            }
        };
        if req.tenant.is_none() {
            req.tenant.clone_from(&conn_tenant);
        }
        let resp = shared.server.handle(&req);
        shared.record_tenant(req.tenant.as_deref().unwrap_or(""));
        if !write_reply(shared, &mut out, &resp.to_json().to_string(), fault) {
            return;
        }
    }
}
