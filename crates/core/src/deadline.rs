//! Deadline-aware budgeting: convert a wall-clock deadline into a fuel
//! budget **before** execution starts, so the engines themselves never
//! read the clock.
//!
//! Clock-free engines are what keep the repo's determinism contract
//! intact: a run's outcome (answer, exhaustion point, counters) is a
//! pure function of the program, inputs, and budget — never of machine
//! load or scheduling jitter. A deadline therefore cannot be enforced
//! by polling `Instant::now()` inside the interpreter loop. Instead a
//! [`DeadlineGovernor`] is calibrated **once** (per server start) by
//! timing a fixed probe kernel on the tape engine, yielding an
//! ops-per-millisecond rate; each request's `--deadline-ms` is then
//! multiplied through into an ordinary fuel limit and enforced by the
//! same [`Meter`](hac_runtime::governor::Meter) as any other budget.
//!
//! The conversion is deliberately approximate — fuel is charged at
//! loop heads and call sites, not per wall-clock tick — but it is
//! *reproducible*: the same calibrated rate and the same deadline
//! always produce the same fuel budget, and two runs with the same
//! budget exhaust at the same operation.

use std::collections::HashMap;
use std::time::Instant;

use hac_lang::env::ConstEnv;
use hac_runtime::governor::Limits;
use hac_runtime::value::FuncTable;

use crate::pipeline::{compile, run_with_options, CompileOptions, Engine, RunOptions};

/// The calibration probe: a first-order recurrence long enough to
/// dominate compile time but small enough to finish in well under a
/// second. One fuel unit is charged per taken loop iteration, so the
/// probe's fuel spend scales with `n`.
const PROBE_SRC: &str = "param n;\n\
     letrec* a = array (1,n)\n\
       ([ 1 := 1 ] ++ [ i := a!(i-1) * 0.5 + 1 | i <- [2..n] ]);\n";
const PROBE_N: i64 = 200_000;

/// Converts wall-clock deadlines into fuel budgets at a fixed,
/// calibrated rate. Construct once with [`DeadlineGovernor::calibrate`]
/// (times the probe kernel) or [`DeadlineGovernor::with_rate`] (tests
/// and reproducible CLI runs inject the rate, e.g. via the
/// `HAC_OPS_PER_MS` environment variable in `hacc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineGovernor {
    /// Fuel units the tape engine retires per millisecond.
    ops_per_ms: u64,
}

impl DeadlineGovernor {
    /// A governor with an injected rate — no clock is ever read.
    /// Rates are clamped to at least 1 op/ms so a deadline always buys
    /// a nonzero budget.
    #[must_use]
    pub fn with_rate(ops_per_ms: u64) -> Self {
        DeadlineGovernor {
            ops_per_ms: ops_per_ms.max(1),
        }
    }

    /// Measure this process's tape-engine throughput on the fixed
    /// probe kernel. This is the **only** place in the codebase where
    /// wall-clock time feeds resource governance; everything
    /// downstream sees a plain fuel number.
    ///
    /// # Panics
    /// Panics when the built-in probe kernel fails to compile or run —
    /// a build defect, not an input condition.
    #[must_use]
    pub fn calibrate() -> Self {
        let env = ConstEnv::from_pairs([("n", PROBE_N)]);
        let program = hac_lang::parser::parse_program(PROBE_SRC).expect("probe parses");
        let options = CompileOptions {
            engine: Engine::Tape,
            ..CompileOptions::default()
        };
        let compiled = compile(&program, &env, &options).expect("probe compiles");
        let inputs = HashMap::new();
        let funcs = FuncTable::new();
        // An effectively-infinite but still *finite* fuel cap (the
        // `u64::MAX` cap would collide with the meter's unlimited
        // sentinel): the spend falls out as `cap - fuel_left`, no
        // second bookkeeping path needed for calibration.
        const PROBE_CAP: u64 = u64::MAX - 1;
        let run_opts = RunOptions {
            threads: Some(1),
            limits: Limits {
                fuel: Some(PROBE_CAP),
                mem_bytes: None,
            },
            faults: None,
            ceiling: None,
        };
        let start = Instant::now();
        let out = run_with_options(&compiled, &inputs, &funcs, &run_opts).expect("probe runs");
        let elapsed = start.elapsed();
        let spent = PROBE_CAP - out.fuel_left.expect("probe meter is fuel-limited");
        let micros = elapsed.as_micros().max(1) as u64;
        // ops/ms = spent / (micros / 1000), rounded down, floor 1.
        DeadlineGovernor::with_rate(spent.saturating_mul(1000) / micros)
    }

    /// The calibrated rate, in fuel units per millisecond.
    #[must_use]
    pub fn ops_per_ms(&self) -> u64 {
        self.ops_per_ms
    }

    /// The fuel budget a `deadline_ms` millisecond deadline buys at
    /// the calibrated rate. Saturates instead of overflowing, so huge
    /// deadlines degrade to "effectively unlimited".
    #[must_use]
    pub fn fuel_for_deadline(&self, deadline_ms: u64) -> u64 {
        self.ops_per_ms.saturating_mul(deadline_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_rate_is_clock_free_and_deterministic() {
        let g = DeadlineGovernor::with_rate(250);
        assert_eq!(g.ops_per_ms(), 250);
        assert_eq!(g.fuel_for_deadline(0), 0);
        assert_eq!(g.fuel_for_deadline(4), 1000);
        // Same governor, same deadline, same budget — always.
        assert_eq!(g.fuel_for_deadline(4), g.fuel_for_deadline(4));
    }

    #[test]
    fn rate_is_clamped_to_at_least_one() {
        assert_eq!(DeadlineGovernor::with_rate(0).ops_per_ms(), 1);
    }

    #[test]
    fn huge_deadlines_saturate() {
        let g = DeadlineGovernor::with_rate(u64::MAX);
        assert_eq!(g.fuel_for_deadline(u64::MAX), u64::MAX);
    }

    #[test]
    fn calibration_produces_a_usable_rate() {
        let g = DeadlineGovernor::calibrate();
        assert!(g.ops_per_ms() >= 1);
        // A 10-second deadline must buy a budget that covers the probe
        // itself at the measured rate (sanity: spend ≈ rate × runtime,
        // and the probe runs in well under 10 s).
        assert!(g.fuel_for_deadline(10_000) > PROBE_N as u64 / 2);
    }
}
