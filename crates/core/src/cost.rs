//! Certificate assembly: per-unit cost contributions, symbolic
//! polynomial candidates, and calibration.
//!
//! The pipeline builds one [`CostCert`] per compiled program by
//! summing unit contributions through a [`CertBuilder`]:
//!
//! * the **concrete** figures come from `hac_codegen::cost`'s walk of
//!   the lowered Limp (loop bounds are concrete after lowering — the
//!   program cache is keyed by `(source, params, ...)`, so each
//!   compiled program only ever runs at its own parameters);
//! * the **symbolic** polynomials come from the schedule plan (loop
//!   ranges are still parameter expressions there, §7 normalization)
//!   and the source-level array bounds, then are *calibrated*: a
//!   candidate polynomial is kept only when it evaluates, at the
//!   compiled parameters, to exactly the concrete figure; otherwise
//!   the contribution falls back to a constant polynomial of the
//!   concrete value. Calibration makes the symbolic form decorative
//!   -but-honest: `poly(params) == value` always holds, so admission
//!   arithmetic can use either.
//!
//! Units whose evaluation is demand-driven (thunked groups) have
//! data-dependent cost: the certificate goes **open** and the serving
//! layer falls back to the metered path. Units that run unmetered
//! (accumulations, scalar reductions) contribute zero to both bounds
//! — the meter charges them nothing — but clear `exact`, since their
//! failures can stop a run before later units spend their share.

use hac_analysis::cost::{Bound, CostCert, Poly};
use hac_codegen::cost::expr_calls;
use hac_lang::ast::{ClauseId, Comp, Expr, SvClause};
use hac_lang::env::ConstEnv;
use hac_schedule::plan::{Plan, Step};
use std::collections::HashMap;

/// Accumulates per-unit cost contributions into one [`CostCert`].
#[derive(Debug)]
pub(crate) struct CertBuilder {
    fuel: u64,
    mem: u64,
    fuel_poly: Poly,
    mem_poly: Poly,
    exact: bool,
    open: Option<String>,
}

impl CertBuilder {
    pub(crate) fn new() -> CertBuilder {
        CertBuilder {
            fuel: 0,
            mem: 0,
            fuel_poly: Poly::zero(),
            mem_poly: Poly::zero(),
            exact: true,
            open: None,
        }
    }

    /// Add one unit's contribution: concrete figures plus optional
    /// symbolic candidates, each calibrated against its concrete
    /// value at the compiled parameters.
    pub(crate) fn add(
        &mut self,
        env: &ConstEnv,
        fuel: u64,
        mem: u64,
        exact: bool,
        fuel_poly: Option<Poly>,
        mem_poly: Option<Poly>,
    ) {
        if self.open.is_some() {
            return;
        }
        self.fuel = self.fuel.saturating_add(fuel);
        self.mem = self.mem.saturating_add(mem);
        self.exact &= exact;
        self.fuel_poly = self.fuel_poly.add(&calibrate(fuel_poly, fuel, env));
        self.mem_poly = self.mem_poly.add(&calibrate(mem_poly, mem, env));
    }

    /// The bound does not close; the first reason wins.
    pub(crate) fn mark_open(&mut self, reason: &str) {
        if self.open.is_none() {
            self.open = Some(reason.to_string());
        }
    }

    pub(crate) fn finish(self) -> CostCert {
        match self.open {
            Some(reason) => CostCert::open(&reason),
            None => CostCert {
                fuel: Bound::Closed {
                    value: self.fuel,
                    poly: self.fuel_poly,
                    exact: self.exact,
                },
                mem: Bound::Closed {
                    value: self.mem,
                    poly: self.mem_poly,
                    exact: self.exact,
                },
            },
        }
    }
}

/// Keep a symbolic candidate only when it agrees with the concrete
/// figure at the compiled parameters; otherwise a constant polynomial
/// of the concrete value (always correct, since the program cache keys
/// compiled programs by their parameters).
fn calibrate(poly: Option<Poly>, concrete: u64, env: &ConstEnv) -> Poly {
    let lookup = |n: &str| env.lookup(n);
    match poly {
        Some(p) if p.eval(&lookup) == Some(concrete) => p,
        _ => Poly::constant(i64::try_from(concrete).unwrap_or(i64::MAX)),
    }
}

/// Symbolic fuel of a schedule plan, mirroring the Limp walker's
/// `trip * (1 + body)` form with loop trips as range polynomials.
/// `None` when a range is strided or non-polynomial (calibration then
/// falls back to the concrete constant).
pub(crate) fn plan_fuel_poly(plan: &Plan, comp: &Comp) -> Option<Poly> {
    let clauses: HashMap<ClauseId, &SvClause> =
        comp.clauses().into_iter().map(|c| (c.id, c)).collect();
    steps_fuel(&plan.steps, &clauses)
}

fn steps_fuel(steps: &[Step], clauses: &HashMap<ClauseId, &SvClause>) -> Option<Poly> {
    let mut total = Poly::zero();
    for s in steps {
        let p = match s {
            Step::Loop { range, body, .. } => {
                if range.step.abs() != 1 {
                    return None;
                }
                let lo = Poly::from_expr(&range.lo)?;
                let hi = Poly::from_expr(&range.hi)?;
                let trip = hi.sub(&lo).add(&Poly::constant(1));
                let body = steps_fuel(body, clauses)?;
                trip.mul(&body.add(&Poly::constant(1)))
            }
            Step::Clause(id) => {
                let c = clauses.get(id)?;
                let calls: u64 = c
                    .subs
                    .iter()
                    .chain(std::iter::once(&c.value))
                    .map(|e| expr_calls(e).0)
                    .sum();
                Poly::constant(i64::try_from(calls).unwrap_or(i64::MAX))
            }
            Step::Guard { cond, body } => {
                let calls = expr_calls(cond).0;
                Poly::constant(i64::try_from(calls).unwrap_or(i64::MAX))
                    .add(&steps_fuel(body, clauses)?)
            }
            Step::Let { binds, body } => {
                let calls: u64 = binds.iter().map(|(_, e)| expr_calls(e).0).sum();
                Poly::constant(i64::try_from(calls).unwrap_or(i64::MAX))
                    .add(&steps_fuel(body, clauses)?)
            }
        };
        total = total.add(&p);
    }
    Some(total)
}

/// Symbolic memory footprint of an array with source-level bound
/// expressions: `8 * len` payload plus, when `checked`, one byte per
/// element for the definedness bitmap — the exact figure
/// `ArrayBuf::footprint_bytes` charges.
pub(crate) fn bounds_mem_poly(bounds: &[(Expr, Expr)], checked: bool) -> Option<Poly> {
    let mut len = Poly::constant(1);
    for (lo, hi) in bounds {
        let l = Poly::from_expr(lo)?;
        let h = Poly::from_expr(hi)?;
        len = len.mul(&h.sub(&l).add(&Poly::constant(1)));
    }
    let mut mem = len.mul(&Poly::constant(8));
    if checked {
        mem = mem.add(&len);
    }
    Some(mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompileOptions};
    use hac_lang::parser::parse_program;

    fn cert_for(src: &str, pairs: &[(&str, i64)]) -> CostCert {
        let program = parse_program(src).unwrap();
        let env = ConstEnv::from_pairs(pairs.iter().copied());
        compile(&program, &env, &CompileOptions::default())
            .unwrap()
            .cert
            .clone()
    }

    #[test]
    fn recurrence_certificate_is_symbolic_and_exact() {
        let cert = cert_for(
            "param n;\nletrec* a = array (1,n) ([ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]);\n",
            &[("n", 1000)],
        );
        assert!(cert.is_exact(), "{cert:?}");
        assert_eq!(cert.fuel_value(), Some(999));
        assert_eq!(cert.mem_value(), Some(8000));
        assert_eq!(cert.render(), "cost fuel: n-1 = 999, mem: 8n = 8000");
    }

    #[test]
    fn wavefront_certificate_closes() {
        let cert = cert_for(
            "param n;\nletrec* a = array ((1,1),(n,n))\n\
             ([ (1,j) := 1 | j <- [1..n] ] ++\n\
              [ (i,1) := 1 | i <- [2..n] ] ++\n\
              [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1) | i <- [2..n], j <- [2..n] ]);\n",
            &[("n", 4)],
        );
        assert!(cert.is_exact(), "{cert:?}");
        // n + (n-1) + (n-1)(1 + (n-1)) = 4 + 3 + 3*4 = 19 at n=4.
        assert_eq!(cert.fuel_value(), Some(19));
        assert_eq!(cert.mem_value(), Some(16 * 8));
    }

    #[test]
    fn thunked_groups_get_open_certificates() {
        let cert = cert_for(
            "param n;\nletrec* a = array (1,n) ([ 1 := 1 ] ++ [ i := b!(i-1) + 1 | i <- [2..n] ])\n\
             and b = array (1,n) [ i := a!i * 2 | i <- [1..n] ];\n",
            &[("n", 4)],
        );
        assert!(!cert.is_closed(), "{cert:?}");
        assert!(
            cert.render().starts_with("cost: open ("),
            "{}",
            cert.render()
        );
    }

    #[test]
    fn runtime_checked_programs_stay_closed_but_inexact() {
        // The guard hides a possible collision, so monolithic checks
        // are compiled; the bound closes as an upper bound only.
        let cert = cert_for(
            "param n;\nlet a = array (1,n) ([ i := 0 | i <- [1..n], i < n ] ++ [ 3 := 1 ]);\n",
            &[("n", 5)],
        );
        assert!(cert.is_closed(), "{cert:?}");
        assert!(!cert.is_exact(), "{cert:?}");
        assert!(
            cert.render().ends_with("(upper bound)"),
            "{}",
            cert.render()
        );
    }

    #[test]
    fn calibration_falls_back_to_the_concrete_constant() {
        let p = calibrate(Some(Poly::var("n")), 7, &ConstEnv::from_pairs([("n", 3)]));
        assert_eq!(p.as_constant(), Some(7));
        let kept = calibrate(Some(Poly::var("n")), 3, &ConstEnv::from_pairs([("n", 3)]));
        assert_eq!(kept.render(), "n");
    }
}
