//! The end-to-end compilation pipeline:
//! `parse → number → analyze → schedule → lower`, plus the executor.
//!
//! [`compile`] turns a [`Program`] into a sequence of executable units,
//! choosing per array between thunkless Limp code (when §8 scheduling
//! succeeds) and the thunked reference strategy (when it does not, or
//! when forced for baseline measurements), eliding runtime checks the
//! §4/§7 analysis discharged, and planning `bigupd` bindings for
//! in-place execution per §9. [`run`] executes the units in binding
//! order inside one instrumented VM.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use hac_analysis::analyze::{analyze_array, analyze_bigupd, AnalysisError, CollisionVerdict};
use hac_analysis::cost::{CostCert, Poly};
use hac_analysis::search::TestPolicy;
use hac_codegen::cost::program_cost;
use hac_codegen::fuse::{fuse_tape, FuseDecision};
use hac_codegen::limp::{LProgram, Vm, VmCounters};
use hac_codegen::lower::{lower_array, lower_update, CheckMode, LowerError, LoweredUpdate};
use hac_codegen::partape::{plan_tape, ParPlan};
use hac_codegen::tape::{compile_tape, TapeCtx, TapeProgram};
use hac_lang::ast::{ArrayDef, ArrayKind, Binding, ClauseId, Comp, Program};
use hac_lang::env::ConstEnv;
use hac_lang::number::number_comp;
use hac_lang::Affine;
use hac_runtime::accum::eval_accum_with_scalars;
use hac_runtime::error::RuntimeError;
use hac_runtime::governor::{FaultPlan, Limits, Meter, SharedCeiling};
use hac_runtime::group::ThunkedGroup;
use hac_runtime::reduce::eval_reduce;
use hac_runtime::thunked::ThunkedCounters;
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_schedule::plan::ScheduleOutcome;
use hac_schedule::scheduler::schedule;
use hac_schedule::split::plan_update;

use crate::cost::{bounds_mem_poly, plan_fuel_poly, CertBuilder};
use crate::report::{ArrayReport, Report, UpdateReport};

/// Execution strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Thunkless when the scheduler succeeds, thunked otherwise.
    #[default]
    Auto,
    /// Always use the thunked reference strategy (baseline runs).
    ForceThunked,
    /// Thunkless, but keep all runtime checks even when the analysis
    /// discharged them (baseline for E5/E6).
    ForceChecked,
}

/// Which engine executes compiled Limp programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Compile each Limp program once into a register-slot bytecode
    /// tape (names resolved to indices, affine subscripts
    /// strength-reduced) and run it on the non-recursive dispatcher.
    #[default]
    Tape,
    /// The tape engine plus §10 parallel execution: top-level loop
    /// passes proven free of carried dependences are partitioned over
    /// a worker pool (see [`run_with_threads`]); everything else runs
    /// sequentially. Bit-identical to [`Engine::Tape`].
    ParTape,
    /// The recursive tree-walking evaluator (reference semantics; also
    /// the baseline for the `vm_dispatch` benchmark).
    TreeWalk,
}

/// Compiler options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    pub policy: TestPolicy,
    pub mode: ExecMode,
    pub engine: Engine,
    /// Run the vector-fusion pass over compiled tapes, lowering
    /// proven-parallel innermost affine loops into contiguous-slice
    /// kernels (on by default; `--no-fuse` turns it off, leaving the
    /// scalar tape — the differential oracle — as the only path).
    pub fuse: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            policy: TestPolicy::default(),
            mode: ExecMode::default(),
            engine: Engine::default(),
            fuse: true,
        }
    }
}

/// A compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    Analysis(AnalysisError),
    Lower(LowerError),
    /// The exact test proved two clauses always collide (§7: "If an
    /// exact subscript test says a collision will definitely happen, we
    /// flag an error").
    CertainCollision {
        array: String,
        pair: (ClauseId, ClauseId),
        /// The colliding element, when the analysis could name it.
        element: Option<Vec<i64>>,
    },
    /// A `bigupd`'s flow dependences are unschedulable.
    UnschedulableUpdate {
        name: String,
        reason: String,
    },
    /// Two bindings bound the same name.
    DuplicateName(String),
    /// A binding referenced an unknown base array.
    UnknownBase(String),
    /// An array bound did not fold to a constant.
    NonConstantBound {
        array: String,
    },
    /// A binding referenced an array already consumed by an in-place
    /// update — single-threadedness (§9) would be violated.
    UseAfterUpdate {
        array: String,
        user: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Analysis(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::CertainCollision {
                array,
                pair,
                element,
            } => {
                write!(
                    f,
                    "array `{array}`: clauses {} and {} definitely write the same element",
                    pair.0, pair.1
                )?;
                if let Some(idx) = element {
                    write!(f, " {idx:?}")?;
                }
                Ok(())
            }
            CompileError::UnschedulableUpdate { name, reason } => {
                write!(f, "update `{name}` is unschedulable: {reason}")
            }
            CompileError::DuplicateName(n) => write!(f, "name `{n}` bound twice"),
            CompileError::UnknownBase(n) => write!(f, "unknown base array `{n}`"),
            CompileError::NonConstantBound { array } => {
                write!(f, "array `{array}` has non-constant bounds")
            }
            CompileError::UseAfterUpdate { array, user } => write!(
                f,
                "`{user}` references `{array}`, whose storage was consumed by an \
                 in-place update (single-threadedness, §9); read the update's \
                 result instead"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<AnalysisError> for CompileError {
    fn from(e: AnalysisError) -> Self {
        CompileError::Analysis(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

/// One thunked-group member: `(name, bounds, comprehension)`.
pub type GroupMember = (String, Vec<(i64, i64)>, Comp);

/// One executable unit, in binding order.
#[derive(Debug, Clone)]
pub enum Unit {
    /// An externally supplied array.
    Input {
        name: String,
        bounds: Vec<(i64, i64)>,
    },
    /// A thunkless compiled array.
    Thunkless {
        name: String,
        prog: LProgram,
        /// Bytecode form of `prog`, compiled once here; `None` under
        /// [`Engine::TreeWalk`].
        tape: Option<TapeProgram>,
        /// Parallel execution plan for the tape; `Some` only under
        /// [`Engine::ParTape`].
        par: Option<ParPlan>,
    },
    /// A (possibly mutually recursive) group evaluated with thunks.
    Thunked { defs: Vec<GroupMember> },
    /// An accumulated array, evaluated strictly in list order.
    Accum {
        def: ArrayDef,
        bounds: Vec<(i64, i64)>,
    },
    /// A planned `bigupd`.
    Update {
        name: String,
        base: String,
        lowered: LoweredUpdate,
        /// Bytecode form of `lowered.prog` (aliases folded in at
        /// compile time for in-place updates); `None` under
        /// [`Engine::TreeWalk`].
        tape: Option<TapeProgram>,
        /// Parallel execution plan for the tape; `Some` only under
        /// [`Engine::ParTape`].
        par: Option<ParPlan>,
    },
    /// A scalar reduction (§3.1 `foldl` over a comprehension),
    /// executed as a DO loop with no intermediate list.
    Reduce {
        name: String,
        op: hac_lang::ast::BinOp,
        init: hac_lang::ast::Expr,
        comp: Comp,
    },
}

/// Static delta-recomputation plan: present when the program ends in
/// its *only* `bigupd` and the update's write footprint is provably
/// bounded — every clause unguarded with affine (normalized) write
/// subscripts, so the dirty set is exactly the statically-counted
/// write instances from the §4 dependence analysis. The serving layer
/// uses the plan to answer sliding-parameter requests by replaying
/// just the final update unit over a cached prefix state (see
/// [`run_delta`]); an unbounded footprint means no plan, and such
/// requests fall back to a full run.
#[derive(Debug, Clone)]
pub struct DeltaPlan {
    /// Parameters that occur syntactically *only* inside the final
    /// update's comprehension: sliding any subset of them leaves every
    /// prefix unit's code and values unchanged. Computed from the
    /// source AST — value-independent, so every compilation of the
    /// same source agrees on the set.
    pub params: Vec<String>,
    /// Statically-counted write footprint of the update under this
    /// parameter environment: the dirty-element count a delta
    /// recomputation touches.
    pub writes: u64,
    /// Data bytes of every array live before the update unit runs —
    /// what a cached prefix snapshot costs the memory ledger.
    pub prefix_bytes: u64,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub env: ConstEnv,
    pub units: Vec<Unit>,
    pub report: Report,
    /// Static worst-case fuel/memory certificate, exact-or-over for
    /// every engine at any thread count (see `hac_analysis::cost`).
    pub cert: CostCert,
    /// Delta-recomputation plan for the trailing `bigupd`, when the
    /// program has exactly one and its footprint is provably bounded.
    pub delta: Option<DeltaPlan>,
}

/// Every variable name an expression mentions, deduplicated. Local
/// bindings are *not* resolved: a `let`- or generator-bound name equal
/// to a parameter counts as an occurrence of that parameter, which only
/// shrinks the delta-parameter set — conservative, never wrong.
fn collect_vars(e: &hac_lang::ast::Expr, out: &mut Vec<String>) {
    e.walk(&mut |x| {
        if let hac_lang::ast::Expr::Var(n) = x {
            if !out.iter().any(|s| s == n) {
                out.push(n.clone());
            }
        }
    });
}

fn collect_comp_vars(comp: &Comp, out: &mut Vec<String>) {
    comp.walk(&mut |c| match c {
        Comp::Clause(sv) => {
            for s in &sv.subs {
                collect_vars(s, out);
            }
            collect_vars(&sv.value, out);
        }
        Comp::Guard { cond, .. } => collect_vars(cond, out),
        Comp::Let { binds, .. } => {
            for (_, e) in binds {
                collect_vars(e, out);
            }
        }
        Comp::Gen { range, .. } => {
            collect_vars(&range.lo, out);
            collect_vars(&range.hi, out);
        }
        Comp::Append(_) => {}
    });
}

fn collect_def_vars(d: &ArrayDef, out: &mut Vec<String>) {
    for (lo, hi) in &d.bounds {
        collect_vars(lo, out);
        collect_vars(hi, out);
    }
    collect_comp_vars(&d.comp, out);
    if let ArrayKind::Accumulated { default, .. } = &d.kind {
        collect_vars(default, out);
    }
}

/// The parameters referenced *only* by the binding at `update_idx`
/// (the trailing `bigupd`): everything declared minus anything any
/// other binding mentions. A parameter mentioned nowhere at all also
/// qualifies — sliding it changes nothing, and the delta path serves
/// that correctly (with zero differing work).
fn delta_params(program: &Program, update_idx: usize) -> Vec<String> {
    let mut outside: Vec<String> = Vec::new();
    for (i, b) in program.bindings.iter().enumerate() {
        if i == update_idx {
            continue;
        }
        match b {
            Binding::Input { bounds, .. } => {
                for (lo, hi) in bounds {
                    collect_vars(lo, &mut outside);
                    collect_vars(hi, &mut outside);
                }
            }
            Binding::Let(d) => collect_def_vars(d, &mut outside),
            Binding::LetrecStar(ds) => {
                for d in ds {
                    collect_def_vars(d, &mut outside);
                }
            }
            Binding::Reduce { init, comp, .. } => {
                collect_vars(init, &mut outside);
                collect_comp_vars(comp, &mut outside);
            }
            Binding::BigUpd { comp, .. } => collect_comp_vars(comp, &mut outside),
        }
    }
    program
        .params
        .iter()
        .filter(|p| !outside.contains(p))
        .cloned()
        .collect()
}

fn fold_bounds_i64(
    def_name: &str,
    bounds: &[(hac_lang::ast::Expr, hac_lang::ast::Expr)],
    env: &ConstEnv,
) -> Result<Vec<(i64, i64)>, CompileError> {
    bounds
        .iter()
        .map(|(lo, hi)| {
            let f = |e| match Affine::from_expr(e, env) {
                Some(a) if a.is_constant() => Some(a.constant_part()),
                _ => None,
            };
            match (f(lo), f(hi)) {
                (Some(l), Some(h)) => Ok((l, h)),
                _ => Err(CompileError::NonConstantBound {
                    array: def_name.to_string(),
                }),
            }
        })
        .collect()
}

/// Compile a program against a parameter environment.
///
/// # Errors
/// See [`CompileError`].
pub fn compile(
    program: &Program,
    env: &ConstEnv,
    options: &CompileOptions,
) -> Result<Compiled, CompileError> {
    // Number every comprehension in one id space.
    let mut program = program.clone();
    let (mut c, mut l) = (0u32, 0u32);
    for b in &mut program.bindings {
        match b {
            Binding::Let(d) => number_comp(&mut d.comp, &mut c, &mut l),
            Binding::LetrecStar(ds) => {
                for d in ds {
                    number_comp(&mut d.comp, &mut c, &mut l);
                }
            }
            Binding::BigUpd { comp, .. } | Binding::Reduce { comp, .. } => {
                number_comp(comp, &mut c, &mut l)
            }
            Binding::Input { .. } => {}
        }
    }

    let mut seen: Vec<String> = Vec::new();
    // Arrays whose storage an in-place update consumed: any later
    // reference would observe the new values under the old name.
    let mut consumed: Vec<String> = Vec::new();
    let mut units = Vec::new();
    let mut report = Report::default();
    let mut cert = CertBuilder::new();
    // Accumulated tape-compilation context: shapes of every array bound
    // so far, reduction scalars (runtime globals) in binding order, and
    // the parameter environment as compile-time constants.
    let mut known = TapeCtx {
        consts: env.iter().map(|(n, v)| (n.to_string(), v)).collect(),
        ..TapeCtx::default()
    };

    fn check_consumed(consumed: &[String], user: &str, comp: &Comp) -> Result<(), CompileError> {
        let mut hit: Option<String> = None;
        comp.walk(&mut |c| {
            let mut scan = |e: &hac_lang::ast::Expr| {
                for a in e.referenced_arrays() {
                    if consumed.contains(&a) && hit.is_none() {
                        hit = Some(a);
                    }
                }
            };
            match c {
                Comp::Clause(sv) => {
                    for s in &sv.subs {
                        scan(s);
                    }
                    scan(&sv.value);
                }
                Comp::Guard { cond, .. } => scan(cond),
                Comp::Let { binds, .. } => {
                    for (_, e) in binds {
                        scan(e);
                    }
                }
                Comp::Gen { range, .. } => {
                    scan(&range.lo);
                    scan(&range.hi);
                }
                Comp::Append(_) => {}
            }
        });
        match hit {
            Some(array) => Err(CompileError::UseAfterUpdate {
                array,
                user: user.to_string(),
            }),
            None => Ok(()),
        }
    }

    fn check_dup(seen: &mut Vec<String>, name: &str) -> Result<(), CompileError> {
        if seen.iter().any(|s| s == name) {
            return Err(CompileError::DuplicateName(name.to_string()));
        }
        seen.push(name.to_string());
        Ok(())
    }

    let mut delta: Option<DeltaPlan> = None;
    for (bi, b) in program.bindings.iter().enumerate() {
        let is_last = bi + 1 == program.bindings.len();
        match b {
            Binding::Input { name, bounds } => {
                check_dup(&mut seen, name)?;
                // The executor charges `len * 8` bytes when the input
                // is bound (no definedness bitmap for inputs).
                let mem_poly = bounds_mem_poly(bounds, false);
                let bounds = fold_bounds_i64(name, bounds, env)?;
                cert.add(
                    env,
                    0,
                    ArrayBuf::data_bytes(&bounds),
                    true,
                    Some(Poly::zero()),
                    mem_poly,
                );
                known.shapes.insert(name.clone(), bounds.clone());
                units.push(Unit::Input {
                    name: name.clone(),
                    bounds,
                });
            }
            Binding::Let(def) => {
                check_dup(&mut seen, &def.name)?;
                check_consumed(&consumed, &def.name, &def.comp)?;
                compile_group(
                    std::slice::from_ref(def),
                    env,
                    options,
                    &mut known,
                    &mut units,
                    &mut report,
                    &mut cert,
                )?;
            }
            Binding::LetrecStar(defs) => {
                for d in defs {
                    check_dup(&mut seen, &d.name)?;
                    check_consumed(&consumed, &d.name, &d.comp)?;
                }
                compile_group(
                    defs,
                    env,
                    options,
                    &mut known,
                    &mut units,
                    &mut report,
                    &mut cert,
                )?;
            }
            Binding::Reduce {
                name,
                op,
                init,
                comp,
            } => {
                check_dup(&mut seen, name)?;
                check_consumed(&consumed, name, comp)?;
                report
                    .reductions
                    .push(format!("scalar `{name}` = fold ({op}) over comprehension"));
                // Scalar reductions run unmetered: zero contribution,
                // but their failures can stop a run early, so the
                // certificate is no longer exact.
                cert.add(env, 0, 0, false, None, None);
                known.globals.push(name.clone());
                units.push(Unit::Reduce {
                    name: name.clone(),
                    op: *op,
                    init: init.clone(),
                    comp: comp.clone(),
                });
            }
            Binding::BigUpd { name, base, comp } => {
                check_dup(&mut seen, name)?;
                check_consumed(&consumed, name, comp)?;
                if consumed.iter().any(|s| s == base) {
                    return Err(CompileError::UseAfterUpdate {
                        array: base.clone(),
                        user: name.clone(),
                    });
                }
                if !seen.iter().any(|s| s == base) {
                    return Err(CompileError::UnknownBase(base.clone()));
                }
                let analysis = analyze_bigupd(base, name, comp, env, &options.policy)?;
                if let CollisionVerdict::Certain { pair, element, .. } = &analysis.collisions {
                    return Err(CompileError::CertainCollision {
                        array: name.clone(),
                        pair: *pair,
                        element: element.clone(),
                    });
                }
                let update = plan_update(comp, &analysis).map_err(|r| {
                    CompileError::UnschedulableUpdate {
                        name: name.clone(),
                        reason: r.to_string(),
                    }
                })?;
                let lowered = lower_update(base, name, &analysis.refs, &update, env)?;
                report.updates.push(UpdateReport::new(
                    name, base, comp, &analysis, &update, &lowered,
                ));
                report.stats.absorb(&analysis.stats);
                // Delta plan: only for the program's sole, trailing
                // update, and only when the write footprint is exact —
                // a guard or non-affine write would make the static
                // count an overestimate of the dirty set.
                if is_last
                    && !units.iter().any(|u| matches!(u, Unit::Update { .. }))
                    && analysis
                        .refs
                        .iter()
                        .all(|r| !r.guarded() && r.write.norm.is_some())
                {
                    let writes: i64 = analysis.refs.iter().map(|r| r.instance_count()).sum();
                    delta = u64::try_from(writes).ok().map(|writes| DeltaPlan {
                        params: delta_params(&program, bi),
                        writes,
                        prefix_bytes: known.shapes.values().map(|b| ArrayBuf::data_bytes(b)).sum(),
                    });
                }
                if lowered.in_place {
                    consumed.push(base.clone());
                }
                let mut fusion = Vec::new();
                let tape = (options.engine != Engine::TreeWalk).then(|| {
                    let mut tctx = known.clone();
                    if lowered.in_place {
                        // The result name aliases the base at compile
                        // time, mirroring the VM's runtime alias.
                        tctx.aliases.insert(name.clone(), base.clone());
                    }
                    let mut t = compile_tape(&lowered.prog, &tctx);
                    if options.fuse {
                        fusion = fuse_tape(&mut t).iter().map(FuseDecision::render).collect();
                    }
                    t
                });
                if let Some(u) = report.updates.last_mut() {
                    u.fusion = fusion;
                }
                let par = match (&tape, options.engine) {
                    (Some(t), Engine::ParTape) => Some(plan_tape(t)),
                    _ => None,
                };
                if let Some(b) = known.shapes.get(base).cloned() {
                    known.shapes.insert(name.clone(), b);
                }
                // Update costs are always upper bounds: the in-place
                // machinery's checks can stop a run partway.
                match program_cost(&lowered.prog, &known.shapes) {
                    Some(c) => cert.add(env, c.fuel, c.mem, false, None, None),
                    None => {
                        cert.mark_open(&format!("update `{name}` copies an unknown-shape array"));
                    }
                }
                units.push(Unit::Update {
                    name: name.clone(),
                    base: base.clone(),
                    lowered,
                    tape,
                    par,
                });
            }
        }
    }
    let cert = cert.finish();
    report.cost = Some(cert.render());
    Ok(Compiled {
        env: env.clone(),
        units,
        report,
        cert,
        delta,
    })
}

#[allow(clippy::too_many_arguments)]
fn compile_group(
    defs: &[ArrayDef],
    env: &ConstEnv,
    options: &CompileOptions,
    known: &mut TapeCtx,
    units: &mut Vec<Unit>,
    report: &mut Report,
    cert: &mut CertBuilder,
) -> Result<(), CompileError> {
    // Accumulated arrays evaluate strictly on their own.
    if defs.len() == 1 {
        if let ArrayKind::Accumulated { .. } = defs[0].kind {
            let def = &defs[0];
            let analysis = analyze_array(def, env, &options.policy)?;
            report.arrays.push(ArrayReport::accumulated(def, &analysis));
            report.stats.absorb(&analysis.stats);
            let bounds = analysis.bounds.clone();
            known.shapes.insert(def.name.clone(), bounds.clone());
            // Accumulations run unmetered: zero contribution, but the
            // certificate stops being exact (see `Reduce`).
            cert.add(env, 0, 0, false, None, None);
            units.push(Unit::Accum {
                def: def.clone(),
                bounds,
            });
            return Ok(());
        }
    }

    // Mutual references inside a letrec* group defeat per-array
    // scheduling: evaluate the whole group with thunks.
    let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
    let mutual = defs.len() > 1
        && defs.iter().any(|d| {
            d.comp.clauses().iter().any(|c| {
                c.value
                    .referenced_arrays()
                    .iter()
                    .any(|a| a != &d.name && names.contains(&a.as_str()))
            })
        });

    if mutual || options.mode == ExecMode::ForceThunked {
        cert.mark_open(if mutual {
            "thunked: mutually recursive letrec* group"
        } else {
            "thunked: demand-driven execution forced"
        });
        let mut group = Vec::new();
        for def in defs {
            let analysis = analyze_array(def, env, &options.policy)?;
            if let CollisionVerdict::Certain { pair, element, .. } = &analysis.collisions {
                return Err(CompileError::CertainCollision {
                    array: def.name.clone(),
                    pair: *pair,
                    element: element.clone(),
                });
            }
            let reason = if mutual {
                "mutually recursive letrec* group".to_string()
            } else {
                "thunked execution forced".to_string()
            };
            report
                .arrays
                .push(ArrayReport::thunked(def, &analysis, &reason));
            report.stats.absorb(&analysis.stats);
            known
                .shapes
                .insert(def.name.clone(), analysis.bounds.clone());
            group.push((def.name.clone(), analysis.bounds.clone(), def.comp.clone()));
        }
        units.push(Unit::Thunked { defs: group });
        return Ok(());
    }

    for def in defs {
        let analysis = analyze_array(def, env, &options.policy)?;
        if let CollisionVerdict::Certain { pair, element, .. } = &analysis.collisions {
            return Err(CompileError::CertainCollision {
                array: def.name.clone(),
                pair: *pair,
                element: element.clone(),
            });
        }
        match schedule(&def.comp, &analysis.flow.edges) {
            ScheduleOutcome::Thunkless(plan) => {
                let elidable = analysis.collisions.checks_elidable()
                    && analysis.empties.checks_elidable()
                    && analysis.oob == hac_analysis::analyze::BoundsVerdict::InBounds;
                let checks = if options.mode == ExecMode::ForceChecked || !elidable {
                    CheckMode::Checked
                } else {
                    CheckMode::Elide
                };
                let prog = lower_array(
                    &def.name,
                    &analysis.bounds,
                    &analysis.refs,
                    &plan,
                    env,
                    checks,
                )?;
                match program_cost(&prog, &known.shapes) {
                    Some(c) => {
                        let fuel_poly = plan_fuel_poly(&plan, &def.comp);
                        let mem_poly = bounds_mem_poly(&def.bounds, checks == CheckMode::Checked);
                        cert.add(env, c.fuel, c.mem, c.exact, fuel_poly, mem_poly);
                    }
                    None => cert.mark_open(&format!(
                        "array `{}` copies an unknown-shape array",
                        def.name
                    )),
                }
                report.arrays.push(ArrayReport::thunkless(
                    def,
                    &analysis,
                    &plan,
                    checks == CheckMode::Elide,
                ));
                report.stats.absorb(&analysis.stats);
                let mut fusion = Vec::new();
                let tape = (options.engine != Engine::TreeWalk).then(|| {
                    let mut t = compile_tape(&prog, known);
                    if options.fuse {
                        fusion = fuse_tape(&mut t).iter().map(FuseDecision::render).collect();
                    }
                    t
                });
                if let Some(a) = report.arrays.last_mut() {
                    a.fusion = fusion;
                }
                let par = match (&tape, options.engine) {
                    (Some(t), Engine::ParTape) => Some(plan_tape(t)),
                    _ => None,
                };
                known
                    .shapes
                    .insert(def.name.clone(), analysis.bounds.clone());
                units.push(Unit::Thunkless {
                    name: def.name.clone(),
                    prog,
                    tape,
                    par,
                });
            }
            ScheduleOutcome::NeedsThunks(reason) => {
                cert.mark_open(&format!("thunked: {reason}"));
                report
                    .arrays
                    .push(ArrayReport::thunked(def, &analysis, &reason.to_string()));
                report.stats.absorb(&analysis.stats);
                known
                    .shapes
                    .insert(def.name.clone(), analysis.bounds.clone());
                units.push(Unit::Thunked {
                    defs: vec![(def.name.clone(), analysis.bounds.clone(), def.comp.clone())],
                });
            }
        }
    }
    Ok(())
}

/// Aggregated execution instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    pub vm: VmCounters,
    pub thunked: ThunkedCounters,
}

/// The result of running a compiled program.
#[derive(Debug)]
pub struct ExecOutput {
    /// Every array bound by the program, by name.
    pub arrays: HashMap<String, ArrayBuf>,
    /// Every scalar reduction result, by name.
    pub scalars: HashMap<String, f64>,
    pub counters: ExecCounters,
    /// Fuel remaining when the run finished; `None` when the budget
    /// was unlimited.
    pub fuel_left: Option<u64>,
}

impl ExecOutput {
    /// Fetch one array.
    ///
    /// # Panics
    /// Panics when the name is unknown — a programming error in the
    /// caller.
    pub fn array(&self, name: &str) -> &ArrayBuf {
        self.arrays
            .get(name)
            .unwrap_or_else(|| panic!("no array `{name}` in output"))
    }

    /// Fetch one reduction result.
    ///
    /// # Panics
    /// Panics when the name is unknown.
    pub fn scalar(&self, name: &str) -> f64 {
        *self
            .scalars
            .get(name)
            .unwrap_or_else(|| panic!("no scalar `{name}` in output"))
    }
}

/// The number of workers [`run`] uses for [`Engine::ParTape`] units:
/// one per available hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Execute a compiled program. [`Engine::ParTape`] units run with
/// [`default_threads`] workers; see [`run_with_threads`] to pick.
///
/// # Errors
/// Propagates runtime failures (missing inputs surface as
/// [`RuntimeError::UnboundArray`]).
pub fn run(
    compiled: &Compiled,
    inputs: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
) -> Result<ExecOutput, RuntimeError> {
    run_with_threads(compiled, inputs, funcs, default_threads())
}

/// [`run`] with an explicit worker count for [`Engine::ParTape`] units
/// (`threads: 1` executes their parallel plans inline — still on the
/// sequential dispatch path, never touching the pool). Units compiled
/// for other engines ignore `threads` entirely.
///
/// # Errors
/// See [`run`].
pub fn run_with_threads(
    compiled: &Compiled,
    inputs: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
    threads: usize,
) -> Result<ExecOutput, RuntimeError> {
    run_with_options(
        compiled,
        inputs,
        funcs,
        &RunOptions {
            threads: Some(threads),
            ..RunOptions::default()
        },
    )
}

/// Execution-time knobs for [`run_with_options`]: worker count,
/// resource limits, and (for tests) a deterministic fault-injection
/// plan.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Workers for [`Engine::ParTape`] units; `None` means
    /// [`default_threads`].
    pub threads: Option<usize>,
    /// Fuel / memory caps, enforced identically on every engine. One
    /// budget spans the whole run: all units charge the same meter.
    pub limits: Limits,
    /// Fault-injection plan for parallel units. `None` defers to the
    /// `HAC_FAULT_PLAN` environment variable.
    pub faults: Option<FaultPlan>,
    /// Process-wide resource pool shared between concurrent requests.
    /// When set, the run's meter is admitted against it (reserving its
    /// `limits` up front) and settled when the run finishes — see
    /// [`SharedCeiling`] for the settlement rule.
    pub ceiling: Option<Arc<SharedCeiling>>,
}

/// [`run`] with full execution options: thread count, resource
/// [`Limits`], and fault injection.
///
/// # Errors
/// See [`run`]; additionally [`RuntimeError::FuelExhausted`] /
/// [`RuntimeError::MemLimitExceeded`] when a limit trips, and
/// [`RuntimeError::EngineFault`] when an (injected) worker fault could
/// not be absorbed.
pub fn run_with_options(
    compiled: &Compiled,
    inputs: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
    options: &RunOptions,
) -> Result<ExecOutput, RuntimeError> {
    let mut meter = match &options.ceiling {
        Some(ceiling) => Meter::admit(options.limits, ceiling)?,
        None => Meter::new(options.limits),
    };
    let out = run_with_meter(compiled, inputs, funcs, options, &mut meter);
    meter.settle();
    out
}

/// [`run_with_options`] charging a caller-owned [`Meter`] — the serving
/// layer admits one meter per request against a [`SharedCeiling`] and
/// needs the fuel balance back even when the run fails, then settles
/// the meter itself. `options.limits` / `options.ceiling` are ignored
/// here; the meter already embodies them.
///
/// # Errors
/// See [`run_with_options`]. On error the meter still holds the exact
/// balance at the failure point.
pub fn run_with_meter(
    compiled: &Compiled,
    inputs: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
    options: &RunOptions,
    meter: &mut Meter,
) -> Result<ExecOutput, RuntimeError> {
    let mut state = ExecState::default();
    run_units(
        compiled,
        0..compiled.units.len(),
        &mut state,
        inputs,
        funcs,
        options,
        meter,
    )?;
    Ok(state.into_output(meter))
}

/// Mid-run execution state: every array and scalar bound so far plus
/// the instrumentation accumulated. [`run_units`] threads one of these
/// through a range of units; the serving layer snapshots the state
/// between a program's prefix and its trailing `bigupd` so
/// sliding-parameter requests can replay just the update (see
/// [`run_delta`] and [`DeltaPlan`]).
#[derive(Debug, Clone, Default)]
pub struct ExecState {
    pub arrays: HashMap<String, ArrayBuf>,
    /// Scalar reductions in binding order — later units re-bind these
    /// as VM globals in exactly this order, so it is a `Vec`, not a
    /// map.
    pub scalars: Vec<(String, f64)>,
    pub counters: ExecCounters,
}

impl ExecState {
    /// Package the state as a finished run's output, capturing the
    /// meter's closing fuel balance.
    pub fn into_output(self, meter: &Meter) -> ExecOutput {
        ExecOutput {
            arrays: self.arrays,
            scalars: self.scalars.into_iter().collect(),
            counters: self.counters,
            fuel_left: meter.fuel_limited().then(|| meter.fuel_left()),
        }
    }
}

/// Replay only the trailing `bigupd` unit over a cached prefix state —
/// the delta path behind incremental serving. `base` must be the
/// prefix state of a compilation that differs from `compiled` at most
/// in the plan's [`delta parameters`](DeltaPlan::params); determinism
/// then makes the merged output bit-identical to a cold full run of
/// `compiled`. The base is cloned, never consumed: in-place updates
/// mutate the clone, so one cached prefix serves any number of deltas.
///
/// # Errors
/// See [`run_with_meter`]; the same failures a cold run's final unit
/// would hit (limits, collisions, bounds) land here.
///
/// # Panics
/// When `compiled` does not end in an update unit — callers gate on
/// [`Compiled::delta`] being `Some`.
pub fn run_delta(
    compiled: &Compiled,
    base: &ExecState,
    funcs: &FuncTable,
    options: &RunOptions,
    meter: &mut Meter,
) -> Result<ExecOutput, RuntimeError> {
    assert!(
        matches!(compiled.units.last(), Some(Unit::Update { .. })),
        "run_delta requires a trailing update unit"
    );
    let mut state = base.clone();
    let last = compiled.units.len() - 1;
    run_units(
        compiled,
        last..compiled.units.len(),
        &mut state,
        &HashMap::new(),
        funcs,
        options,
        meter,
    )?;
    Ok(state.into_output(meter))
}

/// Execute `compiled.units[range]`, threading `state` through. This is
/// the executor's single engine-dispatch loop; [`run_with_meter`] runs
/// the whole range and the serving layer splits a delta-eligible
/// program at its trailing update.
///
/// # Errors
/// See [`run_with_meter`].
pub fn run_units(
    compiled: &Compiled,
    range: std::ops::Range<usize>,
    state: &mut ExecState,
    inputs: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
    options: &RunOptions,
    meter: &mut Meter,
) -> Result<(), RuntimeError> {
    let threads = options.threads.unwrap_or_else(default_threads);
    // The engines consume and return the binding map wholesale
    // (`Vm::bind_all` / `into_arrays`), so work on owned state and put
    // it back on success; a failed run's partial state is discarded
    // with the error.
    let mut arrays = std::mem::take(&mut state.arrays);
    let mut scalars = std::mem::take(&mut state.scalars);
    let mut counters = std::mem::take(&mut state.counters);

    for unit in &compiled.units[range] {
        match unit {
            Unit::Input { name, bounds } => {
                let buf = inputs
                    .get(name)
                    .ok_or_else(|| RuntimeError::UnboundArray(name.clone()))?;
                debug_assert_eq!(&buf.bounds(), bounds, "input `{name}` shape mismatch");
                meter.charge_mem(buf.len() as u64 * 8)?;
                arrays.insert(name.clone(), buf.clone());
            }
            Unit::Thunkless {
                name,
                prog,
                tape,
                par,
            } => {
                let mut vm = Vm::new();
                vm.with_funcs(funcs.clone());
                vm.with_meter(std::mem::take(meter));
                vm.with_faults(options.faults.clone());
                for (p, v) in compiled.env.iter() {
                    vm.set_global(p, v as f64);
                }
                for (n, v) in &scalars {
                    vm.set_global(n.clone(), *v);
                }
                // Move the environment through the VM: no copies.
                vm.bind_all(std::mem::take(&mut arrays));
                let out = match (tape, par) {
                    (Some(t), Some(p)) => vm.run_partape(t, p, threads),
                    (Some(t), None) => vm.run_tape(t),
                    (None, _) => vm.run(prog),
                };
                *meter = vm.take_meter();
                out?;
                counters.vm = add_vm(counters.vm, vm.counters);
                arrays = vm.into_arrays();
                debug_assert!(arrays.contains_key(name), "program allocated its result");
            }
            Unit::Thunked { defs } => {
                for (_, b, _) in defs {
                    // Thunked arrays always track definedness, so the
                    // bitmap rides along with the element storage.
                    meter.charge_mem(ArrayBuf::footprint_bytes(b, true))?;
                }
                let triples: Vec<hac_runtime::group::GroupDef<'_>> = defs
                    .iter()
                    .map(|(n, b, c)| (n.as_str(), b.clone(), c))
                    .collect();
                // The group holds `&RefCell<Meter>` for its lifetime, so
                // park the meter in a cell and take it back afterwards —
                // including on the error paths, which must report the
                // exact balance at the failure point.
                let meter_cell = RefCell::new(std::mem::take(meter));
                let results = (|| {
                    let group = ThunkedGroup::build_metered(
                        &triples,
                        &compiled.env,
                        &scalars,
                        &arrays,
                        funcs,
                        Some(&meter_cell),
                    )?;
                    let out = group.force_elements();
                    let gc = group.counters();
                    counters.thunked.thunks_allocated += gc.thunks_allocated;
                    counters.thunked.demands += gc.demands;
                    counters.thunked.memo_hits += gc.memo_hits;
                    out?;
                    group.into_strict()
                })();
                *meter = meter_cell.into_inner();
                for (n, b) in results? {
                    arrays.insert(n, b);
                }
            }
            Unit::Accum { def, bounds } => {
                let ArrayKind::Accumulated {
                    combine, default, ..
                } = &def.kind
                else {
                    unreachable!("accum unit holds accumulated def")
                };
                let buf = eval_accum_with_scalars(
                    &def.name,
                    bounds,
                    &def.comp,
                    *combine,
                    default,
                    &compiled.env,
                    &scalars,
                    &arrays,
                    funcs,
                )?;
                arrays.insert(def.name.clone(), buf);
            }
            Unit::Reduce {
                name,
                op,
                init,
                comp,
            } => {
                let v = eval_reduce(*op, init, comp, &compiled.env, &scalars, &arrays, funcs)?;
                scalars.push((name.clone(), v));
            }
            Unit::Update {
                name,
                base,
                lowered,
                tape,
                par,
            } => {
                let mut vm = Vm::new();
                vm.with_funcs(funcs.clone());
                vm.with_meter(std::mem::take(meter));
                vm.with_faults(options.faults.clone());
                for (p, v) in compiled.env.iter() {
                    vm.set_global(p, v as f64);
                }
                for (n, v) in &scalars {
                    vm.set_global(n.clone(), *v);
                }
                vm.bind_all(std::mem::take(&mut arrays));
                if lowered.in_place {
                    vm.alias(name.clone(), base.clone());
                }
                let out = match (tape, par) {
                    (Some(t), Some(p)) => vm.run_partape(t, p, threads),
                    (Some(t), None) => vm.run_tape(t),
                    (None, _) => vm.run(&lowered.prog),
                };
                *meter = vm.take_meter();
                out?;
                counters.vm = add_vm(counters.vm, vm.counters);
                arrays = vm.into_arrays();
                if lowered.in_place {
                    // The base's storage *is* the result; the compiler
                    // rejected any later use of the consumed name.
                    let buf = arrays
                        .remove(base)
                        .expect("in-place update mutated its base");
                    arrays.insert(name.clone(), buf);
                }
            }
        }
    }
    state.arrays = arrays;
    state.scalars = scalars;
    state.counters = counters;
    Ok(())
}

fn add_vm(a: VmCounters, b: VmCounters) -> VmCounters {
    VmCounters {
        stores: a.stores + b.stores,
        loads: a.loads + b.loads,
        check_ops: a.check_ops + b.check_ops,
        loop_iterations: a.loop_iterations + b.loop_iterations,
        temp_elements: a.temp_elements + b.temp_elements,
        elements_copied: a.elements_copied + b.elements_copied,
        array_allocs: a.array_allocs + b.array_allocs,
        tape_ops: a.tape_ops + b.tape_ops,
        engine_faults: a.engine_faults + b.engine_faults,
    }
}

/// Convenience: parse, compile, and run in one call.
///
/// # Errors
/// Parse, compile, or runtime failures, boxed.
pub fn compile_and_run(
    source: &str,
    env: &ConstEnv,
    inputs: &HashMap<String, ArrayBuf>,
) -> Result<ExecOutput, Box<dyn std::error::Error>> {
    let program = hac_lang::parser::parse_program(source)?;
    let compiled = compile(&program, env, &CompileOptions::default())?;
    let out = run(&compiled, inputs, &FuncTable::new())?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::parser::parse_program;

    fn run_src(src: &str, n: i64) -> ExecOutput {
        let env = ConstEnv::from_pairs([("n", n)]);
        compile_and_run(src, &env, &HashMap::new()).unwrap()
    }

    #[test]
    fn end_to_end_recurrence() {
        let out = run_src(
            "param n;\nletrec* a = array (1,n) ([ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]);\n",
            6,
        );
        assert_eq!(out.array("a").data(), &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]);
        // Thunkless: no thunks allocated, checks elided.
        assert_eq!(out.counters.thunked.thunks_allocated, 0);
        assert_eq!(out.counters.vm.check_ops, 0);
    }

    #[test]
    fn end_to_end_wavefront() {
        let out = run_src(
            r#"
param n;
letrec* a = array ((1,1),(n,n))
   ([ (1,j) := 1 | j <- [1..n] ] ++
    [ (i,1) := 1 | i <- [2..n] ] ++
    [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
       | i <- [2..n], j <- [2..n] ]);
"#,
            5,
        );
        assert_eq!(out.array("a").get("a", &[5, 5]).unwrap(), 321.0);
        assert_eq!(out.counters.thunked.thunks_allocated, 0);
    }

    #[test]
    fn forced_thunked_matches_thunkless() {
        let src = "param n;\nletrec* a = array (1,n) \
                   ([ n := 1 ] ++ [ i := a!(i+1) + i | i <- [1..n-1] ]);\n";
        let env = ConstEnv::from_pairs([("n", 8)]);
        let program = parse_program(src).unwrap();
        let auto = compile(&program, &env, &CompileOptions::default()).unwrap();
        let thunked = compile(
            &program,
            &env,
            &CompileOptions {
                mode: ExecMode::ForceThunked,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let inputs = HashMap::new();
        let funcs = FuncTable::new();
        let a = run(&auto, &inputs, &funcs).unwrap();
        let t = run(&thunked, &inputs, &funcs).unwrap();
        assert_eq!(a.array("a").data(), t.array("a").data());
        assert_eq!(a.counters.thunked.thunks_allocated, 0);
        assert_eq!(t.counters.thunked.thunks_allocated, 8);
    }

    #[test]
    fn inputs_flow_through() {
        let src = "param n;\ninput u (1,n);\nlet a = array (1,n) [ i := u!i * 2 | i <- [1..n] ];\n";
        let env = ConstEnv::from_pairs([("n", 3)]);
        let program = parse_program(src).unwrap();
        let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
        let mut u = ArrayBuf::new(&[(1, 3)], 0.0);
        for i in 1..=3 {
            u.set("u", &[i], i as f64).unwrap();
        }
        let mut inputs = HashMap::new();
        inputs.insert("u".to_string(), u);
        let out = run(&compiled, &inputs, &FuncTable::new()).unwrap();
        assert_eq!(out.array("a").data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn mutual_letrec_falls_back_to_thunked_group() {
        let src = r#"
param n;
letrec* a = array (1,n) ([ 1 := 1 ] ++ [ i := b!(i-1) + 1 | i <- [2..n] ])
      and b = array (1,n) [ i := a!i * 2 | i <- [1..n] ];
"#;
        let out = run_src(src, 4);
        assert_eq!(out.array("a").data(), &[1.0, 3.0, 7.0, 15.0]);
        assert_eq!(out.array("b").data(), &[2.0, 6.0, 14.0, 30.0]);
        assert!(out.counters.thunked.thunks_allocated > 0);
    }

    #[test]
    fn certain_collision_is_compile_error() {
        let src = "param n;\nlet a = array (1,n) ([ i := 0 | i <- [1..n] ] ++ [ 3 := 1 ]);\n";
        let env = ConstEnv::from_pairs([("n", 5)]);
        let program = parse_program(src).unwrap();
        let err = compile(&program, &env, &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::CertainCollision { .. }));
    }

    #[test]
    fn possible_collision_gets_runtime_checks() {
        // A guard hides the collision from the "certain" verdict, so
        // checks are compiled; at runtime the collision is caught.
        let src = "param n;\nlet a = array (1,n) \
                   ([ i := 0 | i <- [1..n], i < n ] ++ [ 3 := 1 ]);\n";
        let env = ConstEnv::from_pairs([("n", 5)]);
        let program = parse_program(src).unwrap();
        let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
        let err = run(&compiled, &HashMap::new(), &FuncTable::new()).unwrap_err();
        assert!(matches!(err, RuntimeError::WriteCollision { .. }));
    }

    #[test]
    fn bigupd_end_to_end_row_swap() {
        let src = r#"
param n;
letrec* a = array ((1,1),(2,n)) [ (i,j) := i * 10 + j | i <- [1..2], j <- [1..n] ];
b = bigupd a ([ (1,j) := a!(2,j) | j <- [1..n] ] ++ [ (2,j) := a!(1,j) | j <- [1..n] ]);
"#;
        let out = run_src(src, 4);
        let b = out.array("b");
        for j in 1..=4 {
            assert_eq!(b.get("b", &[1, j]).unwrap(), (20 + j) as f64);
            assert_eq!(b.get("b", &[2, j]).unwrap(), (10 + j) as f64);
        }
        assert_eq!(out.counters.vm.elements_copied, 0, "in place");
        assert_eq!(out.counters.vm.temp_elements, 4, "one row temp");
    }

    #[test]
    fn accum_array_unit() {
        let src = "param n;\nlet h = accumArray (+) 0 (0,2) [ i mod 3 := 1.0 | i <- [1..n] ];\n";
        let out = run_src(src, 9);
        assert_eq!(out.array("h").data(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn thunk_fallback_for_unschedulable() {
        // An indirect subscript (`p!i`) defeats the linear analysis, so
        // the scheduler falls back to thunks — which evaluate the
        // dynamic dependence chain just fine.
        let src = r#"
param n;
input p (1,n);
letrec* a = array (1,n) [ i := if i == 1 then 1 else a!(p!i) + 1 | i <- [1..n] ];
"#;
        let env = ConstEnv::from_pairs([("n", 5)]);
        let program = parse_program(src).unwrap();
        let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
        let mut p = ArrayBuf::new(&[(1, 5)], 0.0);
        for i in 1..=5 {
            p.set("p", &[i], (i - 1).max(1) as f64).unwrap();
        }
        let mut inputs = HashMap::new();
        inputs.insert("p".to_string(), p);
        let out = run(&compiled, &inputs, &FuncTable::new()).unwrap();
        assert_eq!(out.array("a").data(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(
            out.counters.thunked.thunks_allocated > 0,
            "thunked fallback"
        );
    }

    #[test]
    fn report_renders() {
        let src = "param n;\nletrec* a = array (1,n) ([ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]);\n";
        let env = ConstEnv::from_pairs([("n", 6)]);
        let program = parse_program(src).unwrap();
        let compiled = compile(&program, &env, &CompileOptions::default()).unwrap();
        let text = compiled.report.render();
        assert!(text.contains("a"), "{text}");
        assert!(text.contains("thunkless"), "{text}");
    }
}
