//! Human-readable compilation reports: what the analysis proved, which
//! dependence edges it found, and what the scheduler decided — the
//! compiler's explanation of every optimization it did or did not
//! apply.
//!
//! Runtime counters accompany these reports in [`ExecOutput`]
//! (`counters.vm`, a [`hac_codegen::limp::VmCounters`]). Since the
//! bytecode-tape engine landed, that struct also carries `tape_ops` —
//! the number of tape instructions dispatched by `Vm::run_tape`. It is
//! an engine-level dispatch count, not a semantic one: it is zero when
//! running under `Engine::TreeWalk`, while every other counter (stores,
//! loads, check ops, loop iterations, copies, allocations) means the
//! same thing and takes the same value under both engines.
//!
//! [`ExecOutput`]: crate::pipeline::ExecOutput

use std::fmt::Write as _;

use hac_analysis::analyze::{
    ArrayAnalysis, BoundsVerdict, CollisionVerdict, EmptiesVerdict, UpdateAnalysis,
};
use hac_analysis::depgraph::DepEdge;
use hac_analysis::parallel::{loop_parallelism, parallelism_summary};
use hac_analysis::search::{Confidence, TestStats};
use hac_codegen::lower::LoweredUpdate;
use hac_lang::ast::{ArrayDef, Comp};
use hac_schedule::plan::Plan;
use hac_schedule::split::{UpdatePlan, UpdateStrategy};

/// Report for one array definition.
#[derive(Debug, Clone)]
pub struct ArrayReport {
    pub name: String,
    /// Rendered dependence edges, e.g. `c0 → c1 flow (<) dist [1] [exact]`.
    pub edges: Vec<String>,
    pub collisions: String,
    pub empties: String,
    pub bounds: String,
    /// `thunkless`, `thunked`, or `accumulated` plus detail.
    pub outcome: String,
    pub checks_elided: bool,
    /// §10: per-verdict loop lists (vectorizable / parallelizable /
    /// sequential).
    pub parallelism: Vec<(String, Vec<String>)>,
    /// Per-loop fusion verdicts from the tape fusion pass (kernel
    /// shape, or the reason fusion was declined). Empty when the pass
    /// did not run (tree-walk engine or `--no-fuse`).
    pub fusion: Vec<String>,
}

fn parallelism_lines(comp: &Comp, edges: &[DepEdge]) -> Vec<(String, Vec<String>)> {
    let loops = loop_parallelism(comp, edges);
    parallelism_summary(&loops)
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

fn render_edge(e: &DepEdge) -> String {
    let conf = match &e.confidence {
        Confidence::Confirmed(_) => " [exact]",
        Confidence::Possible => " [possible]",
    };
    let dist = match &e.distance {
        Some(d) => format!(" dist {d:?}"),
        None => String::new(),
    };
    format!("{} → {} {} {}{}{}", e.src, e.dst, e.kind, e.dv, dist, conf)
}

fn render_collisions(v: &CollisionVerdict) -> String {
    match v {
        CollisionVerdict::Impossible => "impossible (checks elided)".to_string(),
        CollisionVerdict::Possible(pairs) => {
            format!("possible between {pairs:?} (runtime checks compiled)")
        }
        CollisionVerdict::Certain { pair, .. } => {
            format!("certain between {} and {} (error)", pair.0, pair.1)
        }
    }
}

fn render_empties(v: &EmptiesVerdict) -> String {
    match v {
        EmptiesVerdict::Impossible => "impossible (checks elided)".to_string(),
        EmptiesVerdict::Possible(reason) => format!("possible: {reason}"),
    }
}

fn render_bounds(v: &BoundsVerdict) -> String {
    match v {
        BoundsVerdict::InBounds => "all writes in bounds".to_string(),
        BoundsVerdict::MayExceed(sites) => format!("{} write(s) may escape bounds", sites.len()),
    }
}

impl ArrayReport {
    /// Report a thunkless compilation.
    pub fn thunkless(
        def: &ArrayDef,
        analysis: &ArrayAnalysis,
        plan: &Plan,
        checks_elided: bool,
    ) -> ArrayReport {
        ArrayReport {
            name: def.name.clone(),
            edges: analysis.flow.edges.iter().map(render_edge).collect(),
            collisions: render_collisions(&analysis.collisions),
            empties: render_empties(&analysis.empties),
            bounds: render_bounds(&analysis.oob),
            outcome: format!("thunkless\n{}", indent(&plan.render())),
            checks_elided,
            parallelism: parallelism_lines(&def.comp, &analysis.flow.edges),
            fusion: Vec::new(),
        }
    }

    /// Report a thunked fallback.
    pub fn thunked(def: &ArrayDef, analysis: &ArrayAnalysis, reason: &str) -> ArrayReport {
        ArrayReport {
            name: def.name.clone(),
            edges: analysis.flow.edges.iter().map(render_edge).collect(),
            collisions: render_collisions(&analysis.collisions),
            empties: render_empties(&analysis.empties),
            bounds: render_bounds(&analysis.oob),
            outcome: format!("thunked ({reason})"),
            checks_elided: false,
            parallelism: parallelism_lines(&def.comp, &analysis.flow.edges),
            fusion: Vec::new(),
        }
    }

    /// Report an accumulated array.
    pub fn accumulated(def: &ArrayDef, analysis: &ArrayAnalysis) -> ArrayReport {
        ArrayReport {
            name: def.name.clone(),
            edges: Vec::new(),
            collisions: "combined by accumArray".to_string(),
            empties: "filled by default value".to_string(),
            bounds: render_bounds(&analysis.oob),
            outcome: "accumulated (strict, list order)".to_string(),
            checks_elided: true,
            parallelism: Vec::new(),
            fusion: Vec::new(),
        }
    }
}

/// Report for one `bigupd`.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    pub name: String,
    pub base: String,
    pub anti_edges: Vec<String>,
    pub flow_edges: Vec<String>,
    pub strategy: String,
    pub in_place: bool,
    /// §10 verdicts over the full (flow + anti) edge set — what
    /// `Engine::ParTape` consults, so a loop listed `sequential` here
    /// explains why the pass falls back to one worker.
    pub parallelism: Vec<(String, Vec<String>)>,
    /// Per-loop fusion verdicts from the tape fusion pass.
    pub fusion: Vec<String>,
}

impl UpdateReport {
    /// Build from the analysis and planning artifacts.
    pub fn new(
        name: &str,
        base: &str,
        comp: &Comp,
        analysis: &UpdateAnalysis,
        update: &UpdatePlan,
        lowered: &LoweredUpdate,
    ) -> UpdateReport {
        let full: Vec<DepEdge> = analysis
            .flow
            .edges
            .iter()
            .chain(analysis.anti.edges.iter())
            .cloned()
            .collect();
        let strategy = match &update.strategy {
            UpdateStrategy::InPlace => "in place, zero copies".to_string(),
            UpdateStrategy::Split(actions) => format!(
                "in place after node splitting: {}",
                actions
                    .iter()
                    .map(|a| format!("{a:?}"))
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
            UpdateStrategy::CopyWhole => "whole-array copy".to_string(),
        };
        UpdateReport {
            name: name.to_string(),
            base: base.to_string(),
            anti_edges: analysis.anti.edges.iter().map(render_edge).collect(),
            flow_edges: analysis.flow.edges.iter().map(render_edge).collect(),
            strategy,
            in_place: lowered.in_place,
            parallelism: parallelism_lines(comp, &full),
            fusion: Vec::new(),
        }
    }
}

/// The whole program's compilation report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub arrays: Vec<ArrayReport>,
    pub updates: Vec<UpdateReport>,
    /// Scalar reductions (§3.1 folds compiled to DO loops).
    pub reductions: Vec<String>,
    /// The rendered cost certificate — `cost fuel: n-1 = 999, mem: 8n
    /// = 8000` when the bound closed, `cost: open (<reason>)` when it
    /// did not. `None` only for reports built outside [`compile`].
    ///
    /// [`compile`]: crate::pipeline::compile
    pub cost: Option<String>,
    pub stats: TestStats,
}

impl Report {
    /// Render as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for a in &self.arrays {
            let _ = writeln!(out, "array `{}`:", a.name);
            if a.edges.is_empty() {
                let _ = writeln!(out, "  dependences: none");
            } else {
                let _ = writeln!(out, "  dependences:");
                for e in &a.edges {
                    let _ = writeln!(out, "    {e}");
                }
            }
            let _ = writeln!(out, "  write collisions: {}", a.collisions);
            let _ = writeln!(out, "  empties: {}", a.empties);
            let _ = writeln!(out, "  bounds: {}", a.bounds);
            let _ = writeln!(out, "  outcome: {}", a.outcome);
            for (verdict, loops) in &a.parallelism {
                let _ = writeln!(out, "  loops {verdict}: {}", loops.join(", "));
            }
            for f in &a.fusion {
                let _ = writeln!(out, "  fusion {f}");
            }
        }
        for r in &self.reductions {
            let _ = writeln!(out, "{r}");
        }
        for u in &self.updates {
            let _ = writeln!(out, "update `{}` of `{}`:", u.name, u.base);
            for e in &u.flow_edges {
                let _ = writeln!(out, "  flow {e}");
            }
            for e in &u.anti_edges {
                let _ = writeln!(out, "  anti {e}");
            }
            let _ = writeln!(out, "  strategy: {}", u.strategy);
            let _ = writeln!(out, "  in place: {}", u.in_place);
            for (verdict, loops) in &u.parallelism {
                let _ = writeln!(out, "  loops {verdict}: {}", loops.join(", "));
            }
            for f in &u.fusion {
                let _ = writeln!(out, "  fusion {f}");
            }
        }
        if let Some(cost) = &self.cost {
            let _ = writeln!(out, "{cost}");
        }
        let _ = writeln!(
            out,
            "tests: {} gcd, {} banerjee, {} exact, {} search nodes",
            self.stats.gcd_calls,
            self.stats.banerjee_calls,
            self.stats.exact_calls,
            self.stats.nodes
        );
        out
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_renders_stats_line() {
        let r = Report::default();
        let text = r.render();
        assert!(text.contains("tests: 0 gcd"));
    }
}
