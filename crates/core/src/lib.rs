//! # hac-core
//!
//! The complete compiler pipeline of the `hac` reproduction of Anderson
//! & Hudak, *"Compilation of Haskell Array Comprehensions for
//! Scientific Computing"* (PLDI 1990):
//!
//! ```text
//! parse → number → subscript analysis → static scheduling → Limp codegen
//!                     (GCD/Banerjee/exact)   (§8 directions,     (thunkless
//!                      §§5–7 verdicts         passes; §9 node     loops, VM)
//!                                             splitting)
//! ```
//!
//! Arrays the scheduler can order run **thunkless** — raw `f64` stores
//! in statically chosen loop directions, with collision/empties checks
//! elided whenever §4/§7 analysis discharged them. Arrays it cannot
//! order (or that you force, for baselines) run on the **thunked**
//! reference evaluator. `bigupd` bindings run **in place** whenever §9
//! scheduling plus node splitting permits.
//!
//! # Quickstart
//!
//! ```
//! use std::collections::HashMap;
//! use hac_core::{compile_and_run};
//! use hac_lang::ConstEnv;
//!
//! let out = compile_and_run(
//!     "param n;\n\
//!      letrec* a = array (1,n)\n\
//!        ([ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]);\n",
//!     &ConstEnv::from_pairs([("n", 5)]),
//!     &HashMap::new(),
//! ).unwrap();
//! assert_eq!(out.array("a").data(), &[1.0, 2.0, 4.0, 8.0, 16.0]);
//! assert_eq!(out.counters.thunked.thunks_allocated, 0); // thunkless!
//! ```

mod cost;
pub mod deadline;
pub mod pipeline;
pub mod report;

pub use deadline::DeadlineGovernor;
pub use pipeline::{
    compile, compile_and_run, run, CompileError, CompileOptions, Compiled, Engine, ExecCounters,
    ExecMode, ExecOutput, Unit,
};
pub use report::{ArrayReport, Report, UpdateReport};

// Re-export the component crates so downstream users need one
// dependency.
pub use hac_analysis as analysis;
pub use hac_codegen as codegen;
pub use hac_graph as graph;
pub use hac_lang as lang;
pub use hac_runtime as runtime;
pub use hac_schedule as schedule;
