//! Tape-compile fusion: lower proven-parallel innermost loops into
//! vector superinstructions.
//!
//! The paper's subscript analysis proves comprehension loops
//! collision-free and thunkless — exactly the precondition for
//! *vectorizing* them. This pass walks a compiled [`TapeProgram`] and,
//! for every innermost loop whose §10 verdict is parallel and whose
//! body is straight-line arithmetic over unchecked strength-reduced
//! accesses ([`Op::ReadLin`]/[`Op::StoreLin`] with hoisted checks),
//! overlays the loop's `LoopInit` with an [`Op::VecLoop`]
//! superinstruction. The scalar head/body/next ops stay in place
//! directly after it, serving as the run-time fallback (unbound
//! buffers) and as the differential oracle (`--no-fuse` skips this
//! pass entirely and nothing else changes).
//!
//! Fusion preconditions, all decided here at compile time:
//!
//! * the loop's `par` verdict holds (iterations mutually independent),
//! * no nested loops — fusion targets innermost loops only,
//! * every array access is a `ReadLin`/`StoreLin` whose bounds checks
//!   were discharged by the interval proof (`checks: None`) and whose
//!   store carries no definedness check,
//! * no calls, branches, allocations, copies, or unresolved names in
//!   the body, and the body's operand stack and local bindings fit the
//!   micro-interpreter's fixed scratch.
//!
//! Under those conditions every iteration executes the same ops, so
//! the scalar loop's counters, fuel charges, and post-loop state are
//! closed-form in the iteration count and can be settled in bulk (see
//! the accounting contract in [`crate::tape`]). Common body shapes
//! (fill/copy/elementwise/multiply-add/stencils) additionally classify
//! to hand-written contiguous-slice kernels that the Rust compiler
//! autovectorizes; everything else runs a per-element micro-op
//! interpreter that still amortizes dispatch and metering.

use crate::partape::trip_count;
use crate::tape::{
    FusedEntry, FusedStream, KScalar, KSrc, Kernel, MicroOp, Op, TapeProgram, FUSE_MAX_STACK,
    FUSE_MAX_TEMPS,
};
use hac_lang::ast::BinOp;

/// The fusion verdict for one loop, in source (pc) order — rendered
/// into `--report` so every decision is explained.
#[derive(Debug, Clone)]
pub struct FuseDecision {
    /// Loop variable spelling.
    pub var: String,
    pub start: i64,
    pub end: i64,
    pub step: i64,
    /// Kernel shape when fused.
    pub kernel: Option<String>,
    /// Decline reason when scalar.
    pub reason: Option<String>,
}

impl FuseDecision {
    /// One-line rendering, e.g. `for j in [2..9]: fused (4-point
    /// stencil)` or `for i in [1..8]: scalar (contains a nested loop;
    /// fusion targets innermost loops)`.
    pub fn render(&self) -> String {
        let step = if self.step == 1 {
            String::new()
        } else {
            format!(" step {}", self.step)
        };
        let head = format!("for {} in [{}..{}]{}", self.var, self.start, self.end, step);
        match (&self.kernel, &self.reason) {
            (Some(k), _) => format!("{head}: fused ({k})"),
            (None, Some(r)) => format!("{head}: scalar ({r})"),
            (None, None) => head,
        }
    }
}

/// Run the fusion pass over a compiled tape, overlaying every eligible
/// innermost loop with a vector superinstruction. Returns one decision
/// per loop, in source order. Idempotent on already-fused tapes
/// (fused loops report their kernel again).
pub fn fuse_tape(tape: &mut TapeProgram) -> Vec<FuseDecision> {
    let mut decisions = Vec::new();
    let mut pc = 0usize;
    while pc + 1 < tape.ops.len() {
        let (Op::LoopInit { ireg, start }, Op::LoopHead { end, step, .. }) =
            (&tape.ops[pc], &tape.ops[pc + 1])
        else {
            if let (Op::VecLoop(k), Op::LoopHead { end, step, .. }) =
                (&tape.ops[pc], &tape.ops[pc + 1])
            {
                let e = &tape.fused[*k as usize];
                decisions.push(FuseDecision {
                    var: loop_var(tape, (pc + 1) as u32),
                    start: e.start,
                    end: *end,
                    step: *step,
                    kernel: Some(e.kernel.shape().to_string()),
                    reason: None,
                });
            }
            pc += 1;
            continue;
        };
        let (ireg, start, end, step) = (*ireg, *start, *end, *step);
        let var = loop_var(tape, (pc + 1) as u32);
        match try_fuse(tape, pc) {
            Ok(entry) => {
                let shape = entry.kernel.shape().to_string();
                debug_assert_eq!(ireg, entry.ireg);
                let k = tape.fused.len() as u32;
                tape.fused.push(entry);
                tape.ops[pc] = Op::VecLoop(k);
                decisions.push(FuseDecision {
                    var,
                    start,
                    end,
                    step,
                    kernel: Some(shape),
                    reason: None,
                });
            }
            Err(reason) => decisions.push(FuseDecision {
                var,
                start,
                end,
                step,
                kernel: None,
                reason: Some(reason.to_string()),
            }),
        }
        pc += 1;
    }
    decisions
}

fn loop_var(tape: &TapeProgram, head_pc: u32) -> String {
    tape.loop_vars
        .iter()
        .find(|(h, _)| *h == head_pc)
        .map_or_else(|| "?".to_string(), |(_, v)| v.clone())
}

/// Attempt to build a [`FusedEntry`] for the loop whose `LoopInit`
/// sits at `init_pc`. Returns the decline reason otherwise.
#[allow(clippy::too_many_lines)]
fn try_fuse(tape: &TapeProgram, init_pc: usize) -> Result<FusedEntry, &'static str> {
    let Op::LoopInit { ireg, start } = tape.ops[init_pc] else {
        unreachable!("caller matched LoopInit");
    };
    let Op::LoopHead {
        ireg: hreg,
        slot,
        end,
        step,
        exit,
        par,
        red,
    } = tape.ops[init_pc + 1]
    else {
        unreachable!("LoopInit is always followed by its LoopHead");
    };
    debug_assert_eq!(ireg, hreg);
    if !par && !red {
        return Err("non-reassociable carry");
    }
    let exit_pc = exit as usize;
    debug_assert!(matches!(tape.ops[exit_pc - 1], Op::LoopNext { .. }));
    let body = &tape.ops[init_pc + 2..exit_pc - 1];

    // One classification sweep: find the first structural reason the
    // closed-form accounting (and therefore fusion) would be unsound.
    let mut nested = false;
    let mut dynamic = false;
    let mut bounds = false;
    let mut defined = false;
    let mut call = false;
    let mut branch = false;
    let mut unbound = false;
    let mut other = false;
    for op in body {
        match op {
            Op::LoopInit { .. } | Op::LoopHead { .. } | Op::LoopNext { .. } | Op::VecLoop(_) => {
                nested = true;
            }
            Op::ToIdx(_) | Op::ReadDyn { .. } | Op::StoreDyn { .. } => dynamic = true,
            Op::ReadLin(l) => {
                if tape.lins[*l as usize].checks.is_some() {
                    bounds = true;
                }
            }
            Op::StoreLin { lin, checked } => {
                if *checked {
                    defined = true;
                }
                if tape.lins[*lin as usize].checks.is_some() {
                    bounds = true;
                }
            }
            Op::Call { .. } | Op::ResolveFunc(_) => call = true,
            Op::AndJump(_) | Op::OrJump(_) | Op::OrNorm | Op::JumpIfZero(_) | Op::Jump(_) => {
                branch = true;
            }
            Op::ErrVar(_) => unbound = true,
            Op::Alloc(_) | Op::Copy { .. } | Op::CheckComplete { .. } | Op::Halt => other = true,
            Op::Const(_) | Op::LoadSlot(_) | Op::StoreSlot(_) | Op::Bin(_) | Op::Un(_) => {}
        }
    }
    if nested {
        return Err("contains a nested loop; fusion targets innermost loops");
    }
    if dynamic {
        return Err("non-affine subscript takes the dynamic access path");
    }
    if bounds {
        return Err("bounds checks not discharged by the interval proof");
    }
    if defined {
        return Err("definedness checks active on stores");
    }
    if call {
        return Err("function call in body");
    }
    if branch {
        return Err("conditional control flow in body");
    }
    if unbound {
        return Err("unresolved name in body");
    }
    if other {
        return Err("allocation or copy in body");
    }

    // Translate the straight-line body into the micro-op string,
    // resolving slots to the loop variable, invariants, or body-local
    // temporaries, and linear accesses to streams.
    let mut streams: Vec<FusedStream> = Vec::new();
    let mut micro: Vec<MicroOp> = Vec::new();
    let mut slot_temp: Vec<(u32, u8)> = Vec::new();
    let mut invariant_reads: Vec<u32> = Vec::new();
    let mut sp = 0usize;
    let mut max_sp = 0usize;
    let mut loads_per_iter = 0u64;
    let mut stores_per_iter = 0u64;

    let stream_of = |streams: &mut Vec<FusedStream>, l: u32| -> Result<u8, &'static str> {
        let lin = &tape.lins[l as usize];
        let mut stride = 0i64;
        let mut inv = Vec::new();
        for &(r, s) in &lin.terms {
            if r == ireg {
                stride = s;
            } else {
                inv.push((r, s));
            }
        }
        let st = FusedStream {
            array: lin.array,
            base: lin.base,
            inv,
            stride,
        };
        if let Some(i) = streams.iter().position(|x| *x == st) {
            return Ok(i as u8);
        }
        if streams.len() >= 256 {
            return Err("too many distinct access streams");
        }
        streams.push(st);
        Ok((streams.len() - 1) as u8)
    };

    for op in body {
        match op {
            Op::Const(v) => {
                micro.push(MicroOp::Const(*v));
                sp += 1;
            }
            Op::LoadSlot(s) => {
                if *s == slot {
                    micro.push(MicroOp::LoopVar);
                } else if let Some(&(_, t)) = slot_temp.iter().find(|(sl, _)| sl == s) {
                    micro.push(MicroOp::Temp(t));
                } else {
                    invariant_reads.push(*s);
                    micro.push(MicroOp::Invariant(*s));
                }
                sp += 1;
            }
            Op::StoreSlot(s) => {
                if invariant_reads.contains(s) {
                    // A slot first read as loop-invariant then written
                    // would need per-iteration frame traffic.
                    return Err("body rebinds an enclosing slot");
                }
                let t = match slot_temp.iter().find(|(sl, _)| sl == s) {
                    Some(&(_, t)) => t,
                    None => {
                        if slot_temp.len() >= FUSE_MAX_TEMPS {
                            return Err("too many body-local bindings");
                        }
                        let t = slot_temp.len() as u8;
                        slot_temp.push((*s, t));
                        t
                    }
                };
                micro.push(MicroOp::SetTemp(t));
                sp -= 1;
            }
            Op::Bin(b) => {
                micro.push(MicroOp::Bin(*b));
                sp -= 1;
            }
            Op::Un(u) => micro.push(MicroOp::Un(*u)),
            Op::ReadLin(l) => {
                let s = stream_of(&mut streams, *l)?;
                micro.push(MicroOp::Load(s));
                loads_per_iter += 1;
                sp += 1;
            }
            Op::StoreLin { lin, .. } => {
                let s = stream_of(&mut streams, *lin)?;
                micro.push(MicroOp::Store(s));
                stores_per_iter += 1;
                sp -= 1;
            }
            _ => unreachable!("excluded by the classification sweep"),
        }
        max_sp = max_sp.max(sp);
    }
    if max_sp > FUSE_MAX_STACK {
        return Err("body expression too deep for the micro-interpreter");
    }

    let kernel = classify(&micro, &streams, step, red);
    Ok(FusedEntry {
        ireg,
        slot,
        start,
        step,
        trip: trip_count(start, end, step),
        init_pc: init_pc as u32,
        exit_pc: exit,
        // head + body + next, dispatched once per complete iteration.
        iter_ops: (exit_pc - init_pc - 1) as u64,
        loads_per_iter,
        stores_per_iter,
        streams,
        micro,
        kernel,
    })
}

/// Classify the micro-op string into a hand-written kernel when it
/// matches a known shape with a destination array disjoint from every
/// source array. Streams are classified by *delta* — the per-ordinal
/// offset advance `stride·step` — so backward loops and strided
/// columns classify too: delta 1 walks as a contiguous slice, any
/// other nonzero delta as an explicit strided stream. The operand
/// order and association of the scalar RPN are preserved exactly, so
/// specialized kernels stay bit-identical.
///
/// Loops fused under the `red` verdict take [`classify_reduction`]
/// instead: their bodies *must* read the destination array (the
/// carried accumulator), and any reduction body the specializer does
/// not recognize falls back to [`Kernel::Generic`] — the micro-op
/// interpreter is the reduction arm of last resort, executing
/// iterations strictly in order over raw aliasing-safe cursors.
fn classify(micro: &[MicroOp], streams: &[FusedStream], step: i64, red: bool) -> Kernel {
    if red {
        return classify_reduction(micro, streams, step).unwrap_or(Kernel::Generic);
    }
    let stride = |s: u8| streams[s as usize].stride;
    let delta = |s: u8| streams[s as usize].stride.wrapping_mul(step);
    let leaf = |m: &MicroOp| -> Option<KSrc> {
        match m {
            MicroOp::Const(v) => Some(KSrc::Scalar(KScalar::Const(*v))),
            MicroOp::Invariant(s) => Some(KSrc::Scalar(KScalar::Slot(*s))),
            MicroOp::Load(s) if stride(*s) == 0 => Some(KSrc::Scalar(KScalar::Elem(*s))),
            MicroOp::Load(s) if delta(*s) == 1 => Some(KSrc::Slice(*s)),
            MicroOp::Load(s) => Some(KSrc::Strided(*s)),
            _ => None,
        }
    };
    // The destination must be a store with nonzero delta (offsets
    // injective in the ordinal) on an array none of the sources touch
    // (lets sources borrow while the destination is written raw;
    // aliasing bodies stay on the generic raw-pointer path).
    let Some(MicroOp::Store(d)) = micro.last() else {
        return Kernel::Generic;
    };
    let d = *d;
    if delta(d) == 0 {
        return Kernel::Generic;
    }
    let dst_array = streams[d as usize].array;
    let disjoint = |srcs: &[KSrc]| {
        srcs.iter().all(|s| match s {
            KSrc::Slice(x) | KSrc::Strided(x) | KSrc::Scalar(KScalar::Elem(x)) => {
                streams[*x as usize].array != dst_array
            }
            KSrc::Scalar(_) => true,
        })
    };
    let has_slice = |srcs: &[KSrc]| {
        srcs.iter()
            .any(|s| matches!(s, KSrc::Slice(_) | KSrc::Strided(_)))
    };

    match micro {
        [x, MicroOp::Store(_)] => match leaf(x) {
            Some(KSrc::Slice(s)) if streams[s as usize].array != dst_array && delta(d) == 1 => {
                Kernel::Copy { dst: d, src: s }
            }
            Some(KSrc::Scalar(v)) if disjoint(&[KSrc::Scalar(v)]) => {
                Kernel::Fill { dst: d, val: v }
            }
            _ => Kernel::Generic,
        },
        [a, b, MicroOp::Bin(op), MicroOp::Store(_)]
            if matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max
            ) =>
        {
            match (leaf(a), leaf(b)) {
                (Some(a), Some(b)) if disjoint(&[a, b]) && has_slice(&[a, b]) => Kernel::Ewise2 {
                    dst: d,
                    a,
                    b,
                    op: *op,
                },
                _ => Kernel::Generic,
            }
        }
        [a, b, MicroOp::Bin(BinOp::Mul), c, MicroOp::Bin(BinOp::Add), MicroOp::Store(_)] => {
            match (leaf(a), leaf(b), leaf(c)) {
                (Some(a), Some(b), Some(c)) if disjoint(&[a, b, c]) && has_slice(&[a, b, c]) => {
                    Kernel::MulAdd { dst: d, a, b, c }
                }
                _ => Kernel::Generic,
            }
        }
        [MicroOp::Load(s0), MicroOp::Load(s1), MicroOp::Bin(BinOp::Add), MicroOp::Load(s2), MicroOp::Bin(BinOp::Add), MicroOp::Load(s3), MicroOp::Bin(BinOp::Add), MicroOp::Const(c), MicroOp::Bin(last), MicroOp::Store(_)]
            if matches!(last, BinOp::Div | BinOp::Mul) =>
        {
            let s = [*s0, *s1, *s2, *s3];
            let srcs: Vec<KSrc> = s.iter().map(|&x| KSrc::Slice(x)).collect();
            if delta(d) == 1 && s.iter().all(|&x| delta(x) == 1) && disjoint(&srcs) {
                Kernel::Stencil4 {
                    dst: d,
                    s,
                    c: *c,
                    div: matches!(last, BinOp::Div),
                }
            } else {
                Kernel::Generic
            }
        }
        [MicroOp::Const(w0), MicroOp::Load(s0), MicroOp::Bin(BinOp::Mul), MicroOp::Const(w1), MicroOp::Load(s1), MicroOp::Bin(BinOp::Mul), MicroOp::Bin(BinOp::Add), MicroOp::Const(w2), MicroOp::Load(s2), MicroOp::Bin(BinOp::Mul), MicroOp::Bin(BinOp::Add), MicroOp::Store(_)] =>
        {
            let s = [*s0, *s1, *s2];
            let srcs: Vec<KSrc> = s.iter().map(|&x| KSrc::Slice(x)).collect();
            if delta(d) == 1 && s.iter().all(|&x| delta(x) == 1) && disjoint(&srcs) {
                Kernel::Stencil3 {
                    dst: d,
                    w: [*w0, *w1, *w2],
                    s,
                }
            } else {
                Kernel::Generic
            }
        }
        _ => Kernel::Generic,
    }
}

/// Classify a reduction-verdict body into a specialized fold kernel.
///
/// The scalar shape is `d[i] = d[i-1] ⊕ e(i)` with `⊕ ∈ {+, min,
/// max}`, compiled to the RPN `[Load(c), e…, Bin(⊕), Store(d)]` where
/// stream `c` reads *exactly* the cell `d` wrote one iteration ago
/// (same array, same stride, same invariant terms, base shifted back
/// by one ordinal delta). The carried load coming **first** means the
/// accumulator is the left operand of `apply_bin` — the orientation
/// [`Kernel::Sum`]'s register fold preserves, which is what makes the
/// overlay bit-identical for non-commutative corner cases (`min`/`max`
/// with signed zeros or NaNs).
///
/// `e` must be a pure stream/scalar expression over arrays disjoint
/// from the accumulator array. Anything else — the accumulator on the
/// right, other stores, temps, further reads of the destination —
/// returns `None` and the loop runs the order-faithful generic
/// micro-interpreter instead.
fn classify_reduction(micro: &[MicroOp], streams: &[FusedStream], step: i64) -> Option<Kernel> {
    let delta = |s: u8| streams[s as usize].stride.wrapping_mul(step);
    let [MicroOp::Load(c), mid @ .., MicroOp::Bin(op), MicroOp::Store(d)] = micro else {
        return None;
    };
    let (c, d, op) = (*c, *d, *op);
    if !matches!(op, BinOp::Add | BinOp::Min | BinOp::Max) {
        return None;
    }
    let dd = delta(d);
    if dd == 0 {
        return None;
    }
    let (sc, sd) = (&streams[c as usize], &streams[d as usize]);
    if sc.array != sd.array
        || sc.stride != sd.stride
        || sc.inv != sd.inv
        || sc.base != sd.base.wrapping_sub(dd)
    {
        return None;
    }
    let dst_array = sd.array;
    let leaf = |m: &MicroOp| -> Option<KSrc> {
        match m {
            MicroOp::Const(v) => Some(KSrc::Scalar(KScalar::Const(*v))),
            MicroOp::Invariant(s) => Some(KSrc::Scalar(KScalar::Slot(*s))),
            MicroOp::Load(s) if streams[*s as usize].array != dst_array => {
                Some(if streams[*s as usize].stride == 0 {
                    KSrc::Scalar(KScalar::Elem(*s))
                } else if delta(*s) == 1 {
                    KSrc::Slice(*s)
                } else {
                    KSrc::Strided(*s)
                })
            }
            _ => None,
        }
    };
    match mid {
        [x] => leaf(x).map(|src| Kernel::Sum { dst: d, src, op }),
        [a, b, MicroOp::Bin(BinOp::Mul)] if op == BinOp::Add => {
            let (ka, kb) = (leaf(a)?, leaf(b)?);
            if let (KSrc::Slice(a), KSrc::Slice(b)) = (ka, kb) {
                Some(Kernel::Dot { dst: d, a, b })
            } else {
                Some(Kernel::MulAddAcc {
                    dst: d,
                    a: ka,
                    b: kb,
                })
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limp::{LProgram, LStmt};
    use crate::tape::{compile_tape, TapeCtx};
    use hac_lang::ast::Expr;

    fn loop_over(par: bool, body: Vec<LStmt>) -> LProgram {
        LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(0, 9)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 0,
                    end: 9,
                    step: 1,
                    par,
                    red: false,
                    body,
                },
            ],
            result: "a".into(),
        }
    }

    fn store_i_sq() -> Vec<LStmt> {
        vec![LStmt::Store {
            array: "a".into(),
            subs: vec![Expr::Var("i".into())],
            value: Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(Expr::Var("i".into())),
                rhs: Box::new(Expr::Var("i".into())),
            },
            check: crate::limp::StoreCheck::None,
        }]
    }

    fn idx(a: &str, s: Expr) -> Expr {
        Expr::Index {
            array: a.into(),
            subs: vec![s],
        }
    }

    /// `a!(i-1)` — the carried accumulator cell.
    fn acc() -> Expr {
        idx("a", Expr::sub(Expr::var("i"), Expr::int(1)))
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }
    }

    /// A scan loop `for i in [1..9]: a!i := value` over arrays `a`,
    /// `u`, `v`, carrying the `red` verdict.
    fn scan_over(red: bool, value: Expr) -> LProgram {
        let alloc = |name: &str| LStmt::Alloc {
            array: name.into(),
            bounds: vec![(0, 9)],
            fill: 1.0,
            temp: false,
            checked: false,
        };
        LProgram {
            stmts: vec![
                alloc("a"),
                alloc("u"),
                alloc("v"),
                LStmt::For {
                    var: "i".into(),
                    start: 1,
                    end: 9,
                    step: 1,
                    par: false,
                    red,
                    body: vec![LStmt::Store {
                        array: "a".into(),
                        subs: vec![Expr::var("i")],
                        value,
                        check: crate::limp::StoreCheck::None,
                    }],
                },
            ],
            result: "a".into(),
        }
    }

    /// Compile + fuse, returning the scan loop's kernel shape name (or
    /// the decline reason prefixed with `scalar: `).
    fn scan_kernel(red: bool, value: Expr) -> String {
        let mut t = compile_tape(&scan_over(red, value), &TapeCtx::default());
        let d = fuse_tape(&mut t);
        assert_eq!(d.len(), 1);
        match (&d[0].kernel, &d[0].reason) {
            (Some(k), _) => k.clone(),
            (None, Some(r)) => format!("scalar: {r}"),
            (None, None) => unreachable!(),
        }
    }

    #[test]
    fn prefix_sum_classifies_as_running_sum() {
        let v = bin(BinOp::Add, acc(), idx("u", Expr::var("i")));
        assert_eq!(scan_kernel(true, v), "running sum");
    }

    #[test]
    fn max_scan_classifies_as_running_max() {
        let v = bin(BinOp::Max, acc(), idx("u", Expr::var("i")));
        assert_eq!(scan_kernel(true, v), "running max");
    }

    #[test]
    fn dot_recurrence_classifies_as_dot() {
        let prod = bin(
            BinOp::Mul,
            idx("u", Expr::var("i")),
            idx("v", Expr::var("i")),
        );
        let v = bin(BinOp::Add, acc(), prod);
        assert_eq!(scan_kernel(true, v), "dot");
    }

    #[test]
    fn strided_operand_classifies_as_mul_add_accumulate() {
        // `u!(2i-9)` walks with delta 2 (offsets 0,2,..,16 ⊆ [0,9]
        // rebased): a strided stream, so the dot specialization
        // degrades to the general multiply-add accumulate.
        let stretched = idx(
            "u",
            Expr::sub(
                Expr::bin(BinOp::Mul, Expr::int(2), Expr::var("i")),
                Expr::int(2),
            ),
        );
        let n = 5; // i in [1..5] keeps 2i-2 within [0,9]
        let mut prog = scan_over(
            true,
            bin(
                BinOp::Add,
                acc(),
                bin(BinOp::Mul, stretched, idx("v", Expr::var("i"))),
            ),
        );
        let Some(LStmt::For { end, .. }) = prog.stmts.last_mut() else {
            unreachable!()
        };
        *end = n;
        let mut t = compile_tape(&prog, &TapeCtx::default());
        let d = fuse_tape(&mut t);
        assert_eq!(d[0].kernel.as_deref(), Some("multiply-add accumulate"));
    }

    #[test]
    fn accumulator_on_the_right_falls_back_to_generic() {
        // `u!i + a!(i-1)` folds with the accumulator as the *right*
        // operand — a shape the register kernels cannot reproduce
        // bit-identically, so it runs the order-faithful interpreter.
        let v = bin(BinOp::Add, idx("u", Expr::var("i")), acc());
        assert_eq!(scan_kernel(true, v), "generic micro-kernel");
    }

    #[test]
    fn non_adjacent_carry_falls_back_to_generic() {
        // Reads `a!(i-2)`: not the cell written one iteration ago, so
        // the specialized scan is unsound — generic interpreter.
        let lag2 = idx("a", Expr::sub(Expr::var("i"), Expr::int(2)));
        let mut prog = scan_over(true, bin(BinOp::Add, lag2, idx("u", Expr::var("i"))));
        let Some(LStmt::For { start, .. }) = prog.stmts.last_mut() else {
            unreachable!()
        };
        *start = 2;
        let mut t = compile_tape(&prog, &TapeCtx::default());
        let d = fuse_tape(&mut t);
        assert_eq!(d[0].kernel.as_deref(), Some("generic micro-kernel"));
    }

    #[test]
    fn strided_destination_classifies_as_fill() {
        // `a!(2i) := 7` for i in [0..4] on a par loop: a strided
        // destination window (delta 2) inside bounds (0..=9).
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(0, 9)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 0,
                    end: 4,
                    step: 1,
                    par: true,
                    red: false,
                    body: vec![LStmt::Store {
                        array: "a".into(),
                        subs: vec![Expr::bin(BinOp::Mul, Expr::int(2), Expr::var("i"))],
                        value: Expr::Num(7.0),
                        check: crate::limp::StoreCheck::None,
                    }],
                },
            ],
            result: "a".into(),
        };
        let mut t = compile_tape(&prog, &TapeCtx::default());
        let d = fuse_tape(&mut t);
        assert_eq!(d[0].kernel.as_deref(), Some("fill"), "{:?}", d[0]);
    }

    #[test]
    fn parallel_affine_loop_fuses() {
        let mut t = compile_tape(&loop_over(true, store_i_sq()), &TapeCtx::default());
        let d = fuse_tape(&mut t);
        assert_eq!(d.len(), 1);
        assert!(d[0].kernel.is_some(), "{:?}", d[0]);
        assert_eq!(t.fused.len(), 1);
        assert!(matches!(t.ops[t.fused[0].init_pc as usize], Op::VecLoop(0)));
        // The scalar loop ops survive intact right after the overlay.
        assert!(matches!(
            t.ops[t.fused[0].init_pc as usize + 1],
            Op::LoopHead { .. }
        ));
    }

    #[test]
    fn sequential_loop_declines() {
        let mut t = compile_tape(&loop_over(false, store_i_sq()), &TapeCtx::default());
        let d = fuse_tape(&mut t);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].reason.as_deref(), Some("non-reassociable carry"));
        assert!(t.fused.is_empty());
    }

    #[test]
    fn fuse_is_idempotent() {
        let mut t = compile_tape(&loop_over(true, store_i_sq()), &TapeCtx::default());
        let d1 = fuse_tape(&mut t);
        let snapshot = t.clone();
        let d2 = fuse_tape(&mut t);
        assert_eq!(t, snapshot);
        assert_eq!(d1.len(), d2.len());
        assert_eq!(d1[0].render(), d2[0].render());
    }

    #[test]
    fn decision_renders_shape_and_reason() {
        let fused = FuseDecision {
            var: "j".into(),
            start: 2,
            end: 9,
            step: 1,
            kernel: Some("4-point stencil".into()),
            reason: None,
        };
        assert_eq!(fused.render(), "for j in [2..9]: fused (4-point stencil)");
        let scalar = FuseDecision {
            var: "i".into(),
            start: 9,
            end: 0,
            step: -1,
            kernel: None,
            reason: Some("non-reassociable carry".into()),
        };
        assert_eq!(
            scalar.render(),
            "for i in [9..0] step -1: scalar (non-reassociable carry)"
        );
    }
}
