//! "Limp" — the loop-imperative target IR of thunkless code generation,
//! and its instrumented virtual machine.
//!
//! A [`LProgram`] is what the paper means by compiling a comprehension
//! "into DO loops" (§3.1): concrete-bounds counted loops, direct
//! stores into flat `f64` buffers, and (only where the analysis could
//! not discharge them) runtime collision/definedness checks. The VM
//! counts stores, loads, check operations, loop iterations, and
//! temporary allocations so benchmarks can report exactly which runtime
//! work each optimization removed.

use std::collections::HashMap;

use hac_lang::ast::Expr;
use hac_runtime::error::RuntimeError;
use hac_runtime::governor::{FaultPlan, Meter};
use hac_runtime::value::{
    as_int, builtin, eval_expr_metered, ArrayBuf, ArrayReader, FuncTable, IdxBuf, Scalars,
};

use crate::tape::{HostFn, TapeProgram, TapeScratch, TapeState};

/// Per-store checking mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreCheck {
    /// The analysis proved no collision is possible: plain store.
    None,
    /// Track definedness and fail on a second definition (§4/§7).
    Monolithic,
}

/// One Limp statement.
#[derive(Debug, Clone, PartialEq)]
pub enum LStmt {
    /// Allocate (or reallocate) an array filled with `fill`.
    Alloc {
        array: String,
        bounds: Vec<(i64, i64)>,
        fill: f64,
        /// Temporaries are counted separately (node-splitting buffers).
        temp: bool,
        /// Track a definedness bitmap for this array.
        checked: bool,
    },
    /// A counted loop: iterates `var = start, start+step, ...` while
    /// `step > 0 ? var <= end : var >= end`.
    For {
        var: String,
        start: i64,
        end: i64,
        step: i64,
        /// §10 verdict: iterations are proven mutually independent, so
        /// an engine may execute them in any order or concurrently.
        /// Purely an enabling annotation — `false` is always safe.
        par: bool,
        /// Reduction verdict: every carried dependence is a
        /// reassociable accumulator recurrence, so a fused engine may
        /// stream the fold left-to-right in one dispatch (preserving
        /// the scalar operation order). Like `par`, an enabling
        /// annotation only — `false` is always safe.
        red: bool,
        body: Vec<LStmt>,
    },
    /// `array!(subs) := value`.
    Store {
        array: String,
        subs: Vec<Expr>,
        value: Expr,
        check: StoreCheck,
    },
    /// Conditional execution.
    If {
        cond: Expr,
        then: Vec<LStmt>,
        els: Vec<LStmt>,
    },
    /// Scoped scalar bindings.
    Let {
        binds: Vec<(String, Expr)>,
        body: Vec<LStmt>,
    },
    /// Copy `src` into `dst` (same shape), counting the elements.
    CopyArray { dst: String, src: String },
    /// Verify every element of a checked array is defined (§4).
    CheckComplete { array: String },
}

/// A complete Limp program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LProgram {
    pub stmts: Vec<LStmt>,
    /// The array holding the program's result.
    pub result: String,
}

impl LProgram {
    /// Render an indented listing (reports/tests).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.stmts {
            render(s, 0, &mut out);
        }
        out
    }

    /// Count statements of each kind (structure metrics for tests).
    pub fn store_count(&self) -> usize {
        fn go(stmts: &[LStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    LStmt::Store { .. } => 1,
                    LStmt::For { body, .. } | LStmt::Let { body, .. } => go(body),
                    LStmt::If { then, els, .. } => go(then) + go(els),
                    _ => 0,
                })
                .sum()
        }
        go(&self.stmts)
    }
}

fn render(s: &LStmt, indent: usize, out: &mut String) {
    use std::fmt::Write as _;
    let pad = "  ".repeat(indent);
    match s {
        LStmt::Alloc {
            array,
            bounds,
            temp,
            checked,
            ..
        } => {
            let kind = if *temp { "temp" } else { "array" };
            let chk = if *checked { " checked" } else { "" };
            let _ = writeln!(out, "{pad}alloc {kind} {array} {bounds:?}{chk}");
        }
        LStmt::For {
            var,
            start,
            end,
            step,
            par,
            red,
            body,
        } => {
            let tag = if *par {
                " par"
            } else if *red {
                " red"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{pad}for {var} = {start},{},..{end}{tag}:",
                start + step
            );
            for b in body {
                render(b, indent + 1, out);
            }
        }
        LStmt::Store {
            array,
            subs,
            value,
            check,
        } => {
            let ss = subs
                .iter()
                .map(hac_lang::pretty::expr_str)
                .collect::<Vec<_>>()
                .join(",");
            let chk = match check {
                StoreCheck::None => "",
                StoreCheck::Monolithic => " [checked]",
            };
            let _ = writeln!(
                out,
                "{pad}{array}!({ss}) := {}{chk}",
                hac_lang::pretty::expr_str(value)
            );
        }
        LStmt::If { cond, then, els } => {
            let _ = writeln!(out, "{pad}if {}:", hac_lang::pretty::expr_str(cond));
            for b in then {
                render(b, indent + 1, out);
            }
            if !els.is_empty() {
                let _ = writeln!(out, "{pad}else:");
                for b in els {
                    render(b, indent + 1, out);
                }
            }
        }
        LStmt::Let { binds, body } => {
            let names: Vec<&str> = binds.iter().map(|(n, _)| n.as_str()).collect();
            let _ = writeln!(out, "{pad}let {}:", names.join(", "));
            for b in body {
                render(b, indent + 1, out);
            }
        }
        LStmt::CopyArray { dst, src } => {
            let _ = writeln!(out, "{pad}copy {src} -> {dst}");
        }
        LStmt::CheckComplete { array } => {
            let _ = writeln!(out, "{pad}check-complete {array}");
        }
    }
}

/// VM instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmCounters {
    pub stores: u64,
    pub loads: u64,
    /// Collision / definedness checks executed.
    pub check_ops: u64,
    pub loop_iterations: u64,
    /// Elements allocated for node-splitting temporaries.
    pub temp_elements: u64,
    /// Elements copied by `CopyArray`.
    pub elements_copied: u64,
    /// Whole arrays allocated (result + temporaries).
    pub array_allocs: u64,
    /// Bytecode instructions dispatched by the tape engine. Zero when
    /// the tree-walking evaluator ran; every other counter means the
    /// same thing under both engines. A fused `Op::VecLoop`
    /// superinstruction counts the scalar span it overlays (per the
    /// accounting contract in `tape`), not the single dispatch it
    /// took, so fusion never changes this counter.
    pub tape_ops: u64,
    /// Parallel-engine worker faults absorbed by the sequential
    /// fallback. Main-thread bookkeeping only: never merged from
    /// worker chunks, so it stays zero on fault-free runs and the
    /// other counters remain bit-identical across engines.
    pub engine_faults: u64,
}

/// The Limp virtual machine.
#[derive(Debug, Default)]
pub struct Vm {
    arrays: HashMap<String, ArrayBuf>,
    defined: HashMap<String, Vec<bool>>,
    aliases: HashMap<String, String>,
    globals: Vec<(String, f64)>,
    funcs: FuncTable,
    /// Reusable tape scratch (operand stack, frame, registers): kept on
    /// the VM so repeated `run_tape` calls never reallocate.
    scratch: TapeScratch,
    /// Resource budget charged as the program runs; unlimited unless
    /// installed with [`Vm::with_meter`].
    meter: Meter,
    /// Deterministic fault-injection plan for the parallel engine
    /// (tests / `HAC_FAULT_PLAN`).
    faults: Option<FaultPlan>,
    pub counters: VmCounters,
}

impl Vm {
    /// A VM with no arrays bound.
    pub fn new() -> Vm {
        Vm::default()
    }

    /// Bind an input array.
    pub fn bind(&mut self, name: impl Into<String>, buf: ArrayBuf) -> &mut Self {
        self.arrays.insert(name.into(), buf);
        self
    }

    /// Move a whole environment of arrays in (no copies).
    pub fn bind_all(&mut self, arrays: HashMap<String, ArrayBuf>) -> &mut Self {
        if self.arrays.is_empty() {
            self.arrays = arrays;
        } else {
            self.arrays.extend(arrays);
        }
        self
    }

    /// Consume the VM, returning every bound array (no copies).
    pub fn into_arrays(self) -> HashMap<String, ArrayBuf> {
        self.arrays
    }

    /// Register scalar functions callable from expressions.
    pub fn with_funcs(&mut self, funcs: FuncTable) -> &mut Self {
        self.funcs = funcs;
        self
    }

    /// Install a resource meter. The meter is charged in place, so a
    /// caller running several programs on one budget moves the meter
    /// from VM to VM with [`Vm::take_meter`].
    pub fn with_meter(&mut self, meter: Meter) -> &mut Self {
        self.meter = meter;
        self
    }

    /// Remove the meter (leaving an unlimited one), returning it with
    /// whatever budget is left.
    pub fn take_meter(&mut self) -> Meter {
        std::mem::take(&mut self.meter)
    }

    /// Install a fault-injection plan for the parallel engine. `None`
    /// (the default) falls back to the `HAC_FAULT_PLAN` environment
    /// variable.
    pub fn with_faults(&mut self, faults: Option<FaultPlan>) -> &mut Self {
        self.faults = faults;
        self
    }

    /// Bind a global scalar (program parameters like `n`) visible to
    /// every expression.
    pub fn set_global(&mut self, name: impl Into<String>, v: f64) -> &mut Self {
        self.globals.push((name.into(), v));
        self
    }

    /// Route every access to `name` to `target`'s buffer (in-place
    /// `bigupd`: the result name aliases the base array).
    pub fn alias(&mut self, name: impl Into<String>, target: impl Into<String>) -> &mut Self {
        self.aliases.insert(name.into(), target.into());
        self
    }

    fn resolve<'n>(&'n self, name: &'n str) -> &'n str {
        let mut cur = name;
        while let Some(next) = self.aliases.get(cur) {
            cur = next;
        }
        cur
    }

    /// The buffer bound to `name` (after aliasing).
    pub fn array(&self, name: &str) -> Option<&ArrayBuf> {
        self.arrays.get(self.resolve(name))
    }

    /// Remove and return a buffer.
    pub fn take(&mut self, name: &str) -> Option<ArrayBuf> {
        let key = self.resolve(name).to_string();
        self.arrays.remove(&key)
    }

    /// Execute a program.
    ///
    /// # Errors
    /// Propagates evaluation failures, collisions, and incomplete
    /// checked arrays.
    pub fn run(&mut self, prog: &LProgram) -> Result<(), RuntimeError> {
        let mut scalars = Scalars::new();
        for (name, v) in &self.globals {
            scalars.push(name.clone(), *v);
        }
        self.exec(&prog.stmts, &mut scalars)
    }

    /// Execute a compiled bytecode tape.
    ///
    /// The tape must have been compiled with the same aliases this VM
    /// routes through (`compile_tape` canonicalizes array names at
    /// compile time; the pipeline guarantees the two agree). Buffers
    /// are moved out of the name map into dense slots for the duration
    /// of the run and restored afterwards — on success *and* on error,
    /// so partial results stay observable exactly as with [`Vm::run`].
    ///
    /// # Errors
    /// Identical failures, lazily raised, as the tree-walking [`Vm::run`].
    pub fn run_tape(&mut self, tape: &TapeProgram) -> Result<(), RuntimeError> {
        self.run_tape_with(tape, |tape, st| tape.exec(st))
    }

    /// Execute a compiled tape on the §10 parallel engine: top-level
    /// passes proven free of carried dependences are partitioned over
    /// `threads` workers (see [`crate::partape`]); everything else runs
    /// on the sequential path. Bit-identical to [`Vm::run_tape`] —
    /// values, errors (lowest faulting iteration wins), and counters.
    ///
    /// # Errors
    /// Identical failures, lazily raised, as [`Vm::run_tape`].
    pub fn run_partape(
        &mut self,
        tape: &TapeProgram,
        plan: &crate::partape::ParPlan,
        threads: usize,
    ) -> Result<(), RuntimeError> {
        let faults = self
            .faults
            .clone()
            .or_else(|| crate::partape::env_fault_plan().cloned());
        self.run_tape_with(tape, |tape, st| {
            crate::partape::exec_par(tape, plan, st, threads, faults.as_ref())
        })
    }

    fn run_tape_with(
        &mut self,
        tape: &TapeProgram,
        exec: impl FnOnce(&TapeProgram, &mut TapeState<'_>) -> Result<(), RuntimeError>,
    ) -> Result<(), RuntimeError> {
        let mut bufs: Vec<Option<ArrayBuf>> = tape
            .arrays
            .iter()
            .map(|n| {
                let key = self.resolve(n).to_string();
                self.arrays.remove(&key)
            })
            .collect();
        let mut defined: Vec<Option<Vec<bool>>> = tape
            .arrays
            .iter()
            .map(|n| {
                let key = self.resolve(n).to_string();
                self.defined.remove(&key)
            })
            .collect();
        let funcs: Vec<Option<HostFn>> = tape
            .funcs
            .iter()
            .map(|f| builtin(f).or_else(|| self.funcs.get(f).copied()))
            .collect();
        let mut scratch = std::mem::take(&mut self.scratch);
        tape.prepare(&mut scratch, &self.globals);
        let out = {
            let mut st = TapeState {
                bufs: &mut bufs,
                defined: &mut defined,
                funcs: &funcs,
                scratch: &mut scratch,
                counters: &mut self.counters,
                meter: &mut self.meter,
            };
            exec(tape, &mut st)
        };
        self.scratch = scratch;
        for (name, buf) in tape.arrays.iter().zip(bufs) {
            if let Some(buf) = buf {
                let key = self.resolve(name).to_string();
                self.arrays.insert(key, buf);
            }
        }
        for (name, bits) in tape.arrays.iter().zip(defined) {
            if let Some(bits) = bits {
                let key = self.resolve(name).to_string();
                self.defined.insert(key, bits);
            }
        }
        out
    }

    fn exec(&mut self, stmts: &[LStmt], scalars: &mut Scalars) -> Result<(), RuntimeError> {
        for s in stmts {
            self.exec_one(s, scalars)?;
        }
        Ok(())
    }

    fn exec_one(&mut self, s: &LStmt, scalars: &mut Scalars) -> Result<(), RuntimeError> {
        match s {
            LStmt::Alloc {
                array,
                bounds,
                fill,
                temp,
                checked,
            } => {
                self.meter
                    .charge_mem(ArrayBuf::footprint_bytes(bounds, *checked))?;
                let buf = ArrayBuf::new(bounds, *fill);
                self.counters.array_allocs += 1;
                if *temp {
                    self.counters.temp_elements += buf.len() as u64;
                }
                if *checked {
                    self.defined.insert(array.clone(), vec![false; buf.len()]);
                }
                self.arrays.insert(array.clone(), buf);
                Ok(())
            }
            LStmt::For {
                var,
                start,
                end,
                step,
                par: _,
                red: _,
                body,
            } => {
                debug_assert!(*step != 0);
                let mut i = *start;
                loop {
                    if (*step > 0 && i > *end) || (*step < 0 && i < *end) {
                        break;
                    }
                    self.meter.charge_fuel()?;
                    self.counters.loop_iterations += 1;
                    scalars.push(var.clone(), i as f64);
                    self.exec(body, scalars)?;
                    scalars.pop();
                    i += step;
                }
                Ok(())
            }
            LStmt::Store {
                array,
                subs,
                value,
                check,
            } => {
                let mut idx = IdxBuf::new();
                for e in subs {
                    let v = self.eval(e, scalars)?;
                    idx.push(as_int(array, v)?);
                }
                let v = self.eval(value, scalars)?;
                let key = self.resolve(array).to_string();
                if *check == StoreCheck::Monolithic {
                    self.counters.check_ops += 1;
                    let buf = self
                        .arrays
                        .get(&key)
                        .ok_or_else(|| RuntimeError::UnboundArray(array.clone()))?;
                    let off =
                        buf.offset(idx.as_slice())
                            .ok_or_else(|| RuntimeError::OutOfBounds {
                                array: array.clone(),
                                index: idx.as_slice().to_vec(),
                                bounds: buf.bounds(),
                            })?;
                    let d = self
                        .defined
                        .get_mut(&key)
                        .expect("checked store requires checked alloc");
                    if d[off] {
                        return Err(RuntimeError::WriteCollision {
                            array: array.clone(),
                            index: idx.as_slice().to_vec(),
                        });
                    }
                    d[off] = true;
                }
                let buf = self
                    .arrays
                    .get_mut(&key)
                    .ok_or_else(|| RuntimeError::UnboundArray(array.clone()))?;
                buf.set(array, idx.as_slice(), v)?;
                self.counters.stores += 1;
                Ok(())
            }
            LStmt::If { cond, then, els } => {
                let c = self.eval(cond, scalars)?;
                if c != 0.0 {
                    self.exec(then, scalars)
                } else {
                    self.exec(els, scalars)
                }
            }
            LStmt::Let { binds, body } => {
                let depth = scalars.depth();
                for (n, e) in binds {
                    let v = self.eval(e, scalars)?;
                    scalars.push(n.clone(), v);
                }
                let out = self.exec(body, scalars);
                scalars.truncate(depth);
                out
            }
            LStmt::CopyArray { dst, src } => {
                let skey = self.resolve(src).to_string();
                let len = self
                    .arrays
                    .get(&skey)
                    .ok_or_else(|| RuntimeError::UnboundArray(src.clone()))?
                    .len();
                self.meter.charge_mem(len as u64 * 8)?;
                let buf = self.arrays[&skey].clone();
                self.counters.elements_copied += buf.len() as u64;
                self.counters.array_allocs += 1;
                self.arrays.insert(dst.clone(), buf);
                Ok(())
            }
            LStmt::CheckComplete { array } => {
                let key = self.resolve(array).to_string();
                let d = self
                    .defined
                    .get(&key)
                    .ok_or_else(|| RuntimeError::UnboundArray(array.clone()))?;
                self.counters.check_ops += d.len() as u64;
                if let Some(off) = d.iter().position(|x| !x) {
                    let buf = &self.arrays[&key];
                    let idx = unravel(buf, off);
                    return Err(RuntimeError::UndefinedElement {
                        array: array.clone(),
                        index: idx,
                    });
                }
                Ok(())
            }
        }
    }

    fn eval(&mut self, e: &Expr, scalars: &mut Scalars) -> Result<f64, RuntimeError> {
        // Split the borrow: reads go through a counting reader over the
        // arrays map.
        let mut reader = CountingReader {
            arrays: &self.arrays,
            aliases: &self.aliases,
            loads: &mut self.counters.loads,
        };
        eval_expr_metered(e, scalars, &mut reader, &self.funcs, &mut self.meter)
    }
}

pub(crate) fn unravel(buf: &ArrayBuf, mut off: usize) -> Vec<i64> {
    let bounds = buf.bounds();
    let mut idx = vec![0i64; bounds.len()];
    for k in (0..bounds.len()).rev() {
        let (lo, hi) = bounds[k];
        let extent = (hi - lo + 1).max(0) as usize;
        idx[k] = lo + (off % extent) as i64;
        off /= extent;
    }
    idx
}

struct CountingReader<'a> {
    arrays: &'a HashMap<String, ArrayBuf>,
    aliases: &'a HashMap<String, String>,
    loads: &'a mut u64,
}

impl ArrayReader for CountingReader<'_> {
    fn read_element(&mut self, array: &str, idx: &[i64]) -> Result<f64, RuntimeError> {
        let mut key = array;
        while let Some(next) = self.aliases.get(key) {
            key = next;
        }
        let buf = self
            .arrays
            .get(key)
            .ok_or_else(|| RuntimeError::UnboundArray(array.to_string()))?;
        *self.loads += 1;
        buf.get(array, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::parser::parse_expr;

    fn store(array: &str, sub: &str, value: &str, check: StoreCheck) -> LStmt {
        LStmt::Store {
            array: array.into(),
            subs: vec![parse_expr(sub).unwrap()],
            value: parse_expr(value).unwrap(),
            check,
        }
    }

    #[test]
    fn squares_program() {
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, 5)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 1,
                    end: 5,
                    step: 1,
                    par: false,
                    red: false,
                    body: vec![store("a", "i", "i * i", StoreCheck::None)],
                },
            ],
            result: "a".into(),
        };
        let mut vm = Vm::new();
        vm.run(&prog).unwrap();
        assert_eq!(vm.array("a").unwrap().data(), &[1.0, 4.0, 9.0, 16.0, 25.0]);
        assert_eq!(vm.counters.stores, 5);
        assert_eq!(vm.counters.loop_iterations, 5);
        assert_eq!(vm.counters.loads, 0);
    }

    #[test]
    fn backward_loop() {
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, 4)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                store("a", "4", "1", StoreCheck::None),
                LStmt::For {
                    var: "i".into(),
                    start: 3,
                    end: 1,
                    step: -1,
                    par: false,
                    red: false,
                    body: vec![store("a", "i", "a!(i+1) * 2", StoreCheck::None)],
                },
            ],
            result: "a".into(),
        };
        let mut vm = Vm::new();
        vm.run(&prog).unwrap();
        assert_eq!(vm.array("a").unwrap().data(), &[8.0, 4.0, 2.0, 1.0]);
        assert_eq!(vm.counters.loads, 3);
    }

    #[test]
    fn checked_store_detects_collision_and_empties() {
        let alloc = LStmt::Alloc {
            array: "a".into(),
            bounds: vec![(1, 3)],
            fill: 0.0,
            temp: false,
            checked: true,
        };
        // Collision.
        let prog = LProgram {
            stmts: vec![
                alloc.clone(),
                store("a", "2", "1", StoreCheck::Monolithic),
                store("a", "2", "2", StoreCheck::Monolithic),
            ],
            result: "a".into(),
        };
        let err = Vm::new().run(&prog).unwrap_err();
        assert!(matches!(err, RuntimeError::WriteCollision { .. }));
        // Empties.
        let prog2 = LProgram {
            stmts: vec![
                alloc,
                store("a", "2", "1", StoreCheck::Monolithic),
                LStmt::CheckComplete { array: "a".into() },
            ],
            result: "a".into(),
        };
        let err2 = Vm::new().run(&prog2).unwrap_err();
        assert!(matches!(err2, RuntimeError::UndefinedElement { index, .. } if index == vec![1]));
    }

    #[test]
    fn aliasing_routes_reads_and_writes() {
        let mut vm = Vm::new();
        let mut base = ArrayBuf::new(&[(1, 3)], 0.0);
        base.set("a", &[1], 5.0).unwrap();
        vm.bind("a", base);
        vm.alias("b", "a");
        let prog = LProgram {
            stmts: vec![store("b", "2", "b!1 + 1", StoreCheck::None)],
            result: "b".into(),
        };
        vm.run(&prog).unwrap();
        assert_eq!(vm.array("a").unwrap().get("a", &[2]).unwrap(), 6.0);
        assert_eq!(vm.array("b").unwrap().get("b", &[2]).unwrap(), 6.0);
    }

    #[test]
    fn copy_array_counts_elements() {
        let mut vm = Vm::new();
        vm.bind("src", ArrayBuf::new(&[(1, 10)], 3.0));
        let prog = LProgram {
            stmts: vec![LStmt::CopyArray {
                dst: "dst".into(),
                src: "src".into(),
            }],
            result: "dst".into(),
        };
        vm.run(&prog).unwrap();
        assert_eq!(vm.counters.elements_copied, 10);
        assert_eq!(vm.array("dst").unwrap().data()[0], 3.0);
    }

    #[test]
    fn if_and_let_scoping() {
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, 2)],
                    fill: 0.0,
                    temp: true,
                    checked: false,
                },
                LStmt::Let {
                    binds: vec![("v".into(), parse_expr("21").unwrap())],
                    body: vec![LStmt::If {
                        cond: parse_expr("v > 10").unwrap(),
                        then: vec![store("a", "1", "v * 2", StoreCheck::None)],
                        els: vec![store("a", "1", "0", StoreCheck::None)],
                    }],
                },
            ],
            result: "a".into(),
        };
        let mut vm = Vm::new();
        vm.run(&prog).unwrap();
        assert_eq!(vm.array("a").unwrap().data()[0], 42.0);
        assert_eq!(vm.counters.temp_elements, 2);
    }

    #[test]
    fn zero_trip_loop() {
        let prog = LProgram {
            stmts: vec![LStmt::For {
                var: "i".into(),
                start: 5,
                end: 4,
                step: 1,
                par: false,
                red: false,
                body: vec![store("zzz", "i", "1", StoreCheck::None)],
            }],
            result: String::new(),
        };
        let mut vm = Vm::new();
        vm.run(&prog).unwrap();
        assert_eq!(vm.counters.loop_iterations, 0);
    }

    #[test]
    fn render_is_readable() {
        let prog = LProgram {
            stmts: vec![LStmt::For {
                var: "i".into(),
                start: 1,
                end: 3,
                step: 1,
                par: false,
                red: false,
                body: vec![store("a", "i", "i", StoreCheck::Monolithic)],
            }],
            result: "a".into(),
        };
        let r = prog.render();
        assert!(r.contains("for i"));
        assert!(r.contains("[checked]"));
        assert_eq!(prog.store_count(), 1);
    }
}
