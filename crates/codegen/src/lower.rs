//! Lowering schedules to Limp — "thunkless code generation" (§8) and
//! in-place `bigupd` code generation with node splitting (§9).
//!
//! A [`Plan`]'s loops become counted `For` statements with the chosen
//! directions; clauses become direct `Store`s whose subscript and value
//! expressions have the comprehension-path `let`s inlined (the same
//! normal form the analysis used, so node-splitting read *ordinals*
//! line up with [`hac_analysis::refs`]'s read numbering).
//!
//! For updates, the three §9 strategies lower as:
//! * `InPlace` — stores aliased onto the base buffer, nothing else;
//! * `Split`   — precopy loops and carry-buffer save phases are
//!   synthesized, and redirected reads are rewritten, before the plan's
//!   loops run on the base buffer;
//! * `CopyWhole` — one `CopyArray`, then the plan runs on the copy.
//!
//! Downstream, the tape compiler ([`crate::tape`]) consumes the `par`
//! flags and affine subscripts this lowering preserves; the fusion
//! pass ([`crate::fuse`]) needs both intact to vectorize an innermost
//! loop, so lowering must keep proven-parallel loops' bodies in the
//! affine normal form rather than re-materializing subscripts.

use std::collections::HashMap;
use std::fmt;

use hac_analysis::refs::ClauseRefs;
use hac_lang::ast::{BinOp, ClauseId, Expr};
use hac_lang::env::ConstEnv;
use hac_lang::normalize::{inline_path_lets, normalize_loop, NormalizedLoop};
use hac_lang::number::{ClauseContext, LoopFrame, PathStep};
use hac_schedule::plan::{Dirn, Plan, Step};
use hac_schedule::split::{loop_dirs_for_clause, SplitAction, UpdatePlan, UpdateStrategy};

use crate::limp::{LProgram, LStmt, StoreCheck};

/// A lowering failure.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// A loop bound did not fold to a constant under the environment.
    NonConstantLoopBound { var: String },
    /// The plan references a clause the reference table does not know.
    UnknownClause(ClauseId),
    /// A split action names a read ordinal the clause does not have.
    ReadOrdinalOutOfRange { clause: ClauseId, read: usize },
    /// A carry buffer was requested for a clause whose plan position
    /// could not be found (internal error surfaced defensively).
    ClauseNotInPlan(ClauseId),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::NonConstantLoopBound { var } => {
                write!(f, "loop `{var}` bound is not a constant")
            }
            LowerError::UnknownClause(c) => write!(f, "plan references unknown clause {c}"),
            LowerError::ReadOrdinalOutOfRange { clause, read } => {
                write!(f, "clause {clause} has no read #{read}")
            }
            LowerError::ClauseNotInPlan(c) => {
                write!(f, "clause {c} does not appear in the plan")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Whether to emit the runtime checks the analysis could not discharge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Collisions and empties proven impossible: plain stores.
    Elide,
    /// Emit per-store collision checks and a final completeness check.
    Checked,
}

/// How a read should be rewritten inside one clause's value.
#[derive(Debug, Clone)]
enum ReadRewrite {
    /// Replace the read outright.
    Replace(Expr),
    /// `if cond then with else <original read>`.
    Wrap { cond: Expr, with: Expr },
}

/// Per-clause rewrite tables plus statements to inject.
#[derive(Debug, Clone, Default)]
struct SplitLowering {
    /// clause → (read ordinal → rewrite).
    rewrites: HashMap<ClauseId, HashMap<usize, ReadRewrite>>,
    /// Statements to run before the whole plan (precopies).
    prelude: Vec<LStmt>,
    /// clause → (loop level → save statements injected at the start of
    /// that loop's body in the pass containing the clause).
    injections: HashMap<ClauseId, Vec<(usize, Vec<LStmt>)>>,
}

/// Lower a monolithic array's thunkless plan.
///
/// # Errors
/// See [`LowerError`].
pub fn lower_array(
    name: &str,
    bounds: &[(i64, i64)],
    refs: &[ClauseRefs],
    plan: &Plan,
    env: &ConstEnv,
    checks: CheckMode,
) -> Result<LProgram, LowerError> {
    let mut stmts = vec![LStmt::Alloc {
        array: name.to_string(),
        bounds: bounds.to_vec(),
        fill: 0.0,
        temp: false,
        checked: checks == CheckMode::Checked,
    }];
    let splits = SplitLowering::default();
    let mut ctx = Lowerer {
        refs,
        env,
        target: name.to_string(),
        check: match checks {
            CheckMode::Elide => StoreCheck::None,
            CheckMode::Checked => StoreCheck::Monolithic,
        },
        splits,
        par_loops: &plan.par_loops,
        red_loops: &plan.red_loops,
    };
    for s in &plan.steps {
        stmts.extend(ctx.lower_step(s, 0)?);
    }
    if checks == CheckMode::Checked {
        stmts.push(LStmt::CheckComplete {
            array: name.to_string(),
        });
    }
    Ok(LProgram {
        stmts,
        result: name.to_string(),
    })
}

/// A lowered update: run the program, aliasing `result → base` in the
/// VM when `in_place` (the update overwrites the base buffer).
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredUpdate {
    pub prog: LProgram,
    pub in_place: bool,
}

/// Lower a planned `bigupd` (§9).
///
/// # Errors
/// See [`LowerError`].
pub fn lower_update(
    base: &str,
    result: &str,
    refs: &[ClauseRefs],
    update: &UpdatePlan,
    env: &ConstEnv,
) -> Result<LoweredUpdate, LowerError> {
    let (splits, in_place) = match &update.strategy {
        UpdateStrategy::InPlace => (SplitLowering::default(), true),
        UpdateStrategy::CopyWhole => (
            SplitLowering {
                prelude: vec![LStmt::CopyArray {
                    dst: result.to_string(),
                    src: base.to_string(),
                }],
                ..SplitLowering::default()
            },
            false,
        ),
        UpdateStrategy::Split(actions) => {
            (lower_splits(actions, base, refs, &update.plan, env)?, true)
        }
    };
    let mut stmts = splits.prelude.clone();
    let mut ctx = Lowerer {
        refs,
        env,
        target: result.to_string(),
        check: StoreCheck::None,
        splits,
        par_loops: &update.plan.par_loops,
        red_loops: &update.plan.red_loops,
    };
    for s in &update.plan.steps {
        stmts.extend(ctx.lower_step(s, 0)?);
    }
    Ok(LoweredUpdate {
        prog: LProgram {
            stmts,
            result: result.to_string(),
        },
        in_place,
    })
}

struct Lowerer<'a> {
    refs: &'a [ClauseRefs],
    env: &'a ConstEnv,
    /// The array clauses store into.
    target: String,
    check: StoreCheck,
    splits: SplitLowering,
    /// Loop ids the plan proved carry no dependence (§10); passes over
    /// these are marked `par` in the emitted Limp.
    par_loops: &'a [hac_lang::ast::LoopId],
    /// Loop ids whose carried dependences are all reassociable
    /// accumulator recurrences; passes over these are marked `red`.
    red_loops: &'a [hac_lang::ast::LoopId],
}

impl Lowerer<'_> {
    fn clause_refs(&self, id: ClauseId) -> Result<&ClauseRefs, LowerError> {
        self.refs
            .iter()
            .find(|r| r.id() == id)
            .ok_or(LowerError::UnknownClause(id))
    }

    fn lower_step(&mut self, step: &Step, depth: usize) -> Result<Vec<LStmt>, LowerError> {
        match step {
            Step::Clause(id) => {
                let cr = self.clause_refs(*id)?;
                let ctx = &cr.ctx;
                let subs: Vec<Expr> = ctx
                    .clause
                    .subs
                    .iter()
                    .map(|s| inline_path_lets(ctx, s))
                    .collect();
                let mut value = inline_path_lets(ctx, &ctx.clause.value);
                if let Some(map) = self.splits.rewrites.get(id) {
                    let mut counter = 0usize;
                    value = rewrite_reads(&value, &mut counter, map);
                }
                Ok(vec![LStmt::Store {
                    array: self.target.clone(),
                    subs,
                    value,
                    check: self.check,
                }])
            }
            Step::Guard { cond, body } => {
                let mut then = Vec::new();
                for s in body {
                    then.extend(self.lower_step(s, depth)?);
                }
                Ok(vec![LStmt::If {
                    cond: cond.clone(),
                    then,
                    els: vec![],
                }])
            }
            Step::Let { binds, body } => {
                let mut inner = Vec::new();
                for s in body {
                    inner.extend(self.lower_step(s, depth)?);
                }
                Ok(vec![LStmt::Let {
                    binds: binds.clone(),
                    body: inner,
                }])
            }
            Step::Loop {
                id,
                var,
                range,
                dirn,
                body,
            } => {
                let frame = LoopFrame {
                    id: hac_lang::ast::LoopId(u32::MAX),
                    var: var.clone(),
                    range: range.clone(),
                };
                let nl = normalize_loop(&frame, self.env)
                    .map_err(|_| LowerError::NonConstantLoopBound { var: var.clone() })?;
                let (start, end, step) = loop_params(&nl, *dirn);
                // Carry-buffer save phases inject at the start of the
                // loop body at their level, in the pass containing the
                // clause.
                let mut lowered = Vec::new();
                let clauses_in_body: Vec<ClauseId> =
                    body.iter().flat_map(|s| s.clauses()).collect();
                for (clause, inj) in self.splits.injections.clone() {
                    if !clauses_in_body.contains(&clause) {
                        continue;
                    }
                    for (level, stmts) in inj {
                        if level == depth {
                            lowered.extend(stmts.clone());
                        }
                    }
                }
                let injected = !lowered.is_empty();
                for s in body {
                    lowered.extend(self.lower_step(s, depth + 1)?);
                }
                // A loop is marked parallel only on the plan's §10
                // verdict, and never when carry-buffer saves were
                // injected into it (the ring temporary is shared
                // between iterations; the planner already clears
                // `par_loops` in that case — this is the belt).
                Ok(vec![LStmt::For {
                    var: var.clone(),
                    start,
                    end,
                    step,
                    par: self.par_loops.contains(id) && !injected,
                    red: self.red_loops.contains(id) && !injected,
                    body: lowered,
                }])
            }
        }
    }
}

/// Concrete iteration parameters for a loop pass.
fn loop_params(nl: &NormalizedLoop, dirn: Dirn) -> (i64, i64, i64) {
    let first = nl.lo;
    let last = nl.lo + (nl.size - 1) * nl.step;
    match dirn {
        Dirn::Forward => (first, last, nl.step),
        Dirn::Backward => (last, first, -nl.step),
    }
}

/// `(var - (lo - step)) / step` — the normalized 1-based position of a
/// loop's index variable.
fn norm_pos_expr(nl: &NormalizedLoop) -> Expr {
    let num = Expr::sub(Expr::var(nl.var.clone()), Expr::int(nl.lo - nl.step));
    if nl.step == 1 {
        num
    } else {
        Expr::bin(BinOp::Div, num, Expr::int(nl.step))
    }
}

/// The execution-order step number (1-based) of the loop at `level` in
/// the clause's nest under the plan's chosen direction.
fn exec_step_expr(nl: &NormalizedLoop, dirn: Dirn) -> Expr {
    let pos = norm_pos_expr(nl);
    match dirn {
        Dirn::Forward => pos,
        Dirn::Backward => Expr::sub(Expr::int(nl.size + 1), pos),
    }
}

fn lower_splits(
    actions: &[SplitAction],
    base: &str,
    refs: &[ClauseRefs],
    plan: &Plan,
    env: &ConstEnv,
) -> Result<SplitLowering, LowerError> {
    let mut out = SplitLowering::default();
    for action in actions {
        match action {
            SplitAction::Precopy { clause, read_index } => {
                let cr = refs
                    .iter()
                    .find(|r| r.id() == *clause)
                    .ok_or(LowerError::UnknownClause(*clause))?;
                let read_expr =
                    nth_read(&cr.ctx, *read_index).ok_or(LowerError::ReadOrdinalOutOfRange {
                        clause: *clause,
                        read: *read_index,
                    })?;
                let temp = format!("__pre_{}_{}", clause.0, read_index);
                let norm_subs: Vec<Expr> = cr.nest.iter().map(norm_pos_expr).collect();
                let bounds: Vec<(i64, i64)> = cr.nest.iter().map(|nl| (1, nl.size)).collect();
                out.prelude.push(LStmt::Alloc {
                    array: temp.clone(),
                    bounds,
                    fill: 0.0,
                    temp: true,
                    checked: false,
                });
                // Rebuild the clause's own path as the precopy nest.
                let leaf = LStmt::Store {
                    array: temp.clone(),
                    subs: norm_subs.clone(),
                    value: read_expr,
                    check: StoreCheck::None,
                };
                out.prelude.push(lower_path(&cr.ctx.path, leaf, env)?);
                out.rewrites.entry(*clause).or_default().insert(
                    *read_index,
                    ReadRewrite::Replace(Expr::Index {
                        array: temp,
                        subs: norm_subs,
                    }),
                );
            }
            SplitAction::CarryBuffer {
                clause,
                read_index,
                level,
                lag,
            } => {
                let cr = refs
                    .iter()
                    .find(|r| r.id() == *clause)
                    .ok_or(LowerError::UnknownClause(*clause))?;
                let dirs = loop_dirs_for_clause(plan, *clause);
                let dirn = *dirs
                    .get(*level)
                    .ok_or(LowerError::ClauseNotInPlan(*clause))?;
                let nl = &cr.nest[*level];
                let ring = lag + 1;
                let temp = format!("__carry_{}_{}", clause.0, read_index);
                let inner: Vec<&NormalizedLoop> = cr.nest[*level + 1..].iter().collect();
                let mut bounds = vec![(0, *lag)];
                bounds.extend(inner.iter().map(|l| (1, l.size)));
                out.prelude.push(LStmt::Alloc {
                    array: temp.clone(),
                    bounds,
                    fill: 0.0,
                    temp: true,
                    checked: false,
                });
                let s_expr = exec_step_expr(nl, dirn);
                let slot_save = Expr::bin(BinOp::Mod, s_expr.clone(), Expr::int(ring));
                let slot_read = Expr::bin(
                    BinOp::Mod,
                    Expr::sub(s_expr.clone(), Expr::int(*lag)),
                    Expr::int(ring),
                );
                let inner_pos: Vec<Expr> = inner.iter().map(|l| norm_pos_expr(l)).collect();

                // Save phase: store the about-to-be-clobbered values.
                let write_subs: Vec<Expr> = cr
                    .ctx
                    .clause
                    .subs
                    .iter()
                    .map(|s| inline_path_lets(&cr.ctx, s))
                    .collect();
                let mut save_subs = vec![slot_save];
                save_subs.extend(inner_pos.clone());
                let save_leaf = LStmt::Store {
                    array: temp.clone(),
                    subs: save_subs,
                    value: Expr::Index {
                        array: base.to_string(),
                        subs: write_subs,
                    },
                    check: StoreCheck::None,
                };
                // Rebuild only the path *below* the carrying loop.
                let below = path_below_level(&cr.ctx, *level);
                let save_stmts = lower_path(below, save_leaf, env)?;
                out.injections
                    .entry(*clause)
                    .or_default()
                    .push((*level, vec![save_stmts]));

                // Redirect: ring when the source iteration exists.
                let mut read_subs = vec![slot_read];
                read_subs.extend(inner_pos);
                let cond = Expr::bin(BinOp::Gt, exec_step_expr(nl, dirn), Expr::int(*lag));
                out.rewrites.entry(*clause).or_default().insert(
                    *read_index,
                    ReadRewrite::Wrap {
                        cond,
                        with: Expr::Index {
                            array: temp,
                            subs: read_subs,
                        },
                    },
                );
            }
        }
    }
    Ok(out)
}

/// The clause-path steps strictly below the `level`-th loop.
fn path_below_level(ctx: &ClauseContext, level: usize) -> &[PathStep] {
    let mut seen = 0usize;
    for (i, s) in ctx.path.iter().enumerate() {
        if let PathStep::Loop(_) = s {
            if seen == level {
                return &ctx.path[i + 1..];
            }
            seen += 1;
        }
    }
    &[]
}

/// Rebuild a clause path (loops forward, guards, lets) around a leaf
/// statement.
fn lower_path(path: &[PathStep], leaf: LStmt, env: &ConstEnv) -> Result<LStmt, LowerError> {
    match path.first() {
        None => Ok(leaf),
        Some(PathStep::Loop(frame)) => {
            let nl = normalize_loop(frame, env).map_err(|_| LowerError::NonConstantLoopBound {
                var: frame.var.clone(),
            })?;
            let (start, end, step) = loop_params(&nl, Dirn::Forward);
            let inner = lower_path(&path[1..], leaf, env)?;
            // Synthesized prelude/save loops carry no §10 verdict:
            // always sequential.
            Ok(LStmt::For {
                var: frame.var.clone(),
                start,
                end,
                step,
                par: false,
                red: false,
                body: vec![inner],
            })
        }
        Some(PathStep::Guard(cond)) => {
            let inner = lower_path(&path[1..], leaf, env)?;
            Ok(LStmt::If {
                cond: cond.clone(),
                then: vec![inner],
                els: vec![],
            })
        }
        Some(PathStep::Let(binds)) => {
            let inner = lower_path(&path[1..], leaf, env)?;
            Ok(LStmt::Let {
                binds: binds.clone(),
                body: vec![inner],
            })
        }
    }
}

/// The `ordinal`-th read expression of a clause's inlined value, using
/// exactly [`hac_analysis::refs`]'s pre-order numbering.
fn nth_read(ctx: &ClauseContext, ordinal: usize) -> Option<Expr> {
    let value = inline_path_lets(ctx, &ctx.clause.value);
    let mut counter = 0usize;
    find_read(&value, &mut counter, ordinal)
}

fn find_read(e: &Expr, counter: &mut usize, ordinal: usize) -> Option<Expr> {
    match e {
        Expr::Index { subs, .. } => {
            let mine = *counter;
            *counter += 1;
            if mine == ordinal {
                return Some(e.clone());
            }
            for s in subs {
                if let Some(found) = find_read(s, counter, ordinal) {
                    return Some(found);
                }
            }
            None
        }
        Expr::Num(_) | Expr::Int(_) | Expr::Var(_) => None,
        Expr::Binary { lhs, rhs, .. } => {
            find_read(lhs, counter, ordinal).or_else(|| find_read(rhs, counter, ordinal))
        }
        Expr::Unary { expr, .. } => find_read(expr, counter, ordinal),
        Expr::If { cond, then, els } => find_read(cond, counter, ordinal)
            .or_else(|| find_read(then, counter, ordinal))
            .or_else(|| find_read(els, counter, ordinal)),
        Expr::Let { binds, body } => {
            for (_, b) in binds {
                if let Some(found) = find_read(b, counter, ordinal) {
                    return Some(found);
                }
            }
            find_read(body, counter, ordinal)
        }
        Expr::Call { args, .. } => {
            for a in args {
                if let Some(found) = find_read(a, counter, ordinal) {
                    return Some(found);
                }
            }
            None
        }
    }
}

/// Rewrite reads by ordinal, numbering exactly like
/// [`hac_analysis::refs`]'s collection (outer `Index` before its
/// subscripts).
fn rewrite_reads(e: &Expr, counter: &mut usize, map: &HashMap<usize, ReadRewrite>) -> Expr {
    match e {
        Expr::Index { array, subs } => {
            let mine = *counter;
            *counter += 1;
            let new_subs: Vec<Expr> = subs
                .iter()
                .map(|s| rewrite_reads(s, counter, map))
                .collect();
            let orig = Expr::Index {
                array: array.clone(),
                subs: new_subs,
            };
            match map.get(&mine) {
                None => orig,
                Some(ReadRewrite::Replace(r)) => r.clone(),
                Some(ReadRewrite::Wrap { cond, with }) => Expr::If {
                    cond: Box::new(cond.clone()),
                    then: Box::new(with.clone()),
                    els: Box::new(orig),
                },
            }
        }
        Expr::Num(_) | Expr::Int(_) | Expr::Var(_) => e.clone(),
        Expr::Binary { op, lhs, rhs } => Expr::bin(
            *op,
            rewrite_reads(lhs, counter, map),
            rewrite_reads(rhs, counter, map),
        ),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_reads(expr, counter, map)),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(rewrite_reads(cond, counter, map)),
            then: Box::new(rewrite_reads(then, counter, map)),
            els: Box::new(rewrite_reads(els, counter, map)),
        },
        Expr::Let { binds, body } => Expr::Let {
            binds: binds
                .iter()
                .map(|(n, b)| (n.clone(), rewrite_reads(b, counter, map)))
                .collect(),
            body: Box::new(rewrite_reads(body, counter, map)),
        },
        Expr::Call { func, args } => Expr::Call {
            func: func.clone(),
            args: args
                .iter()
                .map(|a| rewrite_reads(a, counter, map))
                .collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_analysis::analyze::analyze_bigupd;
    use hac_analysis::depgraph::flow_dependences;
    use hac_analysis::refs::collect_refs;
    use hac_analysis::search::TestPolicy;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;
    use hac_runtime::value::ArrayBuf;
    use hac_schedule::plan::ScheduleOutcome;
    use hac_schedule::scheduler::schedule;
    use hac_schedule::split::plan_update;

    use crate::limp::Vm;

    fn lower_and_run(src: &str, n: i64, bounds: &[(i64, i64)], checks: CheckMode) -> Vm {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let env = ConstEnv::from_pairs([("n", n)]);
        let refs = collect_refs(&c, "a", &env).unwrap();
        let flow = flow_dependences(&refs, "a", &TestPolicy::default());
        let plan = match schedule(&c, &flow.edges) {
            ScheduleOutcome::Thunkless(p) => p,
            other => panic!("{other:?}"),
        };
        let prog = lower_array("a", bounds, &refs, &plan, &env, checks).unwrap();
        let mut vm = Vm::new();
        vm.run(&prog)
            .unwrap_or_else(|e| panic!("{e}\n{}", prog.render()));
        vm
    }

    #[test]
    fn forward_recurrence_lowers_and_runs() {
        let vm = lower_and_run(
            "[ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]",
            6,
            &[(1, 6)],
            CheckMode::Elide,
        );
        assert_eq!(
            vm.array("a").unwrap().data(),
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        );
        assert_eq!(vm.counters.check_ops, 0, "checks elided");
    }

    #[test]
    fn wavefront_lowers_and_runs() {
        let src = "[ (1,j) := 1 | j <- [1..n] ] ++ [ (i,1) := 1 | i <- [2..n] ] ++ \
                   [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1) | i <- [2..n], j <- [2..n] ]";
        let vm = lower_and_run(src, 4, &[(1, 4), (1, 4)], CheckMode::Elide);
        let a = vm.array("a").unwrap();
        assert_eq!(a.get("a", &[4, 4]).unwrap(), 63.0);
    }

    #[test]
    fn checked_mode_counts_checks() {
        let vm = lower_and_run("[ i := i | i <- [1..n] ]", 5, &[(1, 5)], CheckMode::Checked);
        // 5 store checks + 5 completeness checks.
        assert_eq!(vm.counters.check_ops, 10);
    }

    fn lower_update_and_run(src: &str, n: i64, base: ArrayBuf) -> (Vm, LoweredUpdate) {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let env = ConstEnv::from_pairs([("n", n)]);
        let u = analyze_bigupd("a", "b", &c, &env, &TestPolicy::default()).unwrap();
        let up = plan_update(&c, &u).expect("schedulable");
        let lowered = lower_update("a", "b", &u.refs, &up, &env).unwrap();
        let mut vm = Vm::new();
        vm.bind("a", base);
        if lowered.in_place {
            vm.alias("b", "a");
        }
        vm.run(&lowered.prog)
            .unwrap_or_else(|e| panic!("{e}\n{}", lowered.prog.render()));
        (vm, lowered)
    }

    fn matrix(n: i64, f: impl Fn(i64, i64) -> f64) -> ArrayBuf {
        let mut b = ArrayBuf::new(&[(1, n), (1, n)], 0.0);
        for i in 1..=n {
            for j in 1..=n {
                b.set("a", &[i, j], f(i, j)).unwrap();
            }
        }
        b
    }

    #[test]
    fn row_swap_in_place_with_one_row_temp() {
        let n = 5;
        let base = matrix(n, |i, j| (i * 10 + j) as f64);
        let (vm, lowered) = lower_update_and_run(
            "[ (1,j) := a!(2,j) | j <- [1..n] ] ++ [ (2,j) := a!(1,j) | j <- [1..n] ]",
            n,
            base,
        );
        assert!(lowered.in_place);
        let a = vm.array("b").unwrap();
        for j in 1..=n {
            assert_eq!(a.get("b", &[1, j]).unwrap(), (20 + j) as f64);
            assert_eq!(a.get("b", &[2, j]).unwrap(), (10 + j) as f64);
        }
        // Exactly one row of temporaries, no whole-array copy.
        assert_eq!(vm.counters.temp_elements, n as u64);
        assert_eq!(vm.counters.elements_copied, 0);
    }

    #[test]
    fn jacobi_in_place_matches_copy_semantics() {
        let n = 8;
        let f = |i: i64, j: i64| ((i * 31 + j * 17) % 11) as f64;
        let base = matrix(n, f);
        let src = "[ (i,j) := (a!(i-1,j) + a!(i,j-1) + a!(i+1,j) + a!(i,j+1)) / 4 \
                    | i <- [2..n-1], j <- [2..n-1] ]";
        let (vm, lowered) = lower_update_and_run(src, n, base.clone());
        assert!(lowered.in_place);
        // Oracle: Jacobi against the pristine copy.
        let mut expect = base.clone();
        for i in 2..n {
            for j in 2..n {
                let v = (base.get("a", &[i - 1, j]).unwrap()
                    + base.get("a", &[i, j - 1]).unwrap()
                    + base.get("a", &[i + 1, j]).unwrap()
                    + base.get("a", &[i, j + 1]).unwrap())
                    / 4.0;
                expect.set("a", &[i, j], v).unwrap();
            }
        }
        let got = vm.array("b").unwrap();
        for i in 1..=n {
            for j in 1..=n {
                assert_eq!(
                    got.get("b", &[i, j]).unwrap(),
                    expect.get("a", &[i, j]).unwrap(),
                    "mismatch at ({i},{j})\n{}",
                    lowered.prog.render()
                );
            }
        }
        // Temporaries: one ring of 2 rows (interior width) + ring of 2
        // scalars — O(n), not O(n²).
        assert!(
            vm.counters.temp_elements < 4 * n as u64,
            "{:?}",
            vm.counters
        );
        assert_eq!(vm.counters.elements_copied, 0);
    }

    #[test]
    fn sor_runs_in_place_without_temps() {
        let n = 6;
        let f = |i: i64, j: i64| ((i * 7 + j * 3) % 5) as f64;
        let base = matrix(n, f);
        let src = "[ (i,j) := (b!(i-1,j) + b!(i,j-1) + a!(i+1,j) + a!(i,j+1)) / 4 \
                    | i <- [2..n-1], j <- [2..n-1] ]";
        let (vm, lowered) = lower_update_and_run(src, n, base.clone());
        assert!(lowered.in_place);
        assert_eq!(vm.counters.temp_elements, 0);
        assert_eq!(vm.counters.elements_copied, 0);
        // Oracle: sequential Gauss–Seidel sweep.
        let mut expect = base.clone();
        for i in 2..n {
            for j in 2..n {
                let v = (expect.get("a", &[i - 1, j]).unwrap()
                    + expect.get("a", &[i, j - 1]).unwrap()
                    + expect.get("a", &[i + 1, j]).unwrap()
                    + expect.get("a", &[i, j + 1]).unwrap())
                    / 4.0;
                expect.set("a", &[i, j], v).unwrap();
            }
        }
        let got = vm.array("b").unwrap();
        for i in 1..=n {
            for j in 1..=n {
                assert_eq!(
                    got.get("b", &[i, j]).unwrap(),
                    expect.get("a", &[i, j]).unwrap(),
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn copy_whole_fallback_copies_once() {
        // Conditional violated read forces CopyWhole.
        let n = 6;
        let mut base = ArrayBuf::new(&[(1, n)], 0.0);
        let mut p = ArrayBuf::new(&[(1, n)], 0.0);
        for i in 1..=n {
            base.set("a", &[i], i as f64).unwrap();
            p.set("p", &[i], (n + 1 - i) as f64).unwrap();
        }
        let mut c = parse_comp("[ i := if i == 1 then 0 else a!(p!i) | i <- [1..n] ]").unwrap();
        number_clauses(&mut c);
        let env = ConstEnv::from_pairs([("n", n)]);
        let u = analyze_bigupd("a", "b", &c, &env, &TestPolicy::default()).unwrap();
        let up = plan_update(&c, &u).unwrap();
        assert_eq!(up.strategy, UpdateStrategy::CopyWhole);
        let lowered = lower_update("a", "b", &u.refs, &up, &env).unwrap();
        assert!(!lowered.in_place);
        let mut vm = Vm::new();
        vm.bind("a", base.clone());
        vm.bind("p", p.clone());
        vm.run(&lowered.prog).unwrap();
        assert_eq!(vm.counters.elements_copied, n as u64);
        let got = vm.array("b").unwrap();
        assert_eq!(got.get("b", &[1]).unwrap(), 0.0);
        for i in 2..=n {
            // b[i] = a[p[i]] = n + 1 - i
            assert_eq!(got.get("b", &[i]).unwrap(), (n + 1 - i) as f64);
        }
        // Base untouched.
        assert_eq!(vm.array("a").unwrap().get("a", &[1]).unwrap(), 1.0);
    }

    #[test]
    fn backward_update_uses_direction() {
        // In-place shift-up: a!i := a!(i+1); forward loop reads are
        // satisfied naturally.
        let n = 5;
        let mut base = ArrayBuf::new(&[(1, n)], 0.0);
        for i in 1..=n {
            base.set("a", &[i], i as f64).unwrap();
        }
        let (vm, lowered) = lower_update_and_run("[ i := a!(i+1) | i <- [1..n-1] ]", n, base);
        assert!(lowered.in_place);
        assert_eq!(vm.counters.temp_elements, 0);
        let got = vm.array("b").unwrap();
        assert_eq!(got.data(), &[2.0, 3.0, 4.0, 5.0, 5.0]);
    }

    #[test]
    fn carry_buffer_shift_down() {
        // a!i := a!(i-1): violated under forward; carry buffer or
        // backward loop — either is correct; verify semantics only.
        let n = 5;
        let mut base = ArrayBuf::new(&[(1, n)], 0.0);
        for i in 1..=n {
            base.set("a", &[i], i as f64).unwrap();
        }
        let (vm, _) = lower_update_and_run("[ i := a!(i-1) | i <- [2..n] ]", n, base);
        let got = vm.array("b").unwrap();
        assert_eq!(got.data(), &[1.0, 1.0, 2.0, 3.0, 4.0]);
    }
}
