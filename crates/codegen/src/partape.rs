//! Dependence-proven parallel tape execution (§10).
//!
//! The sequential tape interpreter in [`crate::tape`] runs every loop
//! pass in schedule order. This module adds an engine that partitions
//! the iteration space of each top-level loop pass whose [`Op::LoopHead`]
//! carries the §10 `par` verdict — *no loop-carried dependence, no
//! possible write collision, all checks discharged at compile time* —
//! into contiguous chunks executed concurrently on a persistent worker
//! pool. Everything between (and inside) such regions runs on the exact
//! sequential dispatch path, so the engine's observable behaviour is
//! bit-identical to [`TapeProgram::exec`]:
//!
//! * **values** — iterations of a proven region neither read another
//!   iteration's writes (that would be a carried flow dependence) nor
//!   write a common element (that would be an output dependence /
//!   collision), so each iteration computes, NaNs and all, exactly what
//!   it computes sequentially;
//! * **errors** — every chunk runs to its *own* first error; the error
//!   with the lowest iteration ordinal wins, regardless of which worker
//!   hit it first;
//! * **counters** — per-chunk [`VmCounters`] deltas are merged exactly:
//!   on success all chunks sum; on an error at ordinal `k` only the
//!   chunks covering ordinals `≤ k` contribute, reproducing the
//!   sequential prefix count (chunks are contiguous, so every such
//!   chunk either completed error-free or is the one that faulted
//!   at `k`).
//!
//! Passes that carry a dependence (or contain checked stores,
//! allocations, copies or completeness checks — anything touching
//! shared mutable bookkeeping) are simply not regions: they execute on
//! the sequential path. Correctness is decided entirely by the
//! compile-time analysis; the runtime takes no locks around array
//! accesses.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, OnceLock};

use hac_runtime::error::RuntimeError;
use hac_runtime::governor::{FaultKind, FaultPlan};
use hac_runtime::value::{ArrayBuf, SharedSlots};

use crate::limp::VmCounters;
use crate::tape::{ArrayId, FusedChunk, FusedEntry, Op, TapeProgram, TapeScratch, TapeState};

/// A parallelizable top-level loop pass of a tape.
#[derive(Debug, Clone)]
struct ParRegion {
    /// pc of the pass's [`Op::LoopInit`].
    init_pc: usize,
    /// pc of the [`Op::LoopHead`] (always `init_pc + 1`).
    head_pc: usize,
    /// Where the head's exit jump lands (first op after the pass).
    exit_pc: usize,
    ireg: usize,
    slot: usize,
    start: i64,
    step: i64,
    /// Compile-time trip count (loop bounds are constants).
    trip: u64,
    /// Stop bitmap with only `head_pc` set: a worker runs one iteration
    /// by dispatching from `head_pc + 1` until the back-edge lands here.
    head_stop: Vec<bool>,
    /// Stop bitmap with only `exit_pc` set (sequential fallback of the
    /// whole region from `init_pc`).
    exit_stop: Vec<bool>,
    /// Static fuel charge of one complete iteration (the head charge
    /// plus the body's loop-head and call charges), when the body's
    /// charge count is input-independent. `None` (a call or nested
    /// loop under a conditional) sends fuel-limited runs down the
    /// sequential path — splitting a budget needs an exact cost.
    iter_cost: Option<u64>,
    /// The body never reads an array it writes, so after a worker
    /// fault the whole pass can be re-executed sequentially: every
    /// read still sees pre-region data and every write is rewritten
    /// deterministically.
    retry_safe: bool,
    /// Arrays the body stores into (sorted, deduped) — what a
    /// pre-region snapshot must capture when `retry_safe` is false.
    write_ids: Vec<ArrayId>,
    /// When the fusion pass overlaid this pass's init with
    /// [`Op::VecLoop`], the fused-entry index: chunks then run the
    /// bulk kernel over their ordinal range instead of per-iteration
    /// dispatch (same accounting, same bits).
    fused: Option<u32>,
}

/// The per-tape parallel execution plan: regions plus the stop bitmap
/// that intercepts their entry points on the main dispatch path.
#[derive(Debug, Clone, Default)]
pub struct ParPlan {
    regions: Vec<ParRegion>,
    entry_stops: Vec<bool>,
}

impl ParPlan {
    /// Does the tape have any parallelizable pass at all? (When not,
    /// `exec_par` degenerates to plain sequential dispatch.)
    pub fn has_regions(&self) -> bool {
        !self.regions.is_empty()
    }

    /// Number of parallelizable passes (reports/tests).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

/// Scan a tape for parallelizable top-level loop passes.
///
/// The scan walks top-level pcs, skipping over every loop body (only
/// *outermost* passes are partitioned; a `par` loop nested under a
/// sequential pass runs sequentially inside it). A pass becomes a
/// region when its head is marked `par` and its body is free of ops
/// that touch shared mutable bookkeeping:
///
/// * `Alloc` / `Copy` rebind whole buffer slots;
/// * checked stores (`StoreDyn` / `StoreLin` with `checked`) mutate the
///   shared definedness bitmap — and only exist when the analysis
///   could *not* discharge the §4 checks, i.e. when the disjointness
///   proof this engine relies on is absent;
/// * `CheckComplete` reads that bitmap.
///
/// Everything else — reads, unchecked stores, nested sequential loops,
/// calls, lazy error ops — is private to an iteration under the §10
/// verdict.
pub fn plan_tape(tape: &TapeProgram) -> ParPlan {
    let ops = &tape.ops;
    let mut regions = Vec::new();
    let mut pc = 0usize;
    while pc + 1 < ops.len() {
        // A pass entry is either a plain `LoopInit` or the fusion
        // pass's `VecLoop` overlay (which preserves the init's
        // register/start and is always followed by the intact head).
        let (fused, ireg, start) = match &ops[pc] {
            Op::LoopInit { ireg, start } => (None, *ireg, *start),
            Op::VecLoop(k) => {
                let e = &tape.fused[*k as usize];
                (Some(*k), e.ireg, e.start)
            }
            _ => {
                pc += 1;
                continue;
            }
        };
        let Op::LoopHead {
            ireg: hreg,
            slot,
            end,
            step,
            exit,
            par,
            red: _,
        } = &ops[pc + 1]
        else {
            pc += 1;
            continue;
        };
        debug_assert_eq!(ireg, *hreg, "LoopInit/LoopHead always pair up");
        let (init_pc, head_pc, exit_pc) = (pc, pc + 1, *exit as usize);
        pc = exit_pc; // top-level scan: never descend into a body
        if !*par {
            continue;
        }
        let body = &ops[head_pc + 1..exit_pc];
        let eligible = body.iter().all(|op| {
            !matches!(
                op,
                Op::Alloc(_)
                    | Op::Copy { .. }
                    | Op::CheckComplete { .. }
                    | Op::Halt
                    | Op::StoreDyn { checked: true, .. }
                    | Op::StoreLin { checked: true, .. }
            )
        });
        if !eligible {
            continue;
        }
        let trip = trip_count(start, *end, *step);
        let mut head_stop = vec![false; ops.len()];
        head_stop[head_pc] = true;
        let mut exit_stop = vec![false; ops.len()];
        exit_stop[exit_pc] = true;
        // Body charge count (exit_pc - 1 is the LoopNext): exact per
        // iteration, or None when conditionals make it data-dependent.
        let iter_cost = static_fuel_cost(ops, &tape.fused, head_pc + 1, exit_pc - 1)
            .and_then(|body| body.checked_add(1));
        let mut reads = std::collections::BTreeSet::new();
        let mut writes = std::collections::BTreeSet::new();
        for op in body {
            match op {
                Op::ReadDyn { array, .. } => {
                    reads.insert(*array);
                }
                Op::ReadLin(l) => {
                    reads.insert(tape.lins[*l as usize].array);
                }
                Op::StoreDyn { array, .. } => {
                    writes.insert(*array);
                }
                Op::StoreLin { lin, .. } => {
                    writes.insert(tape.lins[*lin as usize].array);
                }
                _ => {}
            }
        }
        let retry_safe = writes.is_disjoint(&reads);
        let write_ids: Vec<ArrayId> = writes.into_iter().collect();
        regions.push(ParRegion {
            init_pc,
            head_pc,
            exit_pc,
            ireg: ireg as usize,
            slot: *slot as usize,
            start,
            step: *step,
            trip,
            head_stop,
            exit_stop,
            iter_cost,
            retry_safe,
            write_ids,
            fused,
        });
    }
    let mut entry_stops = vec![false; ops.len()];
    for r in &regions {
        entry_stops[r.init_pc] = true;
    }
    ParPlan {
        regions,
        entry_stops,
    }
}

/// Fuel charges one execution of `ops[from..to]` makes, when that
/// count is the same for every input: `1` per `Call`, `trip × (1 +
/// body)` per nested counted loop. Conditionals (`AndJump`/`OrJump`/
/// `JumpIfZero`/`Jump`) are fine as long as no charging op sits in a
/// skippable range — `cond_until` tracks the furthest forward-jump
/// target seen, and a `Call` or loop before that point makes the
/// count data-dependent (`None`).
fn static_fuel_cost(ops: &[Op], fused: &[FusedEntry], from: usize, to: usize) -> Option<u64> {
    let mut cost = 0u64;
    let mut cond_until = from;
    let mut pc = from;
    while pc < to {
        match &ops[pc] {
            Op::AndJump(t) | Op::OrJump(t) | Op::JumpIfZero(t) | Op::Jump(t) => {
                cond_until = cond_until.max(*t as usize);
                pc += 1;
            }
            Op::Call { .. } => {
                if pc < cond_until {
                    return None;
                }
                cost = cost.checked_add(1)?;
                pc += 1;
            }
            Op::LoopInit { start, .. } => {
                if pc < cond_until {
                    return None;
                }
                let Op::LoopHead {
                    end, step, exit, ..
                } = &ops[pc + 1]
                else {
                    unreachable!("LoopInit is always followed by its LoopHead");
                };
                let trip = trip_count(*start, *end, *step);
                let exit_pc = *exit as usize;
                let inner = static_fuel_cost(ops, fused, pc + 2, exit_pc - 1)?;
                cost = cost.checked_add(trip.checked_mul(inner.checked_add(1)?)?)?;
                pc = exit_pc;
            }
            Op::VecLoop(k) => {
                // A fused inner loop charges one head per iteration
                // and nothing in its body (fusible bodies contain no
                // charging ops) — `trip` exactly, fused or fallen back
                // to its scalar ops.
                if pc < cond_until {
                    return None;
                }
                let e = &fused[*k as usize];
                cost = cost.checked_add(e.trip)?;
                pc = e.exit_pc as usize;
            }
            _ => pc += 1,
        }
    }
    Some(cost)
}

pub(crate) fn trip_count(start: i64, end: i64, step: i64) -> u64 {
    debug_assert!(step != 0);
    if step > 0 {
        if start > end {
            0
        } else {
            (end - start) as u64 / step as u64 + 1
        }
    } else if start < end {
        0
    } else {
        (start - end) as u64 / step.unsigned_abs() + 1
    }
}

/// Execute a tape with proven-parallel passes partitioned over
/// `threads` workers (the calling thread participates, so `threads: 1`
/// never touches the pool). Observable behaviour is bit-identical to
/// [`TapeProgram::exec`]; see the module docs for the argument.
///
/// `faults`, when present, is a deterministic injection plan (tests /
/// `HAC_FAULT_PLAN`): regions are numbered in execution order and a
/// matching `(region, chunk)` point fires a worker panic or a
/// simulated allocation failure. An absorbed fault degrades the region
/// to sequential re-execution (recorded in
/// [`VmCounters::engine_faults`]) instead of losing the run.
///
/// # Errors
/// Exactly the sequential engine's failures, with deterministic
/// first-error selection across workers. On an error, buffer elements
/// written by iterations *after* the faulting one may differ from the
/// sequential engine's (which stopped at the fault) — the program's
/// result is the error either way, and counters still merge exactly.
/// [`RuntimeError::EngineFault`] is raised only when a worker fault
/// hits a region that is neither retry-safe nor snapshotted.
pub fn exec_par(
    tape: &TapeProgram,
    plan: &ParPlan,
    st: &mut TapeState<'_>,
    threads: usize,
    faults: Option<&FaultPlan>,
) -> Result<(), RuntimeError> {
    let threads = threads.max(1);
    if threads == 1 || !plan.has_regions() {
        return tape.exec(st);
    }
    let mut tape_ops = 0u64;
    let mut pc = 0usize;
    let mut region_ordinal = 0u64;
    let out = loop {
        match tape.dispatch_until(st, &mut tape_ops, pc, &plan.entry_stops) {
            Ok(p) if p == tape.ops.len() => break Ok(()),
            Ok(p) => {
                let region = plan
                    .regions
                    .iter()
                    .find(|r| r.init_pc == p)
                    .expect("entry stop set only at region inits");
                let r = run_region(
                    tape,
                    region,
                    st,
                    threads,
                    &mut tape_ops,
                    region_ordinal,
                    faults,
                );
                region_ordinal += 1;
                match r {
                    Ok(()) => pc = region.exit_pc,
                    Err(e) => break Err(e),
                }
            }
            Err(e) => break Err(e),
        }
    };
    st.counters.tape_ops += tape_ops;
    out
}

/// Iterations per chunk aim for `CHUNKS_PER_THREAD` chunks per worker:
/// coarse enough to amortize claim overhead, fine enough to rebalance
/// when iteration costs are skewed.
const CHUNKS_PER_THREAD: u64 = 4;

/// Panic payload of a [`FaultKind::Panic`] injection: raised with
/// `resume_unwind` (no panic-hook noise) and recognized when the
/// driver describes the fault.
#[derive(Debug)]
struct InjectedFault {
    chunk: u64,
}

fn describe_panic(payload: &Box<dyn Any + Send>) -> String {
    if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        format!("injected panic in chunk {}", f.chunk)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panic: {s}")
    } else {
        "worker panic".to_string()
    }
}

#[allow(clippy::too_many_lines)]
fn run_region(
    tape: &TapeProgram,
    region: &ParRegion,
    st: &mut TapeState<'_>,
    threads: usize,
    tape_ops: &mut u64,
    region_ordinal: u64,
    faults: Option<&FaultPlan>,
) -> Result<(), RuntimeError> {
    let trip = region.trip;
    let fuel_limited = st.meter.fuel_limited();
    if trip < 2 || (fuel_limited && region.iter_cost.is_none()) || st.meter.draws_lazily() {
        // Nothing to partition — a fuel budget that cannot be split
        // exactly (data-dependent per-iteration cost) — or a meter that
        // draws fuel lazily from the shared ceiling, whose block refills
        // cannot be replayed deterministically across workers: run the
        // whole pass (LoopInit, head checks, body, final failing head
        // check) sequentially.
        let p = tape.dispatch_until(st, tape_ops, region.init_pc, &region.exit_stop)?;
        debug_assert_eq!(p, region.exit_pc);
        return Ok(());
    }

    // LoopInit, by hand (the entry stop intercepted it).
    *tape_ops += 1;
    st.scratch.iregs[region.ireg] = region.start;

    // Pre-region snapshot of the write set, only when a fault plan asks
    // for one and plain re-execution would be unsafe (the body reads an
    // array it writes). Fault-free runs never pay for this.
    let snapshot: Option<Vec<(ArrayId, Option<ArrayBuf>)>> = match faults {
        Some(f) if f.snapshot && !region.retry_safe => Some(
            region
                .write_ids
                .iter()
                .map(|&id| (id, st.bufs[id as usize].clone()))
                .collect(),
        ),
        _ => None,
    };

    let n_chunks = trip.min(threads as u64 * CHUNKS_PER_THREAD);
    // Ordinal range of chunk c: even partition of 0..trip.
    let chunk_bounds = |c: u64| (c * trip / n_chunks, (c + 1) * trip / n_chunks);

    // Fuel split: chunk c starts with exactly the budget the sequential
    // engine would have left on reaching its first ordinal, so
    // exhaustion lands on the same op, at the same ordinal, with the
    // same error payload as a sequential run. `iter_cost` is exact
    // (checked above) whenever fuel is limited.
    let fuel_per_iter = if fuel_limited {
        region.iter_cost.expect("sequential fallback covers None")
    } else {
        0
    };
    let main_fuel = st.meter.fuel_left();
    let meter0 = st.meter.clone();

    let bufs = SharedSlots::new(st.bufs);
    let defined = SharedSlots::new(st.defined);
    let funcs = st.funcs;
    let frame0 = st.scratch.frame.clone();
    let iregs0 = st.scratch.iregs.clone();

    let claim = AtomicUsize::new(0);
    // Lowest known faulting ordinal; chunks starting past it are dead
    // (excluded from the merge whatever the final minimum turns out to
    // be) and are skipped without running.
    let min_err = AtomicU64::new(u64::MAX);
    // An injected allocation failure: the chunk produced nothing, so
    // the region must be re-executed.
    let alloc_failed = AtomicBool::new(false);
    // (chunk lo, counter delta, fault: (ordinal, error, fuel left at
    // the fault — the sequential engine's remainder at the same op)).
    type ChunkOut = (u64, VmCounters, Option<(u64, RuntimeError, u64)>);
    let results: Mutex<Vec<ChunkOut>> = Mutex::new(Vec::new());

    let work = || {
        let mut scratch = TapeScratch {
            frame: frame0.clone(),
            iregs: iregs0.clone(),
            stack: Vec::with_capacity(tape.max_stack),
            idx: Vec::with_capacity(tape.max_idx),
        };
        let mut outs: Vec<ChunkOut> = Vec::new();
        loop {
            let c = claim.fetch_add(1, Ordering::Relaxed) as u64;
            if c >= n_chunks {
                break;
            }
            match faults.and_then(|f| f.lookup(region_ordinal, c)) {
                // Any fault discards every chunk's output (see below),
                // so `outs` needs no flushing before the unwind.
                Some(FaultKind::Panic) => {
                    std::panic::resume_unwind(Box::new(InjectedFault { chunk: c }))
                }
                Some(FaultKind::AllocFail) => {
                    alloc_failed.store(true, Ordering::SeqCst);
                    continue;
                }
                None => {}
            }
            let (lo, hi) = chunk_bounds(c);
            if lo > min_err.load(Ordering::Relaxed) {
                continue;
            }
            let mut counters = VmCounters::default();
            let mut chunk_ops = 0u64;
            let mut err: Option<(u64, RuntimeError, u64)> = None;
            let mut sub =
                meter0.sub_meter(main_fuel.saturating_sub(lo.saturating_mul(fuel_per_iter)));
            // Safety: every chunk covers a disjoint ordinal range of a
            // pass whose iterations are proven not to access a common
            // element conflictingly (see module docs); the backing
            // slices outlive the region (the driver joins all chunks
            // before returning).
            let mut cst = TapeState {
                bufs: unsafe { bufs.slice_mut() },
                defined: unsafe { defined.slice_mut() },
                funcs,
                scratch: &mut scratch,
                counters: &mut counters,
                meter: &mut sub,
            };
            // Fused pass: run the chunk's ordinal range as one bulk
            // kernel (identical accounting — see `fused_chunk`). An
            // unbound buffer falls back to per-iteration dispatch,
            // whose scalar ops sit intact after the overlay.
            let mut scalar_range = Some((lo, hi));
            if let Some(k) = region.fused {
                match tape.fused_chunk(k, &mut cst, &mut chunk_ops, lo, hi) {
                    FusedChunk::Fallback => {}
                    FusedChunk::Done => scalar_range = None,
                    FusedChunk::Fuel {
                        ord,
                        err: e,
                        fuel_left,
                    } => {
                        scalar_range = None;
                        min_err.fetch_min(ord, Ordering::Relaxed);
                        err = Some((ord, e, fuel_left));
                    }
                }
            }
            for ord in scalar_range.map_or(0..0, |(lo, hi)| lo..hi) {
                let i = region.start + ord as i64 * region.step;
                cst.scratch.iregs[region.ireg] = i;
                // The head op: count it, charge it, count the
                // iteration, publish the loop variable — then run the
                // body until the back-edge lands on the head again.
                chunk_ops += 1;
                if let Err(e) = cst.meter.charge_fuel() {
                    min_err.fetch_min(ord, Ordering::Relaxed);
                    let left = cst.meter.fuel_left();
                    err = Some((ord, e, left));
                    break;
                }
                cst.counters.loop_iterations += 1;
                cst.scratch.frame[region.slot] = i as f64;
                match tape.dispatch_until(
                    &mut cst,
                    &mut chunk_ops,
                    region.head_pc + 1,
                    &region.head_stop,
                ) {
                    Ok(p) => debug_assert_eq!(p, region.head_pc),
                    Err(e) => {
                        min_err.fetch_min(ord, Ordering::Relaxed);
                        let left = cst.meter.fuel_left();
                        err = Some((ord, e, left));
                        break;
                    }
                }
            }
            counters.tape_ops += chunk_ops;
            outs.push((lo, counters, err));
        }
        if !outs.is_empty() {
            results.lock().expect("results lock").extend(outs);
        }
    };

    let pool_panic = run_on_pool(threads.min(trip as usize), &work);

    if pool_panic.is_some() || alloc_failed.load(Ordering::SeqCst) {
        // A worker faulted. Discard every parallel partial result and
        // degrade to the sequential engine: the region re-executes from
        // its head (LoopInit was already applied and counted), which is
        // safe when the body never reads its own writes, or after
        // restoring the pre-region snapshot of the write set. Counters
        // and values then come out exactly as a sequential run's; only
        // `engine_faults` records that anything happened. A fault that
        // is neither — no snapshot, unsafe retry — is a structured
        // EngineFault, never a partial result.
        st.counters.engine_faults += 1;
        if region.retry_safe || snapshot.is_some() {
            if let Some(snap) = snapshot {
                for (id, buf) in snap {
                    st.bufs[id as usize] = buf;
                }
            }
            let p = tape.dispatch_until(st, tape_ops, region.head_pc, &region.exit_stop)?;
            debug_assert_eq!(p, region.exit_pc);
            return Ok(());
        }
        let detail = match &pool_panic {
            Some(payload) => describe_panic(payload),
            None => "injected allocation failure".to_string(),
        };
        return Err(RuntimeError::EngineFault {
            region: region_ordinal,
            detail,
        });
    }

    // Deterministic merge. Chunks are contiguous in ordinal order, so
    // on an error at global minimum ordinal k the sequential engine
    // executed exactly: the full iterations of every chunk starting
    // ≤ k except the owner, the owner's prefix up to the fault — and
    // every such chunk ran exactly that here (a chunk starting ≤ k
    // cannot itself fault before k, k being the minimum). The argument
    // covers fuel exhaustion too: a chunk's sub-budget equals the
    // sequential engine's remaining fuel at its first ordinal, so the
    // owning chunk runs out on exactly the sequential op.
    let mut outs = results.into_inner().expect("results lock");
    outs.sort_by_key(|(lo, _, _)| *lo);
    let fault: Option<(u64, RuntimeError, u64)> = outs
        .iter()
        .filter_map(|(_, _, e)| e.clone())
        .min_by_key(|(ord, _, _)| *ord);
    match fault {
        Some((k, e, fuel_left)) => {
            for (lo, c, _) in &outs {
                if *lo <= k {
                    add_counters(st.counters, c, tape_ops);
                }
            }
            if fuel_limited {
                // The winning chunk's sub-budget tracked the sequential
                // engine's exactly, so its remainder at the fault *is*
                // the sequential remainder — settle the main meter to
                // it (a later unit sharing the budget must see the same
                // fuel either way).
                st.meter.set_fuel_left(fuel_left);
            }
            Err(e)
        }
        None => {
            for (_, c, _) in &outs {
                add_counters(st.counters, c, tape_ops);
            }
            // The final, failing head check the sequential engine runs.
            *tape_ops += 1;
            // Post-loop register/frame state, as sequential left it.
            st.scratch.iregs[region.ireg] = region.start + trip as i64 * region.step;
            st.scratch.frame[region.slot] = (region.start + (trip as i64 - 1) * region.step) as f64;
            // Settle the region's statically known fuel spend against
            // the main meter, exactly as `trip` sequential iterations
            // would have.
            st.meter.consume_fuel(trip.saturating_mul(fuel_per_iter));
            Ok(())
        }
    }
}

/// Fold a chunk's counter delta into the main counters. `tape_ops`
/// rides separately (the caller adds it to the state's counters once,
/// mirroring [`TapeProgram::exec`]).
fn add_counters(main: &mut VmCounters, c: &VmCounters, tape_ops: &mut u64) {
    main.loads += c.loads;
    main.stores += c.stores;
    main.loop_iterations += c.loop_iterations;
    main.check_ops += c.check_ops;
    main.array_allocs += c.array_allocs;
    main.temp_elements += c.temp_elements;
    main.elements_copied += c.elements_copied;
    *tape_ops += c.tape_ops;
    // `engine_faults` is deliberately not merged: it is main-thread
    // bookkeeping (a chunk cannot observe a fault), so fault-free runs
    // stay bit-identical to the sequential engine on every counter.
}

/// When set, [`env_fault_plan`] returns `None` unconditionally: the
/// process ignores any ambient `HAC_FAULT_PLAN`. See
/// [`suppress_env_fault_plan`].
static SUPPRESS_ENV_PLAN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Make this process ignore any ambient `HAC_FAULT_PLAN`, permanently.
///
/// Test harnesses call this so unit tests stay hermetic under the CI
/// fault-injection job, which exports `HAC_FAULT_PLAN` for CLI smoke
/// runs: a test that wants faults injects them explicitly via
/// [`Vm::with_faults`](crate::limp::Vm::with_faults) (an explicit plan
/// always wins over the environment), and every other test must see a
/// fault-free baseline regardless of the environment it inherited.
/// Process-global and sticky by design — tests in one binary share the
/// process, so per-test pinning would leave every *other* test exposed.
pub fn suppress_env_fault_plan() {
    SUPPRESS_ENV_PLAN.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Whether an ambient `HAC_FAULT_PLAN` is in force for this process:
/// parsed, effective (at least one injection point or snapshots
/// disabled), and not suppressed. The serving layer's result cache
/// consults this gate — cached outcomes must never be filled from runs
/// an environment plan could perturb, since injected faults land on
/// positional coordinates that differ between full and delta runs.
pub fn ambient_fault_plan_active() -> bool {
    env_fault_plan().is_some_and(|p| !p.points.is_empty() || !p.snapshot)
}

/// The process-wide fault plan from `HAC_FAULT_PLAN`, parsed once.
/// A malformed spec is reported to stderr and ignored — a bad test
/// harness variable must not change program behaviour silently.
/// Returns `None` after [`suppress_env_fault_plan`].
pub(crate) fn env_fault_plan() -> Option<&'static FaultPlan> {
    if SUPPRESS_ENV_PLAN.load(std::sync::atomic::Ordering::Relaxed) {
        return None;
    }
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let spec = std::env::var("HAC_FAULT_PLAN").ok()?;
        match FaultPlan::parse(&spec) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("ignoring HAC_FAULT_PLAN: {e}");
                None
            }
        }
    })
    .as_ref()
}

// ---------------------------------------------------------------------
// The worker pool: persistent `std::thread` workers, reused across
// regions, `run` calls, and VMs. Submission checks out idle workers
// (spawning on demand, so the pool's size is the high-water mark of
// concurrent demand), hands each a lifetime-erased task pointer, and
// waits on a latch for all of them — the task closure therefore never
// outlives the driver's stack frame.
// ---------------------------------------------------------------------

/// A lifetime-erased task. Valid only until the submitting driver
/// returns, which the latch protocol guarantees.
#[derive(Clone, Copy)]
struct RawTask(*const (dyn Fn() + Sync));

// Safety: the pointee is `Sync` (so `&`-calls from any thread are
// fine) and the submission protocol keeps it alive until every worker
// signalled the latch.
unsafe impl Send for RawTask {}

struct Pool {
    idle: Vec<Sender<RawTask>>,
    spawned: usize,
}

static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();

fn pool() -> &'static Mutex<Pool> {
    POOL.get_or_init(|| {
        Mutex::new(Pool {
            idle: Vec::new(),
            spawned: 0,
        })
    })
}

fn worker_loop(rx: &Receiver<RawTask>) {
    while let Ok(task) = rx.recv() {
        // Safety: see `RawTask`.
        let f = unsafe { &*task.0 };
        // The task wrapper in `run_on_pool` captures the payload of any
        // panic and counts the latch down; this belt only keeps the
        // worker thread alive for its next checkout.
        let _ = catch_unwind(AssertUnwindSafe(f));
    }
}

/// Check out `n` idle workers, spawning any shortfall.
fn checkout(n: usize) -> Vec<Sender<RawTask>> {
    let mut p = pool().lock().expect("pool lock");
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match p.idle.pop() {
            Some(tx) => out.push(tx),
            None => {
                let (tx, rx) = channel::<RawTask>();
                std::thread::Builder::new()
                    .name(format!("hac-par-{}", p.spawned))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn tape worker");
                p.spawned += 1;
                out.push(tx);
            }
        }
    }
    out
}

fn checkin(workers: Vec<Sender<RawTask>>) {
    pool().lock().expect("pool lock").idle.extend(workers);
}

struct Latch {
    left: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            left: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut left = self.left.lock().expect("latch lock");
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.left.lock().expect("latch lock");
        while *left > 0 {
            left = self.cv.wait(left).expect("latch lock");
        }
    }
}

/// Counts its latch down when dropped, so a participant that panics
/// anywhere in the task wrapper still releases the driver — a missed
/// count-down would leave `run_on_pool` waiting forever.
struct CountDownOnDrop<'a>(&'a Latch);

impl Drop for CountDownOnDrop<'_> {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

/// Run `work` on the calling thread plus up to `threads - 1` pool
/// workers, returning when every participant finished. If any
/// participant panicked, the first captured payload is returned —
/// after the join, so the task memory is never freed under a running
/// worker — and the caller decides whether to re-raise or degrade.
#[must_use = "a worker panic must be re-raised or handled, never dropped"]
fn run_on_pool(threads: usize, work: &(dyn Fn() + Sync)) -> Option<Box<dyn Any + Send>> {
    let helpers = threads.saturating_sub(1);
    if helpers == 0 {
        return catch_unwind(AssertUnwindSafe(work)).err();
    }
    let latch = Latch::new(helpers);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let wrapped = || {
        let _release = CountDownOnDrop(&latch);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(work)) {
            let mut slot = first_panic.lock().expect("panic slot lock");
            slot.get_or_insert(payload);
        }
    };
    let obj: &(dyn Fn() + Sync) = &wrapped;
    // Safety: `wrapped` outlives every worker's use — the latch wait
    // below does not return before all `helpers` sends are serviced.
    let raw = RawTask(unsafe {
        std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(obj)
    });
    let workers = checkout(helpers);
    for tx in &workers {
        tx.send(raw).expect("worker alive");
    }
    let main_res = catch_unwind(AssertUnwindSafe(work));
    latch.wait();
    checkin(workers);
    match main_res {
        Err(payload) => Some(payload),
        Ok(()) => first_panic.into_inner().expect("panic slot lock"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limp::{LProgram, LStmt, StoreCheck, Vm};
    use crate::tape::{compile_tape, TapeCtx};
    use hac_lang::parser::parse_expr;
    use hac_runtime::governor::{Limits, Meter};

    /// Zero the main-side fault counter so fault-injected runs compare
    /// bit-identical to fault-free ones on every merged counter.
    fn sans_faults(mut c: VmCounters) -> VmCounters {
        c.engine_faults = 0;
        c
    }

    /// Every test constructs its VM through this: the harness is
    /// hermetic to an ambient `HAC_FAULT_PLAN` by default, and a test
    /// that wants faults injects them explicitly via `with_faults`
    /// (which always wins over the environment).
    fn vm() -> Vm {
        suppress_env_fault_plan();
        Vm::new()
    }

    fn squares(par: bool, n: i64) -> LProgram {
        LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, n)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 1,
                    end: n,
                    step: 1,
                    par,
                    red: false,
                    body: vec![LStmt::Store {
                        array: "a".into(),
                        subs: vec![parse_expr("i").unwrap()],
                        value: parse_expr("i * i").unwrap(),
                        check: StoreCheck::None,
                    }],
                },
            ],
            result: "a".into(),
        }
    }

    #[test]
    fn plan_finds_par_region_and_skips_sequential() {
        let par = compile_tape(&squares(true, 100), &TapeCtx::default());
        assert_eq!(plan_tape(&par).region_count(), 1);
        let seq = compile_tape(&squares(false, 100), &TapeCtx::default());
        assert!(!plan_tape(&seq).has_regions());
    }

    #[test]
    fn partape_matches_tape_bitwise() {
        for threads in [1, 2, 4, 8] {
            let prog = squares(true, 100);
            let tape = compile_tape(&prog, &TapeCtx::default());
            let plan = plan_tape(&tape);
            let mut seq = vm();
            seq.run_tape(&tape).unwrap();
            let mut par = vm();
            par.run_partape(&tape, &plan, threads).unwrap();
            assert_eq!(
                seq.array("a").unwrap().data(),
                par.array("a").unwrap().data(),
                "threads={threads}"
            );
            assert_eq!(seq.counters, sans_faults(par.counters), "threads={threads}");
        }
    }

    #[test]
    fn error_selection_is_lowest_iteration() {
        // Store through a guard that faults out-of-bounds from i == 40
        // onward: every thread count must report the i == 40 fault with
        // the same counters as the sequential engine.
        let n = 100;
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, n)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 1,
                    end: n,
                    step: 1,
                    par: true,
                    red: false,
                    body: vec![LStmt::Store {
                        array: "a".into(),
                        subs: vec![parse_expr("if i < 40 then i else i + 1000").unwrap()],
                        value: parse_expr("i").unwrap(),
                        check: StoreCheck::None,
                    }],
                },
            ],
            result: "a".into(),
        };
        let tape = compile_tape(&prog, &TapeCtx::default());
        let plan = plan_tape(&tape);
        assert!(plan.has_regions(), "dynamic subscript stays eligible");
        let mut seq = vm();
        let want = seq.run_tape(&tape).unwrap_err();
        for threads in [1, 2, 4, 8] {
            let mut par = vm();
            let got = par.run_partape(&tape, &plan, threads).unwrap_err();
            assert_eq!(format!("{want:?}"), format!("{got:?}"), "threads={threads}");
            assert_eq!(seq.counters, sans_faults(par.counters), "threads={threads}");
        }
    }

    #[test]
    fn pool_panic_is_propagated_not_swallowed() {
        let payload = run_on_pool(4, &|| panic!("injected fault"))
            .expect("a participant panic must surface as a payload");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("injected fault")
        );
        // The pool survives the fault: a later submission still runs on
        // every participant and completes cleanly.
        let count = AtomicUsize::new(0);
        let clean = run_on_pool(4, &|| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert!(clean.is_none());
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    /// `a!(i) := a!(i) + i` over a prefilled array: the body reads what
    /// it writes (same element, so still §10-independent across
    /// iterations), which makes plain re-execution after a mid-region
    /// fault unsafe without a snapshot.
    fn incr_in_place(n: i64) -> LProgram {
        LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, n)],
                    fill: 1.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 1,
                    end: n,
                    step: 1,
                    par: true,
                    red: false,
                    body: vec![LStmt::Store {
                        array: "a".into(),
                        subs: vec![parse_expr("i").unwrap()],
                        value: parse_expr("a!(i) + i").unwrap(),
                        check: StoreCheck::None,
                    }],
                },
            ],
            result: "a".into(),
        }
    }

    #[test]
    fn plan_classifies_retry_safety_and_iter_cost() {
        let tape = compile_tape(&squares(true, 100), &TapeCtx::default());
        let plan = plan_tape(&tape);
        assert!(plan.regions[0].retry_safe, "writes don't meet reads");
        assert_eq!(plan.regions[0].iter_cost, Some(1), "head charge only");

        let tape = compile_tape(&incr_in_place(100), &TapeCtx::default());
        let plan = plan_tape(&tape);
        assert!(!plan.regions[0].retry_safe, "a is read and written");

        // A call in the body charges every iteration; under a
        // conditional the count is data-dependent.
        let call_body = |value: &str| LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, 50)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 1,
                    end: 50,
                    step: 1,
                    par: true,
                    red: false,
                    body: vec![LStmt::Store {
                        array: "a".into(),
                        subs: vec![parse_expr("i").unwrap()],
                        value: parse_expr(value).unwrap(),
                        check: StoreCheck::None,
                    }],
                },
            ],
            result: "a".into(),
        };
        let tape = compile_tape(&call_body("sqrt(i)"), &TapeCtx::default());
        assert_eq!(plan_tape(&tape).regions[0].iter_cost, Some(2));
        let tape = compile_tape(
            &call_body("if i < 10 then sqrt(i) else i"),
            &TapeCtx::default(),
        );
        assert_eq!(plan_tape(&tape).regions[0].iter_cost, None);
    }

    #[test]
    fn fuel_exhaustion_is_bit_identical_across_threads() {
        let prog = squares(true, 100);
        let tape = compile_tape(&prog, &TapeCtx::default());
        let plan = plan_tape(&tape);
        // Budgets hitting before, inside, and after the parallel pass.
        for fuel in [0u64, 1, 37, 99, 100, 1000] {
            let limits = Limits {
                fuel: Some(fuel),
                mem_bytes: None,
            };
            let mut seq = vm();
            seq.with_meter(Meter::new(limits));
            let want = seq.run_tape(&tape);
            for threads in [2, 4, 8] {
                let mut par = vm();
                par.with_meter(Meter::new(limits));
                let got = par.run_partape(&tape, &plan, threads);
                assert_eq!(
                    format!("{want:?}"),
                    format!("{got:?}"),
                    "fuel={fuel} threads={threads}"
                );
                assert_eq!(
                    seq.counters,
                    sans_faults(par.counters),
                    "fuel={fuel} threads={threads}"
                );
                if want.is_ok() {
                    assert_eq!(
                        seq.array("a").unwrap().data(),
                        par.array("a").unwrap().data(),
                        "fuel={fuel} threads={threads}"
                    );
                }
            }
        }
    }

    /// The matvec shape: an outer proven-parallel `i` loop whose body
    /// is a reduction over `k` — `p!(i,k) := p!(i,k-1) + u!(i,k)`.
    fn row_prefix_sums(n: i64) -> LProgram {
        LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "u".into(),
                    bounds: vec![(1, n), (1, n)],
                    fill: 2.0,
                    temp: false,
                    checked: false,
                },
                LStmt::Alloc {
                    array: "p".into(),
                    bounds: vec![(1, n), (0, n)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 1,
                    end: n,
                    step: 1,
                    par: true,
                    red: false,
                    body: vec![LStmt::For {
                        var: "k".into(),
                        start: 1,
                        end: n,
                        step: 1,
                        par: false,
                        red: true,
                        body: vec![LStmt::Store {
                            array: "p".into(),
                            subs: vec![parse_expr("i").unwrap(), parse_expr("k").unwrap()],
                            value: parse_expr("p!(i, k - 1) + u!(i, k)").unwrap(),
                            check: StoreCheck::None,
                        }],
                    }],
                },
            ],
            result: "p".into(),
        }
    }

    #[test]
    fn fused_reduction_runs_inside_parallel_chunks() {
        // A fused reduction kernel nested in a par region's chunk body:
        // values, counters, and fuel must match the sequential engine
        // bit-for-bit at every thread count, with fusion on and off.
        let n = 24i64;
        let prog = row_prefix_sums(n);
        let plain = compile_tape(&prog, &TapeCtx::default());
        let mut fused = plain.clone();
        let decisions = crate::fuse::fuse_tape(&mut fused);
        assert!(
            decisions
                .iter()
                .any(|d| d.kernel.as_deref() == Some("running sum")),
            "inner k loop must fuse as a reduction: {decisions:?}"
        );
        let plan = plan_tape(&fused);
        assert!(
            plan.has_regions(),
            "outer i loop must stay a parallel region around the fused reduction"
        );

        let mut seq = vm();
        seq.run_tape(&plain).unwrap();
        for threads in [1, 2, 4, 8] {
            let mut par = vm();
            par.run_partape(&fused, &plan, threads).unwrap();
            assert_eq!(
                seq.array("p").unwrap().data(),
                par.array("p").unwrap().data(),
                "threads={threads}"
            );
            assert_eq!(seq.counters, sans_faults(par.counters), "threads={threads}");
        }

        // Fuel ladder: budgets tripping before, inside, and after the
        // region must fail (or pass) identically, including mid-kernel.
        for fuel in [0u64, 1, 7, n as u64, (n * n) as u64 / 2, (n * n + n) as u64] {
            let limits = Limits {
                fuel: Some(fuel),
                mem_bytes: None,
            };
            let mut seq = vm();
            seq.with_meter(Meter::new(limits));
            let want = seq.run_tape(&plain);
            let want_fuel = seq.take_meter().fuel_left();
            for threads in [2, 4] {
                let mut par = vm();
                par.with_meter(Meter::new(limits));
                let got = par.run_partape(&fused, &plan, threads);
                assert_eq!(
                    format!("{want:?}"),
                    format!("{got:?}"),
                    "fuel={fuel} threads={threads}"
                );
                assert_eq!(
                    seq.counters,
                    sans_faults(par.counters),
                    "fuel={fuel} threads={threads}"
                );
                assert_eq!(
                    want_fuel,
                    par.take_meter().fuel_left(),
                    "fuel={fuel} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn injected_panic_degrades_to_sequential() {
        let prog = squares(true, 100);
        let tape = compile_tape(&prog, &TapeCtx::default());
        let plan = plan_tape(&tape);
        let mut clean = vm();
        clean.run_partape(&tape, &plan, 4).unwrap();
        let mut faulty = vm();
        faulty.with_faults(Some(FaultPlan::parse("r0c1:panic").unwrap()));
        faulty.run_partape(&tape, &plan, 4).unwrap();
        assert_eq!(
            clean.array("a").unwrap().data(),
            faulty.array("a").unwrap().data()
        );
        assert_eq!(clean.counters, sans_faults(faulty.counters));
        assert_eq!(faulty.counters.engine_faults, 1, "fault is visible");
    }

    #[test]
    fn injected_alloc_failure_degrades_to_sequential() {
        let prog = squares(true, 100);
        let tape = compile_tape(&prog, &TapeCtx::default());
        let plan = plan_tape(&tape);
        let mut clean = vm();
        clean.run_partape(&tape, &plan, 4).unwrap();
        let mut faulty = vm();
        faulty.with_faults(Some(FaultPlan::parse("r0c0:allocfail").unwrap()));
        faulty.run_partape(&tape, &plan, 4).unwrap();
        assert_eq!(
            clean.array("a").unwrap().data(),
            faulty.array("a").unwrap().data()
        );
        assert_eq!(clean.counters, sans_faults(faulty.counters));
        assert_eq!(faulty.counters.engine_faults, 1);
    }

    #[test]
    fn snapshot_makes_unsafe_region_retryable() {
        let prog = incr_in_place(100);
        let tape = compile_tape(&prog, &TapeCtx::default());
        let plan = plan_tape(&tape);
        assert!(!plan.regions[0].retry_safe);
        let mut clean = vm();
        clean.run_partape(&tape, &plan, 4).unwrap();
        let mut faulty = vm();
        faulty.with_faults(Some(FaultPlan::parse("r0c0:panic").unwrap()));
        faulty.run_partape(&tape, &plan, 4).unwrap();
        assert_eq!(
            clean.array("a").unwrap().data(),
            faulty.array("a").unwrap().data()
        );
        assert_eq!(clean.counters, sans_faults(faulty.counters));
        assert_eq!(faulty.counters.engine_faults, 1);
    }

    #[test]
    fn unsafe_region_without_snapshot_is_engine_fault() {
        let prog = incr_in_place(100);
        let tape = compile_tape(&prog, &TapeCtx::default());
        let plan = plan_tape(&tape);
        let mut vm = vm();
        vm.with_faults(Some(FaultPlan::parse("nosnapshot,r0c0:panic").unwrap()));
        let err = vm.run_partape(&tape, &plan, 4).unwrap_err();
        assert!(
            matches!(err, RuntimeError::EngineFault { region: 0, .. }),
            "got {err:?}"
        );
        assert_eq!(vm.counters.engine_faults, 1);
    }

    #[test]
    fn checked_stores_disqualify_region() {
        let mut prog = squares(true, 50);
        let LStmt::For { body, .. } = &mut prog.stmts[1] else {
            unreachable!()
        };
        let LStmt::Store { check, .. } = &mut body[0] else {
            unreachable!()
        };
        *check = StoreCheck::Monolithic;
        let LStmt::Alloc { checked, .. } = &mut prog.stmts[0] else {
            unreachable!()
        };
        *checked = true;
        let tape = compile_tape(&prog, &TapeCtx::default());
        assert!(!plan_tape(&tape).has_regions());
    }
}
