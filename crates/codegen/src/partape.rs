//! Dependence-proven parallel tape execution (§10).
//!
//! The sequential tape interpreter in [`crate::tape`] runs every loop
//! pass in schedule order. This module adds an engine that partitions
//! the iteration space of each top-level loop pass whose [`Op::LoopHead`]
//! carries the §10 `par` verdict — *no loop-carried dependence, no
//! possible write collision, all checks discharged at compile time* —
//! into contiguous chunks executed concurrently on a persistent worker
//! pool. Everything between (and inside) such regions runs on the exact
//! sequential dispatch path, so the engine's observable behaviour is
//! bit-identical to [`TapeProgram::exec`]:
//!
//! * **values** — iterations of a proven region neither read another
//!   iteration's writes (that would be a carried flow dependence) nor
//!   write a common element (that would be an output dependence /
//!   collision), so each iteration computes, NaNs and all, exactly what
//!   it computes sequentially;
//! * **errors** — every chunk runs to its *own* first error; the error
//!   with the lowest iteration ordinal wins, regardless of which worker
//!   hit it first;
//! * **counters** — per-chunk [`VmCounters`] deltas are merged exactly:
//!   on success all chunks sum; on an error at ordinal `k` only the
//!   chunks covering ordinals `≤ k` contribute, reproducing the
//!   sequential prefix count (chunks are contiguous, so every such
//!   chunk either completed error-free or is the one that faulted
//!   at `k`).
//!
//! Passes that carry a dependence (or contain checked stores,
//! allocations, copies or completeness checks — anything touching
//! shared mutable bookkeeping) are simply not regions: they execute on
//! the sequential path. Correctness is decided entirely by the
//! compile-time analysis; the runtime takes no locks around array
//! accesses.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, OnceLock};

use hac_runtime::error::RuntimeError;
use hac_runtime::value::SharedSlots;

use crate::limp::VmCounters;
use crate::tape::{Op, TapeProgram, TapeScratch, TapeState};

/// A parallelizable top-level loop pass of a tape.
#[derive(Debug, Clone)]
struct ParRegion {
    /// pc of the pass's [`Op::LoopInit`].
    init_pc: usize,
    /// pc of the [`Op::LoopHead`] (always `init_pc + 1`).
    head_pc: usize,
    /// Where the head's exit jump lands (first op after the pass).
    exit_pc: usize,
    ireg: usize,
    slot: usize,
    start: i64,
    step: i64,
    /// Compile-time trip count (loop bounds are constants).
    trip: u64,
    /// Stop bitmap with only `head_pc` set: a worker runs one iteration
    /// by dispatching from `head_pc + 1` until the back-edge lands here.
    head_stop: Vec<bool>,
    /// Stop bitmap with only `exit_pc` set (sequential fallback of the
    /// whole region from `init_pc`).
    exit_stop: Vec<bool>,
}

/// The per-tape parallel execution plan: regions plus the stop bitmap
/// that intercepts their entry points on the main dispatch path.
#[derive(Debug, Clone, Default)]
pub struct ParPlan {
    regions: Vec<ParRegion>,
    entry_stops: Vec<bool>,
}

impl ParPlan {
    /// Does the tape have any parallelizable pass at all? (When not,
    /// `exec_par` degenerates to plain sequential dispatch.)
    pub fn has_regions(&self) -> bool {
        !self.regions.is_empty()
    }

    /// Number of parallelizable passes (reports/tests).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

/// Scan a tape for parallelizable top-level loop passes.
///
/// The scan walks top-level pcs, skipping over every loop body (only
/// *outermost* passes are partitioned; a `par` loop nested under a
/// sequential pass runs sequentially inside it). A pass becomes a
/// region when its head is marked `par` and its body is free of ops
/// that touch shared mutable bookkeeping:
///
/// * `Alloc` / `Copy` rebind whole buffer slots;
/// * checked stores (`StoreDyn` / `StoreLin` with `checked`) mutate the
///   shared definedness bitmap — and only exist when the analysis
///   could *not* discharge the §4 checks, i.e. when the disjointness
///   proof this engine relies on is absent;
/// * `CheckComplete` reads that bitmap.
///
/// Everything else — reads, unchecked stores, nested sequential loops,
/// calls, lazy error ops — is private to an iteration under the §10
/// verdict.
pub fn plan_tape(tape: &TapeProgram) -> ParPlan {
    let ops = &tape.ops;
    let mut regions = Vec::new();
    let mut pc = 0usize;
    while pc + 1 < ops.len() {
        let (Op::LoopInit { ireg, start }, op_head) = (&ops[pc], &ops[pc + 1]) else {
            pc += 1;
            continue;
        };
        let Op::LoopHead {
            ireg: hreg,
            slot,
            end,
            step,
            exit,
            par,
        } = op_head
        else {
            pc += 1;
            continue;
        };
        debug_assert_eq!(ireg, hreg, "LoopInit/LoopHead always pair up");
        let (init_pc, head_pc, exit_pc) = (pc, pc + 1, *exit as usize);
        pc = exit_pc; // top-level scan: never descend into a body
        if !*par {
            continue;
        }
        let body = &ops[head_pc + 1..exit_pc];
        let eligible = body.iter().all(|op| {
            !matches!(
                op,
                Op::Alloc(_)
                    | Op::Copy { .. }
                    | Op::CheckComplete { .. }
                    | Op::Halt
                    | Op::StoreDyn { checked: true, .. }
                    | Op::StoreLin { checked: true, .. }
            )
        });
        if !eligible {
            continue;
        }
        let trip = trip_count(*start, *end, *step);
        let mut head_stop = vec![false; ops.len()];
        head_stop[head_pc] = true;
        let mut exit_stop = vec![false; ops.len()];
        exit_stop[exit_pc] = true;
        regions.push(ParRegion {
            init_pc,
            head_pc,
            exit_pc,
            ireg: *ireg as usize,
            slot: *slot as usize,
            start: *start,
            step: *step,
            trip,
            head_stop,
            exit_stop,
        });
    }
    let mut entry_stops = vec![false; ops.len()];
    for r in &regions {
        entry_stops[r.init_pc] = true;
    }
    ParPlan {
        regions,
        entry_stops,
    }
}

fn trip_count(start: i64, end: i64, step: i64) -> u64 {
    debug_assert!(step != 0);
    if step > 0 {
        if start > end {
            0
        } else {
            (end - start) as u64 / step as u64 + 1
        }
    } else if start < end {
        0
    } else {
        (start - end) as u64 / step.unsigned_abs() + 1
    }
}

/// Execute a tape with proven-parallel passes partitioned over
/// `threads` workers (the calling thread participates, so `threads: 1`
/// never touches the pool). Observable behaviour is bit-identical to
/// [`TapeProgram::exec`]; see the module docs for the argument.
///
/// # Errors
/// Exactly the sequential engine's failures, with deterministic
/// first-error selection across workers. On an error, buffer elements
/// written by iterations *after* the faulting one may differ from the
/// sequential engine's (which stopped at the fault) — the program's
/// result is the error either way, and counters still merge exactly.
pub fn exec_par(
    tape: &TapeProgram,
    plan: &ParPlan,
    st: &mut TapeState<'_>,
    threads: usize,
) -> Result<(), RuntimeError> {
    let threads = threads.max(1);
    if threads == 1 || !plan.has_regions() {
        return tape.exec(st);
    }
    let mut tape_ops = 0u64;
    let mut pc = 0usize;
    let out = loop {
        match tape.dispatch_until(st, &mut tape_ops, pc, &plan.entry_stops) {
            Ok(p) if p == tape.ops.len() => break Ok(()),
            Ok(p) => {
                let region = plan
                    .regions
                    .iter()
                    .find(|r| r.init_pc == p)
                    .expect("entry stop set only at region inits");
                match run_region(tape, region, st, threads, &mut tape_ops) {
                    Ok(()) => pc = region.exit_pc,
                    Err(e) => break Err(e),
                }
            }
            Err(e) => break Err(e),
        }
    };
    st.counters.tape_ops += tape_ops;
    out
}

/// Iterations per chunk aim for `CHUNKS_PER_THREAD` chunks per worker:
/// coarse enough to amortize claim overhead, fine enough to rebalance
/// when iteration costs are skewed.
const CHUNKS_PER_THREAD: u64 = 4;

fn run_region(
    tape: &TapeProgram,
    region: &ParRegion,
    st: &mut TapeState<'_>,
    threads: usize,
    tape_ops: &mut u64,
) -> Result<(), RuntimeError> {
    let trip = region.trip;
    if trip < 2 {
        // Nothing to partition: run the whole pass (LoopInit, head
        // checks, body, final failing head check) sequentially.
        let p = tape.dispatch_until(st, tape_ops, region.init_pc, &region.exit_stop)?;
        debug_assert_eq!(p, region.exit_pc);
        return Ok(());
    }

    // LoopInit, by hand (the entry stop intercepted it).
    *tape_ops += 1;
    st.scratch.iregs[region.ireg] = region.start;

    let n_chunks = trip.min(threads as u64 * CHUNKS_PER_THREAD);
    // Ordinal range of chunk c: even partition of 0..trip.
    let chunk_bounds = |c: u64| (c * trip / n_chunks, (c + 1) * trip / n_chunks);

    let bufs = SharedSlots::new(st.bufs);
    let defined = SharedSlots::new(st.defined);
    let funcs = st.funcs;
    let frame0 = st.scratch.frame.clone();
    let iregs0 = st.scratch.iregs.clone();

    let claim = AtomicUsize::new(0);
    // Lowest known faulting ordinal; chunks starting past it are dead
    // (excluded from the merge whatever the final minimum turns out to
    // be) and are skipped without running.
    let min_err = AtomicU64::new(u64::MAX);
    type ChunkOut = (u64, VmCounters, Option<(u64, RuntimeError)>);
    let results: Mutex<Vec<ChunkOut>> = Mutex::new(Vec::new());

    let work = || {
        let mut scratch = TapeScratch {
            frame: frame0.clone(),
            iregs: iregs0.clone(),
            stack: Vec::with_capacity(tape.max_stack),
            idx: Vec::with_capacity(tape.max_idx),
        };
        let mut outs: Vec<ChunkOut> = Vec::new();
        loop {
            let c = claim.fetch_add(1, Ordering::Relaxed) as u64;
            if c >= n_chunks {
                break;
            }
            let (lo, hi) = chunk_bounds(c);
            if lo > min_err.load(Ordering::Relaxed) {
                continue;
            }
            let mut counters = VmCounters::default();
            let mut chunk_ops = 0u64;
            let mut err: Option<(u64, RuntimeError)> = None;
            // Safety: every chunk covers a disjoint ordinal range of a
            // pass whose iterations are proven not to access a common
            // element conflictingly (see module docs); the backing
            // slices outlive the region (the driver joins all chunks
            // before returning).
            let mut cst = TapeState {
                bufs: unsafe { bufs.slice_mut() },
                defined: unsafe { defined.slice_mut() },
                funcs,
                scratch: &mut scratch,
                counters: &mut counters,
            };
            for ord in lo..hi {
                let i = region.start + ord as i64 * region.step;
                cst.scratch.iregs[region.ireg] = i;
                // The head op: count it, count the iteration, publish
                // the loop variable — then run the body until the
                // back-edge lands on the head again.
                chunk_ops += 1;
                cst.counters.loop_iterations += 1;
                cst.scratch.frame[region.slot] = i as f64;
                match tape.dispatch_until(
                    &mut cst,
                    &mut chunk_ops,
                    region.head_pc + 1,
                    &region.head_stop,
                ) {
                    Ok(p) => debug_assert_eq!(p, region.head_pc),
                    Err(e) => {
                        min_err.fetch_min(ord, Ordering::Relaxed);
                        err = Some((ord, e));
                        break;
                    }
                }
            }
            counters.tape_ops += chunk_ops;
            outs.push((lo, counters, err));
        }
        if !outs.is_empty() {
            results.lock().expect("results lock").extend(outs);
        }
    };

    if let Some(payload) = run_on_pool(threads.min(trip as usize), &work) {
        std::panic::resume_unwind(payload);
    }

    // Deterministic merge. Chunks are contiguous in ordinal order, so
    // on an error at global minimum ordinal k the sequential engine
    // executed exactly: the full iterations of every chunk starting
    // ≤ k except the owner, the owner's prefix up to the fault — and
    // every such chunk ran exactly that here (a chunk starting ≤ k
    // cannot itself fault before k, k being the minimum).
    let mut outs = results.into_inner().expect("results lock");
    outs.sort_by_key(|(lo, _, _)| *lo);
    let fault: Option<(u64, RuntimeError)> = outs
        .iter()
        .filter_map(|(_, _, e)| e.clone())
        .min_by_key(|(ord, _)| *ord);
    match fault {
        Some((k, e)) => {
            for (lo, c, _) in &outs {
                if *lo <= k {
                    add_counters(st.counters, c, tape_ops);
                }
            }
            Err(e)
        }
        None => {
            for (_, c, _) in &outs {
                add_counters(st.counters, c, tape_ops);
            }
            // The final, failing head check the sequential engine runs.
            *tape_ops += 1;
            // Post-loop register/frame state, as sequential left it.
            st.scratch.iregs[region.ireg] = region.start + trip as i64 * region.step;
            st.scratch.frame[region.slot] = (region.start + (trip as i64 - 1) * region.step) as f64;
            Ok(())
        }
    }
}

/// Fold a chunk's counter delta into the main counters. `tape_ops`
/// rides separately (the caller adds it to the state's counters once,
/// mirroring [`TapeProgram::exec`]).
fn add_counters(main: &mut VmCounters, c: &VmCounters, tape_ops: &mut u64) {
    main.loads += c.loads;
    main.stores += c.stores;
    main.loop_iterations += c.loop_iterations;
    main.check_ops += c.check_ops;
    main.array_allocs += c.array_allocs;
    main.temp_elements += c.temp_elements;
    main.elements_copied += c.elements_copied;
    *tape_ops += c.tape_ops;
}

// ---------------------------------------------------------------------
// The worker pool: persistent `std::thread` workers, reused across
// regions, `run` calls, and VMs. Submission checks out idle workers
// (spawning on demand, so the pool's size is the high-water mark of
// concurrent demand), hands each a lifetime-erased task pointer, and
// waits on a latch for all of them — the task closure therefore never
// outlives the driver's stack frame.
// ---------------------------------------------------------------------

/// A lifetime-erased task. Valid only until the submitting driver
/// returns, which the latch protocol guarantees.
#[derive(Clone, Copy)]
struct RawTask(*const (dyn Fn() + Sync));

// Safety: the pointee is `Sync` (so `&`-calls from any thread are
// fine) and the submission protocol keeps it alive until every worker
// signalled the latch.
unsafe impl Send for RawTask {}

struct Pool {
    idle: Vec<Sender<RawTask>>,
    spawned: usize,
}

static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();

fn pool() -> &'static Mutex<Pool> {
    POOL.get_or_init(|| {
        Mutex::new(Pool {
            idle: Vec::new(),
            spawned: 0,
        })
    })
}

fn worker_loop(rx: &Receiver<RawTask>) {
    while let Ok(task) = rx.recv() {
        // Safety: see `RawTask`.
        let f = unsafe { &*task.0 };
        // The task wrapper in `run_on_pool` captures the payload of any
        // panic and counts the latch down; this belt only keeps the
        // worker thread alive for its next checkout.
        let _ = catch_unwind(AssertUnwindSafe(f));
    }
}

/// Check out `n` idle workers, spawning any shortfall.
fn checkout(n: usize) -> Vec<Sender<RawTask>> {
    let mut p = pool().lock().expect("pool lock");
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match p.idle.pop() {
            Some(tx) => out.push(tx),
            None => {
                let (tx, rx) = channel::<RawTask>();
                std::thread::Builder::new()
                    .name(format!("hac-par-{}", p.spawned))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn tape worker");
                p.spawned += 1;
                out.push(tx);
            }
        }
    }
    out
}

fn checkin(workers: Vec<Sender<RawTask>>) {
    pool().lock().expect("pool lock").idle.extend(workers);
}

struct Latch {
    left: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            left: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut left = self.left.lock().expect("latch lock");
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.left.lock().expect("latch lock");
        while *left > 0 {
            left = self.cv.wait(left).expect("latch lock");
        }
    }
}

/// Counts its latch down when dropped, so a participant that panics
/// anywhere in the task wrapper still releases the driver — a missed
/// count-down would leave `run_on_pool` waiting forever.
struct CountDownOnDrop<'a>(&'a Latch);

impl Drop for CountDownOnDrop<'_> {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

/// Run `work` on the calling thread plus up to `threads - 1` pool
/// workers, returning when every participant finished. If any
/// participant panicked, the first captured payload is returned —
/// after the join, so the task memory is never freed under a running
/// worker — and the caller decides whether to re-raise or degrade.
#[must_use = "a worker panic must be re-raised or handled, never dropped"]
fn run_on_pool(threads: usize, work: &(dyn Fn() + Sync)) -> Option<Box<dyn Any + Send>> {
    let helpers = threads.saturating_sub(1);
    if helpers == 0 {
        return catch_unwind(AssertUnwindSafe(work)).err();
    }
    let latch = Latch::new(helpers);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let wrapped = || {
        let _release = CountDownOnDrop(&latch);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(work)) {
            let mut slot = first_panic.lock().expect("panic slot lock");
            slot.get_or_insert(payload);
        }
    };
    let obj: &(dyn Fn() + Sync) = &wrapped;
    // Safety: `wrapped` outlives every worker's use — the latch wait
    // below does not return before all `helpers` sends are serviced.
    let raw = RawTask(unsafe {
        std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(obj)
    });
    let workers = checkout(helpers);
    for tx in &workers {
        tx.send(raw).expect("worker alive");
    }
    let main_res = catch_unwind(AssertUnwindSafe(work));
    latch.wait();
    checkin(workers);
    match main_res {
        Err(payload) => Some(payload),
        Ok(()) => first_panic.into_inner().expect("panic slot lock"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limp::{LProgram, LStmt, StoreCheck, Vm};
    use crate::tape::{compile_tape, TapeCtx};
    use hac_lang::parser::parse_expr;

    fn squares(par: bool, n: i64) -> LProgram {
        LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, n)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 1,
                    end: n,
                    step: 1,
                    par,
                    body: vec![LStmt::Store {
                        array: "a".into(),
                        subs: vec![parse_expr("i").unwrap()],
                        value: parse_expr("i * i").unwrap(),
                        check: StoreCheck::None,
                    }],
                },
            ],
            result: "a".into(),
        }
    }

    #[test]
    fn plan_finds_par_region_and_skips_sequential() {
        let par = compile_tape(&squares(true, 100), &TapeCtx::default());
        assert_eq!(plan_tape(&par).region_count(), 1);
        let seq = compile_tape(&squares(false, 100), &TapeCtx::default());
        assert!(!plan_tape(&seq).has_regions());
    }

    #[test]
    fn partape_matches_tape_bitwise() {
        for threads in [1, 2, 4, 8] {
            let prog = squares(true, 100);
            let tape = compile_tape(&prog, &TapeCtx::default());
            let plan = plan_tape(&tape);
            let mut seq = Vm::new();
            seq.run_tape(&tape).unwrap();
            let mut par = Vm::new();
            par.run_partape(&tape, &plan, threads).unwrap();
            assert_eq!(
                seq.array("a").unwrap().data(),
                par.array("a").unwrap().data(),
                "threads={threads}"
            );
            assert_eq!(seq.counters, par.counters, "threads={threads}");
        }
    }

    #[test]
    fn error_selection_is_lowest_iteration() {
        // Store through a guard that faults out-of-bounds from i == 40
        // onward: every thread count must report the i == 40 fault with
        // the same counters as the sequential engine.
        let n = 100;
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, n)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 1,
                    end: n,
                    step: 1,
                    par: true,
                    body: vec![LStmt::Store {
                        array: "a".into(),
                        subs: vec![parse_expr("if i < 40 then i else i + 1000").unwrap()],
                        value: parse_expr("i").unwrap(),
                        check: StoreCheck::None,
                    }],
                },
            ],
            result: "a".into(),
        };
        let tape = compile_tape(&prog, &TapeCtx::default());
        let plan = plan_tape(&tape);
        assert!(plan.has_regions(), "dynamic subscript stays eligible");
        let mut seq = Vm::new();
        let want = seq.run_tape(&tape).unwrap_err();
        for threads in [1, 2, 4, 8] {
            let mut par = Vm::new();
            let got = par.run_partape(&tape, &plan, threads).unwrap_err();
            assert_eq!(format!("{want:?}"), format!("{got:?}"), "threads={threads}");
            assert_eq!(seq.counters, par.counters, "threads={threads}");
        }
    }

    #[test]
    fn pool_panic_is_propagated_not_swallowed() {
        let payload = run_on_pool(4, &|| panic!("injected fault"))
            .expect("a participant panic must surface as a payload");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("injected fault")
        );
        // The pool survives the fault: a later submission still runs on
        // every participant and completes cleanly.
        let count = AtomicUsize::new(0);
        let clean = run_on_pool(4, &|| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert!(clean.is_none());
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn checked_stores_disqualify_region() {
        let mut prog = squares(true, 50);
        let LStmt::For { body, .. } = &mut prog.stmts[1] else {
            unreachable!()
        };
        let LStmt::Store { check, .. } = &mut body[0] else {
            unreachable!()
        };
        *check = StoreCheck::Monolithic;
        let LStmt::Alloc { checked, .. } = &mut prog.stmts[0] else {
            unreachable!()
        };
        *checked = true;
        let tape = compile_tape(&prog, &TapeCtx::default());
        assert!(!plan_tape(&tape).has_regions());
    }
}
