//! The register-slot bytecode tape: the Limp VM's compile-once
//! execution engine.
//!
//! [`compile_tape`] flattens a whole [`LProgram`] — statements *and*
//! expressions — into one linear [`Op`] sequence in evaluation order,
//! resolving every name at compile time:
//!
//! * scalar variables become frame-slot indices into a flat `Vec<f64>`
//!   (globals first, then lexically scoped locals; loop variables also
//!   get a parallel `i64` register so subscript arithmetic never
//!   round-trips through floats),
//! * arrays become dense [`ArrayId`]s into a `Vec<ArrayBuf>` slot
//!   table, with in-place-update aliases canonicalized so both names
//!   share one id,
//! * functions become indices into a table resolved once per run.
//!
//! Affine subscripts over loop variables are strength-reduced into
//! precomputed row-major strides: when the compile-time interval of
//! every dimension (loop ranges are constant in Limp) fits inside the
//! array's bounds, an n-dimensional access executes as one fused
//! `base + Σ stride_k·i_k` offset with no checks and no per-access
//! allocation; otherwise a per-dimension checked linear form preserves
//! the tree-walker's exact out-of-bounds behaviour. Constant
//! subexpressions fold at compile time.
//!
//! Name resolution failures are compiled to *lazy* error ops
//! ([`Op::ErrVar`] etc.) so that, exactly like the tree-walking
//! evaluator, an unbound name only faults if it is actually evaluated.
//!
//! The interpreter ([`TapeProgram::exec`]) is a non-recursive dispatch
//! loop over a reusable operand stack; all scratch (operand stack,
//! subscript stack, slot frame, loop registers) is preallocated in
//! [`TapeScratch`] and reused across runs, so the inner loop performs
//! no heap allocation.

use std::collections::HashMap;

use hac_lang::ast::{BinOp, Expr, UnOp};
use hac_runtime::error::RuntimeError;
use hac_runtime::governor::Meter;
use hac_runtime::value::{apply_bin, as_int, ArrayBuf};

use crate::limp::{unravel, LProgram, LStmt, StoreCheck, VmCounters};

/// Dense index into the tape's array slot table.
pub type ArrayId = u32;

/// A resolved host function (builtin or user-registered).
pub type HostFn = fn(&[f64]) -> f64;

/// One bytecode instruction. Expression ops operate on the `f64`
/// operand stack; subscripts travel on a separate `i64` index stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push a constant.
    Const(f64),
    /// Push a frame slot.
    LoadSlot(u32),
    /// Lazy error: the named variable had no binding at compile time.
    ErrVar(u32),
    /// Pop `r`, `l`; push `apply_bin(op, l, r)`.
    Bin(BinOp),
    /// Pop `v`; push the unary application.
    Un(UnOp),
    /// `&&`: pop `l`; if `l == 0.0` push `0.0` and jump (the rhs is
    /// skipped), else fall through to the rhs ops (whose raw value is
    /// the result, as in the tree-walker).
    AndJump(u32),
    /// `||`: pop `l`; if `l != 0.0` push `1.0` and jump, else fall
    /// through to the rhs ops followed by [`Op::OrNorm`].
    OrJump(u32),
    /// Pop `r`; push `1.0` if `r != 0.0` else `0.0`.
    OrNorm,
    /// Pop `c`; jump when `c == 0.0`.
    JumpIfZero(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Lazy error: fail `UnknownFunction` *before* argument evaluation
    /// when the function resolved to nothing at run start.
    ResolveFunc(u32),
    /// Pop `argc` arguments (contiguous on the operand stack); push the
    /// result of function-table entry `func`.
    Call { func: u32, argc: u32 },
    /// Pop an `f64`, coerce to an integer subscript (error parity with
    /// `as_int`), push onto the index stack. `name` is the array
    /// spelling for the error message.
    ToIdx(u32),
    /// Pop `rank` subscripts from the index stack; push the element.
    ReadDyn {
        array: ArrayId,
        name: u32,
        rank: u32,
    },
    /// Push the element at a strength-reduced linear access.
    ReadLin(u32),
    /// Pop into a frame slot (`let` bindings).
    StoreSlot(u32),

    /// Allocate per the indexed [`AllocEntry`].
    Alloc(u32),
    /// Set a loop register to its start value.
    LoopInit { ireg: u32, start: i64 },
    /// Loop test: exit when past `end`, else count the iteration and
    /// publish the register into the loop variable's frame slot.
    LoopHead {
        ireg: u32,
        slot: u32,
        end: i64,
        step: i64,
        exit: u32,
        /// §10 verdict carried from the plan: iterations are mutually
        /// independent (see [`crate::partape`]). Ignored by the
        /// sequential dispatcher.
        par: bool,
        /// Reduction verdict: the only carried dependence is a
        /// reassociable accumulator recurrence, so the fuser may
        /// overlay a strict left-to-right fold kernel. Ignored by the
        /// sequential dispatcher.
        red: bool,
    },
    /// Advance the loop register and jump back to the head.
    LoopNext { ireg: u32, step: i64, head: u32 },
    /// Pop the value, then `rank` subscripts; store (with optional
    /// monolithic definedness check).
    StoreDyn {
        array: ArrayId,
        name: u32,
        rank: u32,
        checked: bool,
    },
    /// Pop the value; store through a strength-reduced linear access.
    StoreLin { lin: u32, checked: bool },
    /// Clone `src`'s buffer into `dst` (element-counted).
    Copy {
        dst: ArrayId,
        src: ArrayId,
        src_name: u32,
    },
    /// Verify every element of a checked array is defined.
    CheckComplete { array: ArrayId, name: u32 },
    /// Fused vector superinstruction (index into
    /// [`TapeProgram::fused`]): a proven-parallel innermost loop whose
    /// body is straight-line arithmetic over unchecked linear accesses,
    /// executed as one contiguous-slice kernel. The fusion pass
    /// overlays this on the loop's `LoopInit` only — the scalar
    /// `LoopHead`/body/`LoopNext` ops stay in place immediately after,
    /// so when a run-time precondition fails (an unbound buffer) the
    /// dispatcher simply performs the init and falls through to the
    /// untouched scalar loop.
    VecLoop(u32),
    /// End of program.
    Halt,
}

/// One access stream of a fused loop: offset `base + Σ aᵣ·iregᵣ +
/// stride·i`, where the `inv` registers belong to enclosing loops
/// (constant for the duration of one kernel run) and `i` is the fused
/// loop's register. Streams only exist for accesses whose bounds
/// checks were discharged at compile time (`LinEntry::checks: None`).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedStream {
    pub array: ArrayId,
    pub base: i64,
    /// `(enclosing-loop register, stride)` terms.
    pub inv: Vec<(u32, i64)>,
    /// Coefficient of the fused loop's own register.
    pub stride: i64,
}

/// Micro-op of a fused loop body — the body's RPN with names resolved
/// to streams, invariant slots, and body-local temporaries. The
/// generic kernel interprets this string per element; the specialized
/// kernels are classified from it at fuse time.
#[derive(Debug, Clone, PartialEq)]
pub enum MicroOp {
    /// Push a constant.
    Const(f64),
    /// Push the fused loop's variable as `f64`.
    LoopVar,
    /// Push a loop-invariant frame slot.
    Invariant(u32),
    /// Push body-local temporary `t`.
    Temp(u8),
    /// Pop into body-local temporary `t`.
    SetTemp(u8),
    /// Push stream `s`'s current element.
    Load(u8),
    /// Pop into stream `s`'s current element.
    Store(u8),
    Bin(BinOp),
    Un(UnOp),
}

/// A loop-invariant scalar operand of a specialized kernel, resolved
/// once at kernel entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KScalar {
    Const(f64),
    /// A frame slot (enclosing binding).
    Slot(u32),
    /// A stride-0 stream: the same element every iteration.
    Elem(u8),
}

/// One operand of a specialized elementwise kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KSrc {
    /// A unit-delta stream (`stride·step == 1`), walked as a
    /// contiguous slice.
    Slice(u8),
    /// A non-unit-delta stream, walked by explicit offset arithmetic
    /// (`off(q) = off₀ + q·stride·step`) — e.g. a column of a
    /// row-major matrix.
    Strided(u8),
    /// A broadcast scalar.
    Scalar(KScalar),
}

/// The kernel shape a fused loop lowers to. Specialized shapes are
/// hand-written contiguous-slice loops (autovectorizable); everything
/// else runs the [`MicroOp`] interpreter, which still amortizes
/// dispatch, metering, and counter traffic over the whole loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// Interpret the micro-op string per element.
    Generic,
    /// `d[i] = k`
    Fill { dst: u8, val: KScalar },
    /// `d[i] = s[i]`
    Copy { dst: u8, src: u8 },
    /// `d[i] = a[i] op b[i]` (either side may broadcast).
    Ewise2 {
        dst: u8,
        a: KSrc,
        b: KSrc,
        op: BinOp,
    },
    /// `d[i] = a[i]·b[i] + c[i]` (any operand may broadcast).
    MulAdd { dst: u8, a: KSrc, b: KSrc, c: KSrc },
    /// `d[i] = (((s0[i]+s1[i])+s2[i])+s3[i]) ÷ c` (or `· c`): the
    /// four-point relaxation stencil of §2.
    Stencil4 {
        dst: u8,
        s: [u8; 4],
        c: f64,
        div: bool,
    },
    /// `d[i] = (w0·s0[i] + w1·s1[i]) + w2·s2[i]`: the weighted
    /// three-point stencil.
    Stencil3 { dst: u8, w: [f64; 3], s: [u8; 3] },
    /// `d[i] = acc ⊕= s(i)` — a running fold (prefix scan) whose
    /// accumulator is the destination cell written one iteration ago,
    /// kept in a register across the whole kernel. `⊕ ∈ {+, min,
    /// max}`; the fold is executed strictly left-to-right with the
    /// accumulator as the *left* operand, exactly like the scalar
    /// tape, so no FP operation is reordered or reassociated.
    Sum { dst: u8, src: KSrc, op: BinOp },
    /// `d[i] = acc += a[i]·b[i]` over two contiguous streams: the
    /// dot-product recurrence.
    Dot { dst: u8, a: u8, b: u8 },
    /// `d[i] = acc += a(i)·b(i)` with arbitrary operand streams (the
    /// matmul inner loop — one operand walks a strided column).
    MulAddAcc { dst: u8, a: KSrc, b: KSrc },
}

impl Kernel {
    /// Short shape name for reports.
    pub fn shape(&self) -> &'static str {
        match self {
            Kernel::Generic => "generic micro-kernel",
            Kernel::Fill { .. } => "fill",
            Kernel::Copy { .. } => "copy",
            Kernel::Ewise2 { .. } => "elementwise",
            Kernel::MulAdd { .. } => "multiply-add",
            Kernel::Stencil4 { .. } => "4-point stencil",
            Kernel::Stencil3 { .. } => "3-point stencil",
            Kernel::Sum { op: BinOp::Min, .. } => "running min",
            Kernel::Sum { op: BinOp::Max, .. } => "running max",
            Kernel::Sum { .. } => "running sum",
            Kernel::Dot { .. } => "dot",
            Kernel::MulAddAcc { .. } => "multiply-add accumulate",
        }
    }
}

/// A fused loop: everything [`Op::VecLoop`] needs to run the loop as a
/// bulk kernel while remaining observationally identical to the scalar
/// ops it overlays (which sit untouched at `init_pc + 1 ..= exit_pc -
/// 1` as the fallback/oracle path).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedEntry {
    pub ireg: u32,
    /// The loop variable's frame slot (published per §10 loop
    /// semantics; the kernel only writes the final value).
    pub slot: u32,
    pub start: i64,
    pub step: i64,
    /// Trip count (loop ranges are compile-time constants in Limp).
    pub trip: u64,
    /// pc of the overlaid `LoopInit` (where the `VecLoop` op sits).
    pub init_pc: u32,
    /// First op after the loop (the head's exit target).
    pub exit_pc: u32,
    /// Scalar tape ops per complete iteration: head + body + next.
    pub iter_ops: u64,
    pub loads_per_iter: u64,
    pub stores_per_iter: u64,
    pub streams: Vec<FusedStream>,
    pub micro: Vec<MicroOp>,
    pub kernel: Kernel,
}

/// A strength-reduced array access: all subscripts are affine in loop
/// registers, with strides folded in at compile time.
#[derive(Debug, Clone, PartialEq)]
pub struct LinEntry {
    /// Storage slot.
    pub array: ArrayId,
    /// Spelled name (error messages).
    pub name: u32,
    /// Fused constant offset (includes the `-lo·stride` terms).
    pub base: i64,
    /// `(loop register, fused row-major stride)` terms.
    pub terms: Vec<(u32, i64)>,
    /// Per-dimension check forms, or `None` when the interval analysis
    /// proved every access in bounds (checks hoisted out entirely).
    pub checks: Option<Vec<LinDim>>,
}

/// One dimension of a checked linear access.
#[derive(Debug, Clone, PartialEq)]
pub struct LinDim {
    /// Constant part of the dimension's affine subscript.
    pub c: i64,
    /// `(loop register, coefficient)` terms.
    pub terms: Vec<(u32, i64)>,
    /// Declared dimension bounds.
    pub lo: i64,
    /// Declared dimension bounds.
    pub hi: i64,
}

impl LinDim {
    #[inline]
    fn value(&self, iregs: &[i64]) -> i64 {
        let mut v = self.c;
        for &(r, a) in &self.terms {
            v = v.wrapping_add(a.wrapping_mul(iregs[r as usize]));
        }
        v
    }
}

/// A compiled allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocEntry {
    pub array: ArrayId,
    pub bounds: Vec<(i64, i64)>,
    pub fill: f64,
    pub temp: bool,
    pub checked: bool,
}

/// Compile-time context: everything the tape compiler resolves so the
/// VM does not have to.
#[derive(Debug, Clone, Default)]
pub struct TapeCtx {
    /// Known shapes of arrays bound before this program runs (inputs
    /// and earlier bindings). Arrays allocated inside the program get
    /// their shapes from their `Alloc` statements.
    pub shapes: HashMap<String, Vec<(i64, i64)>>,
    /// Name aliases (in-place `bigupd`: result name → base name). Both
    /// names canonicalize to one [`ArrayId`] so in-place mutation works.
    pub aliases: HashMap<String, String>,
    /// Compile-time integer constants (program parameters): folded
    /// directly into the tape.
    pub consts: HashMap<String, i64>,
    /// Runtime global scalars the VM will bind before execution
    /// (earlier reduction results), in binding order. These occupy the
    /// first frame slots.
    pub globals: Vec<String>,
}

/// A compiled tape, ready to execute any number of times.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TapeProgram {
    pub ops: Vec<Op>,
    /// Interned spellings for lazy error reporting.
    pub names: Vec<String>,
    /// Canonical array names, indexed by [`ArrayId`]. The executor
    /// binds each to a buffer slot before the first instruction.
    pub arrays: Vec<String>,
    /// Function names, resolved once per run.
    pub funcs: Vec<String>,
    pub lins: Vec<LinEntry>,
    pub allocs: Vec<AllocEntry>,
    /// Expected runtime globals; slot `i` holds `globals[i]`.
    pub globals: Vec<String>,
    /// Fused loops, indexed by [`Op::VecLoop`]. Empty until the fusion
    /// pass ([`crate::fuse::fuse_tape`]) runs; the scalar tape is the
    /// differential oracle and stays fully intact either way.
    pub fused: Vec<FusedEntry>,
    /// `(LoopHead pc, loop variable spelling)` in source order — lets
    /// the fusion pass report decisions per loop by name.
    pub loop_vars: Vec<(u32, String)>,
    /// Total frame slots (globals + deepest local scope).
    pub frame_size: usize,
    /// Loop registers.
    pub ireg_count: usize,
    /// Operand-stack high-water mark (preallocation).
    pub max_stack: usize,
    /// Index-stack high-water mark (preallocation).
    pub max_idx: usize,
}

/// Reusable per-run storage: preallocated once, reused across runs, so
/// the dispatch loop never touches the allocator.
#[derive(Debug, Clone, Default)]
pub struct TapeScratch {
    pub frame: Vec<f64>,
    pub iregs: Vec<i64>,
    pub stack: Vec<f64>,
    pub idx: Vec<i64>,
}

/// Mutable execution state threaded through [`TapeProgram::exec`].
pub struct TapeState<'a> {
    /// Buffer slots, indexed by [`ArrayId`]; `None` = not (yet) bound.
    pub bufs: &'a mut [Option<ArrayBuf>],
    /// Definedness bitmaps for checked arrays, indexed by [`ArrayId`].
    pub defined: &'a mut [Option<Vec<bool>>],
    /// Resolved function table (parallel to `TapeProgram::funcs`).
    pub funcs: &'a [Option<HostFn>],
    pub scratch: &'a mut TapeScratch,
    pub counters: &'a mut VmCounters,
    /// Fuel/memory budget, charged at loop heads, call sites, and
    /// allocations — the same points, in the same order, as the
    /// tree-walking VM.
    pub meter: &'a mut Meter,
}

impl TapeProgram {
    /// Size the scratch and fill global slots from the VM's bindings
    /// (later bindings shadow earlier ones, as in the scalar stack).
    pub fn prepare(&self, scratch: &mut TapeScratch, globals: &[(String, f64)]) {
        scratch.frame.clear();
        scratch.frame.resize(self.frame_size, 0.0);
        for (slot, gname) in self.globals.iter().enumerate() {
            if let Some((_, v)) = globals.iter().rev().find(|(n, _)| n == gname) {
                scratch.frame[slot] = *v;
            }
        }
        scratch.iregs.clear();
        scratch.iregs.resize(self.ireg_count, 0);
        scratch.stack.clear();
        scratch.stack.reserve(self.max_stack);
        scratch.idx.clear();
        scratch.idx.reserve(self.max_idx);
    }

    /// Execute the tape.
    ///
    /// # Errors
    /// Exactly the tree-walking VM's failures: unbound names, bad
    /// subscripts, out-of-bounds accesses, collisions, and incomplete
    /// checked arrays — raised lazily, only when the faulting
    /// instruction is reached.
    pub fn exec(&self, st: &mut TapeState<'_>) -> Result<(), RuntimeError> {
        let mut tape_ops = 0u64;
        let r = self.dispatch(st, &mut tape_ops);
        st.counters.tape_ops += tape_ops;
        r
    }

    fn dispatch(&self, st: &mut TapeState<'_>, tape_ops: &mut u64) -> Result<(), RuntimeError> {
        // STOPS = false compiles the interception check away: the
        // sequential engine pays nothing for the parallel machinery.
        self.dispatch_inner::<false>(st, tape_ops, 0, &[])
            .map(|_| ())
    }

    /// Run from `start` until a pc with `stops[pc]` set is *reached*
    /// (the stopped op is neither fetched nor counted) or the tape
    /// halts. Returns the stop pc, or `ops.len()` on [`Op::Halt`].
    /// `stops` must have one entry per op. Used by the parallel engine
    /// to intercept parallelizable loop regions while executing
    /// everything between them on the exact sequential path.
    ///
    /// # Errors
    /// Same failures as [`TapeProgram::exec`].
    pub(crate) fn dispatch_until(
        &self,
        st: &mut TapeState<'_>,
        tape_ops: &mut u64,
        start: usize,
        stops: &[bool],
    ) -> Result<usize, RuntimeError> {
        debug_assert_eq!(stops.len(), self.ops.len());
        self.dispatch_inner::<true>(st, tape_ops, start, stops)
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch_inner<const STOPS: bool>(
        &self,
        st: &mut TapeState<'_>,
        tape_ops: &mut u64,
        start: usize,
        stops: &[bool],
    ) -> Result<usize, RuntimeError> {
        let ops = &self.ops[..];
        let TapeScratch {
            frame,
            iregs,
            stack,
            idx,
        } = st.scratch;
        let mut pc = start;
        loop {
            if STOPS && stops[pc] {
                return Ok(pc);
            }
            let op = &ops[pc];
            *tape_ops += 1;
            pc += 1;
            match op {
                Op::Const(v) => stack.push(*v),
                Op::LoadSlot(s) => stack.push(frame[*s as usize]),
                Op::ErrVar(n) => {
                    return Err(RuntimeError::UnboundVariable(
                        self.names[*n as usize].clone(),
                    ))
                }
                Op::Bin(bop) => {
                    let r = stack.pop().expect("operand");
                    let l = stack.pop().expect("operand");
                    stack.push(apply_bin(*bop, l, r));
                }
                Op::Un(uop) => {
                    let v = stack.pop().expect("operand");
                    stack.push(apply_un(*uop, v));
                }
                Op::AndJump(t) => {
                    let l = stack.pop().expect("operand");
                    if l == 0.0 {
                        stack.push(0.0);
                        pc = *t as usize;
                    }
                }
                Op::OrJump(t) => {
                    let l = stack.pop().expect("operand");
                    if l != 0.0 {
                        stack.push(1.0);
                        pc = *t as usize;
                    }
                }
                Op::OrNorm => {
                    let r = stack.pop().expect("operand");
                    stack.push(if r != 0.0 { 1.0 } else { 0.0 });
                }
                Op::JumpIfZero(t) => {
                    let c = stack.pop().expect("operand");
                    if c == 0.0 {
                        pc = *t as usize;
                    }
                }
                Op::Jump(t) => pc = *t as usize,
                Op::ResolveFunc(f) => {
                    if st.funcs[*f as usize].is_none() {
                        return Err(RuntimeError::UnknownFunction(
                            self.funcs[*f as usize].clone(),
                        ));
                    }
                }
                Op::Call { func, argc } => {
                    st.meter.charge_fuel()?;
                    let f = st.funcs[*func as usize].expect("resolved by ResolveFunc");
                    let at = stack.len() - *argc as usize;
                    let v = f(&stack[at..]);
                    stack.truncate(at);
                    stack.push(v);
                }
                Op::ToIdx(n) => {
                    let v = stack.pop().expect("operand");
                    idx.push(as_int(&self.names[*n as usize], v)?);
                }
                Op::ReadDyn { array, name, rank } => {
                    let at = idx.len() - *rank as usize;
                    let name = &self.names[*name as usize];
                    let buf = st.bufs[*array as usize]
                        .as_ref()
                        .ok_or_else(|| RuntimeError::UnboundArray(name.clone()))?;
                    st.counters.loads += 1;
                    let v = buf.get(name, &idx[at..])?;
                    idx.truncate(at);
                    stack.push(v);
                }
                Op::ReadLin(l) => {
                    let lin = &self.lins[*l as usize];
                    let buf = st.bufs[lin.array as usize].as_ref().ok_or_else(|| {
                        RuntimeError::UnboundArray(self.names[lin.name as usize].clone())
                    })?;
                    st.counters.loads += 1;
                    let off = lin_offset(lin, iregs, &self.names)?;
                    stack.push(buf.linear(off));
                }
                Op::StoreSlot(s) => frame[*s as usize] = stack.pop().expect("operand"),
                Op::Alloc(a) => {
                    let entry = &self.allocs[*a as usize];
                    st.meter
                        .charge_mem(ArrayBuf::footprint_bytes(&entry.bounds, entry.checked))?;
                    let buf = ArrayBuf::new(&entry.bounds, entry.fill);
                    st.counters.array_allocs += 1;
                    if entry.temp {
                        st.counters.temp_elements += buf.len() as u64;
                    }
                    if entry.checked {
                        st.defined[entry.array as usize] = Some(vec![false; buf.len()]);
                    }
                    st.bufs[entry.array as usize] = Some(buf);
                }
                Op::LoopInit { ireg, start } => iregs[*ireg as usize] = *start,
                Op::LoopHead {
                    ireg,
                    slot,
                    end,
                    step,
                    exit,
                    par: _,
                    red: _,
                } => {
                    let i = iregs[*ireg as usize];
                    if (*step > 0 && i > *end) || (*step < 0 && i < *end) {
                        pc = *exit as usize;
                    } else {
                        st.meter.charge_fuel()?;
                        st.counters.loop_iterations += 1;
                        frame[*slot as usize] = i as f64;
                    }
                }
                Op::LoopNext { ireg, step, head } => {
                    iregs[*ireg as usize] += *step;
                    pc = *head as usize;
                }
                Op::StoreDyn {
                    array,
                    name,
                    rank,
                    checked,
                } => {
                    let v = stack.pop().expect("operand");
                    let at = idx.len() - *rank as usize;
                    let name = &self.names[*name as usize];
                    if *checked {
                        st.counters.check_ops += 1;
                        let buf = st.bufs[*array as usize]
                            .as_ref()
                            .ok_or_else(|| RuntimeError::UnboundArray(name.clone()))?;
                        let off =
                            buf.offset(&idx[at..])
                                .ok_or_else(|| RuntimeError::OutOfBounds {
                                    array: name.clone(),
                                    index: idx[at..].to_vec(),
                                    bounds: buf.bounds(),
                                })?;
                        let d = st.defined[*array as usize]
                            .as_mut()
                            .expect("checked store requires checked alloc");
                        if d[off] {
                            return Err(RuntimeError::WriteCollision {
                                array: name.clone(),
                                index: idx[at..].to_vec(),
                            });
                        }
                        d[off] = true;
                    }
                    let buf = st.bufs[*array as usize]
                        .as_mut()
                        .ok_or_else(|| RuntimeError::UnboundArray(name.clone()))?;
                    buf.set(name, &idx[at..], v)?;
                    idx.truncate(at);
                    st.counters.stores += 1;
                }
                Op::StoreLin { lin, checked } => {
                    let v = stack.pop().expect("operand");
                    let lin = &self.lins[*lin as usize];
                    let name = &self.names[lin.name as usize];
                    // Counted before the unbound/bounds checks, exactly
                    // like the tree-walker's Monolithic store.
                    if *checked {
                        st.counters.check_ops += 1;
                    }
                    let buf = st.bufs[lin.array as usize]
                        .as_mut()
                        .ok_or_else(|| RuntimeError::UnboundArray(name.clone()))?;
                    let off = lin_offset(lin, iregs, &self.names)?;
                    if *checked {
                        let d = st.defined[lin.array as usize]
                            .as_mut()
                            .expect("checked store requires checked alloc");
                        if d[off] {
                            return Err(RuntimeError::WriteCollision {
                                array: name.clone(),
                                index: unravel(buf, off),
                            });
                        }
                        d[off] = true;
                    }
                    buf.set_linear(off, v);
                    st.counters.stores += 1;
                }
                Op::Copy { dst, src, src_name } => {
                    let len = st.bufs[*src as usize]
                        .as_ref()
                        .ok_or_else(|| {
                            RuntimeError::UnboundArray(self.names[*src_name as usize].clone())
                        })?
                        .len();
                    st.meter.charge_mem(len as u64 * 8)?;
                    let buf = st.bufs[*src as usize].clone().expect("checked above");
                    st.counters.elements_copied += buf.len() as u64;
                    st.counters.array_allocs += 1;
                    st.bufs[*dst as usize] = Some(buf);
                }
                Op::CheckComplete { array, name } => {
                    let name = &self.names[*name as usize];
                    let d = st.defined[*array as usize]
                        .as_ref()
                        .ok_or_else(|| RuntimeError::UnboundArray(name.clone()))?;
                    st.counters.check_ops += d.len() as u64;
                    if let Some(off) = d.iter().position(|x| !x) {
                        let buf = st.bufs[*array as usize]
                            .as_ref()
                            .expect("checked alloc bound its array");
                        return Err(RuntimeError::UndefinedElement {
                            array: name.clone(),
                            index: unravel(buf, off),
                        });
                    }
                }
                Op::VecLoop(f) => {
                    let e = &self.fused[*f as usize];
                    if fused_bound(e, st.bufs) {
                        fused_seq(e, st.bufs, frame, iregs, st.counters, st.meter, tape_ops)?;
                        pc = e.exit_pc as usize;
                    } else {
                        // An unbound buffer must fault through the
                        // scalar path for the exact lazy error: do the
                        // overlaid `LoopInit`'s work and fall through
                        // to the intact loop head at the next pc.
                        iregs[e.ireg as usize] = e.start;
                    }
                }
                Op::Halt => return Ok(ops.len()),
            }
        }
    }
}

/// The unary operator semantics shared verbatim between the scalar
/// dispatcher and the fused micro-op interpreter (single source of
/// truth for bit-identity).
#[inline]
fn apply_un(op: UnOp, v: f64) -> f64 {
    match op {
        UnOp::Neg => -v,
        UnOp::Not => {
            if v == 0.0 {
                1.0
            } else {
                0.0
            }
        }
        UnOp::Abs => v.abs(),
        UnOp::Sqrt => v.sqrt(),
        UnOp::Exp => v.exp(),
        UnOp::Log => v.ln(),
        UnOp::Sin => v.sin(),
        UnOp::Cos => v.cos(),
    }
}

// ---- fused vector-kernel execution ----
//
// The accounting contract: a fused run must leave every observable —
// values, counters, fuel-left, post-loop register/frame state, and the
// error (if any) — bit-identical to dispatching the overlaid scalar
// ops. The scalar loop's observables are closed-form in the number of
// completed iterations `f`:
//
//   tape_ops        init(1) + f·(head + body + next) + final head(1)
//   loop_iterations f
//   loads / stores  f · (per-iteration body counts)
//   fuel            f charges, plus the failing charge on exhaustion
//   iregs[ireg]     start + f·step
//   frame[slot]     (start + (f-1)·step) as f64   — only when f > 0
//
// so the wrappers bulk-settle those and run the kernel over exactly
// `f` ordinals. Bodies with calls, branches, allocations, checked
// accesses, or dynamic subscripts never fuse, which is what makes the
// closed forms exact.

/// Every array a fused entry touches is bound — the only run-time
/// precondition for the kernel path (everything else is proven at
/// fuse time).
#[inline]
fn fused_bound(e: &FusedEntry, bufs: &[Option<ArrayBuf>]) -> bool {
    e.streams.iter().all(|s| bufs[s.array as usize].is_some())
}

/// Run a whole fused loop sequentially. The caller has already counted
/// the `VecLoop` fetch itself (standing in for the scalar `LoopInit`).
fn fused_seq(
    e: &FusedEntry,
    bufs: &mut [Option<ArrayBuf>],
    frame: &mut [f64],
    iregs: &mut [i64],
    counters: &mut VmCounters,
    meter: &mut Meter,
    tape_ops: &mut u64,
) -> Result<(), RuntimeError> {
    let (done, err) = meter.charge_fuel_block(e.trip);
    counters.loop_iterations += done;
    counters.loads += done * e.loads_per_iter;
    counters.stores += done * e.stores_per_iter;
    // Completed iterations plus the final (or failing) head check.
    *tape_ops += done * e.iter_ops + 1;
    run_fused_kernel(e, bufs, frame, iregs, 0, done);
    iregs[e.ireg as usize] = e.start + done as i64 * e.step;
    if done > 0 {
        frame[e.slot as usize] = (e.start + (done as i64 - 1) * e.step) as f64;
    }
    match err {
        None => Ok(()),
        Some(er) => Err(er),
    }
}

/// Outcome of [`TapeProgram::fused_chunk`].
pub(crate) enum FusedChunk {
    /// A buffer was unbound — run the chunk on the scalar ops.
    Fallback,
    /// All ordinals in the range completed.
    Done,
    /// Fuel ran out before `ord`; the meter is settled and the error
    /// is what the scalar head charge would have raised.
    Fuel {
        ord: u64,
        err: RuntimeError,
        fuel_left: u64,
    },
}

impl TapeProgram {
    /// Run ordinals `[lo, hi)` of fused loop `k` for a ParTape chunk
    /// worker, with the chunk's own accounting discipline: no init or
    /// final-head ops (the region driver owns those), per-iteration
    /// ops into `chunk_ops`, and no frame/ireg publication (chunk
    /// scratch is private; the merge path reconstructs post-state).
    pub(crate) fn fused_chunk(
        &self,
        k: u32,
        st: &mut TapeState<'_>,
        chunk_ops: &mut u64,
        lo: u64,
        hi: u64,
    ) -> FusedChunk {
        let e = &self.fused[k as usize];
        if !fused_bound(e, st.bufs) {
            return FusedChunk::Fallback;
        }
        let (done, err) = st.meter.charge_fuel_block(hi - lo);
        st.counters.loop_iterations += done;
        st.counters.loads += done * e.loads_per_iter;
        st.counters.stores += done * e.stores_per_iter;
        *chunk_ops += done * e.iter_ops;
        run_fused_kernel(e, st.bufs, &st.scratch.frame, &st.scratch.iregs, lo, done);
        match err {
            None => FusedChunk::Done,
            Some(er) => {
                // The failing head fetch is a dispatched op.
                *chunk_ops += 1;
                FusedChunk::Fuel {
                    ord: lo + done,
                    err: er,
                    fuel_left: st.meter.fuel_left(),
                }
            }
        }
    }
}

/// A stream's offset at the fused loop value `i0`, folding the
/// enclosing-loop registers (loop-invariant for this run).
#[inline]
fn stream_off0(s: &FusedStream, iregs: &[i64], i0: i64) -> i64 {
    let mut off = s.base;
    for &(r, a) in &s.inv {
        off = off.wrapping_add(a.wrapping_mul(iregs[r as usize]));
    }
    off.wrapping_add(s.stride.wrapping_mul(i0))
}

/// Execute `done` ordinals starting at ordinal `lo` of a fused loop.
/// All buffers are bound (checked by the caller); all accesses are
/// in bounds (proved at fuse time — specialized kernels still go
/// through slice bounds checks, the generic interpreter asserts).
fn run_fused_kernel(
    e: &FusedEntry,
    bufs: &mut [Option<ArrayBuf>],
    frame: &[f64],
    iregs: &[i64],
    lo: u64,
    done: u64,
) {
    if done == 0 {
        return;
    }
    match e.kernel {
        Kernel::Generic => run_fused_generic(e, bufs, frame, iregs, lo, done),
        Kernel::Sum { .. } | Kernel::Dot { .. } | Kernel::MulAddAcc { .. } => {
            run_fused_reduce(e, bufs, frame, iregs, lo, done);
        }
        _ => run_fused_special(e, bufs, frame, iregs, lo, done),
    }
}

/// Resolve a broadcast scalar operand at kernel entry.
fn kscalar(
    v: KScalar,
    e: &FusedEntry,
    bufs: &[Option<ArrayBuf>],
    frame: &[f64],
    iregs: &[i64],
    i0: i64,
) -> f64 {
    match v {
        KScalar::Const(c) => c,
        KScalar::Slot(s) => frame[s as usize],
        KScalar::Elem(s) => {
            let st = &e.streams[s as usize];
            let off = stream_off0(st, iregs, i0) as usize;
            bufs[st.array as usize].as_ref().expect("bound").data()[off]
        }
    }
}

enum RSrc<'a> {
    S(&'a [f64]),
    /// A strided walk over a whole array buffer: element `q` lives at
    /// `o0 + q·dlt` (every access slice-bounds-checked).
    St {
        data: &'a [f64],
        o0: i64,
        dlt: i64,
    },
    K(f64),
}

impl RSrc<'_> {
    #[inline(always)]
    fn at(&self, q: usize) -> f64 {
        match self {
            RSrc::S(s) => s[q],
            RSrc::St { data, o0, dlt } => data[(o0 + q as i64 * dlt) as usize],
            RSrc::K(v) => *v,
        }
    }
}

/// The destination window of a specialized kernel: a raw pointer plus
/// the proven extent, with contiguous (`dd == 1`) and strided walks.
/// Extracted once so every kernel arm shares the bounds assertion.
struct DstWin {
    dp: *mut f64,
    d0: i64,
    dd: i64,
}

/// Assert that offsets `d0 + q·dd` for `q ∈ extra..n` (plus, when
/// `extra < 0`, the carried-in cell at `d0 + extra·dd`) all lie inside
/// `len`. Returns the window parameters.
fn dst_window(
    e: &FusedEntry,
    bufs: &mut [Option<ArrayBuf>],
    iregs: &[i64],
    dst: u8,
    i0: i64,
    n: usize,
    extra: i64,
) -> DstWin {
    let dstm = &e.streams[dst as usize];
    let dd = dstm.stride.wrapping_mul(e.step);
    let d0 = stream_off0(dstm, iregs, i0);
    let (dp, dlen) = {
        let data = bufs[dstm.array as usize]
            .as_mut()
            .expect("bound")
            .data_mut();
        (data.as_mut_ptr(), data.len())
    };
    let first = d0 + extra * dd;
    let last = d0 + (n as i64 - 1) * dd;
    let (wmin, wmax) = (first.min(last), first.max(last));
    assert!(
        wmin >= 0 && (wmax as usize) < dlen,
        "fused destination window out of proven bounds"
    );
    DstWin { dp, d0, dd }
}

#[allow(clippy::too_many_lines)]
fn run_fused_special(
    e: &FusedEntry,
    bufs: &mut [Option<ArrayBuf>],
    frame: &[f64],
    iregs: &[i64],
    lo: u64,
    done: u64,
) {
    // Specialized kernels are only classified for bodies whose
    // destination array is disjoint from every source array, so source
    // slices borrow immutably while the destination window is written
    // through a raw pointer. The slot table itself is never mutated:
    // under ParTape the table is aliased across chunk workers, and
    // (like the scalar path) only disjoint `f64` element ranges may be
    // touched concurrently — the window's per-ordinal offsets are
    // injective (`dd ≠ 0`).
    let i0 = e.start + lo as i64 * e.step;
    let n = done as usize;
    let dst = match e.kernel {
        Kernel::Fill { dst, .. }
        | Kernel::Copy { dst, .. }
        | Kernel::Ewise2 { dst, .. }
        | Kernel::MulAdd { dst, .. }
        | Kernel::Stencil4 { dst, .. }
        | Kernel::Stencil3 { dst, .. } => dst,
        Kernel::Generic | Kernel::Sum { .. } | Kernel::Dot { .. } | Kernel::MulAddAcc { .. } => {
            unreachable!("dispatched to the interpreter / reduce paths")
        }
    };
    let DstWin { dp, d0, dd } = dst_window(e, bufs, iregs, dst, i0, n, 0);
    let bufs = &*bufs;
    {
        macro_rules! src {
            ($sid:expr) => {
                src_slice(e, bufs, iregs, i0, n, $sid)
            };
        }
        macro_rules! rsrc {
            ($k:expr) => {
                rsrc(e, bufs, frame, iregs, i0, n, $k)
            };
        }
        // One store loop per kernel arm: the contiguous fast path
        // recovers a `&mut [f64]` slice (autovectorizable), the
        // strided path writes through explicit offsets.
        // SAFETY: every offset `d0 + q·dd`, `q < n`, was asserted
        // in-bounds by `dst_window`; the destination array is disjoint
        // from every source array (classifier precondition), so the
        // window never overlaps a source slice.
        macro_rules! wloop {
            (|$q:ident| $val:expr) => {
                if dd == 1 {
                    let d = unsafe { std::slice::from_raw_parts_mut(dp.add(d0 as usize), n) };
                    for $q in 0..n {
                        d[$q] = $val;
                    }
                } else {
                    for $q in 0..n {
                        unsafe { *dp.add((d0 + $q as i64 * dd) as usize) = $val }
                    }
                }
            };
        }
        match e.kernel {
            Kernel::Fill { val, .. } => {
                let v = kscalar(val, e, bufs, frame, iregs, i0);
                wloop!(|_q| v);
            }
            Kernel::Copy { src: sid, .. } => {
                // Classified only with a unit-delta destination.
                debug_assert_eq!(dd, 1);
                let s = src!(sid);
                // SAFETY: as in `wloop!`.
                let d = unsafe { std::slice::from_raw_parts_mut(dp.add(d0 as usize), n) };
                d.copy_from_slice(s);
            }
            Kernel::Ewise2 { a, b, op, .. } => {
                let (a, b) = (rsrc!(a), rsrc!(b));
                match op {
                    BinOp::Add => wloop!(|q| a.at(q) + b.at(q)),
                    BinOp::Sub => wloop!(|q| a.at(q) - b.at(q)),
                    BinOp::Mul => wloop!(|q| a.at(q) * b.at(q)),
                    BinOp::Div => wloop!(|q| a.at(q) / b.at(q)),
                    BinOp::Min => wloop!(|q| a.at(q).min(b.at(q))),
                    BinOp::Max => wloop!(|q| a.at(q).max(b.at(q))),
                    // Only the six ops above classify as Ewise2.
                    _ => unreachable!("unclassifiable elementwise op"),
                }
            }
            Kernel::MulAdd { a, b, c, .. } => {
                let (a, b, c) = (rsrc!(a), rsrc!(b), rsrc!(c));
                wloop!(|q| a.at(q) * b.at(q) + c.at(q));
            }
            Kernel::Stencil4 { s, c, div, .. } => {
                let (s0, s1, s2, s3) = (src!(s[0]), src!(s[1]), src!(s[2]), src!(s[3]));
                if div {
                    wloop!(|q| (((s0[q] + s1[q]) + s2[q]) + s3[q]) / c);
                } else {
                    wloop!(|q| (((s0[q] + s1[q]) + s2[q]) + s3[q]) * c);
                }
            }
            Kernel::Stencil3 { w, s, .. } => {
                let (s0, s1, s2) = (src!(s[0]), src!(s[1]), src!(s[2]));
                let [w0, w1, w2] = w;
                wloop!(|q| (w0 * s0[q] + w1 * s1[q]) + w2 * s2[q]);
            }
            Kernel::Generic
            | Kernel::Sum { .. }
            | Kernel::Dot { .. }
            | Kernel::MulAddAcc { .. } => {
                unreachable!()
            }
        }
    }
}

/// Borrow stream `sid`'s elements for ordinals `0..n` as a contiguous
/// slice (unit-delta streams only).
fn src_slice<'b>(
    e: &FusedEntry,
    bufs: &'b [Option<ArrayBuf>],
    iregs: &[i64],
    i0: i64,
    n: usize,
    sid: u8,
) -> &'b [f64] {
    let s = &e.streams[sid as usize];
    let o = stream_off0(s, iregs, i0) as usize;
    &bufs[s.array as usize].as_ref().expect("bound").data()[o..o + n]
}

/// Resolve a [`KSrc`] operand for a kernel run starting at loop value
/// `i0`.
fn rsrc<'b>(
    e: &FusedEntry,
    bufs: &'b [Option<ArrayBuf>],
    frame: &[f64],
    iregs: &[i64],
    i0: i64,
    n: usize,
    k: KSrc,
) -> RSrc<'b> {
    match k {
        KSrc::Slice(sid) => RSrc::S(src_slice(e, bufs, iregs, i0, n, sid)),
        KSrc::Strided(sid) => {
            let s = &e.streams[sid as usize];
            RSrc::St {
                data: bufs[s.array as usize].as_ref().expect("bound").data(),
                o0: stream_off0(s, iregs, i0),
                dlt: s.stride.wrapping_mul(e.step),
            }
        }
        KSrc::Scalar(v) => RSrc::K(kscalar(v, e, bufs, frame, iregs, i0)),
    }
}

/// Execute a reduction kernel: a strict left-to-right fold whose
/// accumulator is the destination cell written one iteration ago.
///
/// The scalar body is `d[i] = d[i-1] ⊕ e(i)` — per iteration it loads
/// the previous cell, folds, and stores. The kernel loads the carried
/// cell **once** (at `d0 - dd`, exactly where iteration `lo`'s scalar
/// load would hit), keeps the accumulator in a register, and still
/// stores every intermediate (the array is the scan's output). The
/// accumulator is always the *left* operand of the fold — the same
/// `apply_bin(op, acc, e)` orientation the classifier verified against
/// the RPN — so every FP operation happens in the scalar order with
/// the scalar operand order: bit-identity needs no reassociation
/// argument at all.
fn run_fused_reduce(
    e: &FusedEntry,
    bufs: &mut [Option<ArrayBuf>],
    frame: &[f64],
    iregs: &[i64],
    lo: u64,
    done: u64,
) {
    let i0 = e.start + lo as i64 * e.step;
    let n = done as usize;
    let dst = match e.kernel {
        Kernel::Sum { dst, .. } | Kernel::Dot { dst, .. } | Kernel::MulAddAcc { dst, .. } => dst,
        _ => unreachable!("only reduce kernels dispatch here"),
    };
    // `extra: -1` widens the asserted window to the carried-in cell.
    let DstWin { dp, d0, dd } = dst_window(e, bufs, iregs, dst, i0, n, -1);
    let bufs = &*bufs;
    // SAFETY: `d0 - dd` is inside the asserted window.
    let mut acc = unsafe { *dp.add((d0 - dd) as usize) };
    // SAFETY (stores below): every offset `d0 + q·dd`, `q < n`, was
    // asserted in-bounds; sources live on arrays disjoint from the
    // destination (classifier precondition), so the borrows never
    // overlap the written cells.
    macro_rules! scan {
        (|$q:ident, $acc:ident| $fold:expr) => {
            if dd == 1 {
                let d = unsafe { std::slice::from_raw_parts_mut(dp.add(d0 as usize), n) };
                for $q in 0..n {
                    let $acc = acc;
                    acc = $fold;
                    d[$q] = acc;
                }
            } else {
                for $q in 0..n {
                    let $acc = acc;
                    acc = $fold;
                    unsafe { *dp.add((d0 + $q as i64 * dd) as usize) = acc }
                }
            }
        };
    }
    match e.kernel {
        Kernel::Sum { src, op, .. } => {
            let s = rsrc(e, bufs, frame, iregs, i0, n, src);
            match op {
                BinOp::Add => scan!(|q, acc| acc + s.at(q)),
                BinOp::Min => scan!(|q, acc| acc.min(s.at(q))),
                BinOp::Max => scan!(|q, acc| acc.max(s.at(q))),
                // Only the three ops above classify as Sum.
                _ => unreachable!("unclassifiable fold op"),
            }
        }
        Kernel::Dot { a, b, .. } => {
            let (a, b) = (
                src_slice(e, bufs, iregs, i0, n, a),
                src_slice(e, bufs, iregs, i0, n, b),
            );
            scan!(|q, acc| acc + a[q] * b[q]);
        }
        Kernel::MulAddAcc { a, b, .. } => {
            let (a, b) = (
                rsrc(e, bufs, frame, iregs, i0, n, a),
                rsrc(e, bufs, frame, iregs, i0, n, b),
            );
            scan!(|q, acc| acc + a.at(q) * b.at(q));
        }
        _ => unreachable!(),
    }
}

/// Per-stream raw cursor for the generic interpreter.
struct RawStream {
    ptr: *mut f64,
    len: usize,
    cur: i64,
    delta: i64,
}

impl RawStream {
    #[inline(always)]
    fn read(&self) -> f64 {
        let off = self.cur as usize;
        assert!(off < self.len, "fused access out of proven bounds");
        // SAFETY: `off < len` for a live allocation; streams on the
        // same array alias only through raw pointers (no overlapping
        // references are ever formed).
        unsafe { *self.ptr.add(off) }
    }

    #[inline(always)]
    fn write(&mut self, v: f64) {
        let off = self.cur as usize;
        assert!(off < self.len, "fused access out of proven bounds");
        // SAFETY: as in `read`.
        unsafe { *self.ptr.add(off) = v }
    }
}

fn run_fused_generic(
    e: &FusedEntry,
    bufs: &mut [Option<ArrayBuf>],
    frame: &[f64],
    iregs: &[i64],
    lo: u64,
    done: u64,
) {
    let i0 = e.start + lo as i64 * e.step;
    // One pass over the slot table collects a raw view per array; the
    // streams then alias through pointers only (a fused body may read
    // and write the same array — §4 in-place updates).
    let mut views: Vec<(ArrayId, *mut f64, usize)> = Vec::with_capacity(e.streams.len());
    for (id, slot) in bufs.iter_mut().enumerate() {
        if e.streams.iter().any(|s| s.array as usize == id) {
            let b = slot.as_mut().expect("bound");
            let len = b.len();
            views.push((id as ArrayId, b.data_mut().as_mut_ptr(), len));
        }
    }
    let view = |id: ArrayId| {
        let &(_, ptr, len) = views.iter().find(|&&(v, _, _)| v == id).expect("collected");
        (ptr, len)
    };
    let mut streams: Vec<RawStream> = e
        .streams
        .iter()
        .map(|s| {
            let (ptr, len) = view(s.array);
            RawStream {
                ptr,
                len,
                cur: stream_off0(s, iregs, i0),
                delta: s.stride.wrapping_mul(e.step),
            }
        })
        .collect();
    let mut stack = [0f64; FUSE_MAX_STACK];
    let mut temps = [0f64; FUSE_MAX_TEMPS];
    let mut i = i0;
    for _ in 0..done {
        let mut sp = 0usize;
        for m in &e.micro {
            match m {
                MicroOp::Const(v) => {
                    stack[sp] = *v;
                    sp += 1;
                }
                MicroOp::LoopVar => {
                    stack[sp] = i as f64;
                    sp += 1;
                }
                MicroOp::Invariant(s) => {
                    stack[sp] = frame[*s as usize];
                    sp += 1;
                }
                MicroOp::Temp(t) => {
                    stack[sp] = temps[*t as usize];
                    sp += 1;
                }
                MicroOp::SetTemp(t) => {
                    sp -= 1;
                    temps[*t as usize] = stack[sp];
                }
                MicroOp::Load(s) => {
                    stack[sp] = streams[*s as usize].read();
                    sp += 1;
                }
                MicroOp::Store(s) => {
                    sp -= 1;
                    streams[*s as usize].write(stack[sp]);
                }
                MicroOp::Bin(op) => {
                    sp -= 1;
                    stack[sp - 1] = apply_bin(*op, stack[sp - 1], stack[sp]);
                }
                MicroOp::Un(op) => stack[sp - 1] = apply_un(*op, stack[sp - 1]),
            }
        }
        for s in streams.iter_mut() {
            s.cur = s.cur.wrapping_add(s.delta);
        }
        i += e.step;
    }
}

/// Micro-interpreter operand-stack depth limit (bodies deeper than
/// this stay scalar).
pub const FUSE_MAX_STACK: usize = 16;
/// Body-local temporary limit for fused bodies.
pub const FUSE_MAX_TEMPS: usize = 8;

/// Compute a linear access's offset, running the per-dimension checks
/// when the compile-time proof did not discharge them.
#[inline]
fn lin_offset(lin: &LinEntry, iregs: &[i64], names: &[String]) -> Result<usize, RuntimeError> {
    match &lin.checks {
        None => {
            let mut off = lin.base;
            for &(r, s) in &lin.terms {
                off = off.wrapping_add(s.wrapping_mul(iregs[r as usize]));
            }
            Ok(off as usize)
        }
        Some(dims) => {
            let mut off: i64 = 0;
            for d in dims {
                let v = d.value(iregs);
                if v < d.lo || v > d.hi {
                    return Err(RuntimeError::OutOfBounds {
                        array: names[lin.name as usize].clone(),
                        index: dims.iter().map(|d| d.value(iregs)).collect(),
                        bounds: dims.iter().map(|d| (d.lo, d.hi)).collect(),
                    });
                }
                off = off * (d.hi - d.lo + 1) + (v - d.lo);
            }
            Ok(off as usize)
        }
    }
}

/// Compile a Limp program to a bytecode tape. Total: every program
/// compiles; anything unresolvable becomes a lazy runtime error op,
/// and anything non-affine falls back to the dynamic subscript path.
pub fn compile_tape(prog: &LProgram, ctx: &TapeCtx) -> TapeProgram {
    let mut c = Compiler::new(ctx);
    c.scan_shapes(&prog.stmts);
    c.compile_stmts(&prog.stmts);
    c.emit(Op::Halt, 0, 0);
    c.finish()
}

/// Resolution of a variable reference at compile time.
enum VarRef {
    /// A frame slot (global or local).
    Slot(u32),
    /// A loop variable: frame slot plus integer register and range.
    Loop { slot: u32, ireg: u32 },
    /// A compile-time constant (program parameter).
    Const(i64),
    /// No binding — compiles to a lazy error.
    Unbound,
}

struct ScopeVar {
    name: String,
    slot: u32,
    /// Loop variables carry their integer register.
    ireg: Option<u32>,
}

/// An affine form `c + Σ coeff·ireg` with exact integer arithmetic;
/// construction bails out (→ dynamic path) on any overflow.
#[derive(Debug, Clone)]
struct AffForm {
    c: i64,
    /// Sorted by register for deterministic output.
    terms: Vec<(u32, i64)>,
}

impl AffForm {
    fn konst(c: i64) -> AffForm {
        AffForm { c, terms: vec![] }
    }

    fn add_scaled(&self, other: &AffForm, k: i64) -> Option<AffForm> {
        let mut out = self.clone();
        out.c = out.c.checked_add(other.c.checked_mul(k)?)?;
        for &(r, a) in &other.terms {
            let a = a.checked_mul(k)?;
            match out.terms.iter_mut().find(|(rr, _)| *rr == r) {
                Some((_, acc)) => *acc = acc.checked_add(a)?,
                None => out.terms.push((r, a)),
            }
        }
        out.terms.retain(|&(_, a)| a != 0);
        out.terms.sort_unstable_by_key(|&(r, _)| r);
        Some(out)
    }
}

struct Compiler<'a> {
    ctx: &'a TapeCtx,
    ops: Vec<Op>,
    names: Vec<String>,
    name_map: HashMap<String, u32>,
    arrays: Vec<String>,
    array_map: HashMap<String, u32>,
    funcs: Vec<String>,
    func_map: HashMap<String, u32>,
    lins: Vec<LinEntry>,
    allocs: Vec<AllocEntry>,
    /// Canonical name → shape; `None` = statically unknown (dynamic
    /// subscript path only).
    shapes: HashMap<String, Option<Vec<(i64, i64)>>>,
    scope: Vec<ScopeVar>,
    next_slot: usize,
    frame_size: usize,
    next_ireg: usize,
    ireg_count: usize,
    /// Loop ranges per register (conservative `[min, max]` superset).
    ireg_range: Vec<(i64, i64)>,
    cur_stack: usize,
    max_stack: usize,
    cur_idx: usize,
    max_idx: usize,
    loop_vars: Vec<(u32, String)>,
}

impl<'a> Compiler<'a> {
    fn new(ctx: &'a TapeCtx) -> Compiler<'a> {
        let mut c = Compiler {
            ctx,
            ops: vec![],
            names: vec![],
            name_map: HashMap::new(),
            arrays: vec![],
            array_map: HashMap::new(),
            funcs: vec![],
            func_map: HashMap::new(),
            lins: vec![],
            allocs: vec![],
            shapes: HashMap::new(),
            scope: vec![],
            next_slot: ctx.globals.len(),
            frame_size: ctx.globals.len(),
            next_ireg: 0,
            ireg_count: 0,
            ireg_range: vec![],
            cur_stack: 0,
            max_stack: 0,
            cur_idx: 0,
            max_idx: 0,
            loop_vars: vec![],
        };
        for (name, shape) in &ctx.shapes {
            let canon = c.canonical(name).to_string();
            match c.shapes.get(&canon) {
                Some(Some(s)) if s != shape => {
                    c.shapes.insert(canon, None);
                }
                Some(_) => {}
                None => {
                    c.shapes.insert(canon, Some(shape.clone()));
                }
            }
        }
        c
    }

    fn finish(self) -> TapeProgram {
        TapeProgram {
            ops: self.ops,
            names: self.names,
            arrays: self.arrays,
            funcs: self.funcs,
            lins: self.lins,
            allocs: self.allocs,
            globals: self.ctx.globals.clone(),
            fused: vec![],
            loop_vars: self.loop_vars,
            frame_size: self.frame_size,
            ireg_count: self.ireg_count,
            max_stack: self.max_stack,
            max_idx: self.max_idx,
        }
    }

    fn canonical<'n>(&self, name: &'n str) -> &'n str
    where
        'a: 'n,
    {
        let mut cur = name;
        while let Some(next) = self.ctx.aliases.get(cur) {
            cur = next;
        }
        cur
    }

    /// Pre-pass: collect static shapes from `Alloc`/`CopyArray`, on top
    /// of the context's shapes. Conflicts poison a name to "unknown".
    fn scan_shapes(&mut self, stmts: &[LStmt]) {
        for s in stmts {
            match s {
                LStmt::Alloc { array, bounds, .. } => {
                    let canon = self.canonical(array).to_string();
                    match self.shapes.get(&canon) {
                        Some(Some(b)) if b != bounds => {
                            self.shapes.insert(canon, None);
                        }
                        Some(_) => {}
                        None => {
                            self.shapes.insert(canon, Some(bounds.clone()));
                        }
                    }
                }
                LStmt::CopyArray { dst, src } => {
                    let sshape = self
                        .shapes
                        .get(self.canonical(src))
                        .cloned()
                        .unwrap_or(None);
                    let canon = self.canonical(dst).to_string();
                    match (self.shapes.get(&canon), &sshape) {
                        (Some(Some(d)), Some(s)) if d == s => {}
                        (None, Some(_)) => {
                            self.shapes.insert(canon, sshape);
                        }
                        _ => {
                            self.shapes.insert(canon, None);
                        }
                    }
                }
                LStmt::For { body, .. } | LStmt::Let { body, .. } => self.scan_shapes(body),
                LStmt::If { then, els, .. } => {
                    self.scan_shapes(then);
                    self.scan_shapes(els);
                }
                LStmt::Store { .. } | LStmt::CheckComplete { .. } => {}
            }
        }
    }

    // ---- interning ----

    fn intern_name(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.name_map.get(s) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(s.to_string());
        self.name_map.insert(s.to_string(), i);
        i
    }

    fn intern_array(&mut self, raw: &str) -> ArrayId {
        let canon = self.canonical(raw).to_string();
        if let Some(&i) = self.array_map.get(&canon) {
            return i;
        }
        let i = self.arrays.len() as u32;
        self.arrays.push(canon.clone());
        self.array_map.insert(canon, i);
        i
    }

    fn intern_func(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.func_map.get(s) {
            return i;
        }
        let i = self.funcs.len() as u32;
        self.funcs.push(s.to_string());
        self.func_map.insert(s.to_string(), i);
        i
    }

    // ---- emission ----

    fn emit(&mut self, op: Op, sdelta: i32, idelta: i32) {
        self.ops.push(op);
        self.cur_stack = (self.cur_stack as i64 + i64::from(sdelta)) as usize;
        self.max_stack = self.max_stack.max(self.cur_stack);
        self.cur_idx = (self.cur_idx as i64 + i64::from(idelta)) as usize;
        self.max_idx = self.max_idx.max(self.cur_idx);
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: u32) {
        let target = self.here();
        match &mut self.ops[at as usize] {
            Op::AndJump(t)
            | Op::OrJump(t)
            | Op::JumpIfZero(t)
            | Op::Jump(t)
            | Op::LoopHead { exit: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// If the ops emitted since `start` are exactly one `Const`, remove
    /// it and return its value (constant-folding hook).
    fn take_const(&mut self, start: usize) -> Option<f64> {
        if self.ops.len() == start + 1 {
            if let Op::Const(v) = self.ops[start] {
                self.ops.pop();
                self.cur_stack -= 1;
                return Some(v);
            }
        }
        None
    }

    // ---- scopes ----

    fn alloc_slot(&mut self) -> u32 {
        let s = self.next_slot;
        self.next_slot += 1;
        self.frame_size = self.frame_size.max(self.next_slot);
        s as u32
    }

    fn alloc_ireg(&mut self, range: (i64, i64)) -> u32 {
        let r = self.next_ireg;
        self.next_ireg += 1;
        self.ireg_count = self.ireg_count.max(self.next_ireg);
        if r == self.ireg_range.len() {
            self.ireg_range.push(range);
        } else {
            self.ireg_range[r] = range;
        }
        r as u32
    }

    fn resolve_var(&self, name: &str) -> VarRef {
        for v in self.scope.iter().rev() {
            if v.name == name {
                return match v.ireg {
                    Some(ireg) => VarRef::Loop { slot: v.slot, ireg },
                    None => VarRef::Slot(v.slot),
                };
            }
        }
        // Runtime globals shadow compile-time parameters (they are
        // pushed after them in the VM), and the last binding of a name
        // wins.
        if let Some(pos) = self.ctx.globals.iter().rposition(|g| g == name) {
            return VarRef::Slot(pos as u32);
        }
        if let Some(&c) = self.ctx.consts.get(name) {
            return VarRef::Const(c);
        }
        VarRef::Unbound
    }

    // ---- affine analysis ----

    fn affine_of(&self, e: &Expr) -> Option<AffForm> {
        match e {
            Expr::Int(v) => Some(AffForm::konst(*v)),
            Expr::Num(v) if v.fract() == 0.0 && v.is_finite() && v.abs() < 2e12 => {
                Some(AffForm::konst(*v as i64))
            }
            Expr::Var(n) => match self.resolve_var(n) {
                VarRef::Loop { ireg, .. } => Some(AffForm {
                    c: 0,
                    terms: vec![(ireg, 1)],
                }),
                VarRef::Const(c) => Some(AffForm::konst(c)),
                _ => None,
            },
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => AffForm::konst(0).add_scaled(&self.affine_of(expr)?, -1),
            Expr::Binary { op, lhs, rhs } => {
                let l = self.affine_of(lhs)?;
                let r = self.affine_of(rhs)?;
                match op {
                    BinOp::Add => l.add_scaled(&r, 1),
                    BinOp::Sub => l.add_scaled(&r, -1),
                    BinOp::Mul if l.terms.is_empty() => AffForm::konst(0).add_scaled(&r, l.c),
                    BinOp::Mul if r.terms.is_empty() => AffForm::konst(0).add_scaled(&l, r.c),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Conservative `[min, max]` of an affine form over the loop
    /// ranges; `None` on overflow or if too large for exact `f64`
    /// subscript arithmetic (→ dynamic path keeps tree-walk parity).
    fn interval(&self, f: &AffForm) -> Option<(i64, i64)> {
        let mut mn = f.c;
        let mut mx = f.c;
        for &(r, a) in &f.terms {
            let (rlo, rhi) = self.ireg_range[r as usize];
            let (tlo, thi) = if a >= 0 {
                (a.checked_mul(rlo)?, a.checked_mul(rhi)?)
            } else {
                (a.checked_mul(rhi)?, a.checked_mul(rlo)?)
            };
            mn = mn.checked_add(tlo)?;
            mx = mx.checked_add(thi)?;
        }
        const EXACT: i64 = 1 << 52;
        if mn.abs() >= EXACT || mx.abs() >= EXACT {
            return None;
        }
        Some((mn, mx))
    }

    /// Try to strength-reduce an access into a [`LinEntry`].
    fn try_lin(&mut self, array_raw: &str, subs: &[Expr]) -> Option<u32> {
        let shape = self
            .shapes
            .get(self.canonical(array_raw))
            .cloned()
            .flatten()?;
        if shape.len() != subs.len() {
            return None;
        }
        let forms: Vec<AffForm> = subs
            .iter()
            .map(|s| self.affine_of(s))
            .collect::<Option<_>>()?;
        let mut in_bounds = true;
        let mut ivals = Vec::with_capacity(forms.len());
        for (f, &(lo, hi)) in forms.iter().zip(&shape) {
            let (mn, mx) = self.interval(f)?;
            ivals.push((mn, mx));
            if !(mn >= lo && mx <= hi) {
                in_bounds = false;
            }
        }
        let array = self.intern_array(array_raw);
        let name = self.intern_name(array_raw);
        let entry = if in_bounds {
            // Fuse strides: offset = Σ (v_k - lo_k)·stride_k.
            let mut strides = vec![1i64; shape.len()];
            for k in (0..shape.len()).rev().skip(1) {
                let extent = shape[k + 1].1 - shape[k + 1].0 + 1;
                strides[k] = strides[k + 1].checked_mul(extent)?;
            }
            let mut base = 0i64;
            let mut terms: Vec<(u32, i64)> = vec![];
            for (k, f) in forms.iter().enumerate() {
                base = base.checked_add(f.c.checked_sub(shape[k].0)?.checked_mul(strides[k])?)?;
                for &(r, a) in &f.terms {
                    let fused = a.checked_mul(strides[k])?;
                    match terms.iter_mut().find(|(rr, _)| *rr == r) {
                        Some((_, acc)) => *acc = acc.checked_add(fused)?,
                        None => terms.push((r, fused)),
                    }
                }
            }
            terms.retain(|&(_, a)| a != 0);
            terms.sort_unstable_by_key(|&(r, _)| r);
            LinEntry {
                array,
                name,
                base,
                terms,
                checks: None,
            }
        } else {
            LinEntry {
                array,
                name,
                base: 0,
                terms: vec![],
                checks: Some(
                    forms
                        .iter()
                        .zip(&shape)
                        .map(|(f, &(lo, hi))| LinDim {
                            c: f.c,
                            terms: f.terms.clone(),
                            lo,
                            hi,
                        })
                        .collect(),
                ),
            }
        };
        let id = self.lins.len() as u32;
        self.lins.push(entry);
        Some(id)
    }

    // ---- expressions ----

    fn compile_expr(&mut self, e: &Expr) {
        match e {
            Expr::Num(v) => self.emit(Op::Const(*v), 1, 0),
            Expr::Int(v) => self.emit(Op::Const(*v as f64), 1, 0),
            Expr::Var(n) => match self.resolve_var(n) {
                VarRef::Slot(s) | VarRef::Loop { slot: s, .. } => self.emit(Op::LoadSlot(s), 1, 0),
                VarRef::Const(c) => self.emit(Op::Const(c as f64), 1, 0),
                VarRef::Unbound => {
                    let n = self.intern_name(n);
                    self.emit(Op::ErrVar(n), 1, 0);
                }
            },
            Expr::Index { array, subs } => {
                if let Some(lin) = self.try_lin(array, subs) {
                    self.emit(Op::ReadLin(lin), 1, 0);
                } else {
                    let name = self.intern_name(array);
                    for s in subs {
                        self.compile_expr(s);
                        self.emit(Op::ToIdx(name), -1, 1);
                    }
                    let id = self.intern_array(array);
                    self.emit(
                        Op::ReadDyn {
                            array: id,
                            name,
                            rank: subs.len() as u32,
                        },
                        1,
                        -(subs.len() as i32),
                    );
                }
            }
            Expr::Binary { op, lhs, rhs } => self.compile_binary(*op, lhs, rhs),
            Expr::Unary { op, expr } => {
                let start = self.ops.len();
                self.compile_expr(expr);
                if let Some(v) = self.take_const(start) {
                    let folded = match op {
                        UnOp::Neg => -v,
                        UnOp::Not => {
                            if v == 0.0 {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        UnOp::Abs => v.abs(),
                        UnOp::Sqrt => v.sqrt(),
                        UnOp::Exp => v.exp(),
                        UnOp::Log => v.ln(),
                        UnOp::Sin => v.sin(),
                        UnOp::Cos => v.cos(),
                    };
                    self.emit(Op::Const(folded), 1, 0);
                } else {
                    self.emit(Op::Un(*op), 0, 0);
                }
            }
            Expr::If { cond, then, els } => {
                let start = self.ops.len();
                self.compile_expr(cond);
                if let Some(c) = self.take_const(start) {
                    // Dead branch eliminated: the tree-walker would not
                    // evaluate it either, so no counter divergence.
                    self.compile_expr(if c != 0.0 { then } else { els });
                    return;
                }
                let jz = self.here();
                self.emit(Op::JumpIfZero(0), -1, 0);
                let base = self.cur_stack;
                self.compile_expr(then);
                let jend = self.here();
                self.emit(Op::Jump(0), 0, 0);
                self.patch(jz);
                self.cur_stack = base;
                self.compile_expr(els);
                self.patch(jend);
            }
            Expr::Let { binds, body } => {
                let scope_depth = self.scope.len();
                let slot_mark = self.next_slot;
                for (name, rhs) in binds {
                    self.compile_expr(rhs);
                    let slot = self.alloc_slot();
                    self.emit(Op::StoreSlot(slot), -1, 0);
                    self.scope.push(ScopeVar {
                        name: name.clone(),
                        slot,
                        ireg: None,
                    });
                }
                self.compile_expr(body);
                self.scope.truncate(scope_depth);
                self.next_slot = slot_mark;
            }
            Expr::Call { func, args } => {
                let f = self.intern_func(func);
                self.emit(Op::ResolveFunc(f), 0, 0);
                for a in args {
                    self.compile_expr(a);
                }
                self.emit(
                    Op::Call {
                        func: f,
                        argc: args.len() as u32,
                    },
                    1 - args.len() as i32,
                    0,
                );
            }
        }
    }

    fn compile_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) {
        match op {
            BinOp::And => {
                let start = self.ops.len();
                self.compile_expr(lhs);
                if let Some(l) = self.take_const(start) {
                    if l == 0.0 {
                        self.emit(Op::Const(0.0), 1, 0);
                    } else {
                        // Tree-walk `&&` returns the rhs value raw.
                        self.compile_expr(rhs);
                    }
                    return;
                }
                let j = self.here();
                self.emit(Op::AndJump(0), -1, 0);
                self.compile_expr(rhs);
                self.patch(j);
            }
            BinOp::Or => {
                let start = self.ops.len();
                self.compile_expr(lhs);
                if let Some(l) = self.take_const(start) {
                    if l != 0.0 {
                        self.emit(Op::Const(1.0), 1, 0);
                    } else {
                        let rstart = self.ops.len();
                        self.compile_expr(rhs);
                        match self.take_const(rstart) {
                            Some(r) => self.emit(Op::Const(if r != 0.0 { 1.0 } else { 0.0 }), 1, 0),
                            None => self.emit(Op::OrNorm, 0, 0),
                        }
                    }
                    return;
                }
                let j = self.here();
                self.emit(Op::OrJump(0), -1, 0);
                self.compile_expr(rhs);
                self.emit(Op::OrNorm, 0, 0);
                self.patch(j);
            }
            _ => {
                let lstart = self.ops.len();
                self.compile_expr(lhs);
                let rstart = self.ops.len();
                self.compile_expr(rhs);
                if lstart + 1 == rstart && rstart + 1 == self.ops.len() {
                    if let (Op::Const(l), Op::Const(r)) = (&self.ops[lstart], &self.ops[rstart]) {
                        let (l, r) = (*l, *r);
                        // `mod 0` panics at run time in the tree-walker;
                        // folding would move the panic to compile time.
                        if !(op == BinOp::Mod && r as i64 == 0) {
                            self.ops.truncate(lstart);
                            self.cur_stack -= 2;
                            self.emit(Op::Const(apply_bin(op, l, r)), 1, 0);
                            return;
                        }
                    }
                }
                self.emit(Op::Bin(op), -1, 0);
            }
        }
    }

    // ---- statements ----

    fn compile_stmts(&mut self, stmts: &[LStmt]) {
        for s in stmts {
            self.compile_stmt(s);
        }
    }

    fn compile_stmt(&mut self, s: &LStmt) {
        match s {
            LStmt::Alloc {
                array,
                bounds,
                fill,
                temp,
                checked,
            } => {
                let id = self.intern_array(array);
                let a = self.allocs.len() as u32;
                self.allocs.push(AllocEntry {
                    array: id,
                    bounds: bounds.clone(),
                    fill: *fill,
                    temp: *temp,
                    checked: *checked,
                });
                self.emit(Op::Alloc(a), 0, 0);
            }
            LStmt::For {
                var,
                start,
                end,
                step,
                par,
                red,
                body,
            } => {
                let slot = self.alloc_slot();
                let ireg_mark = self.next_ireg;
                let range = (*start.min(end), *start.max(end));
                let ireg = self.alloc_ireg(range);
                self.emit(
                    Op::LoopInit {
                        ireg,
                        start: *start,
                    },
                    0,
                    0,
                );
                let head = self.here();
                self.loop_vars.push((head, var.clone()));
                self.emit(
                    Op::LoopHead {
                        ireg,
                        slot,
                        end: *end,
                        step: *step,
                        exit: 0,
                        par: *par,
                        red: *red,
                    },
                    0,
                    0,
                );
                self.scope.push(ScopeVar {
                    name: var.clone(),
                    slot,
                    ireg: Some(ireg),
                });
                self.compile_stmts(body);
                self.scope.pop();
                self.emit(
                    Op::LoopNext {
                        ireg,
                        step: *step,
                        head,
                    },
                    0,
                    0,
                );
                self.patch(head);
                self.next_slot = slot as usize;
                self.next_ireg = ireg_mark;
            }
            LStmt::Store {
                array,
                subs,
                value,
                check,
            } => {
                let checked = *check == StoreCheck::Monolithic;
                if let Some(lin) = self.try_lin(array, subs) {
                    self.compile_expr(value);
                    self.emit(Op::StoreLin { lin, checked }, -1, 0);
                } else {
                    let name = self.intern_name(array);
                    for sub in subs {
                        self.compile_expr(sub);
                        self.emit(Op::ToIdx(name), -1, 1);
                    }
                    self.compile_expr(value);
                    let id = self.intern_array(array);
                    self.emit(
                        Op::StoreDyn {
                            array: id,
                            name,
                            rank: subs.len() as u32,
                            checked,
                        },
                        -1,
                        -(subs.len() as i32),
                    );
                }
            }
            LStmt::If { cond, then, els } => {
                let start = self.ops.len();
                self.compile_expr(cond);
                if let Some(c) = self.take_const(start) {
                    self.compile_stmts(if c != 0.0 { then } else { els });
                    return;
                }
                let jz = self.here();
                self.emit(Op::JumpIfZero(0), -1, 0);
                self.compile_stmts(then);
                if els.is_empty() {
                    self.patch(jz);
                } else {
                    let jend = self.here();
                    self.emit(Op::Jump(0), 0, 0);
                    self.patch(jz);
                    self.compile_stmts(els);
                    self.patch(jend);
                }
            }
            LStmt::Let { binds, body } => {
                let scope_depth = self.scope.len();
                let slot_mark = self.next_slot;
                for (name, rhs) in binds {
                    self.compile_expr(rhs);
                    let slot = self.alloc_slot();
                    self.emit(Op::StoreSlot(slot), -1, 0);
                    self.scope.push(ScopeVar {
                        name: name.clone(),
                        slot,
                        ireg: None,
                    });
                }
                self.compile_stmts(body);
                self.scope.truncate(scope_depth);
                self.next_slot = slot_mark;
            }
            LStmt::CopyArray { dst, src } => {
                let did = self.intern_array(dst);
                let sid = self.intern_array(src);
                let src_name = self.intern_name(src);
                self.emit(
                    Op::Copy {
                        dst: did,
                        src: sid,
                        src_name,
                    },
                    0,
                    0,
                );
            }
            LStmt::CheckComplete { array } => {
                let id = self.intern_array(array);
                let name = self.intern_name(array);
                self.emit(Op::CheckComplete { array: id, name }, 0, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limp::Vm;
    use hac_lang::parser::parse_expr;

    fn store(array: &str, sub: &str, value: &str, check: StoreCheck) -> LStmt {
        LStmt::Store {
            array: array.into(),
            subs: vec![parse_expr(sub).unwrap()],
            value: parse_expr(value).unwrap(),
            check,
        }
    }

    fn squares() -> LProgram {
        LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, 5)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                LStmt::For {
                    var: "i".into(),
                    start: 1,
                    end: 5,
                    step: 1,
                    par: false,
                    red: false,
                    body: vec![store("a", "i", "i * i", StoreCheck::None)],
                },
            ],
            result: "a".into(),
        }
    }

    #[test]
    fn compiles_affine_store_to_unchecked_lin() {
        let tape = compile_tape(&squares(), &TapeCtx::default());
        assert_eq!(tape.lins.len(), 1);
        assert!(tape.lins[0].checks.is_none(), "interval proof succeeded");
        assert_eq!(tape.lins[0].terms, vec![(0, 1)]);
        assert_eq!(tape.lins[0].base, -1, "lo = 1 folds into the base");
    }

    #[test]
    fn tape_matches_tree_walk_on_squares() {
        let prog = squares();
        let tape = compile_tape(&prog, &TapeCtx::default());
        let mut vm = Vm::new();
        vm.run_tape(&tape).unwrap();
        assert_eq!(vm.array("a").unwrap().data(), &[1.0, 4.0, 9.0, 16.0, 25.0]);
        assert_eq!(vm.counters.stores, 5);
        assert_eq!(vm.counters.loop_iterations, 5);
        assert_eq!(vm.counters.loads, 0);
        assert!(vm.counters.tape_ops > 0);

        let mut tw = Vm::new();
        tw.run(&prog).unwrap();
        assert_eq!(tw.array("a").unwrap().data(), vm.array("a").unwrap().data());
    }

    #[test]
    fn constant_folding_removes_arithmetic() {
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, 1)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                store("a", "1", "2 * 3 + 1", StoreCheck::None),
            ],
            result: "a".into(),
        };
        let tape = compile_tape(&prog, &TapeCtx::default());
        assert!(
            tape.ops
                .iter()
                .any(|o| matches!(o, Op::Const(v) if *v == 7.0)),
            "folded to 7: {:?}",
            tape.ops
        );
        assert!(!tape.ops.iter().any(|o| matches!(o, Op::Bin(_))));
    }

    #[test]
    fn lazy_unbound_names_only_error_when_reached() {
        // Zero-trip loop over a store to an unbound array: fine.
        let prog = LProgram {
            stmts: vec![LStmt::For {
                var: "i".into(),
                start: 5,
                end: 4,
                step: 1,
                par: false,
                red: false,
                body: vec![store("zzz", "i", "nope + 1", StoreCheck::None)],
            }],
            result: String::new(),
        };
        let tape = compile_tape(&prog, &TapeCtx::default());
        let mut vm = Vm::new();
        vm.run_tape(&tape).unwrap();
        assert_eq!(vm.counters.loop_iterations, 0);
    }

    #[test]
    fn short_circuit_parity() {
        // `0 > 1 && nope > 0` must not touch the unbound rhs.
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, 1)],
                    fill: 9.0,
                    temp: false,
                    checked: false,
                },
                LStmt::If {
                    cond: parse_expr("0 > 1 && nope > 0").unwrap(),
                    then: vec![store("a", "1", "1", StoreCheck::None)],
                    els: vec![],
                },
            ],
            result: "a".into(),
        };
        let tape = compile_tape(&prog, &TapeCtx::default());
        let mut vm = Vm::new();
        vm.run_tape(&tape).unwrap();
        assert_eq!(vm.array("a").unwrap().data(), &[9.0]);
    }

    #[test]
    fn out_of_bounds_parity() {
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".into(),
                    bounds: vec![(1, 3)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                store("a", "7", "1", StoreCheck::None),
            ],
            result: "a".into(),
        };
        let tape = compile_tape(&prog, &TapeCtx::default());
        let e1 = Vm::new().run_tape(&tape).unwrap_err();
        let e2 = Vm::new().run(&prog).unwrap_err();
        assert_eq!(e1, e2);
        assert!(matches!(e1, RuntimeError::OutOfBounds { .. }));
    }
}
