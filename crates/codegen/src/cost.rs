//! Concrete worst-case cost of a lowered Limp program.
//!
//! [`program_cost`] walks an [`LProgram`] and reproduces the metering
//! contract *statically*: it charges exactly what the VM's
//! `exec_one`/`eval_expr_metered` pair would charge on a successful
//! run — one fuel unit per taken loop iteration, one per evaluated
//! scalar-function call, allocation footprints and array-copy bytes
//! for memory — taking the worst case wherever control can branch.
//! Because the tape and parallel-tape engines charge the same totals
//! as the tree walk (the differential suites pin this), and the fusion
//! passes bulk-charge by closed forms equal to the scalar schedule,
//! one walk covers every engine at every thread count.
//!
//! Limp loop bounds are concrete here (parameters fold during
//! lowering), so the result is a number, not a polynomial; the
//! symbolic form is assembled a layer up in `hac_core::cost` and
//! calibrated against these figures.

use std::collections::HashMap;

use hac_lang::ast::{BinOp, Expr};
use hac_runtime::value::ArrayBuf;

use crate::limp::{LProgram, LStmt, StoreCheck};
use crate::partape::trip_count;

/// Worst-case resource use of one Limp program on the compiled
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcreteCost {
    /// Fuel a successful run draws (worst case over branches).
    pub fuel: u64,
    /// Memory a successful run charges, in bytes. The meter never
    /// credits memory back, so total charged == peak.
    pub mem: u64,
    /// `true` when every run that completes draws *exactly* these
    /// amounts on every engine: no runtime store checks (which can
    /// stop a run early), no branches whose sides cost differently.
    pub exact: bool,
}

impl ConcreteCost {
    fn zero() -> ConcreteCost {
        ConcreteCost {
            fuel: 0,
            mem: 0,
            exact: true,
        }
    }
}

/// Cost the program against the metering contract. `shapes` maps every
/// array the program may `CopyArray` from (inputs and earlier bindings)
/// to its bounds; arrays the program allocates itself are tracked
/// during the walk. Returns `None` when a copied array's shape is
/// unknown — the bound does not close.
pub fn program_cost(
    prog: &LProgram,
    shapes: &HashMap<String, Vec<(i64, i64)>>,
) -> Option<ConcreteCost> {
    let mut shapes = shapes.clone();
    stmts_cost(&prog.stmts, &mut shapes)
}

fn stmts_cost(
    stmts: &[LStmt],
    shapes: &mut HashMap<String, Vec<(i64, i64)>>,
) -> Option<ConcreteCost> {
    let mut total = ConcreteCost::zero();
    for s in stmts {
        let c = stmt_cost(s, shapes)?;
        total.fuel = total.fuel.saturating_add(c.fuel);
        total.mem = total.mem.saturating_add(c.mem);
        total.exact &= c.exact;
    }
    Some(total)
}

fn stmt_cost(s: &LStmt, shapes: &mut HashMap<String, Vec<(i64, i64)>>) -> Option<ConcreteCost> {
    match s {
        LStmt::Alloc {
            array,
            bounds,
            checked,
            ..
        } => {
            shapes.insert(array.clone(), bounds.clone());
            Some(ConcreteCost {
                fuel: 0,
                mem: ArrayBuf::footprint_bytes(bounds, *checked),
                exact: true,
            })
        }
        LStmt::For {
            start,
            end,
            step,
            body,
            ..
        } => {
            let trip = trip_count(*start, *end, *step);
            let b = stmts_cost(body, shapes)?;
            Some(ConcreteCost {
                // The VM charges one fuel unit per taken iteration,
                // then the body; `static_fuel_cost` uses the same
                // `trip * (1 + body)` form.
                fuel: trip.saturating_mul(b.fuel.saturating_add(1)),
                mem: trip.saturating_mul(b.mem),
                exact: b.exact,
            })
        }
        LStmt::Store {
            subs, value, check, ..
        } => {
            let mut fuel = 0u64;
            let mut exact = true;
            for e in subs {
                let (c, ex) = expr_calls(e);
                fuel = fuel.saturating_add(c);
                exact &= ex;
            }
            let (c, ex) = expr_calls(value);
            Some(ConcreteCost {
                fuel: fuel.saturating_add(c),
                mem: 0,
                // A monolithic check can abort the run partway (write
                // collision), leaving the bound sound but not exact.
                exact: exact && ex && *check == StoreCheck::None,
            })
        }
        LStmt::If { cond, then, els } => {
            let (cc, ce) = expr_calls(cond);
            let t = stmts_cost(then, shapes)?;
            let e = stmts_cost(els, shapes)?;
            Some(ConcreteCost {
                fuel: cc.saturating_add(t.fuel.max(e.fuel)),
                mem: t.mem.max(e.mem),
                // Equal-cost sides keep the figure exact: whichever
                // branch runs charges the same amounts.
                exact: ce && t.exact && e.exact && t.fuel == e.fuel && t.mem == e.mem,
            })
        }
        LStmt::Let { binds, body } => {
            let mut fuel = 0u64;
            let mut exact = true;
            for (_, e) in binds {
                let (c, ex) = expr_calls(e);
                fuel = fuel.saturating_add(c);
                exact &= ex;
            }
            let b = stmts_cost(body, shapes)?;
            Some(ConcreteCost {
                fuel: fuel.saturating_add(b.fuel),
                mem: b.mem,
                exact: exact && b.exact,
            })
        }
        LStmt::CopyArray { dst, src } => {
            let bounds = shapes.get(src)?.clone();
            let mem = ArrayBuf::data_bytes(&bounds);
            shapes.insert(dst.clone(), bounds);
            Some(ConcreteCost {
                fuel: 0,
                mem,
                exact: true,
            })
        }
        // Charges nothing, but can stop a run partway (undefined
        // element), so a failing run may draw less than the bound.
        LStmt::CheckComplete { .. } => Some(ConcreteCost {
            fuel: 0,
            mem: 0,
            exact: false,
        }),
    }
}

/// Worst-case scalar-function calls an expression evaluation charges,
/// and whether every evaluation charges exactly that many.
pub fn expr_calls(e: &Expr) -> (u64, bool) {
    match e {
        Expr::Num(_) | Expr::Int(_) | Expr::Var(_) => (0, true),
        Expr::Index { subs, .. } => subs.iter().map(expr_calls).fold((0, true), join_seq),
        Expr::Binary { op, lhs, rhs } => {
            let l = expr_calls(lhs);
            let r = expr_calls(rhs);
            match op {
                // Short-circuit: the right side may be skipped, so the
                // sum is a worst case, exact only when it costs 0.
                BinOp::And | BinOp::Or => (l.0.saturating_add(r.0), l.1 && r.1 && r.0 == 0),
                _ => join_seq(l, r),
            }
        }
        Expr::Unary { expr, .. } => expr_calls(expr),
        Expr::If { cond, then, els } => {
            let c = expr_calls(cond);
            let t = expr_calls(then);
            let e = expr_calls(els);
            (
                c.0.saturating_add(t.0.max(e.0)),
                c.1 && t.1 && e.1 && t.0 == e.0,
            )
        }
        Expr::Let { binds, body } => binds
            .iter()
            .map(|(_, e)| expr_calls(e))
            .fold(expr_calls(body), join_seq),
        Expr::Call { args, .. } => {
            let (c, exact) = args.iter().map(expr_calls).fold((0, true), join_seq);
            (c.saturating_add(1), exact)
        }
    }
}

fn join_seq(a: (u64, bool), b: (u64, bool)) -> (u64, bool) {
    (a.0.saturating_add(b.0), a.1 && b.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn for_loop(start: i64, end: i64, body: Vec<LStmt>) -> LStmt {
        LStmt::For {
            var: "i".to_string(),
            start,
            end,
            step: 1,
            par: false,
            red: false,
            body,
        }
    }

    fn store(check: StoreCheck) -> LStmt {
        LStmt::Store {
            array: "a".to_string(),
            subs: vec![Expr::Var("i".to_string())],
            value: Expr::Int(1),
            check,
        }
    }

    #[test]
    fn loop_fuel_matches_the_vm_contract() {
        // for i in 1..=10 { store } charges 10 iterations, 0 calls.
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".to_string(),
                    bounds: vec![(1, 10)],
                    fill: 0.0,
                    temp: false,
                    checked: false,
                },
                for_loop(1, 10, vec![store(StoreCheck::None)]),
            ],
            result: "a".to_string(),
        };
        let c = program_cost(&prog, &HashMap::new()).unwrap();
        assert_eq!(c.fuel, 10);
        assert_eq!(c.mem, 80);
        assert!(c.exact);
    }

    #[test]
    fn nested_loops_multiply() {
        let inner = for_loop(1, 4, vec![store(StoreCheck::None)]);
        let prog = LProgram {
            stmts: vec![for_loop(1, 3, vec![inner])],
            result: "a".to_string(),
        };
        let c = program_cost(&prog, &HashMap::new()).unwrap();
        // 3 * (1 + 4 * (1 + 0)) = 15
        assert_eq!(c.fuel, 15);
        assert!(c.exact);
    }

    #[test]
    fn calls_charge_one_each_worst_case_over_branches() {
        let call = Expr::Call {
            func: "omega".to_string(),
            args: vec![Expr::Var("i".to_string())],
        };
        let branchy = Expr::If {
            cond: Box::new(Expr::Int(1)),
            then: Box::new(call.clone()),
            els: Box::new(Expr::Int(0)),
        };
        assert_eq!(expr_calls(&call), (1, true));
        assert_eq!(expr_calls(&branchy), (1, false));
    }

    #[test]
    fn monolithic_checks_and_checkcomplete_clear_exact() {
        let prog = LProgram {
            stmts: vec![
                LStmt::Alloc {
                    array: "a".to_string(),
                    bounds: vec![(1, 4)],
                    fill: 0.0,
                    temp: false,
                    checked: true,
                },
                for_loop(1, 4, vec![store(StoreCheck::Monolithic)]),
                LStmt::CheckComplete {
                    array: "a".to_string(),
                },
            ],
            result: "a".to_string(),
        };
        let c = program_cost(&prog, &HashMap::new()).unwrap();
        assert_eq!(c.fuel, 4);
        assert_eq!(c.mem, ArrayBuf::footprint_bytes(&[(1, 4)], true));
        assert!(!c.exact);
    }

    #[test]
    fn copy_needs_a_known_source_shape() {
        let copy = LProgram {
            stmts: vec![LStmt::CopyArray {
                dst: "d".to_string(),
                src: "u".to_string(),
            }],
            result: "d".to_string(),
        };
        assert!(program_cost(&copy, &HashMap::new()).is_none());
        let mut shapes = HashMap::new();
        shapes.insert("u".to_string(), vec![(1, 8)]);
        let c = program_cost(&copy, &shapes).unwrap();
        assert_eq!(c.mem, 64);
        assert!(c.exact);
    }
}
