//! # hac-codegen
//!
//! Thunkless code generation (§8) and in-place update code generation
//! (§9) for the `hac` reproduction of Anderson & Hudak (PLDI 1990).
//!
//! Schedules from [`hac_schedule`] are lowered ([`lower`]) into the
//! "Limp" loop-imperative IR ([`limp`]) — counted loops with chosen
//! directions, direct stores into flat buffers, runtime checks only
//! where the analysis could not discharge them, and synthesized
//! node-splitting temporaries (precopy loops, carry-buffer ring saves).
//! An instrumented VM executes Limp and reports exactly which runtime
//! work was avoided: stores, loads, checks, copies, temporaries.
//!
//! Limp executes on one of two engines: the recursive tree-walking
//! evaluator in [`limp`], or the register-slot bytecode tape compiled
//! by [`tape`] (compile once per binding, then non-recursive dispatch
//! with all names resolved to dense indices). An optional fusion pass
//! ([`fuse`]) overlays proven-parallel innermost affine loops with
//! vector superinstructions that run as contiguous-slice kernels.

pub mod cost;
pub mod fuse;
pub mod limp;
pub mod lower;
pub mod partape;
pub mod tape;

pub use cost::{expr_calls, program_cost, ConcreteCost};
pub use fuse::{fuse_tape, FuseDecision};
pub use limp::{LProgram, LStmt, StoreCheck, Vm, VmCounters};
pub use lower::{lower_array, lower_update, CheckMode, LowerError, LoweredUpdate};
pub use partape::{
    ambient_fault_plan_active, exec_par, plan_tape, suppress_env_fault_plan, ParPlan,
};
pub use tape::{compile_tape, Op, TapeCtx, TapeProgram};
