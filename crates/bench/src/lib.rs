//! # hac-bench
//!
//! Criterion benchmark harness for the `hac` reproduction of Anderson &
//! Hudak (PLDI 1990). The benches live in `benches/`; this library
//! crate only hosts shared helpers re-exported for them.
pub mod harness;
