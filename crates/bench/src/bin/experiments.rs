//! Experiment runner: executes every DESIGN.md experiment at fixed
//! sizes, printing the measured counters and wall-clock times as
//! markdown tables (the source for EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p hac-bench --bin experiments
//! ```

use std::collections::HashMap;
use std::time::Instant;

use hac_bench::harness::{compile_src, inputs, run_compiled};
use hac_core::pipeline::ExecMode;
use hac_lang::core::translate;
use hac_lang::env::ConstEnv;
use hac_lang::number::number_clauses;
use hac_lang::parser::parse_program;
use hac_runtime::list::{array_from_list, eval_core_list, ListCounters};
use hac_runtime::value::FuncTable;
use hac_workloads as wl;

fn time_ms<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    // Warm up once, then take the best of 5 runs.
    let mut out = f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (out, best)
}

fn main() {
    println!("# hac experiment run\n");
    e1_e2_dependence_graphs();
    e3_e4_thunk_overhead();
    e5_e6_checks();
    e7_e10_updates();
    e8_jacobi();
    e9_sor();
    e11_deforest();
    e11b_reduction();
    e12_test_costs();
}

/// §3.1's second claim: `foldl` over a comprehension compiles to a DO
/// loop with *no* cons cells — compared against folding an actual
/// cons list.
fn e11b_reduction() {
    println!("## E11b — scalar reduction: DO loop vs cons-list foldl\n");
    println!("| n | cons cells (list) | list foldl ms | DO-loop reduce ms | ratio |");
    println!("|---|---|---|---|---|");
    for n in [4096i64, 16384, 65536] {
        let u = wl::random_vector(n, 33);
        let mut arrays = HashMap::new();
        arrays.insert("u".to_string(), u.clone());
        let env = ConstEnv::from_pairs([("n", n)]);
        let funcs = FuncTable::new();
        // Parse the dot-style reduction once.
        let prog =
            parse_program("param n;\ninput u (1,n);\nlet s = sum [ u!k * u!k | k <- [1..n] ];\n")
                .unwrap();
        let (op, init, mut comp) = match &prog.bindings[1] {
            hac_lang::ast::Binding::Reduce { op, init, comp, .. } => {
                (*op, init.clone(), comp.clone())
            }
            _ => unreachable!(),
        };
        number_clauses(&mut comp);
        let term = translate(&comp);

        let (_, t_loop) = time_ms(|| {
            hac_runtime::reduce::eval_reduce(op, &init, &comp, &env, &[], &arrays, &funcs).unwrap()
        });
        let (allocs, t_list) = time_ms(|| {
            let mut counters = ListCounters::default();
            let list = eval_core_list(&term, &env, &arrays, &funcs, &mut counters).unwrap();
            let s = list.foldl(0.0, |acc, (_, v)| acc + v);
            (s, counters.cons_allocs)
        });
        println!(
            "| {n} | {} | {t_list:.3} | {t_loop:.3} | {:.2}× |",
            allocs.1,
            t_list / t_loop
        );
    }
    println!();
}

fn e1_e2_dependence_graphs() {
    println!("## E1/E2 — §5 dependence graphs and schedules\n");
    let env = [("n", 100i64), ("m", 10)];
    for (name, src) in [
        ("§5 example 1", wl::section5_example1_source()),
        ("§5 example 2", wl::section5_example2_source()),
        ("§3 wavefront", wl::wavefront_source()),
    ] {
        let compiled = compile_src(src, &env, ExecMode::Auto);
        println!("### {name}\n");
        println!("```");
        print!("{}", compiled.report.render());
        println!("```\n");
    }
}

fn e3_e4_thunk_overhead() {
    println!("## E3/E4 — thunked vs thunkless vs oracle (wall-clock, ms)\n");
    println!("| kernel | n | thunked | thunkless | oracle | thunked/thunkless |");
    println!("|---|---|---|---|---|---|");
    for n in [32i64, 64, 128] {
        let thunkless = compile_src(wl::wavefront_source(), &[("n", n)], ExecMode::Auto);
        let thunked = compile_src(wl::wavefront_source(), &[("n", n)], ExecMode::ForceThunked);
        let none = HashMap::new();
        let (_, t_less) = time_ms(|| run_compiled(&thunkless, &none));
        let (_, t_full) = time_ms(|| run_compiled(&thunked, &none));
        let (_, t_orc) = time_ms(|| wl::wavefront_oracle(n));
        println!(
            "| wavefront | {n} | {t_full:.3} | {t_less:.3} | {t_orc:.3} | {:.2}× |",
            t_full / t_less
        );
    }
    for n in [1024i64, 4096, 16384] {
        let thunkless = compile_src(wl::recurrence_source(), &[("n", n)], ExecMode::Auto);
        let thunked = compile_src(wl::recurrence_source(), &[("n", n)], ExecMode::ForceThunked);
        let none = HashMap::new();
        let (_, t_less) = time_ms(|| run_compiled(&thunkless, &none));
        let (_, t_full) = time_ms(|| run_compiled(&thunked, &none));
        let (_, t_orc) = time_ms(|| wl::recurrence_oracle(n));
        println!(
            "| recurrence | {n} | {t_full:.3} | {t_less:.3} | {t_orc:.3} | {:.2}× |",
            t_full / t_less
        );
    }
    println!();
    let n = 64;
    let thunked = compile_src(wl::wavefront_source(), &[("n", n)], ExecMode::ForceThunked);
    let out = run_compiled(&thunked, &HashMap::new());
    println!(
        "wavefront n={n} thunked counters: {} thunks, {} demands, {} memo hits\n",
        out.counters.thunked.thunks_allocated,
        out.counters.thunked.demands,
        out.counters.thunked.memo_hits
    );
}

fn e5_e6_checks() {
    println!("## E5/E6 — runtime collision/empties checks (wall-clock, ms)\n");
    println!("| n | checks elided | checks forced | check ops forced | overhead |");
    println!("|---|---|---|---|---|");
    for n in [4096i64, 16384, 65536] {
        let u = wl::random_vector(n, 21);
        let ins = inputs(&[("u", u)]);
        let elided = compile_src(wl::permutation_source(), &[("n", n)], ExecMode::Auto);
        let checked = compile_src(
            wl::permutation_source(),
            &[("n", n)],
            ExecMode::ForceChecked,
        );
        let (out_e, t_e) = time_ms(|| run_compiled(&elided, &ins));
        let (out_c, t_c) = time_ms(|| run_compiled(&checked, &ins));
        assert_eq!(out_e.counters.vm.check_ops, 0);
        println!(
            "| {n} | {t_e:.3} | {t_c:.3} | {} | {:.2}× |",
            out_c.counters.vm.check_ops,
            t_c / t_e
        );
    }
    println!();
}

fn e7_e10_updates() {
    println!("## E7/E10 — LINPACK row ops: copies and temporaries per update\n");
    println!("| kernel | n | strategy | copies | temp elems | time (ms) |");
    println!("|---|---|---|---|---|---|");
    let m = 64i64;
    for n in [256i64, 1024] {
        let a = wl::random_matrix(m, n, 3);
        for (name, src) in [
            ("row swap", wl::row_swap_source()),
            ("row scale", wl::row_scale_source()),
            ("saxpy", wl::saxpy_source()),
        ] {
            let compiled = compile_src(src, &[("m", m), ("n", n)], ExecMode::Auto);
            let strategy = compiled.report.updates[0]
                .strategy
                .split(':')
                .next()
                .unwrap()
                .to_string();
            let ins = inputs(&[("a", a.clone())]);
            let (out, t) = time_ms(|| run_compiled(&compiled, &ins));
            println!(
                "| {name} | {n} | {strategy} | {} | {} | {t:.3} |",
                out.counters.vm.elements_copied, out.counters.vm.temp_elements
            );
        }
        // Naive baseline for the swap.
        let ups: Vec<(Vec<i64>, f64)> = (1..=n)
            .flat_map(|j| {
                vec![
                    (vec![1, j], a.get("a", &[2, j]).unwrap()),
                    (vec![2, j], a.get("a", &[1, j]).unwrap()),
                ]
            })
            .collect();
        let (copied, t) = time_ms(|| {
            let mut cc = hac_runtime::incremental::CopyCounters::default();
            let out = hac_runtime::incremental::bigupd_copy(&a, ups.clone(), &mut cc).unwrap();
            (out, cc)
        });
        println!(
            "| row swap (naive copy) | {n} | copy whole | {} | 0 | {t:.3} |",
            copied.1.elements_copied
        );
    }
    println!();
}

fn e8_jacobi() {
    println!("## E8 — §9 Jacobi: node splitting vs naive copy\n");
    println!("| n | split temp elems | naive copied elems | ratio (≈ n) | split ms | naive ms |");
    println!("|---|---|---|---|---|---|");
    for n in [32i64, 64, 128] {
        let a = wl::random_matrix(n, n, 5);
        let compiled = compile_src(wl::jacobi_source(), &[("n", n)], ExecMode::Auto);
        let ins = inputs(&[("a", a.clone())]);
        let (out, t_split) = time_ms(|| run_compiled(&compiled, &ins));
        let temps = out.counters.vm.temp_elements;
        let (naive, t_naive) = time_ms(|| {
            let mut cc = hac_runtime::incremental::CopyCounters::default();
            let ups = (2..n).flat_map(|i| {
                let a = &a;
                (2..n).map(move |j| {
                    let v = (a.get("a", &[i - 1, j]).unwrap()
                        + a.get("a", &[i, j - 1]).unwrap()
                        + a.get("a", &[i + 1, j]).unwrap()
                        + a.get("a", &[i, j + 1]).unwrap())
                        / 4.0;
                    (vec![i, j], v)
                })
            });
            hac_runtime::incremental::bigupd_copy(&a, ups, &mut cc).unwrap();
            cc
        });
        println!(
            "| {n} | {temps} | {} | {:.1} | {t_split:.3} | {t_naive:.3} |",
            naive.elements_copied,
            naive.elements_copied as f64 / temps as f64
        );
    }
    println!();
}

fn e9_sor() {
    println!("## E9 — §9 Gauss–Seidel (LK23): in place, zero copies\n");
    println!("| n | copies | temps | thunks | time (ms) | oracle ms |");
    println!("|---|---|---|---|---|---|");
    for n in [32i64, 64, 128] {
        let a = wl::random_matrix(n, n, 9);
        let compiled = compile_src(wl::sor_source(), &[("n", n)], ExecMode::Auto);
        let ins = inputs(&[("a", a.clone())]);
        let (out, t) = time_ms(|| run_compiled(&compiled, &ins));
        let (_, t_orc) = time_ms(|| wl::sor_oracle(&a, n));
        println!(
            "| {n} | {} | {} | {} | {t:.3} | {t_orc:.3} |",
            out.counters.vm.elements_copied,
            out.counters.vm.temp_elements,
            out.counters.thunked.thunks_allocated
        );
    }
    println!();
}

fn e11_deforest() {
    println!("## E11 — naive TE cons lists vs deforested loops\n");
    println!("| n | cons cells | naive ms | deforested ms | oracle ms | naive/deforested |");
    println!("|---|---|---|---|---|---|");
    for n in [1024i64, 4096, 16384] {
        let u = wl::random_vector(n, 33);
        let ins = inputs(&[("u", u.clone())]);
        let compiled = compile_src(wl::deforest_source(), &[("n", n)], ExecMode::Auto);
        let program = parse_program(wl::deforest_source()).unwrap();
        let mut comp = program.array_def("a").unwrap().comp.clone();
        number_clauses(&mut comp);
        let term = translate(&comp);
        let env = ConstEnv::from_pairs([("n", n)]);
        let mut arrays = HashMap::new();
        arrays.insert("u".to_string(), u.clone());
        let funcs = FuncTable::new();

        let (_, t_less) = time_ms(|| run_compiled(&compiled, &ins));
        let (counters, t_naive) = time_ms(|| {
            let mut counters = ListCounters::default();
            let list = eval_core_list(&term, &env, &arrays, &funcs, &mut counters).unwrap();
            array_from_list("a", &[(1, 2 * n)], &list).unwrap();
            counters
        });
        let (_, t_orc) = time_ms(|| wl::deforest_oracle(&u, n));
        println!(
            "| {n} | {} | {t_naive:.3} | {t_less:.3} | {t_orc:.3} | {:.2}× |",
            counters.cons_allocs,
            t_naive / t_less
        );
    }
    println!();
}

fn e12_test_costs() {
    println!("## E12 — dependence test costs by nest depth (µs per call)\n");
    use hac_analysis::banerjee::banerjee_test;
    use hac_analysis::direction::DirVec;
    use hac_analysis::equation::{DimEquation, LoopTerm};
    use hac_analysis::exact::exact_test;
    use hac_analysis::gcd::gcd_test;

    println!("| depth | gcd | banerjee | exact (worst case) |");
    println!("|---|---|---|---|");
    for d in [1usize, 2, 3, 4, 5] {
        // Worst case for the exact search: `Σ 2x_k − 2y_k = 1` over
        // loops of 4 iterations — the interval always brackets the odd
        // RHS, integrality never holds, so the search enumerates
        // ~16^d assignments. GCD kills it instantly; Banerjee cannot.
        let eq = DimEquation {
            shared: (0..d)
                .map(|_| LoopTerm {
                    size: 4,
                    a: 2,
                    b: 2,
                })
                .collect(),
            src_only: vec![],
            snk_only: vec![],
            a0: 0,
            b0: 1,
        };
        let dv = DirVec::any(d);
        let reps = 10_000;
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(gcd_test(std::slice::from_ref(&eq), &dv));
        }
        let t_gcd = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(banerjee_test(std::slice::from_ref(&eq), &dv));
        }
        let t_ban = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let reps_e = match d {
            1 | 2 => 2000,
            3 => 500,
            4 => 50,
            _ => 5,
        };
        let t = Instant::now();
        for _ in 0..reps_e {
            std::hint::black_box(exact_test(std::slice::from_ref(&eq), &dv, u64::MAX));
        }
        let t_exact = t.elapsed().as_secs_f64() * 1e6 / reps_e as f64;
        println!("| {d} | {t_gcd:.3} | {t_ban:.3} | {t_exact:.3} |");
    }
    println!();
}
