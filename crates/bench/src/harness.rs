//! Shared helpers for the Criterion benches and the experiment runner.

use std::collections::HashMap;

use hac_core::pipeline::{compile, run, CompileOptions, Compiled, ExecMode, ExecOutput};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::value::{ArrayBuf, FuncTable};

/// Compile a source program under `params` with the given mode.
///
/// # Panics
/// Panics on parse/compile failure (benchmark programs are fixed).
pub fn compile_src(src: &str, params: &[(&str, i64)], mode: ExecMode) -> Compiled {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let env = ConstEnv::from_pairs(params.iter().copied());
    compile(
        &program,
        &env,
        &CompileOptions {
            mode,
            ..CompileOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("compile: {e}"))
}

/// Run a compiled program.
///
/// # Panics
/// Panics on runtime failure.
pub fn run_compiled(compiled: &Compiled, inputs: &HashMap<String, ArrayBuf>) -> ExecOutput {
    run(compiled, inputs, &FuncTable::new()).unwrap_or_else(|e| panic!("run: {e}"))
}

/// Convenience: inputs map from name/buffer pairs.
pub fn inputs(pairs: &[(&str, ArrayBuf)]) -> HashMap<String, ArrayBuf> {
    pairs
        .iter()
        .map(|(n, b)| (n.to_string(), b.clone()))
        .collect()
}
