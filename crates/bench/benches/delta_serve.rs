//! E26 — incremental serving: full recomputation vs memoized hit vs
//! `bigupd` delta recomputation.
//!
//! Three request streams. `full` and `delta` both slide the update
//! value every iteration — a slid parameter is a fresh compile
//! environment, so both streams pay parse + compile per request and
//! the measured gap is exactly the execution work the delta path
//! avoids. `hit` repeats one request verbatim; the hit route resolves
//! on the result key alone (a source/param/limit digest), before any
//! parse or compile, so it prices the cache-lookup floor.
//!
//!   * `full`  — result caching disabled (`result_cache_cap: 0`):
//!     every slid request re-fills inputs and re-runs the whole
//!     pipeline cold.
//!   * `hit`   — the identical request repeated against a warm cache:
//!     admission plus one cache probe, no parse, no execution.
//!   * `delta` — slid requests against a warm family snapshot: the
//!     server clones the cached prefix state and replays only the
//!     trailing update.
//!
//! A second group scales the update-set size: a band update over an
//! n=32768 vector at widths 1..n, against the cold recomputation of
//! the same slid request. Delta cost = compile + snapshot clone
//! (O(n) memcpy) + dirty-element replay (O(width)), so the curve
//! flattens toward `full` as the band approaches the whole array.
//!
//! Every server pins the empty fault plan (fault-plan servers bypass
//! the result cache by design, and the bench must not inherit an
//! ambient `HAC_FAULT_PLAN`).

use criterion::{criterion_group, criterion_main, Criterion};
use hac_runtime::governor::FaultPlan;
use hac_serve::{Request, ResultClass, ServeOptions, Server};

const JACOBI_N: i64 = 256;
const BAND_N: i64 = 32768;
const WIDTHS: [i64; 4] = [1, 256, 4096, 32768];

const JACOBI_SRC: &str = include_str!("../../../programs/incremental/jacobi_poke.hac");
const BAND_SRC: &str = include_str!("../../../programs/incremental/band_poke.hac");

fn opts(result_cache_cap: usize) -> ServeOptions {
    ServeOptions {
        result_cache_cap,
        faults: Some(FaultPlan::default()),
        ..ServeOptions::default()
    }
}

fn poke(id: &str, uv: i64) -> Request {
    let mut r = Request::new(id, JACOBI_SRC);
    r.params = vec![
        ("n".to_string(), JACOBI_N),
        ("ui".to_string(), JACOBI_N / 2),
        ("uj".to_string(), JACOBI_N / 2),
        ("uv".to_string(), uv),
    ];
    r
}

fn band(id: &str, width: i64, uv: i64) -> Request {
    let mut r = Request::new(id, BAND_SRC);
    r.params = vec![
        ("n".to_string(), BAND_N),
        ("lo".to_string(), 1),
        ("hi".to_string(), width),
        ("uv".to_string(), uv),
    ];
    r
}

fn bench_delta_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_serve");

    // Point poke on a 256×256 stencil: full vs hit vs delta.
    {
        let full_srv = Server::new(opts(0));
        assert_eq!(full_srv.handle(&poke("seed", 7)).status.as_str(), "ok");
        let mut uv = 8i64;
        group.bench_function("full/jacobi256", |b| {
            b.iter(|| {
                uv += 1;
                full_srv.handle(&poke("f", uv))
            })
        });

        let hit_srv = Server::new(opts(256));
        let r = poke("h", 7);
        assert_eq!(hit_srv.handle(&r).result_cache, Some(ResultClass::Miss));
        assert_eq!(hit_srv.handle(&r).result_cache, Some(ResultClass::Hit));
        group.bench_function("hit/jacobi256", |b| b.iter(|| hit_srv.handle(&r)));

        let delta_srv = Server::new(opts(256));
        assert_eq!(
            delta_srv.handle(&poke("seed", 7)).result_cache,
            Some(ResultClass::Miss)
        );
        let probe = delta_srv.handle(&poke("probe", 8));
        assert_eq!(probe.result_cache, Some(ResultClass::Delta));
        assert_eq!(probe.delta_elems, Some(1));
        let mut uv = 9i64;
        group.bench_function("delta/jacobi256", |b| {
            b.iter(|| {
                uv += 1;
                delta_srv.handle(&poke("d", uv))
            })
        });
    }

    // Band update on an n=32768 vector: delta cost vs update-set size.
    {
        let full_srv = Server::new(opts(0));
        assert_eq!(
            full_srv.handle(&band("seed", BAND_N, 7)).status.as_str(),
            "ok"
        );
        let mut uv = 8i64;
        group.bench_function(format!("band_full/{BAND_N}"), |b| {
            b.iter(|| {
                uv += 1;
                full_srv.handle(&band("f", BAND_N, uv))
            })
        });

        for width in WIDTHS {
            let srv = Server::new(opts(256));
            assert_eq!(
                srv.handle(&band("seed", width, 7)).result_cache,
                Some(ResultClass::Miss)
            );
            let probe = srv.handle(&band("probe", width, 8));
            assert_eq!(probe.result_cache, Some(ResultClass::Delta));
            assert_eq!(probe.delta_elems, Some(width as u64));
            let mut uv = 9i64;
            group.bench_function(format!("band_delta/{width}"), |b| {
                b.iter(|| {
                    uv += 1;
                    srv.handle(&band("d", width, uv))
                })
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_delta_serve);
criterion_main!(benches);
