//! VM dispatch: the register-slot bytecode tape vs the tree-walking
//! evaluator, on the three loop-dominated kernels (jacobi, sor,
//! wavefront). Same Limp programs, same results (asserted by
//! `tests/tape_equivalence.rs`); only the execution engine differs.
//! The tape pays name resolution, subscript strength reduction, and
//! constant folding once at compile time, so its inner loop is a flat
//! `Op` dispatch with no allocation — the headline of this benchmark.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::{inputs, run_compiled};
use hac_core::pipeline::{compile, CompileOptions, Compiled, Engine};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::value::ArrayBuf;
use hac_workloads as wl;

fn compile_engine(src: &str, params: &[(&str, i64)], engine: Engine) -> Compiled {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let env = ConstEnv::from_pairs(params.iter().copied());
    compile(
        &program,
        &env,
        &CompileOptions {
            engine,
            ..CompileOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("compile: {e}"))
}

fn bench_engines(
    c: &mut Criterion,
    group_name: &str,
    src: &str,
    params: &[(&str, i64)],
    ins: &HashMap<String, ArrayBuf>,
    n: i64,
) {
    let tape = compile_engine(src, params, Engine::Tape);
    let tree = compile_engine(src, params, Engine::TreeWalk);
    let mut group = c.benchmark_group(group_name);
    group.bench_with_input(BenchmarkId::new("tape", n), &n, |b, _| {
        b.iter(|| run_compiled(&tape, ins))
    });
    group.bench_with_input(BenchmarkId::new("tree_walk", n), &n, |b, _| {
        b.iter(|| run_compiled(&tree, ins))
    });
    group.finish();
}

fn bench_vm_dispatch(c: &mut Criterion) {
    for n in [32i64, 64] {
        let a = wl::random_matrix(n, n, 5);
        let ins = inputs(&[("a", a)]);
        bench_engines(
            c,
            "vm_dispatch/jacobi",
            wl::jacobi_source(),
            &[("n", n)],
            &ins,
            n,
        );
        bench_engines(c, "vm_dispatch/sor", wl::sor_source(), &[("n", n)], &ins, n);
        bench_engines(
            c,
            "vm_dispatch/wavefront",
            wl::wavefront_source(),
            &[("n", n)],
            &HashMap::new(),
            n,
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_vm_dispatch
}

criterion_main!(benches);
