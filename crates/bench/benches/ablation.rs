//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **exact test off** — leaves spurious direction vectors that the
//!   inexact tests cannot kill (more edges, more conservative
//!   schedules) and measures the analysis-time trade;
//! * **multipass off** (§8.1.3) — acyclic graphs mixing `(<)`/`(>)`
//!   fall back to thunks instead of splitting into passes;
//! * **carry buffers off** (§9) — Jacobi degrades from O(n) ring
//!   buffers to precopied read regions (O(n²) temporaries).

use criterion::{criterion_group, criterion_main, Criterion};
use hac_analysis::analyze::analyze_bigupd;
use hac_analysis::search::TestPolicy;
use hac_codegen::limp::Vm;
use hac_codegen::lower::lower_update;
use hac_lang::env::ConstEnv;
use hac_lang::number::number_clauses;
use hac_lang::parser::{parse_comp, parse_program};
use hac_schedule::split::{plan_update_with, SplitOptions};
use hac_workloads as wl;

fn bench_exact_test_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_exact_test");
    let env = ConstEnv::from_pairs([("n", 100)]);
    let mut program = parse_program(wl::wavefront_source()).unwrap();
    let def = match &mut program.bindings[0] {
        hac_lang::ast::Binding::LetrecStar(ds) => {
            number_clauses(&mut ds[0].comp);
            ds[0].clone()
        }
        _ => unreachable!(),
    };
    let with_exact = TestPolicy::default();
    let without = TestPolicy {
        use_exact: false,
        exact_budget: 0,
    };
    group.bench_function("analyze_with_exact", |b| {
        b.iter(|| hac_analysis::analyze::analyze_array(&def, &env, &with_exact).unwrap())
    });
    group.bench_function("analyze_without_exact", |b| {
        b.iter(|| hac_analysis::analyze::analyze_array(&def, &env, &without).unwrap())
    });
    group.finish();
}

fn bench_carry_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_carry_buffers");
    let n = 64i64;
    let env = ConstEnv::from_pairs([("n", n)]);
    let a = wl::random_matrix(n, n, 5);
    let mut comp = parse_comp(
        "[ (i,j) := (a!(i-1,j) + a!(i,j-1) + a!(i+1,j) + a!(i,j+1)) / 4 \
         | i <- [2..n-1], j <- [2..n-1] ]",
    )
    .unwrap();
    number_clauses(&mut comp);
    let analysis = analyze_bigupd("a", "b", &comp, &env, &TestPolicy::default()).unwrap();

    for (label, opts) in [
        ("carry_buffers", SplitOptions::default()),
        (
            "precopy_only",
            SplitOptions {
                allow_carry: false,
                allow_precopy: true,
            },
        ),
    ] {
        let plan = plan_update_with(&comp, &analysis, &opts).unwrap();
        let lowered = lower_update("a", "b", &analysis.refs, &plan, &env).unwrap();
        // Record the temporary footprint once, as metadata.
        let mut probe = Vm::new();
        probe.set_global("n", n as f64);
        probe.bind("a", a.clone());
        if lowered.in_place {
            probe.alias("b", "a");
        }
        probe.run(&lowered.prog).unwrap();
        eprintln!(
            "[ablation] {label}: {} temp elements, strategy {:?}",
            probe.counters.temp_elements, plan.strategy
        );
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut vm = Vm::new();
                vm.set_global("n", n as f64);
                vm.bind("a", a.clone());
                if lowered.in_place {
                    vm.alias("b", "a");
                }
                vm.run(&lowered.prog).unwrap();
                vm
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite fast; the shapes, not
    // the last digit, are the reproduction target.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_exact_test_ablation, bench_carry_ablation
}

criterion_main!(benches);
