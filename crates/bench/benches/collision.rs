//! E5/E6 — write-collision and empties checks (§4/§7): the even/odd
//! permutation kernel with checks statically elided (the analysis
//! proved the subscripts a permutation) vs the same kernel with every
//! runtime check forced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::{compile_src, inputs, run_compiled};
use hac_core::pipeline::ExecMode;
use hac_workloads as wl;

fn bench_collision_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("collision_checks");
    for n in [1024i64, 4096, 16384] {
        let u = wl::random_vector(n, 21);
        let ins = inputs(&[("u", u.clone())]);
        let elided = compile_src(wl::permutation_source(), &[("n", n)], ExecMode::Auto);
        let checked = compile_src(
            wl::permutation_source(),
            &[("n", n)],
            ExecMode::ForceChecked,
        );
        // Confirm the modes differ as intended.
        assert_eq!(run_compiled(&elided, &ins).counters.vm.check_ops, 0);
        assert!(run_compiled(&checked, &ins).counters.vm.check_ops >= 2 * n as u64);

        group.bench_with_input(BenchmarkId::new("checks_elided", n), &n, |b, _| {
            b.iter(|| run_compiled(&elided, &ins))
        });
        group.bench_with_input(BenchmarkId::new("checks_forced", n), &n, |b, _| {
            b.iter(|| run_compiled(&checked, &ins))
        });
        group.bench_with_input(BenchmarkId::new("oracle", n), &n, |b, &n| {
            b.iter(|| wl::permutation_oracle(&u, n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite fast; the shapes, not
    // the last digit, are the reproduction target.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_collision_checks
}

criterion_main!(benches);
