//! E7/E10 — §9 LINPACK row operations as `bigupd`: the compiled
//! in-place updates (row swap splits one row into a temp; scale and
//! SAXPY need nothing) vs the naive copy-the-whole-array strategy vs
//! persistent-array substrates (COW, trailers) vs the oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::{compile_src, inputs, run_compiled};
use hac_core::pipeline::ExecMode;
use hac_runtime::incremental::{bigupd_copy, CopyCounters, TrailerArray, TrailerCounters};
use hac_workloads as wl;

fn swap_updates(a: &hac_runtime::value::ArrayBuf, n: i64) -> Vec<(Vec<i64>, f64)> {
    let mut ups = Vec::with_capacity(2 * n as usize);
    for j in 1..=n {
        ups.push((vec![1, j], a.get("a", &[2, j]).unwrap()));
        ups.push((vec![2, j], a.get("a", &[1, j]).unwrap()));
    }
    ups
}

fn bench_row_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_swap");
    let m = 64i64;
    for n in [64i64, 256, 1024] {
        let a = wl::random_matrix(m, n, 3);
        let compiled = compile_src(wl::row_swap_source(), &[("m", m), ("n", n)], ExecMode::Auto);
        let ins = inputs(&[("a", a.clone())]);

        group.bench_with_input(BenchmarkId::new("inplace_precopy", n), &n, |b, _| {
            b.iter(|| run_compiled(&compiled, &ins))
        });
        group.bench_with_input(BenchmarkId::new("copy_whole", n), &n, |b, &n| {
            b.iter(|| {
                let mut counters = CopyCounters::default();
                bigupd_copy(&a, swap_updates(&a, n), &mut counters).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("trailer_array", n), &n, |b, &n| {
            b.iter(|| {
                let mut tc = TrailerCounters::default();
                let mut v = TrailerArray::new(a.clone());
                for (idx, val) in swap_updates(&a, n) {
                    v = v.update("a", &idx, val, &mut tc).unwrap();
                }
                v
            })
        });
        group.bench_with_input(BenchmarkId::new("oracle", n), &n, |b, &n| {
            b.iter(|| wl::row_swap_oracle(&a, n))
        });
    }
    group.finish();
}

fn bench_scale_saxpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_saxpy");
    let m = 8i64;
    for n in [256i64, 1024] {
        let a = wl::random_matrix(m, n, 7);
        let ins = inputs(&[("a", a.clone())]);
        let scale = compile_src(
            wl::row_scale_source(),
            &[("m", m), ("n", n)],
            ExecMode::Auto,
        );
        let saxpy = compile_src(wl::saxpy_source(), &[("m", m), ("n", n)], ExecMode::Auto);

        group.bench_with_input(BenchmarkId::new("scale_inplace", n), &n, |b, _| {
            b.iter(|| run_compiled(&scale, &ins))
        });
        group.bench_with_input(BenchmarkId::new("scale_oracle", n), &n, |b, &n| {
            b.iter(|| wl::row_scale_oracle(&a, n))
        });
        group.bench_with_input(BenchmarkId::new("saxpy_inplace", n), &n, |b, _| {
            b.iter(|| run_compiled(&saxpy, &ins))
        });
        group.bench_with_input(BenchmarkId::new("saxpy_oracle", n), &n, |b, &n| {
            b.iter(|| wl::saxpy_oracle(&a, n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite fast; the shapes, not
    // the last digit, are the reproduction target.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_row_swap, bench_scale_saxpy
}

criterion_main!(benches);
