//! E11 — intermediate lists (§3.1/§4): the naive `TE` evaluation into
//! real cons cells followed by `foldl` array construction vs the
//! deforested compiled loops vs the oracle. "All intermediate lists can
//! be replaced by tail-recursive loops."

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::{compile_src, inputs, run_compiled};
use hac_core::pipeline::ExecMode;
use hac_lang::core::translate;
use hac_lang::env::ConstEnv;
use hac_lang::number::number_clauses;
use hac_lang::parser::parse_program;
use hac_runtime::list::{array_from_list, eval_core_list, ListCounters};
use hac_runtime::value::FuncTable;
use hac_workloads as wl;

fn bench_deforest(c: &mut Criterion) {
    let mut group = c.benchmark_group("deforest");
    for n in [256i64, 1024, 4096] {
        let u = wl::random_vector(n, 33);
        let ins = inputs(&[("u", u.clone())]);
        let compiled = compile_src(wl::deforest_source(), &[("n", n)], ExecMode::Auto);

        // The TE term, prepared once.
        let program = parse_program(wl::deforest_source()).unwrap();
        let mut comp = program.array_def("a").unwrap().comp.clone();
        number_clauses(&mut comp);
        let term = translate(&comp);
        let env = ConstEnv::from_pairs([("n", n)]);
        let mut arrays = HashMap::new();
        arrays.insert("u".to_string(), u.clone());
        let funcs = FuncTable::new();

        group.bench_with_input(BenchmarkId::new("deforested_loops", n), &n, |b, _| {
            b.iter(|| run_compiled(&compiled, &ins))
        });
        group.bench_with_input(BenchmarkId::new("naive_te_cons", n), &n, |b, &n| {
            b.iter(|| {
                let mut counters = ListCounters::default();
                let list = eval_core_list(&term, &env, &arrays, &funcs, &mut counters).unwrap();
                array_from_list("a", &[(1, 2 * n)], &list).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("oracle", n), &n, |b, &n| {
            b.iter(|| wl::deforest_oracle(&u, n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite fast; the shapes, not
    // the last digit, are the reproduction target.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_deforest, bench_reduction
}

criterion_main!(benches);

/// E11b — `foldl` over a comprehension as a DO loop (zero cons cells)
/// vs folding a materialized cons list (§3.1).
fn bench_reduction(c: &mut Criterion) {
    use hac_lang::ast::Binding;

    let mut group = c.benchmark_group("reduction");
    for n in [1024i64, 4096, 16384] {
        let u = wl::random_vector(n, 43);
        let mut arrays = HashMap::new();
        arrays.insert("u".to_string(), u.clone());
        let env = ConstEnv::from_pairs([("n", n)]);
        let funcs = FuncTable::new();
        let prog =
            parse_program("param n;\ninput u (1,n);\nlet s = sum [ u!k * u!k | k <- [1..n] ];\n")
                .unwrap();
        let (op, init, mut comp) = match &prog.bindings[1] {
            Binding::Reduce { op, init, comp, .. } => (*op, init.clone(), comp.clone()),
            _ => unreachable!(),
        };
        number_clauses(&mut comp);
        let term = translate(&comp);

        group.bench_with_input(BenchmarkId::new("do_loop", n), &n, |b, _| {
            b.iter(|| {
                hac_runtime::reduce::eval_reduce(op, &init, &comp, &env, &[], &arrays, &funcs)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("cons_list_foldl", n), &n, |b, _| {
            b.iter(|| {
                let mut counters = ListCounters::default();
                let list = eval_core_list(&term, &env, &arrays, &funcs, &mut counters).unwrap();
                list.foldl(0.0, |acc, (_, v)| acc + v)
            })
        });
    }
    group.finish();
}
