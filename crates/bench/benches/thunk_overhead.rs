//! E4 — the thunk-overhead claim (§4): a first-order linear recurrence
//! where the only difference between strategies is the representation
//! of delayed elements. Also benches §5 example 1 (three clauses per
//! iteration) under both strategies.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::{compile_src, run_compiled};
use hac_core::pipeline::ExecMode;
use hac_workloads as wl;

fn bench_recurrence(c: &mut Criterion) {
    let mut group = c.benchmark_group("recurrence");
    for n in [256i64, 1024, 4096] {
        let thunkless = compile_src(wl::recurrence_source(), &[("n", n)], ExecMode::Auto);
        let thunked = compile_src(wl::recurrence_source(), &[("n", n)], ExecMode::ForceThunked);
        let no_inputs = HashMap::new();
        group.bench_with_input(BenchmarkId::new("thunkless", n), &n, |b, _| {
            b.iter(|| run_compiled(&thunkless, &no_inputs))
        });
        group.bench_with_input(BenchmarkId::new("thunked", n), &n, |b, _| {
            b.iter(|| run_compiled(&thunked, &no_inputs))
        });
        group.bench_with_input(BenchmarkId::new("oracle", n), &n, |b, &n| {
            b.iter(|| wl::recurrence_oracle(n))
        });
    }
    group.finish();
}

fn bench_section5_example1(c: &mut Criterion) {
    let mut group = c.benchmark_group("section5_example1");
    for n in [100i64, 1000] {
        let thunkless = compile_src(wl::section5_example1_source(), &[("n", n)], ExecMode::Auto);
        let thunked = compile_src(
            wl::section5_example1_source(),
            &[("n", n)],
            ExecMode::ForceThunked,
        );
        let no_inputs = HashMap::new();
        group.bench_with_input(BenchmarkId::new("thunkless", n), &n, |b, _| {
            b.iter(|| run_compiled(&thunkless, &no_inputs))
        });
        group.bench_with_input(BenchmarkId::new("thunked", n), &n, |b, _| {
            b.iter(|| run_compiled(&thunked, &no_inputs))
        });
        group.bench_with_input(BenchmarkId::new("oracle", n), &n, |b, &n| {
            b.iter(|| wl::section5_example1_oracle(n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite fast; the shapes, not
    // the last digit, are the reproduction target.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_recurrence, bench_section5_example1
}

criterion_main!(benches);
