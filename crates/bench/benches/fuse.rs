//! Fused vector kernels vs the scalar tape, on the fusion showcase
//! kernels: the out-of-place Jacobi 4-point stencil, the weighted
//! 3-point relaxation, and the matmul recurrence. Same tapes, same
//! results, same counters (asserted by `tests/fuse_equivalence.rs`);
//! the only difference is whether the innermost proven-parallel affine
//! loops dispatch one scalar `Op` per element or one `Op::VecLoop`
//! per loop running a contiguous-slice kernel.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::{inputs, run_compiled};
use hac_core::pipeline::{compile, CompileOptions, Compiled, Engine};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::value::ArrayBuf;
use hac_workloads as wl;

fn compile_fuse(src: &str, params: &[(&str, i64)], fuse: bool) -> Compiled {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let env = ConstEnv::from_pairs(params.iter().copied());
    compile(
        &program,
        &env,
        &CompileOptions {
            // Sequential tape isolates kernel speed from chunking.
            engine: Engine::Tape,
            fuse,
            ..CompileOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("compile: {e}"))
}

fn bench_fusion(
    c: &mut Criterion,
    group_name: &str,
    src: &str,
    params: &[(&str, i64)],
    ins: &HashMap<String, ArrayBuf>,
    n: i64,
) {
    let fused = compile_fuse(src, params, true);
    let scalar = compile_fuse(src, params, false);
    let mut group = c.benchmark_group(group_name);
    group.bench_with_input(BenchmarkId::new("fused", n), &n, |b, _| {
        b.iter(|| run_compiled(&fused, ins))
    });
    group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
        b.iter(|| run_compiled(&scalar, ins))
    });
    group.finish();
}

fn bench_fuse(c: &mut Criterion) {
    for n in [64i64, 256] {
        let a = wl::random_matrix(n, n, 5);
        bench_fusion(
            c,
            "fuse/jacobi_step",
            wl::jacobi_step_source(),
            &[("n", n)],
            &inputs(&[("a", a)]),
            n,
        );
    }
    for n in [1024i64, 65536] {
        let u = wl::random_vector(n, 7);
        bench_fusion(
            c,
            "fuse/relaxation",
            wl::relaxation_source(),
            &[("n", n)],
            &inputs(&[("u", u)]),
            n,
        );
    }
    for n in [24i64, 48] {
        let x = wl::random_matrix(n, n, 31);
        let y = wl::random_matrix(n, n, 37);
        bench_fusion(
            c,
            "fuse/matmul",
            wl::matmul_source(),
            &[("n", n)],
            &inputs(&[("x", x), ("y", y)]),
            n,
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_fuse
}

criterion_main!(benches);
