//! E9 — §9 Gauss–Seidel / SOR (Livermore Kernel 23 wavefront): all four
//! self edges agree with forward/forward loops, so the update runs in
//! place with no thunks and no copies. Compared against the oracle and
//! the thunked evaluation of an equivalent monolithic recurrence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::{compile_src, inputs, run_compiled};
use hac_core::pipeline::ExecMode;
use hac_workloads as wl;

/// The same Gauss–Seidel sweep expressed as a *monolithic* recurrence
/// over a fresh array (what one would write without `bigupd`): needs a
/// whole new array per sweep, plus border copies.
fn monolithic_sor_source() -> &'static str {
    r#"
param n;
input a ((1,1),(n,n));
letrec* b = array ((1,1),(n,n))
   ([ (1,j) := a!(1,j) | j <- [1..n] ] ++
    [ (n,j) := a!(n,j) | j <- [1..n] ] ++
    [ (i,1) := a!(i,1) | i <- [2..n-1] ] ++
    [ (i,n) := a!(i,n) | i <- [2..n-1] ] ++
    [ (i,j) := (b!(i-1,j) + b!(i,j-1) + a!(i+1,j) + a!(i,j+1)) / 4
       | i <- [2..n-1], j <- [2..n-1] ]);
result b;
"#
}

fn bench_sor(c: &mut Criterion) {
    let mut group = c.benchmark_group("sor");
    for n in [16i64, 32, 64] {
        let a = wl::random_matrix(n, n, 9);
        let inplace = compile_src(wl::sor_source(), &[("n", n)], ExecMode::Auto);
        let fresh = compile_src(monolithic_sor_source(), &[("n", n)], ExecMode::Auto);
        let fresh_thunked =
            compile_src(monolithic_sor_source(), &[("n", n)], ExecMode::ForceThunked);
        let ins = inputs(&[("a", a.clone())]);

        group.bench_with_input(BenchmarkId::new("inplace_bigupd", n), &n, |b, _| {
            b.iter(|| run_compiled(&inplace, &ins))
        });
        group.bench_with_input(BenchmarkId::new("fresh_array", n), &n, |b, _| {
            b.iter(|| run_compiled(&fresh, &ins))
        });
        group.bench_with_input(BenchmarkId::new("fresh_thunked", n), &n, |b, _| {
            b.iter(|| run_compiled(&fresh_thunked, &ins))
        });
        group.bench_with_input(BenchmarkId::new("oracle", n), &n, |b, &n| {
            b.iter(|| wl::sor_oracle(&a, n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite fast; the shapes, not
    // the last digit, are the reproduction target.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_sor
}

criterion_main!(benches);
