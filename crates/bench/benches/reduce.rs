//! Reduction kernels (E24): the fused strict-fold kernels vs the
//! scalar tape vs hand-written Rust slice loops, on dot, matvec, and
//! matmul. The fused runs are bit-identical to the scalar tape
//! (asserted by `tests/fuse_equivalence.rs`); the hand-written loops
//! are the "what you would write in Rust" baselines the interpreter
//! chases — idiomatic accumulator loops that do not store the partial
//! sums the source programs materialize.
//!
//! `CRITERION_JSON=BENCH_reduce.json cargo bench -p hac-bench --bench
//! reduce` records the medians the experiment log quotes.

use std::collections::HashMap;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::{inputs, run_compiled};
use hac_core::pipeline::{compile, CompileOptions, Compiled, Engine};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::value::ArrayBuf;
use hac_workloads as wl;

fn compile_fuse(src: &str, params: &[(&str, i64)], fuse: bool) -> Compiled {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let env = ConstEnv::from_pairs(params.iter().copied());
    compile(
        &program,
        &env,
        &CompileOptions {
            // Sequential tape isolates kernel speed from chunking.
            engine: Engine::Tape,
            fuse,
            ..CompileOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("compile: {e}"))
}

/// Fused and scalar interpreter runs plus a hand-written closure,
/// under one group so the JSON ids line up as
/// `reduce/<kernel>/{fused,scalar,hand}/<n>`.
fn bench_reduction(
    c: &mut Criterion,
    group_name: &str,
    src: &str,
    n: i64,
    ins: &HashMap<String, ArrayBuf>,
    hand: &mut dyn FnMut() -> f64,
) {
    let fused = compile_fuse(src, &[("n", n)], true);
    let scalar = compile_fuse(src, &[("n", n)], false);
    let mut group = c.benchmark_group(group_name);
    group.bench_with_input(BenchmarkId::new("fused", n), &n, |b, _| {
        b.iter(|| run_compiled(&fused, ins))
    });
    group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
        b.iter(|| run_compiled(&scalar, ins))
    });
    group.bench_with_input(BenchmarkId::new("hand", n), &n, |b, _| {
        b.iter(|| black_box(hand()))
    });
    group.finish();
}

fn dot_hand(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = a[0] * b[0];
    for k in 1..a.len() {
        acc += a[k] * b[k];
    }
    acc
}

fn bench_reduce(c: &mut Criterion) {
    for n in [4096i64, 65536] {
        let a = wl::random_vector(n, 43);
        let b = wl::random_vector(n, 47);
        let (av, bv) = (a.data().to_vec(), b.data().to_vec());
        bench_reduction(
            c,
            "reduce/dot",
            wl::dot_source(),
            n,
            &inputs(&[("a", a), ("b", b)]),
            &mut || dot_hand(black_box(&av), black_box(&bv)),
        );
    }
    for n in [64i64, 256] {
        let m = wl::random_matrix(n, n, 53);
        let x = wl::random_vector(n, 59);
        let (mv, xv) = (m.data().to_vec(), x.data().to_vec());
        let un = n as usize;
        bench_reduction(
            c,
            "reduce/matvec",
            wl::matvec_source(),
            n,
            &inputs(&[("m", m), ("x", x)]),
            &mut || {
                let (m, x) = (black_box(&mv), black_box(&xv));
                let mut y = vec![0.0f64; un];
                for (i, out) in y.iter_mut().enumerate() {
                    *out = dot_hand(&m[i * un..(i + 1) * un], x);
                }
                y[un - 1]
            },
        );
    }
    for n in [24i64, 48] {
        let x = wl::random_matrix(n, n, 31);
        let y = wl::random_matrix(n, n, 37);
        let (xv, yv) = (x.data().to_vec(), y.data().to_vec());
        let un = n as usize;
        bench_reduction(
            c,
            "reduce/matmul",
            wl::matmul_source(),
            n,
            &inputs(&[("x", x), ("y", y)]),
            &mut || {
                let (x, y) = (black_box(&xv), black_box(&yv));
                let mut out = vec![0.0f64; un * un];
                for i in 0..un {
                    let row = &x[i * un..(i + 1) * un];
                    for j in 0..un {
                        let mut acc = row[0] * y[j];
                        for (k, &xv) in row.iter().enumerate().skip(1) {
                            acc += xv * y[k * un + j];
                        }
                        out[i * un + j] = acc;
                    }
                }
                out[un * un - 1]
            },
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_reduce
}

criterion_main!(benches);
