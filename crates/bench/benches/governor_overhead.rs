//! Metering overhead: the fuel/memory governor's charge sites sit on
//! the tape engine's hottest paths (loop heads, call sites, allocs).
//! This bench runs the same loop-dominated kernels with no limits,
//! with a generous fuel cap, and with fuel + memory caps together, to
//! measure what resource governance costs when it never trips. The
//! budget-exceeded paths are correctness-tested elsewhere
//! (`tests/governor_equivalence.rs`); here only the always-taken
//! charge instructions matter.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::inputs;
use hac_core::pipeline::{compile, run_with_options, CompileOptions, Compiled, Engine, RunOptions};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::governor::Limits;
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads as wl;

fn compile_tape(src: &str, params: &[(&str, i64)]) -> Compiled {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let env = ConstEnv::from_pairs(params.iter().copied());
    compile(
        &program,
        &env,
        &CompileOptions {
            engine: Engine::Tape,
            ..CompileOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("compile: {e}"))
}

fn bench_limits(
    c: &mut Criterion,
    group_name: &str,
    src: &str,
    params: &[(&str, i64)],
    ins: &HashMap<String, ArrayBuf>,
    n: i64,
) {
    let compiled = compile_tape(src, params);
    let funcs = FuncTable::new();
    let variants: [(&str, Limits); 3] = [
        ("unmetered", Limits::unlimited()),
        (
            "fuel",
            Limits {
                fuel: Some(u64::MAX / 2),
                mem_bytes: None,
            },
        ),
        (
            "fuel+mem",
            Limits {
                fuel: Some(u64::MAX / 2),
                mem_bytes: Some(u64::MAX / 2),
            },
        ),
    ];
    let mut group = c.benchmark_group(group_name);
    for (label, limits) in variants {
        let opts = RunOptions {
            threads: Some(1),
            limits,
            faults: None,
            ceiling: None,
        };
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| run_with_options(&compiled, ins, &funcs, &opts).expect("bench run"))
        });
    }
    group.finish();
}

fn bench_governor_overhead(c: &mut Criterion) {
    for n in [32i64, 64] {
        let a = wl::random_matrix(n, n, 5);
        let ins = inputs(&[("a", a)]);
        bench_limits(
            c,
            "governor/jacobi",
            wl::jacobi_source(),
            &[("n", n)],
            &ins,
            n,
        );
        bench_limits(c, "governor/sor", wl::sor_source(), &[("n", n)], &ins, n);
        bench_limits(
            c,
            "governor/wavefront",
            wl::wavefront_source(),
            &[("n", n)],
            &HashMap::new(),
            n,
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_governor_overhead
}

criterion_main!(benches);
