//! E21 — multi-tenant serving throughput.
//!
//! Measures requests/second through the serving layer at 1, 2, and 4
//! concurrent tenants, split by cache temperature:
//!
//!   * `hit`  — the server is pre-warmed, so every request reuses the
//!     compiled program and skips the front end entirely (parse,
//!     subscript analysis, scheduling, codegen).
//!   * `miss` — a fresh server per iteration, so every batch pays one
//!     full front-end pass before execution.
//!
//! The gap between the two is the front-end cost the cache amortises;
//! the spread across tenant counts shows how batch workers overlap
//! tenant execution under the shared ceiling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_serve::{Request, ServeOptions, Server};
use hac_workloads as wl;

const TENANTS: [usize; 3] = [1, 2, 4];

fn make_requests(tenants: usize) -> Vec<Request> {
    (0..tenants)
        .map(|i| {
            let mut r = Request::new(format!("t{i}"), wl::wavefront_source());
            r.params.push(("n".to_string(), 16));
            r.fuel = Some(10_000);
            r
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");

    for tenants in TENANTS {
        let reqs = make_requests(tenants);

        // Warm path: compile once up front, then every measured batch
        // is a pure cache hit.
        let server = Server::new(ServeOptions::default());
        let warm = server.run_batch(&reqs, tenants);
        assert!(warm.iter().all(|r| r.status.as_str() == "ok"));
        group.bench_with_input(BenchmarkId::new("hit", tenants), &tenants, |b, &workers| {
            b.iter(|| {
                let out = server.run_batch(&reqs, workers);
                assert!(out.iter().all(|r| r.cache_hit == Some(true)));
                out
            })
        });

        // Cold path: a fresh server per iteration forces a full
        // front-end pass for the batch.
        group.bench_with_input(
            BenchmarkId::new("miss", tenants),
            &tenants,
            |b, &workers| {
                b.iter(|| {
                    let cold = Server::new(ServeOptions::default());
                    let out = cold.run_batch(&reqs, workers);
                    assert!(out.iter().any(|r| r.cache_hit == Some(false)));
                    out
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
