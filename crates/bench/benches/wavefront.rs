//! E3/E13 — the §3 wavefront recurrence: thunked baseline vs thunkless
//! compiled loops vs the hand-coded Rust oracle ("Fortran"), over a
//! size sweep. The paper's claim is the *shape*: thunked ≫ thunkless,
//! and thunkless within interpreter overhead of native loops.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::{compile_src, run_compiled};
use hac_core::pipeline::ExecMode;
use hac_workloads as wl;

fn bench_wavefront(c: &mut Criterion) {
    let mut group = c.benchmark_group("wavefront");
    for n in [16i64, 32, 64, 128] {
        let thunkless = compile_src(wl::wavefront_source(), &[("n", n)], ExecMode::Auto);
        let thunked = compile_src(wl::wavefront_source(), &[("n", n)], ExecMode::ForceThunked);
        let no_inputs = HashMap::new();

        group.bench_with_input(BenchmarkId::new("thunkless", n), &n, |b, _| {
            b.iter(|| run_compiled(&thunkless, &no_inputs))
        });
        group.bench_with_input(BenchmarkId::new("thunked", n), &n, |b, _| {
            b.iter(|| run_compiled(&thunked, &no_inputs))
        });
        group.bench_with_input(BenchmarkId::new("oracle", n), &n, |b, &n| {
            b.iter(|| wl::wavefront_oracle(n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite fast; the shapes, not
    // the last digit, are the reproduction target.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_wavefront
}

criterion_main!(benches);
