//! E25 — certificate admission: what a proved cost bound saves.
//!
//! Three prices for a starved request (a fuel budget the program can
//! certifiably never finish under), all cache-warm so the front end is
//! out of the picture:
//!
//!   * `certified-reject` — wavefront carries an *exact* certificate,
//!     so the server proves the shortfall at admission and rejects
//!     with `over-certificate` before executing a single op.
//!   * `metered-limit` — Gauss–Seidel's certificate is only an upper
//!     bound, so the same starvation runs on the metered path until
//!     the meter trips mid-flight: the work a certificate avoids.
//!   * `admit-at-cert` — the control: a budget exactly at the
//!     certificate admits and runs to completion with zero fuel left,
//!     pricing the certificate check itself on the happy path.
//!
//! `CRITERION_JSON=BENCH_cert.json cargo bench -p hac-bench --bench
//! cert_admission` records the medians EXPERIMENTS.md E25 quotes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_serve::{Request, ServeOptions, Server};
use hac_workloads as wl;

fn request(src: &str, n: i64, fuel: u64) -> Request {
    let mut r = Request::new("r", src);
    r.params.push(("n".to_string(), n));
    r.fuel = Some(fuel);
    r
}

/// A server pre-warmed on the request's program so every measured
/// `handle` is a cache hit.
fn warm_server(src: &str, n: i64) -> Server {
    let server = Server::new(ServeOptions::default());
    let warmup = request(src, n, u64::MAX);
    assert_eq!(server.handle(&warmup).status.as_str(), "ok");
    server
}

fn bench_cert_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("cert_admission");
    for n in [16i64, 64] {
        // Wavefront certifies fuel n^2 + n - 1 exactly.
        let cert_fuel = (n * n + n - 1) as u64;

        let server = warm_server(wl::wavefront_source(), n);
        let starved = request(wl::wavefront_source(), n, 3);
        assert_eq!(server.handle(&starved).status.as_str(), "over-certificate");
        group.bench_with_input(BenchmarkId::new("certified-reject", n), &n, |b, _| {
            b.iter(|| server.handle(&starved))
        });

        let at_cert = request(wl::wavefront_source(), n, cert_fuel);
        let resp = server.handle(&at_cert);
        assert_eq!(resp.status.as_str(), "ok");
        assert_eq!(resp.fuel_left, Some(0), "the certificate is tight");
        group.bench_with_input(BenchmarkId::new("admit-at-cert", n), &n, |b, _| {
            b.iter(|| server.handle(&at_cert))
        });

        // Gauss–Seidel: inexact certificate, so the identical
        // starvation burns its whole 3-op budget plus the allocation
        // and settle machinery before failing.
        let sor = warm_server(wl::sor_source(), n);
        let metered = request(wl::sor_source(), n, 3);
        assert_eq!(sor.handle(&metered).status.as_str(), "limit");
        group.bench_with_input(BenchmarkId::new("metered-limit", n), &n, |b, _| {
            b.iter(|| sor.handle(&metered))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cert_admission);
criterion_main!(benches);
