//! E19 — parallel tape scaling: `Engine::ParTape` at 1, 2, 4, and 8
//! worker threads against the sequential tape baseline, on the three
//! dependence-free kernels §10 proves parallelizable:
//!
//! * `jacobi_step` — out-of-place 2-D five-point stencil (the parallel
//!   counterpart of the in-place Jacobi `bigupd`, which carries anti
//!   dependences and is *not* a parallel region);
//! * `matmul` — the comprehension matmul, whose outer `i` pass is
//!   dependence-free (the inner partial-sum recurrence carries);
//! * `relaxation` — 1-D three-point smoother into a fresh vector.
//!
//! Run with `CRITERION_JSON=BENCH_partape.json cargo bench --bench
//! par_scaling` to get the machine-readable report. Speedup is
//! `tape/<n>` vs `partape<k>/<n>`; on a single-core host the parallel
//! engine can only tie (plus pool overhead), so judge scaling claims
//! against the core count recorded in EXPERIMENTS.md E19.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::inputs;
use hac_core::pipeline::{compile, run_with_threads, CompileOptions, Compiled, Engine};
use hac_lang::env::ConstEnv;
use hac_lang::parser::parse_program;
use hac_runtime::value::{ArrayBuf, FuncTable};
use hac_workloads as wl;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn compile_engine(src: &str, params: &[(&str, i64)], engine: Engine) -> Compiled {
    let program = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let env = ConstEnv::from_pairs(params.iter().copied());
    compile(
        &program,
        &env,
        &CompileOptions {
            engine,
            ..CompileOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("compile: {e}"))
}

fn bench_scaling(
    c: &mut Criterion,
    group_name: &str,
    src: &str,
    params: &[(&str, i64)],
    ins: &HashMap<String, ArrayBuf>,
    n: i64,
) {
    let funcs = FuncTable::new();
    let tape = compile_engine(src, params, Engine::Tape);
    let par = compile_engine(src, params, Engine::ParTape);
    let mut group = c.benchmark_group(group_name);
    group.bench_with_input(BenchmarkId::new("tape", n), &n, |b, _| {
        b.iter(|| run_with_threads(&tape, ins, &funcs, 1).unwrap())
    });
    for t in THREADS {
        group.bench_with_input(BenchmarkId::new(format!("partape{t}"), n), &n, |b, _| {
            b.iter(|| run_with_threads(&par, ins, &funcs, t).unwrap())
        });
    }
    group.finish();
}

fn bench_par_scaling(c: &mut Criterion) {
    let n = 192i64;
    let a = wl::random_matrix(n, n, 5);
    bench_scaling(
        c,
        "par_scaling/jacobi_step",
        wl::jacobi_step_source(),
        &[("n", n)],
        &inputs(&[("a", a)]),
        n,
    );

    let n = 40i64;
    let x = wl::random_matrix(n, n, 7);
    let y = wl::random_matrix(n, n, 11);
    bench_scaling(
        c,
        "par_scaling/matmul",
        wl::matmul_source(),
        &[("n", n)],
        &inputs(&[("x", x), ("y", y)]),
        n,
    );

    let n = 65_536i64;
    let u = wl::random_vector(n, 13);
    bench_scaling(
        c,
        "par_scaling/relaxation",
        wl::relaxation_source(),
        &[("n", n)],
        &inputs(&[("u", u)]),
        n,
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(10);
    targets = bench_par_scaling
);
criterion_main!(benches);
