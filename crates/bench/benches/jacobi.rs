//! E8 — §9 Jacobi: node-splitting in-place update (O(n) carry buffers)
//! vs the naive whole-array copy vs the hand-coded oracle. The paper's
//! claim: node splitting needs "a factor n fewer copies than naive
//! compilation" — here measured as O(n) temporary elements vs O(n²)
//! copied elements per sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_bench::harness::{compile_src, inputs, run_compiled};
use hac_core::pipeline::ExecMode;
use hac_runtime::incremental::{bigupd_copy, CopyCounters};
use hac_workloads as wl;

fn bench_jacobi(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi");
    for n in [16i64, 32, 64] {
        let a = wl::random_matrix(n, n, 5);
        let compiled = compile_src(wl::jacobi_source(), &[("n", n)], ExecMode::Auto);
        let ins = inputs(&[("a", a.clone())]);

        group.bench_with_input(BenchmarkId::new("inplace_split", n), &n, |b, _| {
            b.iter(|| run_compiled(&compiled, &ins))
        });

        // Naive: copy the whole array, then write the new interior.
        group.bench_with_input(BenchmarkId::new("copy_whole", n), &n, |b, &n| {
            b.iter(|| {
                let mut counters = CopyCounters::default();
                let updates = (2..n).flat_map(|i| {
                    let a = &a;
                    (2..n).map(move |j| {
                        let v = (a.get("a", &[i - 1, j]).unwrap()
                            + a.get("a", &[i, j - 1]).unwrap()
                            + a.get("a", &[i + 1, j]).unwrap()
                            + a.get("a", &[i, j + 1]).unwrap())
                            / 4.0;
                        (vec![i, j], v)
                    })
                });
                bigupd_copy(&a, updates, &mut counters).unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("oracle", n), &n, |b, &n| {
            b.iter(|| wl::jacobi_oracle(&a, n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite fast; the shapes, not
    // the last digit, are the reproduction target.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_jacobi
}

criterion_main!(benches);
