//! E22 — fair-scheduling and bounded-cache overhead.
//!
//! The weighted-fair admission queue and the eviction machinery sit on
//! the sequential admission path of every request, so their cost is
//! pure overhead relative to PR4's queue-order, unbounded-cache
//! server. This experiment prices them:
//!
//!   * `schedule/N` — computing the fair admission order alone for a
//!     backlog of N requests spread over 4 tenants at mixed weights
//!     (the scheduler is O(tenants) per admission, so this should grow
//!     linearly and sit in the tens of nanoseconds per request).
//!   * `batch_tagged/N` — a full `run_batch` of N tenant-tagged
//!     cache-warm requests at 4 workers, scheduler and eviction dance
//!     included.
//!   * `batch_untagged/N` — the identical batch with no tenant tags:
//!     the degenerate single-tenant schedule, i.e. PR4's behaviour.
//!     The gap to `batch_tagged` is the fair-queue premium.
//!   * `churn/N` — N unique programs through a 64-entry cache: every
//!     request compiles, inserts, and evicts — the worst-case eviction
//!     path, dominated by the front end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_serve::sched::fair_order;
use hac_serve::{Request, ServeOptions, Server};
use hac_workloads as wl;

const SIZES: [usize; 2] = [16, 64];

fn tagged_requests(count: usize) -> Vec<Request> {
    (0..count)
        .map(|i| {
            let mut r = Request::new(format!("r{i}"), wl::wavefront_source());
            r.params.push(("n".to_string(), 12));
            r.fuel = Some(10_000);
            r.tenant = Some(format!("tenant-{}", i % 4));
            r.weight = Some(1 + (i % 4) as u64);
            r
        })
        .collect()
}

fn untagged_requests(count: usize) -> Vec<Request> {
    let mut reqs = tagged_requests(count);
    for r in &mut reqs {
        r.tenant = None;
        r.weight = None;
    }
    reqs
}

fn bench_fair(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_fair");

    for size in SIZES {
        let arrivals: Vec<(String, u64)> = (0..size)
            .map(|i| (format!("tenant-{}", i % 4), 1 + (i % 4) as u64))
            .collect();
        group.bench_with_input(BenchmarkId::new("schedule", size), &size, |b, _| {
            b.iter(|| {
                let refs: Vec<(&str, u64)> =
                    arrivals.iter().map(|(t, w)| (t.as_str(), *w)).collect();
                fair_order(&refs)
            })
        });

        let tagged = tagged_requests(size);
        let server = Server::new(ServeOptions::default());
        let warm = server.run_batch(&tagged, 4);
        assert!(warm.iter().all(|r| r.status.as_str() == "ok"));
        group.bench_with_input(BenchmarkId::new("batch_tagged", size), &size, |b, _| {
            b.iter(|| server.run_batch(&tagged, 4))
        });

        let untagged = untagged_requests(size);
        let server = Server::new(ServeOptions::default());
        server.run_batch(&untagged, 4);
        group.bench_with_input(BenchmarkId::new("batch_untagged", size), &size, |b, _| {
            b.iter(|| server.run_batch(&untagged, 4))
        });

        // Churn: unique programs through a small cache — every request
        // misses, compiles, and (once warm) evicts.
        let tiny = "param n;\nlet a = array (1,1) [ i := n | i <- [1..1] ];\n";
        let churn: Vec<Request> = (0..size)
            .map(|i| {
                let mut r = Request::new(format!("c{i}"), tiny);
                r.params.push(("n".to_string(), i as i64));
                r
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("churn", size), &size, |b, _| {
            b.iter(|| {
                let server = Server::new(ServeOptions {
                    cache_cap: 64,
                    ..ServeOptions::default()
                });
                server.run_batch(&churn, 4)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fair);
criterion_main!(benches);
