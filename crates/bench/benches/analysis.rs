//! E12 — dependence-test cost (§6): the GCD and Banerjee tests are
//! `O(n)` in nest depth; the exact test is exponential; the search-tree
//! refinement often prunes to `O(1)`. Also benches whole-array analysis
//! of the paper's kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hac_analysis::analyze::analyze_array;
use hac_analysis::banerjee::banerjee_test;
use hac_analysis::direction::DirVec;
use hac_analysis::equation::{DimEquation, LoopTerm};
use hac_analysis::exact::exact_test;
use hac_analysis::gcd::gcd_test;
use hac_analysis::search::{refine_directions, TestPolicy};
use hac_lang::env::ConstEnv;
use hac_lang::number::number_clauses;
use hac_lang::parser::parse_program;

/// A synthetic depth-`d` equation with interacting coefficients and no
/// solution, forcing worst-case search.
fn deep_equation(d: usize) -> DimEquation {
    let shared = (0..d)
        .map(|k| LoopTerm {
            size: 8,
            a: 1 + (k as i64 % 3),
            b: 1 + ((k + 1) as i64 % 3),
        })
        .collect();
    DimEquation {
        shared,
        src_only: vec![],
        snk_only: vec![],
        a0: 0,
        b0: 1_000_000, // far outside the reachable interval
    }
}

/// Like [`deep_equation`] but with a reachable RHS, so inexact tests
/// pass and the refinement tree actually expands.
fn reachable_equation(d: usize) -> DimEquation {
    DimEquation {
        b0: 0,
        ..deep_equation(d)
    }
}

fn bench_single_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_tests");
    for d in [1usize, 2, 3, 4, 6] {
        let eq = reachable_equation(d);
        let dv = DirVec::any(d);
        group.bench_with_input(BenchmarkId::new("gcd", d), &d, |b, _| {
            b.iter(|| gcd_test(std::slice::from_ref(&eq), &dv))
        });
        group.bench_with_input(BenchmarkId::new("banerjee", d), &d, |b, _| {
            b.iter(|| banerjee_test(std::slice::from_ref(&eq), &dv))
        });
        // The exact test is exponential: keep depth modest.
        if d <= 4 {
            group.bench_with_input(BenchmarkId::new("exact", d), &d, |b, _| {
                b.iter(|| exact_test(std::slice::from_ref(&eq), &dv, u64::MAX))
            });
        }
    }
    group.finish();
}

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement");
    // O(1) case: independence proven at the root.
    let indep = deep_equation(3);
    group.bench_function("pruned_at_root_d3", |b| {
        b.iter(|| refine_directions(std::slice::from_ref(&indep), 3, &TestPolicy::default()))
    });
    // Expanding case.
    for d in [1usize, 2, 3] {
        let eq = reachable_equation(d);
        group.bench_with_input(BenchmarkId::new("full_tree", d), &d, |b, _| {
            b.iter(|| refine_directions(std::slice::from_ref(&eq), d, &TestPolicy::default()))
        });
        let no_exact = TestPolicy {
            use_exact: false,
            exact_budget: 0,
        };
        group.bench_with_input(BenchmarkId::new("inexact_tree", d), &d, |b, _| {
            b.iter(|| refine_directions(std::slice::from_ref(&eq), d, &no_exact))
        });
    }
    group.finish();
}

fn bench_whole_array_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze_array");
    let env = ConstEnv::from_pairs([("n", 100), ("m", 100)]);
    for (name, src) in [
        ("wavefront", hac_workloads::wavefront_source()),
        (
            "section5_example1",
            hac_workloads::section5_example1_source(),
        ),
        (
            "section5_example2",
            hac_workloads::section5_example2_source(),
        ),
    ] {
        let mut program = parse_program(src).unwrap();
        let def = match &mut program.bindings[0] {
            hac_lang::ast::Binding::LetrecStar(ds) => {
                number_clauses(&mut ds[0].comp);
                ds[0].clone()
            }
            _ => unreachable!(),
        };
        group.bench_function(name, |b| {
            b.iter(|| analyze_array(&def, &env, &TestPolicy::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full suite fast; the shapes, not
    // the last digit, are the reproduction target.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(12)
        .without_plots();
    targets = bench_single_tests, bench_refinement, bench_whole_array_analysis
}

criterion_main!(benches);
