//! # hac-runtime
//!
//! Execution substrates for the `hac` reproduction of Anderson & Hudak
//! (PLDI 1990) — every run-time representation the paper's compile-time
//! analysis is designed to beat, faithfully implemented and
//! instrumented:
//!
//! * [`thunked`] — the non-strict reference evaluator: one thunk per
//!   element, demand-driven with black-holing, plus `force_elements`
//!   (§2). Its results are the semantic ground truth for the compiled
//!   pipeline.
//! * [`list`] — the naive `TE` cons-list evaluation of nested
//!   comprehensions and `foldl` array construction (§3.1), the
//!   deforestation baseline.
//! * [`accum`] — Haskell-style accumulated arrays (§3).
//! * [`incremental`] — copy-on-write, trailer (version) arrays, and
//!   copy-vs-in-place `bigupd` (§9's related run-time schemes).
//! * [`value`] — flat `f64` buffers and the shared scalar-expression
//!   evaluator.
//!
//! # Example
//!
//! ```
//! use std::collections::HashMap;
//! use hac_lang::{parse_comp, number_clauses, ConstEnv};
//! use hac_runtime::thunked::ThunkedArray;
//! use hac_runtime::value::FuncTable;
//!
//! let mut comp = parse_comp(
//!     "[ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]",
//! )?;
//! number_clauses(&mut comp);
//! let env = ConstEnv::from_pairs([("n", 5)]);
//! let others = HashMap::new();
//! let funcs = FuncTable::new();
//! let a = ThunkedArray::build("a", &[(1, 5)], &comp, &env, &others, &funcs).unwrap();
//! let buf = a.into_strict().unwrap();
//! assert_eq!(buf.data(), &[1.0, 2.0, 4.0, 8.0, 16.0]);
//! # Ok::<(), hac_lang::ParseError>(())
//! ```

pub mod accum;
pub mod error;
pub mod governor;
pub mod group;
pub mod incremental;
pub mod list;
pub mod reduce;
pub mod thunked;
pub mod value;

pub use accum::{eval_accum, eval_accum_def};
pub use error::RuntimeError;
pub use governor::{FaultKind, FaultPlan, FaultPoint, Limits, Meter};
pub use group::ThunkedGroup;
pub use incremental::{
    bigupd_copy, bigupd_inplace, CopyCounters, CowArray, TrailerArray, TrailerCounters,
};
pub use list::{array_from_list, eval_core_list, ConsList, ListCounters};
pub use reduce::eval_reduce;
pub use thunked::{ThunkedArray, ThunkedCounters};
pub use value::{
    eval_expr, eval_expr_metered, ArrayBuf, ArrayReader, FuncTable, MapReader, Scalars,
};
