//! Mutually recursive `letrec*` groups of thunked arrays (§2).
//!
//! `letrec*` can "introduce multiple mutually recursive bindings by
//! treating x as a tuple". A [`ThunkedGroup`] evaluates such a binding
//! group: every member's elements are thunks, and a demand on any
//! member may transitively demand cells of any other member. Forcing
//! the group realizes the strict context for all members at once.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use hac_lang::ast::{Comp, Expr};
use hac_lang::env::ConstEnv;

use crate::error::RuntimeError;
use crate::governor::Meter;
use crate::thunked::{thunk_spine_bytes, ThunkedCounters};
use crate::value::{as_int, eval_expr, ArrayBuf, ArrayReader, FuncTable, MapReader, Scalars};

#[derive(Debug, Clone)]
enum Cell {
    Empty,
    Thunk(usize),
    Evaluating,
    Value(f64),
}

#[derive(Debug)]
struct Thunk {
    value: Rc<Expr>,
    scalars: Vec<(String, f64)>,
}

#[derive(Debug)]
struct Member {
    name: String,
    bounds: Vec<(i64, i64)>,
    shape: ArrayBuf,
    cells: RefCell<Vec<Cell>>,
    thunks: Vec<Thunk>,
}

/// One group member: `(name, bounds, comprehension)`.
pub type GroupDef<'d> = (&'d str, Vec<(i64, i64)>, &'d Comp);

/// A group of mutually recursive thunked arrays.
pub struct ThunkedGroup<'a> {
    members: Vec<Member>,
    others: &'a HashMap<String, ArrayBuf>,
    funcs: &'a FuncTable,
    counters: RefCell<ThunkedCounters>,
    /// Shared resource budget: one fuel unit per forced thunk, spine
    /// bytes per allocated thunk. `None` = unmetered.
    meter: Option<&'a RefCell<Meter>>,
}

impl std::fmt::Debug for ThunkedGroup<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThunkedGroup")
            .field(
                "members",
                &self
                    .members
                    .iter()
                    .map(|m| m.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("counters", &self.counters.borrow())
            .finish()
    }
}

impl<'a> ThunkedGroup<'a> {
    /// Build a group from `(name, bounds, comprehension)` triples.
    ///
    /// # Errors
    /// Collisions, out-of-bounds definitions, and eager-evaluation
    /// failures while collecting pairs (subscripts/guards/bounds may
    /// not reference group members).
    pub fn build(
        defs: &[GroupDef<'_>],
        params: &ConstEnv,
        others: &'a HashMap<String, ArrayBuf>,
        funcs: &'a FuncTable,
    ) -> Result<ThunkedGroup<'a>, RuntimeError> {
        ThunkedGroup::build_with_scalars(defs, params, &[], others, funcs)
    }

    /// [`ThunkedGroup::build`] with extra runtime scalar bindings
    /// (e.g. earlier reduction results).
    pub fn build_with_scalars(
        defs: &[GroupDef<'_>],
        params: &ConstEnv,
        extra_scalars: &[(String, f64)],
        others: &'a HashMap<String, ArrayBuf>,
        funcs: &'a FuncTable,
    ) -> Result<ThunkedGroup<'a>, RuntimeError> {
        ThunkedGroup::build_metered(defs, params, extra_scalars, others, funcs, None)
    }

    /// [`ThunkedGroup::build_with_scalars`] charging a shared
    /// [`Meter`]: spine bytes per allocated thunk during collection,
    /// one fuel unit per thunk forced later (the non-strict analog of
    /// the compiled engines' per-iteration charge).
    ///
    /// # Errors
    /// As [`ThunkedGroup::build_with_scalars`], plus budget exhaustion.
    pub fn build_metered(
        defs: &[GroupDef<'_>],
        params: &ConstEnv,
        extra_scalars: &[(String, f64)],
        others: &'a HashMap<String, ArrayBuf>,
        funcs: &'a FuncTable,
        meter: Option<&'a RefCell<Meter>>,
    ) -> Result<ThunkedGroup<'a>, RuntimeError> {
        let mut group = ThunkedGroup {
            members: Vec::new(),
            others,
            funcs,
            counters: RefCell::new(ThunkedCounters::default()),
            meter,
        };
        for (name, bounds, _) in defs {
            let shape = ArrayBuf::new(bounds, 0.0);
            group.members.push(Member {
                name: name.to_string(),
                bounds: bounds.clone(),
                cells: RefCell::new(vec![Cell::Empty; shape.len()]),
                shape,
                thunks: Vec::new(),
            });
        }
        for (m, (_, _, comp)) in defs.iter().enumerate() {
            let mut scalars = Scalars::new();
            for (p, v) in params.iter() {
                scalars.push(p, v as f64);
            }
            for (n, v) in extra_scalars {
                scalars.push(n.clone(), *v);
            }
            let mut values: HashMap<u32, Rc<Expr>> = HashMap::new();
            comp.walk(&mut |c| {
                if let Comp::Clause(sv) = c {
                    values.insert(sv.id.0, Rc::new(sv.value.clone()));
                }
            });
            group.collect(m, comp, &mut scalars, &values)?;
        }
        Ok(group)
    }

    fn collect(
        &mut self,
        m: usize,
        comp: &Comp,
        scalars: &mut Scalars,
        values: &HashMap<u32, Rc<Expr>>,
    ) -> Result<(), RuntimeError> {
        match comp {
            Comp::Append(cs) => {
                for c in cs {
                    self.collect(m, c, scalars, values)?;
                }
                Ok(())
            }
            Comp::Gen {
                var, range, body, ..
            } => {
                let mut reader = MapReader::new(self.others);
                let lo = eval_expr(&range.lo, scalars, &mut reader, self.funcs)?;
                let hi = eval_expr(&range.hi, scalars, &mut reader, self.funcs)?;
                if lo.fract() != 0.0 || hi.fract() != 0.0 {
                    return Err(RuntimeError::NonIntegerBound {
                        var: var.clone(),
                        value: if lo.fract() != 0.0 { lo } else { hi },
                    });
                }
                let (lo, hi, step) = (lo as i64, hi as i64, range.step);
                let mut i = lo;
                loop {
                    if (step > 0 && i > hi) || (step < 0 && i < hi) {
                        break;
                    }
                    scalars.push(var.clone(), i as f64);
                    self.collect(m, body, scalars, values)?;
                    scalars.pop();
                    i += step;
                }
                Ok(())
            }
            Comp::Guard { cond, body } => {
                let mut reader = MapReader::new(self.others);
                if eval_expr(cond, scalars, &mut reader, self.funcs)? != 0.0 {
                    self.collect(m, body, scalars, values)?;
                }
                Ok(())
            }
            Comp::Let { binds, body } => {
                let depth = scalars.depth();
                for (n, e) in binds {
                    let mut reader = MapReader::new(self.others);
                    let v = eval_expr(e, scalars, &mut reader, self.funcs)?;
                    scalars.push(n.clone(), v);
                }
                self.collect(m, body, scalars, values)?;
                scalars.truncate(depth);
                Ok(())
            }
            Comp::Clause(sv) => {
                let mut idx = Vec::with_capacity(sv.subs.len());
                for s in &sv.subs {
                    let mut reader = MapReader::new(self.others);
                    let v = eval_expr(s, scalars, &mut reader, self.funcs)?;
                    idx.push(as_int(&self.members[m].name, v)?);
                }
                let member = &mut self.members[m];
                let off = member.shape.offset(&idx).ok_or(RuntimeError::OutOfBounds {
                    array: member.name.clone(),
                    index: idx.clone(),
                    bounds: member.bounds.clone(),
                })?;
                let mut cells = member.cells.borrow_mut();
                if !matches!(cells[off], Cell::Empty) {
                    return Err(RuntimeError::WriteCollision {
                        array: member.name.clone(),
                        index: idx,
                    });
                }
                let snap = scalars.snapshot();
                if let Some(m) = self.meter {
                    m.borrow_mut().charge_mem(thunk_spine_bytes(snap.len()))?;
                }
                let tid = member.thunks.len();
                member.thunks.push(Thunk {
                    value: Rc::clone(&values[&sv.id.0]),
                    scalars: snap,
                });
                cells[off] = Cell::Thunk(tid);
                self.counters.borrow_mut().thunks_allocated += 1;
                Ok(())
            }
        }
    }

    fn member_of(&self, name: &str) -> Option<usize> {
        self.members.iter().position(|m| m.name == name)
    }

    /// Demand an element of a group member.
    ///
    /// # Errors
    /// ⊥ cycles, undefined elements, and evaluation failures.
    pub fn demand(&self, name: &str, idx: &[i64]) -> Result<f64, RuntimeError> {
        let m = self
            .member_of(name)
            .ok_or_else(|| RuntimeError::UnboundArray(name.to_string()))?;
        let member = &self.members[m];
        let off = member.shape.offset(idx).ok_or(RuntimeError::OutOfBounds {
            array: name.to_string(),
            index: idx.to_vec(),
            bounds: member.bounds.clone(),
        })?;
        self.demand_off(m, off, idx)
    }

    fn demand_off(&self, m: usize, off: usize, idx: &[i64]) -> Result<f64, RuntimeError> {
        self.counters.borrow_mut().demands += 1;
        let member = &self.members[m];
        let state = member.cells.borrow()[off].clone();
        match state {
            Cell::Value(v) => {
                self.counters.borrow_mut().memo_hits += 1;
                Ok(v)
            }
            Cell::Evaluating => Err(RuntimeError::Bottom {
                array: member.name.clone(),
                index: idx.to_vec(),
            }),
            Cell::Empty => Err(RuntimeError::UndefinedElement {
                array: member.name.clone(),
                index: idx.to_vec(),
            }),
            Cell::Thunk(tid) => {
                // One fuel unit per *forced* thunk — the demand-driven
                // counterpart of a taken loop iteration.
                if let Some(m) = self.meter {
                    m.borrow_mut().charge_fuel()?;
                }
                member.cells.borrow_mut()[off] = Cell::Evaluating;
                let thunk = &member.thunks[tid];
                let mut scalars = Scalars::new();
                for (n, v) in &thunk.scalars {
                    scalars.push(n.clone(), *v);
                }
                let expr = Rc::clone(&thunk.value);
                let mut reader = GroupReader { group: self };
                let v = eval_expr(&expr, &mut scalars, &mut reader, self.funcs)?;
                member.cells.borrow_mut()[off] = Cell::Value(v);
                Ok(v)
            }
        }
    }

    /// Force every element of every member (`force-elements` over the
    /// binding tuple, §2).
    ///
    /// # Errors
    /// The first ⊥ / undefined / failing element.
    pub fn force_elements(&self) -> Result<(), RuntimeError> {
        for m in 0..self.members.len() {
            let member = &self.members[m];
            for off in 0..member.shape.len() {
                let idx = unravel(&member.bounds, off);
                self.demand_off(m, off, &idx)?;
            }
        }
        Ok(())
    }

    /// Force everything and extract the strict buffers, name-keyed.
    ///
    /// # Errors
    /// As [`ThunkedGroup::force_elements`].
    pub fn into_strict(self) -> Result<Vec<(String, ArrayBuf)>, RuntimeError> {
        self.force_elements()?;
        let mut out = Vec::with_capacity(self.members.len());
        for member in self.members {
            let mut buf = member.shape;
            for (off, c) in member.cells.into_inner().into_iter().enumerate() {
                match c {
                    Cell::Value(v) => buf.data_mut()[off] = v,
                    _ => unreachable!("forced"),
                }
            }
            out.push((member.name, buf));
        }
        Ok(out)
    }

    /// Instrumentation snapshot.
    pub fn counters(&self) -> ThunkedCounters {
        *self.counters.borrow()
    }
}

fn unravel(bounds: &[(i64, i64)], mut off: usize) -> Vec<i64> {
    let mut idx = vec![0i64; bounds.len()];
    for k in (0..bounds.len()).rev() {
        let (lo, hi) = bounds[k];
        let extent = (hi - lo + 1).max(0) as usize;
        idx[k] = lo + (off % extent) as i64;
        off /= extent;
    }
    idx
}

struct GroupReader<'r, 'a> {
    group: &'r ThunkedGroup<'a>,
}

impl ArrayReader for GroupReader<'_, '_> {
    fn read_element(&mut self, array: &str, idx: &[i64]) -> Result<f64, RuntimeError> {
        if self.group.member_of(array).is_some() {
            self.group.demand(array, idx)
        } else {
            let buf = self
                .group
                .others
                .get(array)
                .ok_or_else(|| RuntimeError::UnboundArray(array.to_string()))?;
            buf.get(array, idx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    #[test]
    fn mutual_recursion_evaluates() {
        // a!1 = 1; a!i = b!(i-1) + 1; b!i = a!i * 2.
        let mut ca = parse_comp("[ 1 := 1 ] ++ [ i := b!(i-1) + 1 | i <- [2..n] ]").unwrap();
        let mut cb = parse_comp("[ i := a!i * 2 | i <- [1..n] ]").unwrap();
        let (mut c, mut l) = (0, 0);
        hac_lang::number::number_comp(&mut ca, &mut c, &mut l);
        hac_lang::number::number_comp(&mut cb, &mut c, &mut l);
        let env = ConstEnv::from_pairs([("n", 4)]);
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let g = ThunkedGroup::build(
            &[("a", vec![(1, 4)], &ca), ("b", vec![(1, 4)], &cb)],
            &env,
            &others,
            &funcs,
        )
        .unwrap();
        let bufs = g.into_strict().unwrap();
        let a = &bufs[0].1;
        let b = &bufs[1].1;
        // a: 1, 3, 7, 15; b: 2, 6, 14, 30.
        assert_eq!(a.data(), &[1.0, 3.0, 7.0, 15.0]);
        assert_eq!(b.data(), &[2.0, 6.0, 14.0, 30.0]);
    }

    #[test]
    fn mutual_bottom_detected() {
        let mut ca = parse_comp("[ 1 := b!1 ]").unwrap();
        let mut cb = parse_comp("[ 1 := a!1 ]").unwrap();
        let (mut c, mut l) = (0, 0);
        hac_lang::number::number_comp(&mut ca, &mut c, &mut l);
        hac_lang::number::number_comp(&mut cb, &mut c, &mut l);
        let env = ConstEnv::new();
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let g = ThunkedGroup::build(
            &[("a", vec![(1, 1)], &ca), ("b", vec![(1, 1)], &cb)],
            &env,
            &others,
            &funcs,
        )
        .unwrap();
        assert!(matches!(
            g.force_elements(),
            Err(RuntimeError::Bottom { .. })
        ));
    }

    #[test]
    fn singleton_group_behaves_like_thunked_array() {
        let mut c = parse_comp("[ 1 := 1 ] ++ [ i := a!(i-1) * 3 | i <- [2..n] ]").unwrap();
        number_clauses(&mut c);
        let env = ConstEnv::from_pairs([("n", 4)]);
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let g = ThunkedGroup::build(&[("a", vec![(1, 4)], &c)], &env, &others, &funcs).unwrap();
        let bufs = g.into_strict().unwrap();
        assert_eq!(bufs[0].1.data(), &[1.0, 3.0, 9.0, 27.0]);
    }

    #[test]
    fn guard_reading_group_member_is_clean_error() {
        // Guards are evaluated eagerly while collecting pairs, so they
        // may not read group members (documented limitation): the
        // failure is a proper UnboundArray error, not a panic.
        let mut ca = parse_comp("[ i := 1 | i <- [1..2], a!1 > 0 ]").unwrap();
        number_clauses(&mut ca);
        let env = ConstEnv::new();
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let err =
            ThunkedGroup::build(&[("a", vec![(1, 2)], &ca)], &env, &others, &funcs).unwrap_err();
        assert!(matches!(err, RuntimeError::UnboundArray(n) if n == "a"));
    }

    #[test]
    fn cross_member_collision_is_per_member() {
        // Same subscripts in different members are fine.
        let mut ca = parse_comp("[ 1 := 1 ]").unwrap();
        let mut cb = parse_comp("[ 1 := 2 ]").unwrap();
        let (mut c, mut l) = (0, 0);
        hac_lang::number::number_comp(&mut ca, &mut c, &mut l);
        hac_lang::number::number_comp(&mut cb, &mut c, &mut l);
        let env = ConstEnv::new();
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let g = ThunkedGroup::build(
            &[("a", vec![(1, 1)], &ca), ("b", vec![(1, 1)], &cb)],
            &env,
            &others,
            &funcs,
        )
        .unwrap();
        g.force_elements().unwrap();
    }
}
