//! Accumulated arrays (`accumArray`, §3): a default value for elements
//! with no definition and a combining function for elements with many.
//!
//! Values are evaluated strictly in subscript/value-pair list order —
//! required when the combining function is not commutative (§7: "the
//! order of supairs must be preserved"). Accumulated arrays may not be
//! recursive (their cells have no single defining thunk), which this
//! evaluator reports as an unbound-array error.

use std::collections::HashMap;

use hac_lang::ast::{ArrayKind, BinOp, Comp, Expr};
use hac_lang::env::ConstEnv;

use crate::error::RuntimeError;
use crate::value::{apply_bin, as_int, eval_expr, ArrayBuf, FuncTable, MapReader, Scalars};

/// Evaluate an accumulated array strictly.
///
/// # Errors
/// Out-of-bounds definitions and any evaluation failure.
#[allow(clippy::too_many_arguments)]
pub fn eval_accum(
    name: &str,
    bounds: &[(i64, i64)],
    comp: &Comp,
    combine: BinOp,
    default: &Expr,
    params: &ConstEnv,
    others: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
) -> Result<ArrayBuf, RuntimeError> {
    eval_accum_with_scalars(
        name,
        bounds,
        comp,
        combine,
        default,
        params,
        &[],
        others,
        funcs,
    )
}

/// [`eval_accum`] with extra runtime scalar bindings.
#[allow(clippy::too_many_arguments)]
pub fn eval_accum_with_scalars(
    name: &str,
    bounds: &[(i64, i64)],
    comp: &Comp,
    combine: BinOp,
    default: &Expr,
    params: &ConstEnv,
    extra_scalars: &[(String, f64)],
    others: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
) -> Result<ArrayBuf, RuntimeError> {
    let mut scalars = Scalars::new();
    for (p, v) in params.iter() {
        scalars.push(p, v as f64);
    }
    for (n, v) in extra_scalars {
        scalars.push(n.clone(), *v);
    }
    let z = {
        let mut reader = MapReader::new(others);
        eval_expr(default, &mut scalars, &mut reader, funcs)?
    };
    let mut buf = ArrayBuf::new(bounds, z);
    walk(name, &mut buf, comp, combine, &mut scalars, others, funcs)?;
    Ok(buf)
}

fn walk(
    name: &str,
    buf: &mut ArrayBuf,
    comp: &Comp,
    combine: BinOp,
    scalars: &mut Scalars,
    others: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
) -> Result<(), RuntimeError> {
    match comp {
        Comp::Append(cs) => {
            for c in cs {
                walk(name, buf, c, combine, scalars, others, funcs)?;
            }
            Ok(())
        }
        Comp::Gen {
            var, range, body, ..
        } => {
            let mut reader = MapReader::new(others);
            let lo = eval_expr(&range.lo, scalars, &mut reader, funcs)? as i64;
            let hi = eval_expr(&range.hi, scalars, &mut reader, funcs)? as i64;
            let step = range.step;
            let mut i = lo;
            loop {
                if (step > 0 && i > hi) || (step < 0 && i < hi) {
                    break;
                }
                scalars.push(var.clone(), i as f64);
                walk(name, buf, body, combine, scalars, others, funcs)?;
                scalars.pop();
                i += step;
            }
            Ok(())
        }
        Comp::Guard { cond, body } => {
            let mut reader = MapReader::new(others);
            if eval_expr(cond, scalars, &mut reader, funcs)? != 0.0 {
                walk(name, buf, body, combine, scalars, others, funcs)?;
            }
            Ok(())
        }
        Comp::Let { binds, body } => {
            let depth = scalars.depth();
            for (n, e) in binds {
                let mut reader = MapReader::new(others);
                let v = eval_expr(e, scalars, &mut reader, funcs)?;
                scalars.push(n.clone(), v);
            }
            walk(name, buf, body, combine, scalars, others, funcs)?;
            scalars.truncate(depth);
            Ok(())
        }
        Comp::Clause(sv) => {
            let mut idx = Vec::with_capacity(sv.subs.len());
            for s in &sv.subs {
                let mut reader = MapReader::new(others);
                let v = eval_expr(s, scalars, &mut reader, funcs)?;
                idx.push(as_int(name, v)?);
            }
            let mut reader = MapReader::new(others);
            let v = eval_expr(&sv.value, scalars, &mut reader, funcs)?;
            let old = buf.get(name, &idx)?;
            buf.set(name, &idx, apply_bin(combine, old, v))?;
            Ok(())
        }
    }
}

#[allow(clippy::too_many_arguments)]
/// Convenience: evaluate an [`hac_lang::ast::ArrayDef`] with
/// `ArrayKind::Accumulated`.
///
/// # Errors
/// As [`eval_accum`]; also fails on non-constant bounds.
pub fn eval_accum_def(
    def: &hac_lang::ast::ArrayDef,
    params: &ConstEnv,
    others: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
) -> Result<ArrayBuf, RuntimeError> {
    let ArrayKind::Accumulated {
        combine, default, ..
    } = &def.kind
    else {
        panic!("eval_accum_def requires an accumulated array");
    };
    let mut scalars = Scalars::new();
    for (p, v) in params.iter() {
        scalars.push(p, v as f64);
    }
    let mut bounds = Vec::with_capacity(def.bounds.len());
    for (lo, hi) in &def.bounds {
        let mut reader = MapReader::new(others);
        let l = eval_expr(lo, &mut scalars, &mut reader, funcs)? as i64;
        let h = eval_expr(hi, &mut scalars, &mut reader, funcs)? as i64;
        bounds.push((l, h));
    }
    eval_accum(
        &def.name, &bounds, &def.comp, *combine, default, params, others, funcs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    fn accum(src: &str, n: i64, bounds: &[(i64, i64)], op: BinOp, z: f64) -> ArrayBuf {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let env = ConstEnv::from_pairs([("n", n)]);
        let others = HashMap::new();
        let funcs = FuncTable::new();
        eval_accum("h", bounds, &c, op, &Expr::num(z), &env, &others, &funcs).unwrap()
    }

    #[test]
    fn histogram() {
        // Count i mod 3 for i in 1..9 into buckets 0..2.
        let h = accum(
            "[ i mod 3 := 1.0 | i <- [1..n] ]",
            9,
            &[(0, 2)],
            BinOp::Add,
            0.0,
        );
        assert_eq!(h.data(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn default_fills_empties() {
        let h = accum("[ 2 := 5.0 ]", 0, &[(1, 3)], BinOp::Add, 7.0);
        assert_eq!(h.data(), &[7.0, 12.0, 7.0]);
    }

    #[test]
    fn max_combining() {
        let h = accum("[ 1 := i | i <- [1..n] ]", 6, &[(1, 1)], BinOp::Max, 0.0);
        assert_eq!(h.data(), &[6.0]);
    }

    #[test]
    fn non_commutative_order_preserved() {
        // Subtraction: ((0 - 1) - 2) - 3 = -6 requires list order.
        let h = accum("[ 1 := i | i <- [1..3] ]", 0, &[(1, 1)], BinOp::Sub, 0.0);
        assert_eq!(h.data(), &[-6.0]);
    }

    #[test]
    fn collisions_are_not_errors() {
        let h = accum("[ 1 := 1.0 | i <- [1..n] ]", 5, &[(1, 2)], BinOp::Add, 0.0);
        assert_eq!(h.data(), &[5.0, 0.0]);
    }
}
