//! Cons lists, `foldl`, and the naive `TE` list evaluator (§3.1).
//!
//! "TE makes the semantics of nested comprehensions clear, but as an
//! implementation it requires a tremendous amount of unnecessary
//! CONSing." This module *is* that implementation — the deforestation
//! baseline of experiment E11: every `flatmap` and `++` allocates real
//! cons cells (instrumented), and the array is then built by `foldl`
//! of the update function over the list.

use std::collections::HashMap;
use std::rc::Rc;

use hac_lang::core::CoreList;
use hac_lang::env::ConstEnv;

use crate::error::RuntimeError;
use crate::value::{as_int, eval_expr, ArrayBuf, FuncTable, MapReader, Scalars};

/// A subscript/value pair.
pub type Pair = (Vec<i64>, f64);

/// A classic immutable cons list of pairs.
#[derive(Debug, Clone)]
pub enum ConsList {
    Nil,
    Cons(Rc<ConsCell>),
}

/// One allocated cons cell.
#[derive(Debug)]
pub struct ConsCell {
    pub head: Pair,
    pub tail: ConsList,
}

impl ConsList {
    /// The empty list.
    pub fn nil() -> ConsList {
        ConsList::Nil
    }

    /// Prepend (allocates one cell).
    pub fn cons(head: Pair, tail: ConsList, allocs: &mut u64) -> ConsList {
        *allocs += 1;
        ConsList::Cons(Rc::new(ConsCell { head, tail }))
    }

    /// Length by traversal.
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self.clone();
        while let ConsList::Cons(cell) = cur {
            n += 1;
            cur = cell.tail.clone();
        }
        n
    }

    /// `true` for the empty list.
    pub fn is_empty(&self) -> bool {
        matches!(self, ConsList::Nil)
    }

    /// Collect the pairs into a vector (traversal order).
    pub fn to_vec(&self) -> Vec<Pair> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        while let ConsList::Cons(cell) = cur {
            out.push(cell.head.clone());
            cur = cell.tail.clone();
        }
        out
    }

    /// Naive list append: re-conses every cell of `self` (counted in
    /// `allocs`), exactly like `xs ++ ys` on heap-allocated lists.
    pub fn append(&self, other: ConsList, allocs: &mut u64) -> ConsList {
        // Iteratively collect self's heads, then rebuild from the right
        // (avoids recursion-depth limits while allocating the same
        // number of cells the naive recursive append would).
        let heads = self.to_vec();
        let mut out = other;
        for h in heads.into_iter().rev() {
            out = ConsList::cons(h, out, allocs);
        }
        out
    }

    /// `foldl f a xs` (§3.1).
    pub fn foldl<A>(&self, init: A, mut f: impl FnMut(A, &Pair) -> A) -> A {
        let mut acc = init;
        let mut cur = self.clone();
        while let ConsList::Cons(cell) = cur {
            acc = f(acc, &cell.head);
            cur = cell.tail.clone();
        }
        acc
    }
}

/// Instrumentation for the naive list strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ListCounters {
    /// Cons cells allocated (including re-consing by `++`).
    pub cons_allocs: u64,
}

/// Evaluate a `TE`-translated term into an actual cons list of pairs.
/// Values are evaluated strictly (the kernels benchmarked this way are
/// non-recursive; a read of the array being defined is an unbound-array
/// error).
///
/// # Errors
/// Any scalar-evaluation failure.
pub fn eval_core_list(
    term: &CoreList,
    params: &ConstEnv,
    arrays: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
    counters: &mut ListCounters,
) -> Result<ConsList, RuntimeError> {
    let mut scalars = Scalars::new();
    for (p, v) in params.iter() {
        scalars.push(p, v as f64);
    }
    go(term, &mut scalars, arrays, funcs, counters)
}

fn go(
    term: &CoreList,
    scalars: &mut Scalars,
    arrays: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
    counters: &mut ListCounters,
) -> Result<ConsList, RuntimeError> {
    match term {
        CoreList::Nil => Ok(ConsList::nil()),
        CoreList::Singleton(sv) => {
            let mut idx = Vec::with_capacity(sv.subs.len());
            for s in &sv.subs {
                let mut reader = MapReader::new(arrays);
                let v = eval_expr(s, scalars, &mut reader, funcs)?;
                idx.push(as_int("<pair>", v)?);
            }
            let mut reader = MapReader::new(arrays);
            let v = eval_expr(&sv.value, scalars, &mut reader, funcs)?;
            Ok(ConsList::cons(
                (idx, v),
                ConsList::nil(),
                &mut counters.cons_allocs,
            ))
        }
        CoreList::Append(a, b) => {
            let left = go(a, scalars, arrays, funcs, counters)?;
            let right = go(b, scalars, arrays, funcs, counters)?;
            Ok(left.append(right, &mut counters.cons_allocs))
        }
        CoreList::FlatMap { var, range, body } => {
            // flatmap f [lo..hi] = f lo ++ flatmap f [lo+step..hi]
            let mut reader = MapReader::new(arrays);
            let lo = eval_expr(&range.lo, scalars, &mut reader, funcs)? as i64;
            let hi = eval_expr(&range.hi, scalars, &mut reader, funcs)? as i64;
            let step = range.step;
            let mut chunks = Vec::new();
            let mut i = lo;
            loop {
                if (step > 0 && i > hi) || (step < 0 && i < hi) {
                    break;
                }
                scalars.push(var.clone(), i as f64);
                chunks.push(go(body, scalars, arrays, funcs, counters)?);
                scalars.pop();
                i += step;
            }
            let mut out = ConsList::nil();
            for c in chunks.into_iter().rev() {
                out = c.append(out, &mut counters.cons_allocs);
            }
            Ok(out)
        }
        CoreList::If { cond, body } => {
            let mut reader = MapReader::new(arrays);
            if eval_expr(cond, scalars, &mut reader, funcs)? != 0.0 {
                go(body, scalars, arrays, funcs, counters)
            } else {
                Ok(ConsList::nil())
            }
        }
        CoreList::Let { binds, body } => {
            let depth = scalars.depth();
            for (n, e) in binds {
                let mut reader = MapReader::new(arrays);
                let v = eval_expr(e, scalars, &mut reader, funcs)?;
                scalars.push(n.clone(), v);
            }
            let out = go(body, scalars, arrays, funcs, counters);
            scalars.truncate(depth);
            out
        }
    }
}

/// `array bounds pairs` as `foldl upd (empty array) pairs` (§3.1),
/// checking collisions.
///
/// # Errors
/// Out-of-bounds or colliding pairs.
pub fn array_from_list(
    name: &str,
    bounds: &[(i64, i64)],
    pairs: &ConsList,
) -> Result<ArrayBuf, RuntimeError> {
    let mut buf = ArrayBuf::new(bounds, f64::NAN);
    let mut seen = vec![false; buf.len()];
    let mut err = None;
    pairs.foldl((), |(), (idx, v)| {
        if err.is_some() {
            return;
        }
        match buf.offset(idx) {
            Some(off) => {
                if seen[off] {
                    err = Some(RuntimeError::WriteCollision {
                        array: name.to_string(),
                        index: idx.clone(),
                    });
                } else {
                    seen[off] = true;
                    buf.data_mut()[off] = *v;
                }
            }
            None => {
                err = Some(RuntimeError::OutOfBounds {
                    array: name.to_string(),
                    index: idx.clone(),
                    bounds: buf.bounds(),
                })
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::core::translate;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    fn run(src: &str, n: i64) -> (ConsList, ListCounters) {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let term = translate(&c);
        let env = ConstEnv::from_pairs([("n", n)]);
        let arrays = HashMap::new();
        let funcs = FuncTable::new();
        let mut counters = ListCounters::default();
        let list = eval_core_list(&term, &env, &arrays, &funcs, &mut counters).unwrap();
        (list, counters)
    }

    #[test]
    fn squares_via_te() {
        let (list, counters) = run("[ i := i*i | i <- [1..n] ]", 4);
        assert_eq!(list.len(), 4);
        let buf = array_from_list("a", &[(1, 4)], &list).unwrap();
        assert_eq!(buf.data(), &[1.0, 4.0, 9.0, 16.0]);
        // Naive TE conses each singleton then re-conses for appends.
        assert!(counters.cons_allocs >= 4, "{counters:?}");
    }

    #[test]
    fn append_recopies_left() {
        let (_, small) = run("[ i := 0 | i <- [1..n] ]", 4);
        let (_, appended) = run(
            "[ i := 0 | i <- [1..n] ] ++ [ i + n := 1 | i <- [1..n] ]",
            4,
        );
        // The appended version pays extra cons cells for the copy.
        assert!(
            appended.cons_allocs > 2 * small.cons_allocs,
            "{appended:?} vs {small:?}"
        );
    }

    #[test]
    fn order_is_list_order() {
        let (list, _) = run("[ 2 := 20 ] ++ [ 1 := 10 ]", 0);
        let v = list.to_vec();
        assert_eq!(v[0], (vec![2], 20.0));
        assert_eq!(v[1], (vec![1], 10.0));
    }

    #[test]
    fn guard_produces_nil() {
        let (list, _) = run("[ i := 1 | i <- [1..n], i > 2 ]", 4);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn collision_detected_by_foldl() {
        let (list, _) = run("[ 1 := 0 ] ++ [ 1 := 1 ]", 0);
        assert!(matches!(
            array_from_list("a", &[(1, 2)], &list),
            Err(RuntimeError::WriteCollision { .. })
        ));
    }

    #[test]
    fn foldl_accumulates_left() {
        let (list, _) = run("[ i := i | i <- [1..n] ]", 4);
        let sum = list.foldl(0.0, |acc, (_, v)| acc + v);
        assert_eq!(sum, 10.0);
    }
}
