//! Runtime errors for array evaluation.

use std::fmt;

/// An error raised while evaluating an array program.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A subscript fell outside the declared bounds.
    OutOfBounds {
        array: String,
        index: Vec<i64>,
        bounds: Vec<(i64, i64)>,
    },
    /// Two subscript/value pairs defined the same element of a
    /// monolithic array (§4 "write collisions").
    WriteCollision { array: String, index: Vec<i64> },
    /// An element with no definition was demanded (§4 "empties").
    UndefinedElement { array: String, index: Vec<i64> },
    /// A cell demanded itself while being evaluated: the value is ⊥
    /// (the "black hole" of lazy evaluation).
    Bottom { array: String, index: Vec<i64> },
    /// A scalar variable was unbound.
    UnboundVariable(String),
    /// An array name was unbound.
    UnboundArray(String),
    /// A subscript expression did not evaluate to an integer.
    NonIntegerSubscript { array: String, value: f64 },
    /// A call to an unregistered function.
    UnknownFunction(String),
    /// A generator bound did not evaluate to an integer.
    NonIntegerBound { var: String, value: f64 },
    /// The run's op budget (taken loop iterations + calls) ran out.
    FuelExhausted { limit: u64 },
    /// An allocation would exceed the configured byte budget.
    MemLimitExceeded {
        limit: u64,
        used: u64,
        requested: u64,
    },
    /// A parallel worker faulted and the region could not be safely
    /// re-executed sequentially.
    EngineFault { region: u64, detail: String },
    /// The process-wide resource pool (shared by every concurrent
    /// request) could not cover a reservation or draw.
    CeilingExhausted {
        /// `"fuel"` or `"memory"`.
        resource: &'static str,
        requested: u64,
        available: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfBounds {
                array,
                index,
                bounds,
            } => write!(
                f,
                "subscript {index:?} of array `{array}` outside bounds {bounds:?}"
            ),
            RuntimeError::WriteCollision { array, index } => {
                write!(f, "multiple definitions for element {index:?} of `{array}`")
            }
            RuntimeError::UndefinedElement { array, index } => {
                write!(f, "element {index:?} of `{array}` has no definition")
            }
            RuntimeError::Bottom { array, index } => {
                write!(f, "element {index:?} of `{array}` depends on itself (⊥)")
            }
            RuntimeError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            RuntimeError::UnboundArray(a) => write!(f, "unbound array `{a}`"),
            RuntimeError::NonIntegerSubscript { array, value } => {
                write!(f, "subscript {value} of `{array}` is not an integer")
            }
            RuntimeError::UnknownFunction(name) => {
                write!(f, "call to unknown function `{name}`")
            }
            RuntimeError::NonIntegerBound { var, value } => {
                write!(f, "generator `{var}` bound {value} is not an integer")
            }
            RuntimeError::FuelExhausted { limit } => {
                write!(f, "fuel exhausted: op budget of {limit} spent")
            }
            RuntimeError::MemLimitExceeded {
                limit,
                used,
                requested,
            } => write!(
                f,
                "memory limit of {limit} bytes exceeded: {used} bytes in use, {requested} more requested"
            ),
            RuntimeError::EngineFault { region, detail } => {
                write!(f, "engine fault in parallel region {region}: {detail}")
            }
            RuntimeError::CeilingExhausted {
                resource,
                requested,
                available,
            } => write!(
                f,
                "global {resource} ceiling exhausted: {requested} requested, {available} available"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = RuntimeError::WriteCollision {
            array: "a".into(),
            index: vec![3, 4],
        };
        assert!(e.to_string().contains("[3, 4]"));
        let b = RuntimeError::Bottom {
            array: "a".into(),
            index: vec![1],
        };
        assert!(b.to_string().contains('⊥'));
    }
}
