//! Flat array buffers and the scalar expression evaluator.
//!
//! [`ArrayBuf`] is the dense row-major `f64` storage every execution
//! strategy shares. [`eval_expr`] evaluates the language's scalar
//! expressions; array selections are routed through an [`ArrayReader`]
//! so the same evaluator serves strict buffers, the demand-driven
//! thunked runtime, and the loop-IR VM (each with its own read
//! semantics and instrumentation). Booleans are represented as
//! `0.0` / `1.0`.

use std::collections::HashMap;

use hac_lang::ast::{BinOp, Expr, UnOp};

use crate::error::RuntimeError;
use crate::governor::Meter;

/// A dense row-major array of `f64` with per-dimension inclusive
/// bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayBuf {
    lo: Vec<i64>,
    hi: Vec<i64>,
    data: Vec<f64>,
}

impl ArrayBuf {
    /// Allocate an array with the given `(lo, hi)` bounds, filled with
    /// `fill`.
    ///
    /// # Panics
    /// Panics if any dimension has `hi < lo - 1` (empty dimensions of
    /// size zero are allowed).
    pub fn new(bounds: &[(i64, i64)], fill: f64) -> ArrayBuf {
        let lo: Vec<i64> = bounds.iter().map(|b| b.0).collect();
        let hi: Vec<i64> = bounds.iter().map(|b| b.1).collect();
        let mut len = 1usize;
        for (l, h) in bounds {
            assert!(h - l >= -1, "invalid bounds ({l},{h})");
            len *= (h - l + 1).max(0) as usize;
        }
        ArrayBuf {
            lo,
            hi,
            data: vec![fill; len],
        }
    }

    /// The array's rank.
    pub fn rank(&self) -> usize {
        self.lo.len()
    }

    /// Element-storage bytes an allocation with `bounds` will occupy —
    /// the figure charged against a memory-metered run *before* the
    /// buffer is built. See [`ArrayBuf::footprint_bytes`] for the full
    /// metered footprint including the definedness bitmap.
    pub fn data_bytes(bounds: &[(i64, i64)]) -> u64 {
        bounds
            .iter()
            .map(|(l, h)| (h - l + 1).max(0) as u64)
            .product::<u64>()
            * 8
    }

    /// Metered footprint of an allocation: payload bytes plus, for a
    /// `checked` array, one byte per element for the definedness
    /// bitmap (`Vec<bool>`). Charged as a *single* amount before the
    /// buffer is built so the exhaustion payload (`used`/`requested`)
    /// is identical across engines. VM bookkeeping (name tables,
    /// scratch) stays uncounted: it is engine-specific and would make
    /// the accounting diverge between engines for the same program.
    pub fn footprint_bytes(bounds: &[(i64, i64)], checked: bool) -> u64 {
        let data = Self::data_bytes(bounds);
        data + if checked { data / 8 } else { 0 }
    }

    /// Per-dimension `(lo, hi)` bounds.
    pub fn bounds(&self) -> Vec<(i64, i64)> {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| (l, h))
            .collect()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for a zero-element array.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major offset of a multi-index, or `None` when out of bounds
    /// or of the wrong rank.
    pub fn offset(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.lo.len() {
            return None;
        }
        let mut off = 0usize;
        for (k, &i) in idx.iter().enumerate() {
            if i < self.lo[k] || i > self.hi[k] {
                return None;
            }
            let extent = (self.hi[k] - self.lo[k] + 1) as usize;
            off = off * extent + (i - self.lo[k]) as usize;
        }
        Some(off)
    }

    /// Read an element.
    ///
    /// # Errors
    /// [`RuntimeError::OutOfBounds`] when the index escapes the bounds.
    pub fn get(&self, name: &str, idx: &[i64]) -> Result<f64, RuntimeError> {
        match self.offset(idx) {
            Some(o) => Ok(self.data[o]),
            None => Err(RuntimeError::OutOfBounds {
                array: name.to_string(),
                index: idx.to_vec(),
                bounds: self.bounds(),
            }),
        }
    }

    /// Write an element.
    ///
    /// # Errors
    /// [`RuntimeError::OutOfBounds`] when the index escapes the bounds.
    pub fn set(&mut self, name: &str, idx: &[i64], v: f64) -> Result<(), RuntimeError> {
        match self.offset(idx) {
            Some(o) => {
                self.data[o] = v;
                Ok(())
            }
            None => Err(RuntimeError::OutOfBounds {
                array: name.to_string(),
                index: idx.to_vec(),
                bounds: self.bounds(),
            }),
        }
    }

    /// The raw data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data, row-major.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row-major element strides, one per dimension: the offset of
    /// `idx` is `Σ strides[k] * (idx[k] - lo[k])`. Compile-once
    /// consumers (the bytecode tape) fold these into fused linear
    /// accesses.
    pub fn strides(&self) -> Vec<i64> {
        let mut s = vec![1i64; self.lo.len()];
        for k in (0..self.lo.len()).rev().skip(1) {
            let extent = (self.hi[k + 1] - self.lo[k + 1] + 1).max(0);
            s[k] = s[k + 1] * extent;
        }
        s
    }

    /// Read by precomputed row-major offset (no bounds mapping).
    ///
    /// # Panics
    /// Panics if `off >= len()`; callers are expected to have proven
    /// the offset valid (e.g. by the tape compiler's interval check).
    pub fn linear(&self, off: usize) -> f64 {
        self.data[off]
    }

    /// Write by precomputed row-major offset (no bounds mapping).
    ///
    /// # Panics
    /// Panics if `off >= len()`.
    pub fn set_linear(&mut self, off: usize, v: f64) {
        self.data[off] = v;
    }
}

/// A lifetime-erased, thread-shareable view of a mutable slice, for
/// engines that proved their concurrent accesses disjoint *at compile
/// time* (the §10 parallel tape: chunks of a dependence-free loop pass
/// write to disjoint elements of the shared buffers).
///
/// This is the split-borrow primitive `std::slice::split_at_mut`
/// cannot express: the disjointness here is per *element access*, not
/// per contiguous range — iteration `i` of a parallel pass may write
/// `a[p(i)]` for an arbitrary injective subscript map `p`. Each worker
/// therefore rematerializes a full `&mut [T]` and the *caller*
/// guarantees no two workers touch the same element with a write.
pub struct SharedSlots<T> {
    ptr: *mut T,
    len: usize,
}

// Safety: moving/sharing the view between threads is safe because the
// view itself is just a pointer; all dereferencing goes through the
// `unsafe` [`SharedSlots::slice_mut`], whose contract covers aliasing.
unsafe impl<T: Send> Send for SharedSlots<T> {}
unsafe impl<T: Send> Sync for SharedSlots<T> {}

impl<T> SharedSlots<T> {
    /// Capture a view of `slice`. The borrow ends at the call; the
    /// caller is responsible for keeping the backing storage alive and
    /// unmoved for as long as the view is dereferenced.
    pub fn new(slice: &mut [T]) -> SharedSlots<T> {
        SharedSlots {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Rematerialize the mutable slice.
    ///
    /// # Safety
    /// The backing slice must still be live and unmoved, and for the
    /// lifetime of the returned borrow every concurrent holder must
    /// access *disjoint elements* (two readers of one element are fine;
    /// a writer excludes every other access to that element). The
    /// parallel tape discharges this with the §10 dependence proof:
    /// no carried dependence and no possible write collision means no
    /// two iterations of the partitioned pass touch a common element
    /// conflictingly.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

/// Resolves array selections during expression evaluation.
pub trait ArrayReader {
    /// Read element `idx` of `array`; demand-driven implementations may
    /// trigger further evaluation.
    fn read_element(&mut self, array: &str, idx: &[i64]) -> Result<f64, RuntimeError>;
}

/// An [`ArrayReader`] over a map of finished strict buffers.
pub struct MapReader<'a> {
    arrays: &'a HashMap<String, ArrayBuf>,
}

impl<'a> MapReader<'a> {
    /// Wrap a map of arrays.
    pub fn new(arrays: &'a HashMap<String, ArrayBuf>) -> MapReader<'a> {
        MapReader { arrays }
    }
}

impl ArrayReader for MapReader<'_> {
    fn read_element(&mut self, array: &str, idx: &[i64]) -> Result<f64, RuntimeError> {
        let buf = self
            .arrays
            .get(array)
            .ok_or_else(|| RuntimeError::UnboundArray(array.to_string()))?;
        buf.get(array, idx)
    }
}

/// An [`ArrayReader`] over a dense slice of buffers — the indexed
/// counterpart of the string-keyed [`MapReader`], for callers (like the
/// bytecode tape) that resolved names to positions at compile time.
pub struct IndexedReader<'a> {
    names: &'a [String],
    bufs: &'a [ArrayBuf],
}

impl<'a> IndexedReader<'a> {
    /// Wrap parallel name/buffer slices.
    ///
    /// # Panics
    /// Panics when the slices disagree in length.
    pub fn new(names: &'a [String], bufs: &'a [ArrayBuf]) -> IndexedReader<'a> {
        assert_eq!(names.len(), bufs.len());
        IndexedReader { names, bufs }
    }

    /// Read element `idx` of the buffer at `pos` directly.
    ///
    /// # Errors
    /// [`RuntimeError::OutOfBounds`] when the index escapes the bounds.
    pub fn read_at(&self, pos: usize, idx: &[i64]) -> Result<f64, RuntimeError> {
        self.bufs[pos].get(&self.names[pos], idx)
    }
}

impl ArrayReader for IndexedReader<'_> {
    fn read_element(&mut self, array: &str, idx: &[i64]) -> Result<f64, RuntimeError> {
        let pos = self
            .names
            .iter()
            .position(|n| n == array)
            .ok_or_else(|| RuntimeError::UnboundArray(array.to_string()))?;
        self.bufs[pos].get(array, idx)
    }
}

/// A lexically scoped stack of scalar bindings.
///
/// Bindings carry a precomputed name hash so [`Scalars::lookup`]
/// rejects non-matching entries with one integer compare instead of a
/// string compare per stack slot.
#[derive(Debug, Clone, Default)]
pub struct Scalars {
    stack: Vec<(u64, String, f64)>,
}

/// FNV-1a over the binding name — cheap, and collisions only cost a
/// confirming byte compare.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Scalars {
    /// An empty scope.
    pub fn new() -> Scalars {
        Scalars::default()
    }

    /// Push a binding; shadowing is by stack order.
    pub fn push(&mut self, name: impl Into<String>, v: f64) {
        let name = name.into();
        self.stack.push((name_hash(&name), name, v));
    }

    /// Pop the most recent binding.
    pub fn pop(&mut self) {
        self.stack.pop();
    }

    /// Look up the innermost binding of `name`.
    pub fn lookup(&self, name: &str) -> Option<f64> {
        let h = name_hash(name);
        self.stack
            .iter()
            .rev()
            .find(|(nh, n, _)| *nh == h && n == name)
            .map(|(_, _, v)| *v)
    }

    /// Current depth (for save/restore).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Truncate back to a saved depth.
    pub fn truncate(&mut self, depth: usize) {
        self.stack.truncate(depth);
    }

    /// Snapshot of all bindings (outermost first) — captured by thunks.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.stack.iter().map(|(_, n, v)| (n.clone(), *v)).collect()
    }
}

/// User-registered scalar functions, plus maths builtins.
pub type FuncTable = HashMap<String, fn(&[f64]) -> f64>;

/// The practical maximum array rank; subscript vectors up to this
/// length live on the stack instead of the heap.
const INLINE_RANK: usize = 8;

/// A subscript buffer that avoids heap allocation for every realistic
/// rank: inline storage for up to [`INLINE_RANK`] dimensions, spilling
/// to a `Vec` beyond that.
#[derive(Debug)]
pub enum IdxBuf {
    /// Stack-resident subscripts (the common case).
    Inline { buf: [i64; INLINE_RANK], len: usize },
    /// Heap spill for pathological ranks.
    Heap(Vec<i64>),
}

impl IdxBuf {
    /// An empty buffer (no heap allocation).
    pub fn new() -> IdxBuf {
        IdxBuf::Inline {
            buf: [0; INLINE_RANK],
            len: 0,
        }
    }

    /// Append one subscript, spilling to the heap past the inline cap.
    pub fn push(&mut self, v: i64) {
        match self {
            IdxBuf::Inline { buf, len } => {
                if *len < INLINE_RANK {
                    buf[*len] = v;
                    *len += 1;
                } else {
                    let mut heap = buf.to_vec();
                    heap.push(v);
                    *self = IdxBuf::Heap(heap);
                }
            }
            IdxBuf::Heap(heap) => heap.push(v),
        }
    }

    /// The collected subscripts.
    pub fn as_slice(&self) -> &[i64] {
        match self {
            IdxBuf::Inline { buf, len } => &buf[..*len],
            IdxBuf::Heap(heap) => heap,
        }
    }
}

impl Default for IdxBuf {
    fn default() -> IdxBuf {
        IdxBuf::new()
    }
}

/// Evaluate a scalar expression without resource metering.
///
/// # Errors
/// Propagates unbound names, bad subscripts, and array read failures.
pub fn eval_expr(
    e: &Expr,
    scalars: &mut Scalars,
    arrays: &mut dyn ArrayReader,
    funcs: &FuncTable,
) -> Result<f64, RuntimeError> {
    let mut meter = Meter::unlimited();
    eval_expr_metered(e, scalars, arrays, funcs, &mut meter)
}

/// Evaluate a scalar expression, charging one fuel unit per function
/// call (after the arguments, matching the bytecode tape's `Call` op).
///
/// # Errors
/// Propagates unbound names, bad subscripts, array read failures, and
/// [`RuntimeError::FuelExhausted`].
pub fn eval_expr_metered(
    e: &Expr,
    scalars: &mut Scalars,
    arrays: &mut dyn ArrayReader,
    funcs: &FuncTable,
    meter: &mut Meter,
) -> Result<f64, RuntimeError> {
    match e {
        Expr::Num(v) => Ok(*v),
        Expr::Int(v) => Ok(*v as f64),
        Expr::Var(name) => scalars
            .lookup(name)
            .ok_or_else(|| RuntimeError::UnboundVariable(name.clone())),
        Expr::Index { array, subs } => {
            let mut idx = IdxBuf::new();
            for s in subs {
                let v = eval_expr_metered(s, scalars, arrays, funcs, meter)?;
                idx.push(as_int(array, v)?);
            }
            arrays.read_element(array, idx.as_slice())
        }
        Expr::Binary { op, lhs, rhs } => {
            // && and || short-circuit.
            match op {
                BinOp::And => {
                    let l = eval_expr_metered(lhs, scalars, arrays, funcs, meter)?;
                    if l == 0.0 {
                        return Ok(0.0);
                    }
                    return eval_expr_metered(rhs, scalars, arrays, funcs, meter);
                }
                BinOp::Or => {
                    let l = eval_expr_metered(lhs, scalars, arrays, funcs, meter)?;
                    if l != 0.0 {
                        return Ok(1.0);
                    }
                    let r = eval_expr_metered(rhs, scalars, arrays, funcs, meter)?;
                    return Ok(if r != 0.0 { 1.0 } else { 0.0 });
                }
                _ => {}
            }
            let l = eval_expr_metered(lhs, scalars, arrays, funcs, meter)?;
            let r = eval_expr_metered(rhs, scalars, arrays, funcs, meter)?;
            Ok(apply_bin(*op, l, r))
        }
        Expr::Unary { op, expr } => {
            let v = eval_expr_metered(expr, scalars, arrays, funcs, meter)?;
            Ok(match op {
                UnOp::Neg => -v,
                UnOp::Not => {
                    if v == 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
                UnOp::Abs => v.abs(),
                UnOp::Sqrt => v.sqrt(),
                UnOp::Exp => v.exp(),
                UnOp::Log => v.ln(),
                UnOp::Sin => v.sin(),
                UnOp::Cos => v.cos(),
            })
        }
        Expr::If { cond, then, els } => {
            let c = eval_expr_metered(cond, scalars, arrays, funcs, meter)?;
            if c != 0.0 {
                eval_expr_metered(then, scalars, arrays, funcs, meter)
            } else {
                eval_expr_metered(els, scalars, arrays, funcs, meter)
            }
        }
        Expr::Let { binds, body } => {
            let depth = scalars.depth();
            for (name, rhs) in binds {
                let v = eval_expr_metered(rhs, scalars, arrays, funcs, meter)?;
                scalars.push(name.clone(), v);
            }
            let out = eval_expr_metered(body, scalars, arrays, funcs, meter);
            scalars.truncate(depth);
            out
        }
        Expr::Call { func, args } => {
            let f = builtin(func)
                .or_else(|| funcs.get(func).copied())
                .ok_or_else(|| RuntimeError::UnknownFunction(func.clone()))?;
            let mut vs = Vec::with_capacity(args.len());
            for a in args {
                vs.push(eval_expr_metered(a, scalars, arrays, funcs, meter)?);
            }
            meter.charge_fuel()?;
            Ok(f(&vs))
        }
    }
}

/// Apply a (non-short-circuiting) binary operator.
pub fn apply_bin(op: BinOp, l: f64, r: f64) -> f64 {
    let b = |x: bool| if x { 1.0 } else { 0.0 };
    match op {
        BinOp::Add => l + r,
        BinOp::Sub => l - r,
        BinOp::Mul => l * r,
        BinOp::Div => l / r,
        BinOp::Mod => (l as i64).rem_euclid(r as i64) as f64,
        BinOp::Lt => b(l < r),
        BinOp::Le => b(l <= r),
        BinOp::Gt => b(l > r),
        BinOp::Ge => b(l >= r),
        BinOp::Eq => b(l == r),
        BinOp::Ne => b(l != r),
        BinOp::And => b(l != 0.0 && r != 0.0),
        BinOp::Or => b(l != 0.0 || r != 0.0),
        BinOp::Min => l.min(r),
        BinOp::Max => l.max(r),
    }
}

/// The builtin maths function bound to `name`, if any. Builtins take
/// precedence over user registrations in [`FuncTable`].
pub fn builtin(name: &str) -> Option<fn(&[f64]) -> f64> {
    Some(match name {
        "sqrt" => |a: &[f64]| a[0].sqrt(),
        "abs" => |a: &[f64]| a[0].abs(),
        "exp" => |a: &[f64]| a[0].exp(),
        "log" => |a: &[f64]| a[0].ln(),
        "sin" => |a: &[f64]| a[0].sin(),
        "cos" => |a: &[f64]| a[0].cos(),
        "pow" => |a: &[f64]| a[0].powf(a[1]),
        "hypot" => |a: &[f64]| a[0].hypot(a[1]),
        "floor" => |a: &[f64]| a[0].floor(),
        _ => return None,
    })
}

/// Coerce an evaluated subscript to an integer.
///
/// # Errors
/// [`RuntimeError::NonIntegerSubscript`] if the value has a fractional
/// part.
pub fn as_int(array: &str, v: f64) -> Result<i64, RuntimeError> {
    if v.fract() == 0.0 && v.is_finite() {
        Ok(v as i64)
    } else {
        Err(RuntimeError::NonIntegerSubscript {
            array: array.to_string(),
            value: v,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::parser::parse_expr;

    fn eval(src: &str, arrays: &HashMap<String, ArrayBuf>, binds: &[(&str, f64)]) -> f64 {
        let e = parse_expr(src).unwrap();
        let mut sc = Scalars::new();
        for (n, v) in binds {
            sc.push(*n, *v);
        }
        let mut reader = MapReader::new(arrays);
        eval_expr(&e, &mut sc, &mut reader, &FuncTable::new()).unwrap()
    }

    #[test]
    fn arraybuf_roundtrip_2d() {
        let mut b = ArrayBuf::new(&[(1, 3), (1, 4)], 0.0);
        assert_eq!(b.len(), 12);
        b.set("a", &[2, 3], 7.5).unwrap();
        assert_eq!(b.get("a", &[2, 3]).unwrap(), 7.5);
        assert_eq!(b.get("a", &[1, 1]).unwrap(), 0.0);
        assert!(b.get("a", &[0, 1]).is_err());
        assert!(b.get("a", &[2, 5]).is_err());
        assert!(b.get("a", &[2]).is_err());
    }

    #[test]
    fn offsets_are_row_major() {
        let b = ArrayBuf::new(&[(0, 1), (0, 2)], 0.0);
        assert_eq!(b.offset(&[0, 0]), Some(0));
        assert_eq!(b.offset(&[0, 2]), Some(2));
        assert_eq!(b.offset(&[1, 0]), Some(3));
    }

    #[test]
    fn zero_size_dimension() {
        let b = ArrayBuf::new(&[(1, 0)], 0.0);
        assert!(b.is_empty());
        assert_eq!(b.offset(&[1]), None);
    }

    #[test]
    fn arithmetic_and_comparison() {
        let arrays = HashMap::new();
        assert_eq!(eval("1 + 2 * 3", &arrays, &[]), 7.0);
        assert_eq!(eval("7 mod 3", &arrays, &[]), 1.0);
        assert_eq!(eval("if 2 < 3 then 10 else 20", &arrays, &[]), 10.0);
        assert_eq!(eval("min(4, 9)", &arrays, &[]), 4.0);
        assert_eq!(eval("-i + 1", &arrays, &[("i", 5.0)]), -4.0);
    }

    #[test]
    fn array_selection() {
        let mut arrays = HashMap::new();
        let mut b = ArrayBuf::new(&[(1, 5)], 0.0);
        b.set("a", &[3], 42.0).unwrap();
        arrays.insert("a".to_string(), b);
        assert_eq!(eval("a!3 * 2", &arrays, &[]), 84.0);
        assert_eq!(eval("a!(i+1)", &arrays, &[("i", 2.0)]), 42.0);
    }

    #[test]
    fn let_scoping_and_shadowing() {
        let arrays = HashMap::new();
        assert_eq!(
            eval("let v = i + 1; w = v * 2 in v + w", &arrays, &[("i", 1.0)]),
            2.0 + 4.0
        );
        assert_eq!(eval("let i = i + 1 in i", &arrays, &[("i", 10.0)]), 11.0);
    }

    #[test]
    fn short_circuit() {
        // Unbound RHS variable must not be touched.
        let arrays = HashMap::new();
        assert_eq!(eval("0 > 1 && nope > 0", &arrays, &[]), 0.0);
        assert_eq!(eval("1 > 0 || nope > 0", &arrays, &[]), 1.0);
    }

    #[test]
    fn errors_propagate() {
        let e = parse_expr("a!(1)").unwrap();
        let arrays = HashMap::new();
        let mut reader = MapReader::new(&arrays);
        let r = eval_expr(&e, &mut Scalars::new(), &mut reader, &FuncTable::new());
        assert!(matches!(r, Err(RuntimeError::UnboundArray(_))));
        let e2 = parse_expr("x + 1").unwrap();
        let r2 = eval_expr(&e2, &mut Scalars::new(), &mut reader, &FuncTable::new());
        assert!(matches!(r2, Err(RuntimeError::UnboundVariable(_))));
    }

    #[test]
    fn fractional_subscript_rejected() {
        let mut arrays = HashMap::new();
        arrays.insert("a".to_string(), ArrayBuf::new(&[(1, 5)], 0.0));
        let e = parse_expr("a!(i)").unwrap();
        let mut sc = Scalars::new();
        sc.push("i", 1.5);
        let mut reader = MapReader::new(&arrays);
        let r = eval_expr(&e, &mut sc, &mut reader, &FuncTable::new());
        assert!(matches!(r, Err(RuntimeError::NonIntegerSubscript { .. })));
    }

    #[test]
    fn custom_functions() {
        let e = parse_expr("omega(2, 3)").unwrap();
        let mut funcs = FuncTable::new();
        funcs.insert("omega".to_string(), |a: &[f64]| a[0] * 10.0 + a[1]);
        let arrays = HashMap::new();
        let mut reader = MapReader::new(&arrays);
        let v = eval_expr(&e, &mut Scalars::new(), &mut reader, &funcs).unwrap();
        assert_eq!(v, 23.0);
    }
}
