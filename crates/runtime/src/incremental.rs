//! Incremental-array substrates (§9 and its related work [5, 11]):
//! the run-time schemes whose costs the paper's compile-time analysis
//! avoids.
//!
//! * [`CowArray`] — reference-counted copy-on-write: `update` copies
//!   the whole buffer when the array is shared, writes in place when it
//!   is not ("reference counting").
//! * [`TrailerArray`] — Baker-style version arrays ("array trailers"):
//!   updates are O(1) and old versions stay readable through difference
//!   nodes; reads of a stale version pay a reroot.
//! * [`bigupd_copy`] / [`bigupd_inplace`] — the two ends of the §9
//!   spectrum the benchmarks compare.
//!
//! All substrates count the copies they perform.

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::RuntimeError;
use crate::value::ArrayBuf;

/// Copy statistics shared by the incremental substrates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CopyCounters {
    /// Whole-buffer copies.
    pub array_copies: u64,
    /// Individual elements copied (`array_copies` × length plus any
    /// partial copies).
    pub elements_copied: u64,
}

/// A reference-counted copy-on-write functional array.
#[derive(Debug, Clone)]
pub struct CowArray {
    buf: Rc<ArrayBuf>,
}

impl CowArray {
    /// Wrap a buffer.
    pub fn new(buf: ArrayBuf) -> CowArray {
        CowArray { buf: Rc::new(buf) }
    }

    /// Read an element.
    ///
    /// # Errors
    /// [`RuntimeError::OutOfBounds`].
    pub fn get(&self, name: &str, idx: &[i64]) -> Result<f64, RuntimeError> {
        self.buf.get(name, idx)
    }

    /// Functional single-element update: in place when this is the only
    /// reference, full copy otherwise.
    ///
    /// # Errors
    /// [`RuntimeError::OutOfBounds`].
    pub fn update(
        mut self,
        name: &str,
        idx: &[i64],
        v: f64,
        counters: &mut CopyCounters,
    ) -> Result<CowArray, RuntimeError> {
        if Rc::get_mut(&mut self.buf).is_none() {
            counters.array_copies += 1;
            counters.elements_copied += self.buf.len() as u64;
            self.buf = Rc::new((*self.buf).clone());
        }
        Rc::get_mut(&mut self.buf)
            .expect("unshared after clone")
            .set(name, idx, v)?;
        Ok(self)
    }

    /// Number of live references (for tests).
    pub fn refcount(&self) -> usize {
        Rc::strong_count(&self.buf)
    }

    /// Extract the buffer (copying if shared).
    pub fn into_buf(self) -> ArrayBuf {
        Rc::try_unwrap(self.buf).unwrap_or_else(|rc| (*rc).clone())
    }
}

/// A persistent array implemented with trailers (difference nodes).
///
/// The newest version holds the flat buffer; older versions chain
/// `Diff { idx, old value }` nodes toward it. Reading a stale version
/// reroots the structure so the read version becomes the master —
/// classic Baker "shallow binding".
#[derive(Debug, Clone)]
pub struct TrailerArray {
    node: Rc<RefCell<VNode>>,
}

#[derive(Debug)]
enum VNode {
    Master(ArrayBuf),
    Diff {
        off: usize,
        val: f64,
        next: TrailerArray,
    },
}

/// Instrumentation for trailer arrays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrailerCounters {
    /// Difference nodes created by updates.
    pub diff_nodes: u64,
    /// Diff-node inversions performed by reroots.
    pub reroot_steps: u64,
}

impl TrailerArray {
    /// Wrap a buffer as the master version.
    pub fn new(buf: ArrayBuf) -> TrailerArray {
        TrailerArray {
            node: Rc::new(RefCell::new(VNode::Master(buf))),
        }
    }

    /// Functional update: O(1), returning the new version; the old
    /// version remains readable.
    ///
    /// # Errors
    /// [`RuntimeError::OutOfBounds`].
    pub fn update(
        &self,
        name: &str,
        idx: &[i64],
        v: f64,
        counters: &mut TrailerCounters,
    ) -> Result<TrailerArray, RuntimeError> {
        self.reroot(counters);
        let mut node = self.node.borrow_mut();
        let VNode::Master(buf) = &mut *node else {
            unreachable!("reroot leaves self as master")
        };
        let off = buf.offset(idx).ok_or_else(|| RuntimeError::OutOfBounds {
            array: name.to_string(),
            index: idx.to_vec(),
            bounds: buf.bounds(),
        })?;
        let old = buf.data()[off];
        buf.data_mut()[off] = v;
        // Move the master into the new version; self becomes a diff.
        let master = match std::mem::replace(
            &mut *node,
            VNode::Diff {
                off,
                val: old,
                next: TrailerArray {
                    node: Rc::new(RefCell::new(VNode::Master(ArrayBuf::new(&[], 0.0)))),
                },
            },
        ) {
            VNode::Master(b) => b,
            VNode::Diff { .. } => unreachable!(),
        };
        let new = TrailerArray {
            node: Rc::new(RefCell::new(VNode::Master(master))),
        };
        *node = VNode::Diff {
            off,
            val: old,
            next: new.clone(),
        };
        counters.diff_nodes += 1;
        drop(node);
        Ok(new)
    }

    /// Read an element; reroots first so repeated reads of the same
    /// version are O(1) amortized.
    ///
    /// # Errors
    /// [`RuntimeError::OutOfBounds`].
    pub fn get(
        &self,
        name: &str,
        idx: &[i64],
        counters: &mut TrailerCounters,
    ) -> Result<f64, RuntimeError> {
        self.reroot(counters);
        let node = self.node.borrow();
        let VNode::Master(buf) = &*node else {
            unreachable!("reroot leaves self as master")
        };
        buf.get(name, idx)
    }

    /// Make `self` the master by inverting the diff chain.
    fn reroot(&self, counters: &mut TrailerCounters) {
        // Collect the chain from self to the current master.
        let mut chain: Vec<TrailerArray> = vec![self.clone()];
        loop {
            let last = chain.last().expect("nonempty").clone();
            let next = {
                let node = last.node.borrow();
                match &*node {
                    VNode::Master(_) => None,
                    VNode::Diff { next, .. } => Some(next.clone()),
                }
            };
            match next {
                Some(n) => chain.push(n),
                None => break,
            }
        }
        // Invert from master back toward self.
        for w in (0..chain.len() - 1).rev() {
            let cur = &chain[w]; // a Diff pointing at chain[w+1]
            let nxt = &chain[w + 1]; // currently the master
            let (off, val) = {
                let node = cur.node.borrow();
                match &*node {
                    VNode::Diff { off, val, .. } => (*off, *val),
                    VNode::Master(_) => unreachable!("chain interior must be a diff"),
                }
            };
            let mut master = match std::mem::replace(
                &mut *nxt.node.borrow_mut(),
                VNode::Diff {
                    off,
                    val: 0.0,
                    next: cur.clone(),
                },
            ) {
                VNode::Master(b) => b,
                VNode::Diff { .. } => unreachable!("next must be master"),
            };
            let new_old = master.data()[off];
            master.data_mut()[off] = val;
            *nxt.node.borrow_mut() = VNode::Diff {
                off,
                val: new_old,
                next: cur.clone(),
            };
            *cur.node.borrow_mut() = VNode::Master(master);
            counters.reroot_steps += 1;
        }
    }
}

/// Apply a batch of updates by copying the whole array first (the naive
/// §9 baseline).
pub fn bigupd_copy(
    base: &ArrayBuf,
    updates: impl IntoIterator<Item = (Vec<i64>, f64)>,
    counters: &mut CopyCounters,
) -> Result<ArrayBuf, RuntimeError> {
    counters.array_copies += 1;
    counters.elements_copied += base.len() as u64;
    let mut out = base.clone();
    for (idx, v) in updates {
        out.set("<bigupd>", &idx, v)?;
    }
    Ok(out)
}

/// Apply a batch of updates in place (legal only when the caller has
/// proven single-threadedness — that is what §9's analysis is for).
pub fn bigupd_inplace(
    base: &mut ArrayBuf,
    updates: impl IntoIterator<Item = (Vec<i64>, f64)>,
) -> Result<(), RuntimeError> {
    for (idx, v) in updates {
        base.set("<bigupd>", &idx, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(n: i64) -> ArrayBuf {
        let mut b = ArrayBuf::new(&[(1, n)], 0.0);
        for i in 1..=n {
            b.set("a", &[i], i as f64).unwrap();
        }
        b
    }

    #[test]
    fn cow_updates_in_place_when_unshared() {
        let mut counters = CopyCounters::default();
        let a = CowArray::new(iota(4));
        let a = a.update("a", &[2], 20.0, &mut counters).unwrap();
        assert_eq!(a.get("a", &[2]).unwrap(), 20.0);
        assert_eq!(counters.array_copies, 0, "unshared update must not copy");
    }

    #[test]
    fn cow_copies_when_shared() {
        let mut counters = CopyCounters::default();
        let a = CowArray::new(iota(4));
        let b = a.clone();
        let c = a.update("a", &[2], 20.0, &mut counters).unwrap();
        assert_eq!(counters.array_copies, 1);
        assert_eq!(counters.elements_copied, 4);
        assert_eq!(b.get("a", &[2]).unwrap(), 2.0, "old version unchanged");
        assert_eq!(c.get("a", &[2]).unwrap(), 20.0);
    }

    #[test]
    fn trailer_versions_coexist() {
        let mut tc = TrailerCounters::default();
        let v0 = TrailerArray::new(iota(3));
        let v1 = v0.update("a", &[1], 10.0, &mut tc).unwrap();
        let v2 = v1.update("a", &[2], 20.0, &mut tc).unwrap();
        assert_eq!(v2.get("a", &[1], &mut tc).unwrap(), 10.0);
        assert_eq!(v2.get("a", &[2], &mut tc).unwrap(), 20.0);
        assert_eq!(v0.get("a", &[1], &mut tc).unwrap(), 1.0);
        assert_eq!(v0.get("a", &[2], &mut tc).unwrap(), 2.0);
        // Reading v2 again after touching v0 must reroot back.
        assert_eq!(v2.get("a", &[2], &mut tc).unwrap(), 20.0);
        assert_eq!(v1.get("a", &[1], &mut tc).unwrap(), 10.0);
        assert_eq!(v1.get("a", &[2], &mut tc).unwrap(), 2.0);
        assert_eq!(tc.diff_nodes, 2);
        assert!(tc.reroot_steps > 0);
    }

    #[test]
    fn trailer_single_threaded_is_cheap() {
        // Threaded use (always newest version) never reroots.
        let mut tc = TrailerCounters::default();
        let mut v = TrailerArray::new(iota(8));
        for i in 1..=8 {
            v = v.update("a", &[i], 0.0, &mut tc).unwrap();
        }
        assert_eq!(tc.reroot_steps, 0);
        assert_eq!(tc.diff_nodes, 8);
    }

    #[test]
    fn bigupd_copy_vs_inplace_agree() {
        let base = iota(5);
        let updates = vec![(vec![1], 9.0), (vec![4], 7.0)];
        let mut counters = CopyCounters::default();
        let copied = bigupd_copy(&base, updates.clone(), &mut counters).unwrap();
        let mut inplace = base.clone();
        bigupd_inplace(&mut inplace, updates).unwrap();
        assert_eq!(copied, inplace);
        assert_eq!(counters.array_copies, 1);
    }

    #[test]
    fn out_of_bounds_update_fails() {
        let mut counters = CopyCounters::default();
        let a = CowArray::new(iota(3));
        assert!(a.update("a", &[9], 0.0, &mut counters).is_err());
    }
}
