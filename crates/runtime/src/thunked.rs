//! The thunked (non-strict) reference evaluator — the baseline the
//! paper's analysis eliminates.
//!
//! Every element of a [`ThunkedArray`] is represented as a *thunk*: the
//! clause's value expression plus a snapshot of the enclosing scalar
//! bindings, evaluated on demand and memoized. Recursive references
//! demand other cells transitively; a cell demanded while it is being
//! evaluated is ⊥ (black-holing detects the cycle). `force_elements`
//! implements the paper's §2 strict-context operator.
//!
//! Costs are instrumented ([`ThunkedCounters`]): thunk allocations,
//! demands, and memo hits — the quantities the thunkless pipeline is
//! benchmarked against (experiments E3/E4).
//!
//! Limitations (documented, checked at runtime): subscript expressions,
//! guard conditions, generator bounds, and comprehension-path `let`
//! bindings are evaluated eagerly while the subscript/value pairs are
//! collected, so they must not reference the array being defined; only
//! element *values* are non-strict.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use hac_lang::ast::{Comp, Expr};
use hac_lang::env::ConstEnv;

use crate::error::RuntimeError;
use crate::governor::Meter;
use crate::value::{as_int, eval_expr, ArrayBuf, ArrayReader, FuncTable, MapReader, Scalars};

/// Metered bytes for one thunk's spine: the cell discriminant plus the
/// shared value-expression handle (a fixed overhead) and the captured
/// scalar snapshot (name handle + value per binding). A *model*, not a
/// `size_of` — the figure is fixed so the charge sequence is
/// deterministic and identical wherever thunks are built (single
/// arrays and `letrec*` groups alike).
pub fn thunk_spine_bytes(captured_scalars: usize) -> u64 {
    32 + 16 * captured_scalars as u64
}

/// Instrumentation for the thunked strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThunkedCounters {
    /// Thunks allocated while collecting subscript/value pairs.
    pub thunks_allocated: u64,
    /// Cell demands (including recursive ones).
    pub demands: u64,
    /// Demands answered from the memoized value.
    pub memo_hits: u64,
}

#[derive(Debug, Clone)]
enum Cell {
    Empty,
    Thunk(usize),
    Evaluating,
    Value(f64),
}

#[derive(Debug)]
struct Thunk {
    value: Rc<Expr>,
    scalars: Vec<(String, f64)>,
}

/// A non-strict monolithic array whose elements evaluate on demand.
pub struct ThunkedArray<'a> {
    // Fields below; Debug is implemented by hand (the environment
    // references are not themselves Debug-relevant).
    name: String,
    bounds: Vec<(i64, i64)>,
    shape: ArrayBuf,
    cells: RefCell<Vec<Cell>>,
    thunks: Vec<Thunk>,
    others: &'a HashMap<String, ArrayBuf>,
    funcs: &'a FuncTable,
    counters: RefCell<ThunkedCounters>,
    /// Shared resource budget: one fuel unit per forced thunk,
    /// spine bytes per allocated thunk. `None` = unmetered.
    meter: Option<&'a RefCell<Meter>>,
}

impl std::fmt::Debug for ThunkedArray<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThunkedArray")
            .field("name", &self.name)
            .field("bounds", &self.bounds)
            .field("thunks", &self.thunks.len())
            .field("counters", &self.counters.borrow())
            .finish()
    }
}

impl<'a> ThunkedArray<'a> {
    /// Collect the subscript/value pairs of `comp` into thunked cells.
    ///
    /// # Errors
    /// Reports write collisions, out-of-bounds definitions, and eager
    /// evaluation failures (e.g. a subscript referencing the array
    /// itself).
    pub fn build(
        name: &str,
        bounds: &[(i64, i64)],
        comp: &Comp,
        params: &ConstEnv,
        others: &'a HashMap<String, ArrayBuf>,
        funcs: &'a FuncTable,
    ) -> Result<ThunkedArray<'a>, RuntimeError> {
        ThunkedArray::build_metered(name, bounds, comp, params, others, funcs, None)
    }

    /// [`ThunkedArray::build`] charging a shared [`Meter`]: spine bytes
    /// per allocated thunk during collection, one fuel unit per thunk
    /// forced later (the non-strict analog of the compiled engines'
    /// per-iteration charge).
    ///
    /// # Errors
    /// As [`ThunkedArray::build`], plus budget exhaustion.
    #[allow(clippy::too_many_arguments)]
    pub fn build_metered(
        name: &str,
        bounds: &[(i64, i64)],
        comp: &Comp,
        params: &ConstEnv,
        others: &'a HashMap<String, ArrayBuf>,
        funcs: &'a FuncTable,
        meter: Option<&'a RefCell<Meter>>,
    ) -> Result<ThunkedArray<'a>, RuntimeError> {
        let shape = ArrayBuf::new(bounds, 0.0);
        let mut arr = ThunkedArray {
            name: name.to_string(),
            bounds: bounds.to_vec(),
            cells: RefCell::new(vec![Cell::Empty; shape.len()]),
            shape,
            thunks: Vec::new(),
            others,
            funcs,
            counters: RefCell::new(ThunkedCounters::default()),
            meter,
        };
        let mut scalars = Scalars::new();
        for (p, v) in params.iter() {
            scalars.push(p, v as f64);
        }
        // Pre-share each clause's value expression.
        let mut values: HashMap<u32, Rc<Expr>> = HashMap::new();
        comp.walk(&mut |c| {
            if let Comp::Clause(sv) = c {
                values.insert(sv.id.0, Rc::new(sv.value.clone()));
            }
        });
        arr.collect(comp, &mut scalars, &values)?;
        Ok(arr)
    }

    fn collect(
        &mut self,
        comp: &Comp,
        scalars: &mut Scalars,
        values: &HashMap<u32, Rc<Expr>>,
    ) -> Result<(), RuntimeError> {
        match comp {
            Comp::Append(cs) => {
                for c in cs {
                    self.collect(c, scalars, values)?;
                }
                Ok(())
            }
            Comp::Gen {
                var, range, body, ..
            } => {
                let lo = self.eval_eager(&range.lo, scalars, var)?;
                let hi = self.eval_eager(&range.hi, scalars, var)?;
                let step = range.step;
                let mut i = lo;
                loop {
                    if (step > 0 && i > hi) || (step < 0 && i < hi) {
                        break;
                    }
                    scalars.push(var.clone(), i as f64);
                    self.collect(body, scalars, values)?;
                    scalars.pop();
                    i += step;
                }
                Ok(())
            }
            Comp::Guard { cond, body } => {
                let mut reader = MapReader::new(self.others);
                let c = eval_expr(cond, scalars, &mut reader, self.funcs)?;
                if c != 0.0 {
                    self.collect(body, scalars, values)?;
                }
                Ok(())
            }
            Comp::Let { binds, body } => {
                let depth = scalars.depth();
                for (n, e) in binds {
                    let mut reader = MapReader::new(self.others);
                    let v = eval_expr(e, scalars, &mut reader, self.funcs)?;
                    scalars.push(n.clone(), v);
                }
                self.collect(body, scalars, values)?;
                scalars.truncate(depth);
                Ok(())
            }
            Comp::Clause(sv) => {
                let mut idx = Vec::with_capacity(sv.subs.len());
                for s in &sv.subs {
                    let mut reader = MapReader::new(self.others);
                    let v = eval_expr(s, scalars, &mut reader, self.funcs)?;
                    idx.push(as_int(&self.name, v)?);
                }
                let off = self.shape.offset(&idx).ok_or(RuntimeError::OutOfBounds {
                    array: self.name.clone(),
                    index: idx.clone(),
                    bounds: self.bounds.clone(),
                })?;
                let mut cells = self.cells.borrow_mut();
                if !matches!(cells[off], Cell::Empty) {
                    return Err(RuntimeError::WriteCollision {
                        array: self.name.clone(),
                        index: idx,
                    });
                }
                let snap = scalars.snapshot();
                if let Some(m) = self.meter {
                    m.borrow_mut().charge_mem(thunk_spine_bytes(snap.len()))?;
                }
                let tid = self.thunks.len();
                self.thunks.push(Thunk {
                    value: Rc::clone(&values[&sv.id.0]),
                    scalars: snap,
                });
                self.counters.borrow_mut().thunks_allocated += 1;
                cells[off] = Cell::Thunk(tid);
                Ok(())
            }
        }
    }

    fn eval_eager(&self, e: &Expr, scalars: &mut Scalars, var: &str) -> Result<i64, RuntimeError> {
        let mut reader = MapReader::new(self.others);
        let v = eval_expr(e, scalars, &mut reader, self.funcs)?;
        if v.fract() == 0.0 && v.is_finite() {
            Ok(v as i64)
        } else {
            Err(RuntimeError::NonIntegerBound {
                var: var.to_string(),
                value: v,
            })
        }
    }

    /// The array's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Demand one element (`a!idx`), evaluating its thunk if necessary.
    ///
    /// # Errors
    /// ⊥ cycles, undefined elements, and evaluation failures.
    pub fn demand(&self, idx: &[i64]) -> Result<f64, RuntimeError> {
        let off = self.shape.offset(idx).ok_or(RuntimeError::OutOfBounds {
            array: self.name.clone(),
            index: idx.to_vec(),
            bounds: self.bounds.clone(),
        })?;
        self.demand_off(off, idx)
    }

    fn demand_off(&self, off: usize, idx: &[i64]) -> Result<f64, RuntimeError> {
        self.counters.borrow_mut().demands += 1;
        let state = self.cells.borrow()[off].clone();
        match state {
            Cell::Value(v) => {
                self.counters.borrow_mut().memo_hits += 1;
                Ok(v)
            }
            Cell::Evaluating => Err(RuntimeError::Bottom {
                array: self.name.clone(),
                index: idx.to_vec(),
            }),
            Cell::Empty => Err(RuntimeError::UndefinedElement {
                array: self.name.clone(),
                index: idx.to_vec(),
            }),
            Cell::Thunk(tid) => {
                // One fuel unit per *forced* thunk — the demand-driven
                // counterpart of a taken loop iteration.
                if let Some(m) = self.meter {
                    m.borrow_mut().charge_fuel()?;
                }
                self.cells.borrow_mut()[off] = Cell::Evaluating;
                let thunk = &self.thunks[tid];
                let mut scalars = Scalars::new();
                for (n, v) in &thunk.scalars {
                    scalars.push(n.clone(), *v);
                }
                let expr = Rc::clone(&thunk.value);
                let mut reader = SelfReader { array: self };
                let v = eval_expr(&expr, &mut scalars, &mut reader, self.funcs)?;
                self.cells.borrow_mut()[off] = Cell::Value(v);
                Ok(v)
            }
        }
    }

    /// Force every element (the paper's `force-elements`, §2): returns
    /// an error if *any* element is ⊥ or undefined — exactly the
    /// strictified semantics.
    ///
    /// # Errors
    /// The first ⊥ / undefined / failing element, in row-major order.
    pub fn force_elements(&self) -> Result<(), RuntimeError> {
        let n = self.shape.len();
        for off in 0..n {
            let idx = self.unravel(off);
            self.demand_off(off, &idx)?;
        }
        Ok(())
    }

    fn unravel(&self, mut off: usize) -> Vec<i64> {
        let mut idx = vec![0i64; self.bounds.len()];
        for k in (0..self.bounds.len()).rev() {
            let (lo, hi) = self.bounds[k];
            let extent = (hi - lo + 1).max(0) as usize;
            idx[k] = lo + (off % extent) as i64;
            off /= extent;
        }
        idx
    }

    /// Force everything and extract the strict buffer.
    ///
    /// # Errors
    /// As [`ThunkedArray::force_elements`].
    pub fn into_strict(self) -> Result<ArrayBuf, RuntimeError> {
        self.force_elements()?;
        let mut buf = self.shape;
        let cells = self.cells.into_inner();
        for (off, c) in cells.into_iter().enumerate() {
            match c {
                Cell::Value(v) => buf.data_mut()[off] = v,
                _ => unreachable!("force_elements evaluated every cell"),
            }
        }
        Ok(buf)
    }

    /// Instrumentation snapshot.
    pub fn counters(&self) -> ThunkedCounters {
        *self.counters.borrow()
    }
}

/// Routes reads of the array being defined back into `demand`; other
/// arrays come from the finished environment.
struct SelfReader<'r, 'a> {
    array: &'r ThunkedArray<'a>,
}

impl ArrayReader for SelfReader<'_, '_> {
    fn read_element(&mut self, array: &str, idx: &[i64]) -> Result<f64, RuntimeError> {
        if array == self.array.name {
            self.array.demand(idx)
        } else {
            let buf = self
                .array
                .others
                .get(array)
                .ok_or_else(|| RuntimeError::UnboundArray(array.to_string()))?;
            buf.get(array, idx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    fn build<'a>(
        src: &str,
        n: i64,
        bounds: &[(i64, i64)],
        others: &'a HashMap<String, ArrayBuf>,
        funcs: &'a FuncTable,
    ) -> Result<ThunkedArray<'a>, RuntimeError> {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let env = ConstEnv::from_pairs([("n", n)]);
        ThunkedArray::build("a", bounds, &c, &env, others, funcs)
    }

    #[test]
    fn squares_vector() {
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let a = build("[ i := i*i | i <- [1..n] ]", 5, &[(1, 5)], &others, &funcs).unwrap();
        let buf = a.into_strict().unwrap();
        assert_eq!(buf.data(), &[1.0, 4.0, 9.0, 16.0, 25.0]);
    }

    #[test]
    fn recursive_fibonacci_like() {
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let a = build(
            "[ 1 := 1 ] ++ [ 2 := 1 ] ++ [ i := a!(i-1) + a!(i-2) | i <- [3..n] ]",
            8,
            &[(1, 8)],
            &others,
            &funcs,
        )
        .unwrap();
        let buf = a.into_strict().unwrap();
        assert_eq!(buf.data(), &[1.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0]);
    }

    #[test]
    fn order_irrelevance() {
        // The recurrence written "backwards" in the pair list still
        // evaluates: that is the point of non-strict arrays (§3).
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let a = build(
            "[ i := a!(i-1) * 2 | i <- [2..n] ] ++ [ 1 := 1 ]",
            6,
            &[(1, 6)],
            &others,
            &funcs,
        )
        .unwrap();
        let buf = a.into_strict().unwrap();
        assert_eq!(buf.data(), &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]);
    }

    #[test]
    fn wavefront_2d() {
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let src = "[ (1,j) := 1 | j <- [1..n] ] ++ [ (i,1) := 1 | i <- [2..n] ] ++ \
                   [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1) | i <- [2..n], j <- [2..n] ]";
        let a = build(src, 4, &[(1, 4), (1, 4)], &others, &funcs).unwrap();
        let buf = a.into_strict().unwrap();
        // Row 2: 1, 3, 5, 7; row 3: 1, 5, 13, 25 (Delannoy numbers).
        assert_eq!(buf.get("a", &[2, 2]).unwrap(), 3.0);
        assert_eq!(buf.get("a", &[3, 3]).unwrap(), 13.0);
        assert_eq!(buf.get("a", &[4, 4]).unwrap(), 63.0);
    }

    #[test]
    fn bottom_cycle_detected() {
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let a = build(
            "[ 1 := a!2 ] ++ [ 2 := a!1 ]",
            0,
            &[(1, 2)],
            &others,
            &funcs,
        )
        .unwrap();
        let err = a.force_elements().unwrap_err();
        assert!(matches!(err, RuntimeError::Bottom { .. }));
    }

    #[test]
    fn collision_and_empty_detected() {
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let err = build(
            "[ i := 0 | i <- [1..n] ] ++ [ 3 := 1 ]",
            5,
            &[(1, 5)],
            &others,
            &funcs,
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::WriteCollision { .. }));

        let a = build("[ i := 0 | i <- [2..n] ]", 5, &[(1, 5)], &others, &funcs).unwrap();
        let err = a.force_elements().unwrap_err();
        assert!(matches!(err, RuntimeError::UndefinedElement { .. }));
    }

    #[test]
    fn guards_filter_instances() {
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let a = build(
            "[ i := 1 | i <- [1..n], i mod 2 == 1 ] ++ [ i := 2 | i <- [1..n], i mod 2 == 0 ]",
            4,
            &[(1, 4)],
            &others,
            &funcs,
        )
        .unwrap();
        let buf = a.into_strict().unwrap();
        assert_eq!(buf.data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn reads_other_arrays() {
        let mut others = HashMap::new();
        let mut u = ArrayBuf::new(&[(1, 3)], 0.0);
        for i in 1..=3 {
            u.set("u", &[i], (i * 10) as f64).unwrap();
        }
        others.insert("u".to_string(), u);
        let funcs = FuncTable::new();
        let a = build(
            "[ i := u!i + 1 | i <- [1..3] ]",
            0,
            &[(1, 3)],
            &others,
            &funcs,
        )
        .unwrap();
        let buf = a.into_strict().unwrap();
        assert_eq!(buf.data(), &[11.0, 21.0, 31.0]);
    }

    #[test]
    fn counters_track_costs() {
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let a = build(
            "[ 1 := 1 ] ++ [ i := a!(i-1) + 1 | i <- [2..n] ]",
            10,
            &[(1, 10)],
            &others,
            &funcs,
        )
        .unwrap();
        a.force_elements().unwrap();
        let c = a.counters();
        assert_eq!(c.thunks_allocated, 10);
        // Each cell demanded at least once; recursive demands memo-hit.
        assert!(c.demands >= 10);
        assert!(c.memo_hits > 0);
    }

    #[test]
    fn out_of_bounds_definition_rejected() {
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let err = build(
            "[ i + 3 := 0 | i <- [1..n] ]",
            5,
            &[(1, 5)],
            &others,
            &funcs,
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::OutOfBounds { .. }));
    }

    #[test]
    fn backward_generator() {
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let a = build("[ i := i | i <- [5,4..1] ]", 0, &[(1, 5)], &others, &funcs).unwrap();
        let buf = a.into_strict().unwrap();
        assert_eq!(buf.data(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn stepped_generator_leaves_empties() {
        let others = HashMap::new();
        let funcs = FuncTable::new();
        let a = build("[ i := 0 | i <- [1,3..n] ]", 5, &[(1, 5)], &others, &funcs).unwrap();
        assert!(a.demand(&[1]).is_ok());
        assert!(matches!(
            a.demand(&[2]),
            Err(RuntimeError::UndefinedElement { .. })
        ));
    }
}
