//! Scalar reductions over comprehensions (§3.1).
//!
//! "The vast majority of scientific applications can be expressed as
//! foldl of some operator over a list ... we can always transform this
//! pattern into the application of a specialized first-order
//! tail-recursive function that creates no CONS cells — no intermediate
//! lists — whatsoever." [`eval_reduce`] is that DO-loop evaluation: the
//! comprehension's elements are folded into a scalar accumulator with
//! no intermediate list.

use std::collections::HashMap;

use hac_lang::ast::{BinOp, Comp, Expr};
use hac_lang::env::ConstEnv;

use crate::error::RuntimeError;
use crate::value::{apply_bin, eval_expr, ArrayBuf, FuncTable, MapReader, Scalars};

/// Fold a scalar comprehension (clauses with empty subscripts) with
/// `op`, starting from `init`, in list order (left fold — required for
/// non-commutative operators).
///
/// # Errors
/// Any evaluation failure.
#[allow(clippy::too_many_arguments)]
pub fn eval_reduce(
    op: BinOp,
    init: &Expr,
    comp: &Comp,
    params: &ConstEnv,
    extra_scalars: &[(String, f64)],
    arrays: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
) -> Result<f64, RuntimeError> {
    let mut scalars = Scalars::new();
    for (p, v) in params.iter() {
        scalars.push(p, v as f64);
    }
    for (n, v) in extra_scalars {
        scalars.push(n.clone(), *v);
    }
    let mut reader = MapReader::new(arrays);
    let mut acc = eval_expr(init, &mut scalars, &mut reader, funcs)?;
    fold(op, comp, &mut acc, &mut scalars, arrays, funcs)?;
    Ok(acc)
}

fn fold(
    op: BinOp,
    comp: &Comp,
    acc: &mut f64,
    scalars: &mut Scalars,
    arrays: &HashMap<String, ArrayBuf>,
    funcs: &FuncTable,
) -> Result<(), RuntimeError> {
    match comp {
        Comp::Append(cs) => {
            for c in cs {
                fold(op, c, acc, scalars, arrays, funcs)?;
            }
            Ok(())
        }
        Comp::Gen {
            var, range, body, ..
        } => {
            let mut reader = MapReader::new(arrays);
            let lo = eval_expr(&range.lo, scalars, &mut reader, funcs)? as i64;
            let hi = eval_expr(&range.hi, scalars, &mut reader, funcs)? as i64;
            let step = range.step;
            let mut i = lo;
            loop {
                if (step > 0 && i > hi) || (step < 0 && i < hi) {
                    break;
                }
                scalars.push(var.clone(), i as f64);
                fold(op, body, acc, scalars, arrays, funcs)?;
                scalars.pop();
                i += step;
            }
            Ok(())
        }
        Comp::Guard { cond, body } => {
            let mut reader = MapReader::new(arrays);
            if eval_expr(cond, scalars, &mut reader, funcs)? != 0.0 {
                fold(op, body, acc, scalars, arrays, funcs)?;
            }
            Ok(())
        }
        Comp::Let { binds, body } => {
            let depth = scalars.depth();
            for (n, e) in binds {
                let mut reader = MapReader::new(arrays);
                let v = eval_expr(e, scalars, &mut reader, funcs)?;
                scalars.push(n.clone(), v);
            }
            fold(op, body, acc, scalars, arrays, funcs)?;
            scalars.truncate(depth);
            Ok(())
        }
        Comp::Clause(sv) => {
            debug_assert!(sv.subs.is_empty(), "scalar comprehension clause");
            let mut reader = MapReader::new(arrays);
            let v = eval_expr(&sv.value, scalars, &mut reader, funcs)?;
            *acc = apply_bin(op, *acc, v);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_program;

    fn reduce_of(src_prog: &str, n: i64, arrays: &HashMap<String, ArrayBuf>) -> f64 {
        let p = parse_program(src_prog).unwrap();
        let (op, init, mut comp) = match &p.bindings[p.bindings.len() - 1] {
            hac_lang::ast::Binding::Reduce { op, init, comp, .. } => {
                (*op, init.clone(), comp.clone())
            }
            other => panic!("{other:?}"),
        };
        number_clauses(&mut comp);
        let env = ConstEnv::from_pairs([("n", n)]);
        eval_reduce(op, &init, &comp, &env, &[], arrays, &FuncTable::new()).unwrap()
    }

    #[test]
    fn sum_of_squares() {
        let v = reduce_of(
            "param n;\nlet s = sum [ i * i | i <- [1..n] ];\n",
            4,
            &HashMap::new(),
        );
        assert_eq!(v, 30.0);
    }

    #[test]
    fn dot_product() {
        // The paper's §3.1 example: sum [ a!k * b!k | k <- [1..n] ].
        let mut arrays = HashMap::new();
        let mut a = ArrayBuf::new(&[(1, 3)], 0.0);
        let mut b = ArrayBuf::new(&[(1, 3)], 0.0);
        for k in 1..=3 {
            a.set("a", &[k], k as f64).unwrap();
            b.set("b", &[k], (k * 10) as f64).unwrap();
        }
        arrays.insert("a".to_string(), a);
        arrays.insert("b".to_string(), b);
        let v = reduce_of(
            "param n;\nlet s = sum [ a!k * b!k | k <- [1..n] ];\n",
            3,
            &arrays,
        );
        assert_eq!(v, 10.0 + 40.0 + 90.0);
    }

    #[test]
    fn product_and_guards() {
        let v = reduce_of(
            "param n;\nlet s = product [ i | i <- [1..n], i mod 2 == 0 ];\n",
            6,
            &HashMap::new(),
        );
        assert_eq!(v, 2.0 * 4.0 * 6.0);
    }

    #[test]
    fn non_commutative_fold_order() {
        let v = reduce_of(
            "param n;\nlet s = reduce (-) 0 [ i | i <- [1..n] ];\n",
            3,
            &HashMap::new(),
        );
        assert_eq!(v, ((0.0 - 1.0) - 2.0) - 3.0);
    }

    #[test]
    fn max_reduction_with_init_atom() {
        let v = reduce_of(
            "param n;\nlet s = reduce (max) 0 [ n - i | i <- [1..n] ] ++ [ 100 ];\n",
            5,
            &HashMap::new(),
        );
        assert_eq!(v, 100.0);
    }
}
