//! Resource governance: fuel and memory metering plus deterministic
//! fault injection.
//!
//! The paper's compiler removes *safety* checks (collisions, empties)
//! where a static proof exists; the production dual is *resource*
//! checks that cannot be compiled away. A [`Meter`] charges an op
//! budget ("fuel") at loop heads and call sites and a byte budget on
//! array/thunk allocation, turning runaway programs into structured
//! [`RuntimeError`](crate::error::RuntimeError)s instead of hung or
//! OOM-killed processes.
//!
//! Determinism is the design constraint throughout: a metered run must
//! fail at exactly the same point on every engine and every thread
//! count, so limits are expressed in engine-independent units (taken
//! loop iterations, function calls, payload bytes) and the parallel
//! engine splits budgets per chunk by *static* per-iteration cost.
//!
//! [`FaultPlan`] is the matching test harness: a config-injected,
//! seedable plan that fires worker panics or allocation failures at
//! chosen (region, chunk) coordinates — no wall clock, no RNG at
//! runtime — so fault-tolerance paths can be exercised differentially.

use crate::error::RuntimeError;

/// Caps on a single run. `None` means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Op budget: one unit per taken loop iteration and per function
    /// call, identical across engines.
    pub fuel: Option<u64>,
    /// Byte budget for array element storage, thunks, and
    /// accumulators.
    pub mem_bytes: Option<u64>,
}

impl Limits {
    /// No caps at all.
    pub fn unlimited() -> Self {
        Limits::default()
    }
}

/// Sentinel for "no limit": 2^64 units are unreachable in practice,
/// so the hot path can decrement unconditionally.
const UNLIMITED: u64 = u64::MAX;

/// A running budget, charged as the engines execute.
///
/// One meter spans a whole pipeline run (all units share the budget).
/// The parallel engine derives per-chunk sub-meters with
/// [`Meter::sub_meter`] so exhaustion lands on the same iteration
/// ordinal as a sequential run.
#[derive(Debug, Clone)]
pub struct Meter {
    fuel_left: u64,
    fuel_limit: u64,
    mem_left: u64,
    mem_limit: u64,
}

impl Default for Meter {
    fn default() -> Self {
        Meter::unlimited()
    }
}

impl Meter {
    /// A meter that never trips.
    pub fn unlimited() -> Self {
        Meter {
            fuel_left: UNLIMITED,
            fuel_limit: UNLIMITED,
            mem_left: UNLIMITED,
            mem_limit: UNLIMITED,
        }
    }

    /// A meter enforcing `limits`.
    pub fn new(limits: Limits) -> Self {
        Meter {
            fuel_left: limits.fuel.unwrap_or(UNLIMITED),
            fuel_limit: limits.fuel.unwrap_or(UNLIMITED),
            mem_left: limits.mem_bytes.unwrap_or(UNLIMITED),
            mem_limit: limits.mem_bytes.unwrap_or(UNLIMITED),
        }
    }

    /// Whether a finite fuel cap is in force.
    #[inline]
    pub fn fuel_limited(&self) -> bool {
        self.fuel_limit != UNLIMITED
    }

    /// Fuel remaining (meaningless when unlimited).
    #[inline]
    pub fn fuel_left(&self) -> u64 {
        self.fuel_left
    }

    /// Charge one fuel unit. The unlimited case still decrements —
    /// 2^64 charges are unreachable, and skipping the branch keeps
    /// the hot path to a single compare.
    #[inline]
    pub fn charge_fuel(&mut self) -> Result<(), RuntimeError> {
        if self.fuel_left == 0 {
            return Err(RuntimeError::FuelExhausted {
                limit: self.fuel_limit,
            });
        }
        self.fuel_left -= 1;
        Ok(())
    }

    /// Deduct `n` fuel units without an exhaustion check (used when a
    /// parallel region completes and its statically known cost is
    /// settled against the main meter).
    #[inline]
    pub fn consume_fuel(&mut self, n: u64) {
        self.fuel_left = self.fuel_left.saturating_sub(n);
    }

    /// Charge `bytes` against the memory budget.
    #[inline]
    pub fn charge_mem(&mut self, bytes: u64) -> Result<(), RuntimeError> {
        if self.mem_limit == UNLIMITED {
            return Ok(());
        }
        if bytes > self.mem_left {
            return Err(RuntimeError::MemLimitExceeded {
                limit: self.mem_limit,
                used: self.mem_limit - self.mem_left,
                requested: bytes,
            });
        }
        self.mem_left -= bytes;
        Ok(())
    }

    /// Overwrite the remaining fuel. Used by the parallel engine when a
    /// chunk faults: the main meter is settled to the faulting chunk's
    /// remainder, which equals what a sequential run would have left at
    /// the same op.
    #[inline]
    pub fn set_fuel_left(&mut self, n: u64) {
        self.fuel_left = n;
    }

    /// A chunk-local meter holding `fuel_left` units but reporting the
    /// *original* limit on exhaustion, so the error payload is
    /// identical to a sequential run's. Memory is never charged inside
    /// parallel chunks, so the sub-meter carries no memory budget.
    pub fn sub_meter(&self, fuel_left: u64) -> Meter {
        Meter {
            fuel_left,
            fuel_limit: self.fuel_limit,
            mem_left: UNLIMITED,
            mem_limit: UNLIMITED,
        }
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the worker (exercises `catch_unwind` isolation
    /// and the sequential retry).
    Panic,
    /// Simulated allocation failure: the chunk aborts without
    /// producing output (exercises the discard-and-retry path).
    AllocFail,
}

/// A single injection point: fire `kind` when parallel region number
/// `region` (0-based, in execution order) runs chunk `chunk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    pub region: u64,
    pub chunk: u64,
    pub kind: FaultKind,
}

/// A deterministic fault-injection plan.
///
/// Parsed from `HAC_FAULT_PLAN` / `--fault-plan`:
/// comma-separated `r<R>c<C>:panic` or `r<R>c<C>:allocfail` points,
/// the token `nosnapshot` to disable pre-region snapshots, or
/// `seed:<u64>` to expand a handful of pseudo-random points from an
/// LCG — everything is fixed before the run starts, nothing consults
/// the clock or an RNG at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub points: Vec<FaultPoint>,
    /// Snapshot written-to buffers before a region that is not
    /// provably retry-safe, so an injected fault can still fall back
    /// to sequential re-execution. Defaults to `true`; costs nothing
    /// when no plan is installed.
    pub snapshot: bool,
}

impl Default for FaultPlan {
    /// An empty plan: no injection points, snapshots enabled. Useful
    /// to explicitly *override* an ambient `HAC_FAULT_PLAN`.
    fn default() -> Self {
        FaultPlan {
            points: Vec::new(),
            snapshot: true,
        }
    }
}

impl FaultPlan {
    /// The fault scheduled for `(region, chunk)`, if any.
    pub fn lookup(&self, region: u64, chunk: u64) -> Option<FaultKind> {
        self.points
            .iter()
            .find(|p| p.region == region && p.chunk == chunk)
            .map(|p| p.kind)
    }

    /// Parse the `HAC_FAULT_PLAN` spec format. Returns `Err` with a
    /// human-readable message on malformed input.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            points: Vec::new(),
            snapshot: true,
        };
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if tok == "nosnapshot" {
                plan.snapshot = false;
                continue;
            }
            if let Some(seed) = tok.strip_prefix("seed:") {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("bad fault seed `{tok}`"))?;
                plan.points.extend(seeded_points(seed));
                continue;
            }
            let rest = tok
                .strip_prefix('r')
                .ok_or_else(|| format!("bad fault point `{tok}` (want r<R>c<C>:panic)"))?;
            let (coords, kind) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad fault point `{tok}` (missing `:kind`)"))?;
            let (region, chunk) = coords
                .split_once('c')
                .ok_or_else(|| format!("bad fault point `{tok}` (want r<R>c<C>)"))?;
            let region: u64 = region
                .parse()
                .map_err(|_| format!("bad region in `{tok}`"))?;
            let chunk: u64 = chunk.parse().map_err(|_| format!("bad chunk in `{tok}`"))?;
            let kind = match kind {
                "panic" => FaultKind::Panic,
                "allocfail" => FaultKind::AllocFail,
                other => return Err(format!("unknown fault kind `{other}`")),
            };
            plan.points.push(FaultPoint {
                region,
                chunk,
                kind,
            });
        }
        Ok(plan)
    }
}

/// Expand a seed into a small deterministic set of fault points with
/// an LCG (Knuth's MMIX constants). Regions and chunks are kept small
/// so the points actually land on real kernels.
fn seeded_points(seed: u64) -> Vec<FaultPoint> {
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    (0..4)
        .map(|_| {
            let region = next() % 8;
            let chunk = next() % 8;
            let kind = if next() % 2 == 0 {
                FaultKind::Panic
            } else {
                FaultKind::AllocFail
            };
            FaultPoint {
                region,
                chunk,
                kind,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_trips_at_zero_with_original_limit() {
        let mut m = Meter::new(Limits {
            fuel: Some(3),
            mem_bytes: None,
        });
        assert!(m.charge_fuel().is_ok());
        assert!(m.charge_fuel().is_ok());
        assert!(m.charge_fuel().is_ok());
        assert_eq!(
            m.charge_fuel(),
            Err(RuntimeError::FuelExhausted { limit: 3 })
        );
        // Exhausted meters stay exhausted.
        assert!(m.charge_fuel().is_err());
    }

    #[test]
    fn unlimited_meter_never_trips() {
        let mut m = Meter::unlimited();
        for _ in 0..10_000 {
            assert!(m.charge_fuel().is_ok());
            assert!(m.charge_mem(1 << 40).is_ok());
        }
        assert!(!m.fuel_limited());
    }

    #[test]
    fn mem_reports_used_and_requested() {
        let mut m = Meter::new(Limits {
            fuel: None,
            mem_bytes: Some(100),
        });
        assert!(m.charge_mem(64).is_ok());
        assert_eq!(
            m.charge_mem(64),
            Err(RuntimeError::MemLimitExceeded {
                limit: 100,
                used: 64,
                requested: 64,
            })
        );
        // A smaller allocation still fits.
        assert!(m.charge_mem(36).is_ok());
    }

    #[test]
    fn sub_meter_reports_original_limit() {
        let m = Meter::new(Limits {
            fuel: Some(1000),
            mem_bytes: None,
        });
        let mut sub = m.sub_meter(0);
        assert_eq!(
            sub.charge_fuel(),
            Err(RuntimeError::FuelExhausted { limit: 1000 })
        );
    }

    #[test]
    fn plan_parses_points_flags_and_seeds() {
        let plan = FaultPlan::parse("r0c1:panic, r2c3:allocfail").unwrap();
        assert_eq!(plan.points.len(), 2);
        assert!(plan.snapshot);
        assert_eq!(plan.lookup(0, 1), Some(FaultKind::Panic));
        assert_eq!(plan.lookup(2, 3), Some(FaultKind::AllocFail));
        assert_eq!(plan.lookup(1, 1), None);

        let plan = FaultPlan::parse("nosnapshot,r1c0:panic").unwrap();
        assert!(!plan.snapshot);

        let a = FaultPlan::parse("seed:42").unwrap();
        let b = FaultPlan::parse("seed:42").unwrap();
        assert_eq!(a, b, "seeded plans are deterministic");
        assert_eq!(a.points.len(), 4);

        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("r1c2:fire").is_err());
        assert!(FaultPlan::parse("seed:x").is_err());
    }
}
