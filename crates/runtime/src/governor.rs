//! Resource governance: fuel and memory metering plus deterministic
//! fault injection.
//!
//! The paper's compiler removes *safety* checks (collisions, empties)
//! where a static proof exists; the production dual is *resource*
//! checks that cannot be compiled away. A [`Meter`] charges an op
//! budget ("fuel") at loop heads and call sites and a byte budget on
//! array/thunk allocation, turning runaway programs into structured
//! [`RuntimeError`](crate::error::RuntimeError)s instead of hung or
//! OOM-killed processes.
//!
//! Determinism is the design constraint throughout: a metered run must
//! fail at exactly the same point on every engine and every thread
//! count, so limits are expressed in engine-independent units (taken
//! loop iterations, function calls, payload bytes) and the parallel
//! engine splits budgets per chunk by *static* per-iteration cost.
//!
//! [`FaultPlan`] is the matching test harness: a config-injected,
//! seedable plan that fires worker panics or allocation failures at
//! chosen (region, chunk) coordinates — no wall clock, no RNG at
//! runtime — so fault-tolerance paths can be exercised differentially.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::RuntimeError;

/// Caps on a single run. `None` means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Op budget: one unit per taken loop iteration and per function
    /// call, identical across engines.
    pub fuel: Option<u64>,
    /// Byte budget for array element storage, thunks, and
    /// accumulators.
    pub mem_bytes: Option<u64>,
}

impl Limits {
    /// No caps at all.
    pub fn unlimited() -> Self {
        Limits::default()
    }
}

/// Sentinel for "no limit": 2^64 units are unreachable in practice,
/// so the hot path can decrement unconditionally.
const UNLIMITED: u64 = u64::MAX;

/// Fuel units a lazily-drawing meter pulls from the ceiling per refill
/// (see [`Meter::admit`]). The block size never changes *which* charge
/// exhausts — only how often the shared pool is touched — because a
/// draw hands every obtained unit to the local counter and the final
/// failing draw happens exactly when the pool is empty.
const FUEL_BLOCK: u64 = 1024;

/// One stripe of a [`SharedCeiling`], padded to a cache line so
/// concurrent requests hitting different stripes never false-share.
#[repr(align(64))]
#[derive(Debug)]
struct Stripe(AtomicU64);

/// A process-wide resource pool shared by every concurrent request.
///
/// The pool is *striped*: the total budget is distributed over
/// cache-padded atomic counters so concurrent reservations mostly touch
/// disjoint cache lines. Reservations are **all-or-nothing**: a request
/// either obtains its full amount (gathered across stripes, rolled back
/// on shortfall) or nothing, so the sum of outstanding grants can never
/// exceed the initial pool — striping is invisible in the accounting.
///
/// **Settlement rule** (what keeps exhaustion bit-identical at any
/// thread count and stripe width): a request's *own* exhaustion point
/// is governed solely by its local [`Meter`] counters, which are fixed
/// at admission — the ceiling is only touched at admission (reserve),
/// refill (lazy draws, see below), and settlement (refund). On
/// settlement, unspent **fuel** returns to the pool (spent fuel is
/// gone: the pool bounds total ops the process executes) and reserved
/// **memory** returns in full (the pool bounds *concurrent* residency).
/// After every admitted request settles, `fuel_available()` equals the
/// initial pool minus the exact sequential fuel spend of each request,
/// and `mem_available()` equals the initial pool — independent of
/// stripe width, thread interleaving, or engine.
///
/// A request admitted with *no* local fuel cap under a finite fuel
/// ceiling draws blocks lazily instead; its exhaustion point then
/// depends on what sibling requests have drawn (documented
/// admission-order dependence — give requests their own budgets when
/// isolation matters).
#[derive(Debug)]
pub struct SharedCeiling {
    fuel: Box<[Stripe]>,
    mem: Box<[Stripe]>,
    fuel_total: u64,
    mem_total: u64,
    /// Round-robin admission hint so concurrent requests start their
    /// stripe walk at different offsets.
    hint: AtomicUsize,
    /// Monotonic reservation ordinal handed out per admission attempt
    /// (see [`SharedCeiling::take_ordinal`]).
    ordinal: AtomicU64,
}

impl SharedCeiling {
    /// A pool holding `limits`, split over `stripes` counters
    /// (`stripes` is clamped to at least 1). `None` caps are truly
    /// uncapped: reservations against them always succeed and never
    /// touch an atomic.
    pub fn new(limits: Limits, stripes: usize) -> Arc<SharedCeiling> {
        let n = stripes.max(1);
        let split = |total: u64| -> Box<[Stripe]> {
            (0..n as u64)
                .map(|i| {
                    let share = total / n as u64 + u64::from(i < total % n as u64);
                    Stripe(AtomicU64::new(share))
                })
                .collect()
        };
        Arc::new(SharedCeiling {
            fuel: split(limits.fuel.unwrap_or(0)),
            mem: split(limits.mem_bytes.unwrap_or(0)),
            fuel_total: limits.fuel.unwrap_or(UNLIMITED),
            mem_total: limits.mem_bytes.unwrap_or(UNLIMITED),
            hint: AtomicUsize::new(0),
            ordinal: AtomicU64::new(0),
        })
    }

    /// Hand out the next reservation ordinal (0, 1, 2, …). The serving
    /// layer stamps every admission attempt with one of these so that
    /// cache recency, fair-scheduler bookkeeping, and the per-response
    /// `admitted` field are all expressed in *admission order* — a pure
    /// function of the request sequence, never the clock. Callers that
    /// admit sequentially (queue order or a fair schedule) therefore
    /// get bit-reproducible ordinals across runs.
    pub fn take_ordinal(&self) -> u64 {
        self.ordinal.fetch_add(1, Ordering::Relaxed)
    }

    /// How many reservation ordinals have been handed out so far
    /// (racy snapshot; exact when quiescent).
    pub fn reservations(&self) -> u64 {
        self.ordinal.load(Ordering::Relaxed)
    }

    /// Whether the pool caps fuel at all.
    pub fn fuel_capped(&self) -> bool {
        self.fuel_total != UNLIMITED
    }

    /// Whether the pool caps memory at all.
    pub fn mem_capped(&self) -> bool {
        self.mem_total != UNLIMITED
    }

    /// Fuel currently in the pool (racy snapshot; exact when quiescent).
    pub fn fuel_available(&self) -> u64 {
        if !self.fuel_capped() {
            return UNLIMITED;
        }
        self.fuel.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    /// Memory currently in the pool (racy snapshot; exact when
    /// quiescent).
    pub fn mem_available(&self) -> u64 {
        if !self.mem_capped() {
            return UNLIMITED;
        }
        self.mem.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    /// Take up to `want` units from one stripe; returns what it got.
    fn take_upto(stripe: &AtomicU64, want: u64) -> u64 {
        let mut cur = stripe.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            match stripe.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(now) => cur = now,
            }
        }
    }

    /// All-or-nothing gather of `amount` across `stripes`; on shortfall
    /// everything taken is rolled back and the call returns `false`.
    fn take(&self, stripes: &[Stripe], amount: u64) -> bool {
        if amount == 0 {
            return true;
        }
        let start = self.hint.fetch_add(1, Ordering::Relaxed) % stripes.len();
        let mut taken = vec![0u64; stripes.len()];
        let mut need = amount;
        for k in 0..stripes.len() {
            let i = (start + k) % stripes.len();
            let got = Self::take_upto(&stripes[i].0, need);
            taken[i] = got;
            need -= got;
            if need == 0 {
                return true;
            }
        }
        for (i, t) in taken.iter().enumerate() {
            if *t > 0 {
                stripes[i].0.fetch_add(*t, Ordering::Relaxed);
            }
        }
        false
    }

    /// Take up to `want` units (not all-or-nothing): the lazy-draw
    /// path. Returns what it got, possibly 0.
    fn drain_upto(&self, stripes: &[Stripe], want: u64) -> u64 {
        let start = self.hint.fetch_add(1, Ordering::Relaxed) % stripes.len();
        let mut got = 0;
        for k in 0..stripes.len() {
            let i = (start + k) % stripes.len();
            got += Self::take_upto(&stripes[i].0, want - got);
            if got == want {
                break;
            }
        }
        got
    }

    /// Return `amount` units, spread evenly so later cross-stripe
    /// gathers stay cheap.
    fn put(&self, stripes: &[Stripe], amount: u64) {
        if amount == 0 {
            return;
        }
        let n = stripes.len() as u64;
        for (i, s) in stripes.iter().enumerate() {
            let share = amount / n + u64::from((i as u64) < amount % n);
            if share > 0 {
                s.0.fetch_add(share, Ordering::Relaxed);
            }
        }
    }

    /// Reserve `amount` fuel units, all-or-nothing.
    pub fn reserve_fuel(&self, amount: u64) -> bool {
        !self.fuel_capped() || self.take(&self.fuel, amount)
    }

    /// Reserve `amount` memory bytes, all-or-nothing.
    pub fn reserve_mem(&self, amount: u64) -> bool {
        !self.mem_capped() || self.take(&self.mem, amount)
    }

    /// Return `amount` fuel units to the pool.
    pub fn refund_fuel(&self, amount: u64) {
        if self.fuel_capped() {
            self.put(&self.fuel, amount);
        }
    }

    /// Return `amount` memory bytes to the pool.
    pub fn refund_mem(&self, amount: u64) {
        if self.mem_capped() {
            self.put(&self.mem, amount);
        }
    }
}

/// A [`Meter`]'s hold on a [`SharedCeiling`]: what was reserved at
/// admission and what has been drawn lazily since, so settlement can
/// refund exactly the right amount. Deliberately not `Clone` — a
/// reservation must be settled exactly once.
#[derive(Debug)]
struct Lease {
    ceiling: Arc<SharedCeiling>,
    /// Fuel reserved all-or-nothing at admission (finite local cap).
    fuel_reserved: u64,
    /// Memory reserved all-or-nothing at admission (finite local cap).
    mem_reserved: u64,
    /// No local fuel cap: draw [`FUEL_BLOCK`]-sized refills on demand.
    lazy_fuel: bool,
    /// No local memory cap: draw exact byte amounts on demand.
    lazy_mem: bool,
    /// Total lazily drawn fuel (for settlement accounting).
    lazy_fuel_drawn: u64,
    /// Total lazily drawn memory.
    lazy_mem_drawn: u64,
}

/// A running budget, charged as the engines execute.
///
/// One meter spans a whole pipeline run (all units share the budget).
/// The parallel engine derives per-chunk sub-meters with
/// [`Meter::sub_meter`] so exhaustion lands on the same iteration
/// ordinal as a sequential run. A meter admitted against a
/// [`SharedCeiling`] additionally holds a lease on the global pool;
/// see [`Meter::admit`] and [`Meter::settle`].
#[derive(Debug)]
pub struct Meter {
    fuel_left: u64,
    fuel_limit: u64,
    mem_left: u64,
    mem_limit: u64,
    lease: Option<Box<Lease>>,
}

impl Default for Meter {
    fn default() -> Self {
        Meter::unlimited()
    }
}

impl Clone for Meter {
    /// Cloning yields a counter snapshot for deriving chunk sub-meters.
    /// The ceiling lease stays with the original: a reservation must be
    /// settled (refunded) exactly once, so a clone never carries one.
    fn clone(&self) -> Meter {
        Meter {
            fuel_left: self.fuel_left,
            fuel_limit: self.fuel_limit,
            mem_left: self.mem_left,
            mem_limit: self.mem_limit,
            lease: None,
        }
    }
}

impl Meter {
    /// A meter that never trips.
    pub fn unlimited() -> Self {
        Meter {
            fuel_left: UNLIMITED,
            fuel_limit: UNLIMITED,
            mem_left: UNLIMITED,
            mem_limit: UNLIMITED,
            lease: None,
        }
    }

    /// A meter enforcing `limits`, unbacked by any global pool.
    pub fn new(limits: Limits) -> Self {
        Meter {
            fuel_left: limits.fuel.unwrap_or(UNLIMITED),
            fuel_limit: limits.fuel.unwrap_or(UNLIMITED),
            mem_left: limits.mem_bytes.unwrap_or(UNLIMITED),
            mem_limit: limits.mem_bytes.unwrap_or(UNLIMITED),
            lease: None,
        }
    }

    /// Admit a request: build a meter enforcing `limits` whose budget
    /// is covered by `ceiling`.
    ///
    /// Finite local caps are reserved from the pool **all-or-nothing
    /// up front**, so the request's exhaustion point afterwards depends
    /// only on its own counters — bit-identical at any thread count or
    /// stripe width, independent of sibling requests. A resource with
    /// no local cap under a capped pool instead *draws lazily* (fuel in
    /// [`FUEL_BLOCK`] refills, memory by exact byte amounts); such a
    /// meter's exhaustion point is admission-order dependent and the
    /// parallel engine runs its regions sequentially
    /// ([`Meter::draws_lazily`]).
    ///
    /// # Errors
    /// [`RuntimeError::CeilingExhausted`] when the pool cannot cover a
    /// requested reservation (nothing is held on failure).
    pub fn admit(limits: Limits, ceiling: &Arc<SharedCeiling>) -> Result<Meter, RuntimeError> {
        let mut lease = Lease {
            ceiling: Arc::clone(ceiling),
            fuel_reserved: 0,
            mem_reserved: 0,
            lazy_fuel: false,
            lazy_mem: false,
            lazy_fuel_drawn: 0,
            lazy_mem_drawn: 0,
        };
        let mut m = Meter::new(limits);
        if ceiling.fuel_capped() {
            match limits.fuel {
                Some(f) => {
                    if !ceiling.reserve_fuel(f) {
                        return Err(RuntimeError::CeilingExhausted {
                            resource: "fuel",
                            requested: f,
                            available: ceiling.fuel_available(),
                        });
                    }
                    lease.fuel_reserved = f;
                }
                None => {
                    lease.lazy_fuel = true;
                    m.fuel_left = 0;
                }
            }
        }
        if ceiling.mem_capped() {
            match limits.mem_bytes {
                Some(b) => {
                    if !ceiling.reserve_mem(b) {
                        // Roll back the fuel hold: admission is
                        // all-or-nothing across both resources.
                        ceiling.refund_fuel(lease.fuel_reserved);
                        return Err(RuntimeError::CeilingExhausted {
                            resource: "memory",
                            requested: b,
                            available: ceiling.mem_available(),
                        });
                    }
                    lease.mem_reserved = b;
                }
                None => lease.lazy_mem = true,
            }
        }
        if lease.fuel_reserved > 0 || lease.mem_reserved > 0 || lease.lazy_fuel || lease.lazy_mem {
            m.lease = Some(Box::new(lease));
        }
        Ok(m)
    }

    /// Settle the meter's ceiling lease: unspent fuel and *all*
    /// reserved/drawn memory return to the pool (see the
    /// [`SharedCeiling`] settlement rule). Idempotent; a no-op for
    /// meters without a lease.
    pub fn settle(&mut self) {
        let Some(lease) = self.lease.take() else {
            return;
        };
        let fuel_held = lease.fuel_reserved + lease.lazy_fuel_drawn;
        lease.ceiling.refund_fuel(self.fuel_left.min(fuel_held));
        lease
            .ceiling
            .refund_mem(lease.mem_reserved + lease.lazy_mem_drawn);
    }

    /// Whether this meter refills its fuel from the ceiling on demand
    /// (no local cap under a capped pool). Such budgets cannot be split
    /// statically, so parallel regions must run sequentially.
    #[inline]
    pub fn draws_lazily(&self) -> bool {
        self.lease.as_ref().is_some_and(|l| l.lazy_fuel)
    }

    /// Whether this meter draws memory from the ceiling by exact byte
    /// amounts (no local cap under a mem-capped pool). Like lazy fuel,
    /// such a meter's exhaustion point depends on sibling requests, so
    /// layers that need outcome purity (the result cache) must treat
    /// the run as unrepeatable.
    #[inline]
    pub fn draws_mem_lazily(&self) -> bool {
        self.lease.as_ref().is_some_and(|l| l.lazy_mem)
    }

    /// Whether a finite fuel cap is in force.
    #[inline]
    pub fn fuel_limited(&self) -> bool {
        self.fuel_limit != UNLIMITED
    }

    /// Fuel remaining (meaningless when unlimited).
    #[inline]
    pub fn fuel_left(&self) -> u64 {
        self.fuel_left
    }

    /// Whether a finite memory cap is in force.
    #[inline]
    pub fn mem_limited(&self) -> bool {
        self.mem_limit != UNLIMITED
    }

    /// Memory budget remaining in bytes (meaningless when unlimited).
    /// With [`Meter::mem_limited`], `limit − mem_left` measures the
    /// bytes a run charged so far — the serving layer's delta path
    /// prices cached prefixes this way.
    #[inline]
    pub fn mem_left(&self) -> u64 {
        self.mem_left
    }

    /// Charge one fuel unit. The unlimited case still decrements —
    /// 2^64 charges are unreachable, and skipping the branch keeps
    /// the hot path to a single compare.
    #[inline]
    pub fn charge_fuel(&mut self) -> Result<(), RuntimeError> {
        if self.fuel_left == 0 {
            return self.refill_or_exhaust();
        }
        self.fuel_left -= 1;
        Ok(())
    }

    /// The empty-counter path: refill from a lazy ceiling lease, or
    /// report exhaustion.
    #[cold]
    fn refill_or_exhaust(&mut self) -> Result<(), RuntimeError> {
        if let Some(lease) = self.lease.as_mut() {
            if lease.lazy_fuel {
                let got = lease.ceiling.drain_upto(&lease.ceiling.fuel, FUEL_BLOCK);
                if got > 0 {
                    lease.lazy_fuel_drawn += got;
                    self.fuel_left = got - 1;
                    return Ok(());
                }
                return Err(RuntimeError::CeilingExhausted {
                    resource: "fuel",
                    requested: 1,
                    available: 0,
                });
            }
        }
        Err(RuntimeError::FuelExhausted {
            limit: self.fuel_limit,
        })
    }

    /// Deduct `n` fuel units without an exhaustion check (used when a
    /// parallel region completes and its statically known cost is
    /// settled against the main meter).
    #[inline]
    pub fn consume_fuel(&mut self, n: u64) {
        self.fuel_left = self.fuel_left.saturating_sub(n);
    }

    /// Charge fuel for `n` loop iterations in one settlement, exactly
    /// as `n` consecutive [`Meter::charge_fuel`] calls would. Returns
    /// the number of iterations covered; when short of `n`, also the
    /// error the `(covered + 1)`-th per-iteration charge would have
    /// raised, with the meter left in the identical state. The fused
    /// vector kernels use this so bulk charging is observationally
    /// indistinguishable from the scalar dispatch loop.
    ///
    /// Lazily-drawing meters (serve-layer ceiling leases) cannot be
    /// settled in one subtraction without replaying refill boundaries,
    /// so for those the charges are simply taken one at a time.
    ///
    /// Reduction kernels (`Sum`/`Dot`/`MulAddAcc` and the reduction
    /// arm of the generic micro-kernel) price exactly like the
    /// elementwise ones: one unit per taken iteration, nothing extra
    /// for the carried fold — the scalar tape charges the `LoopHead`
    /// once per iteration and the body ops are free, so the closed
    /// form for any fused shape is just the iteration count. On a
    /// shortfall the kernel is obliged to have stored exactly
    /// `covered` partial results and to leave the carried cell equal
    /// to the scalar tape's after `covered` iterations; this method
    /// guarantees the meter half of that bargain — identical error,
    /// identical residual fuel, identical ceiling bookkeeping.
    pub fn charge_fuel_block(&mut self, n: u64) -> (u64, Option<RuntimeError>) {
        // Lazy leases have `fuel_limit == UNLIMITED` (the ceiling is
        // the cap, not a local budget), so this test must come before
        // the unlimited fast path or the pool never sees the draws.
        if self.draws_lazily() {
            for k in 0..n {
                if let Err(e) = self.charge_fuel() {
                    return (k, Some(e));
                }
            }
            return (n, None);
        }
        if !self.fuel_limited() {
            // Unlimited meters never observe `fuel_left`; skip the
            // sentinel decrements (the scalar loop performs them, but
            // no report or settlement ever reads them back).
            return (n, None);
        }
        if self.fuel_left >= n {
            self.fuel_left -= n;
            return (n, None);
        }
        let done = self.fuel_left;
        self.fuel_left = 0;
        // The failing charge goes through the real path so the error
        // (and any ceiling bookkeeping) matches the scalar loop.
        match self.charge_fuel() {
            Err(e) => (done, Some(e)),
            Ok(()) => {
                // A refill landed (meter gained a lease mid-run); settle
                // the remainder against the refreshed balance.
                let (more, err) = self.charge_fuel_block(n - done - 1);
                (done + 1 + more, err)
            }
        }
    }

    /// Charge `bytes` against the memory budget.
    #[inline]
    pub fn charge_mem(&mut self, bytes: u64) -> Result<(), RuntimeError> {
        if self.mem_limit == UNLIMITED {
            if let Some(lease) = self.lease.as_mut() {
                if lease.lazy_mem {
                    if lease.ceiling.reserve_mem(bytes) {
                        lease.lazy_mem_drawn += bytes;
                        return Ok(());
                    }
                    return Err(RuntimeError::CeilingExhausted {
                        resource: "memory",
                        requested: bytes,
                        available: lease.ceiling.mem_available(),
                    });
                }
            }
            return Ok(());
        }
        if bytes > self.mem_left {
            return Err(RuntimeError::MemLimitExceeded {
                limit: self.mem_limit,
                used: self.mem_limit - self.mem_left,
                requested: bytes,
            });
        }
        self.mem_left -= bytes;
        Ok(())
    }

    /// Overwrite the remaining fuel. Used by the parallel engine when a
    /// chunk faults: the main meter is settled to the faulting chunk's
    /// remainder, which equals what a sequential run would have left at
    /// the same op.
    #[inline]
    pub fn set_fuel_left(&mut self, n: u64) {
        self.fuel_left = n;
    }

    /// A chunk-local meter holding `fuel_left` units but reporting the
    /// *original* limit on exhaustion, so the error payload is
    /// identical to a sequential run's. Memory is never charged inside
    /// parallel chunks, so the sub-meter carries no memory budget — and
    /// no ceiling lease (the parent's reservation already covers the
    /// chunk's spend).
    pub fn sub_meter(&self, fuel_left: u64) -> Meter {
        Meter {
            fuel_left,
            fuel_limit: self.fuel_limit,
            mem_left: UNLIMITED,
            mem_limit: UNLIMITED,
            lease: None,
        }
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the worker (exercises `catch_unwind` isolation
    /// and the sequential retry).
    Panic,
    /// Simulated allocation failure: the chunk aborts without
    /// producing output (exercises the discard-and-retry path).
    AllocFail,
}

/// A single injection point: fire `kind` when parallel region number
/// `region` (0-based, in execution order) runs chunk `chunk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    pub region: u64,
    pub chunk: u64,
    pub kind: FaultKind,
}

/// A deterministic fault-injection plan.
///
/// Parsed from `HAC_FAULT_PLAN` / `--fault-plan`:
/// comma-separated `r<R>c<C>:panic` or `r<R>c<C>:allocfail` points,
/// the token `nosnapshot` to disable pre-region snapshots, or
/// `seed:<u64>` to expand a handful of pseudo-random points from an
/// LCG — everything is fixed before the run starts, nothing consults
/// the clock or an RNG at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub points: Vec<FaultPoint>,
    /// Snapshot written-to buffers before a region that is not
    /// provably retry-safe, so an injected fault can still fall back
    /// to sequential re-execution. Defaults to `true`; costs nothing
    /// when no plan is installed.
    pub snapshot: bool,
}

impl Default for FaultPlan {
    /// An empty plan: no injection points, snapshots enabled. Useful
    /// to explicitly *override* an ambient `HAC_FAULT_PLAN`.
    fn default() -> Self {
        FaultPlan {
            points: Vec::new(),
            snapshot: true,
        }
    }
}

impl FaultPlan {
    /// The fault scheduled for `(region, chunk)`, if any.
    pub fn lookup(&self, region: u64, chunk: u64) -> Option<FaultKind> {
        self.points
            .iter()
            .find(|p| p.region == region && p.chunk == chunk)
            .map(|p| p.kind)
    }

    /// Parse the `HAC_FAULT_PLAN` spec format. Returns `Err` with a
    /// human-readable message on malformed input.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            points: Vec::new(),
            snapshot: true,
        };
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            plan.parse_token(tok)?;
        }
        Ok(plan)
    }

    /// Parse one comma-separated token of the fault-plan grammar into
    /// this plan: `r<R>c<C>:panic|allocfail`, `nosnapshot`, or
    /// `seed:<u64>`. Exposed so layered grammars (the serve crate's
    /// connection-coordinate chaos plan) can forward the engine-level
    /// tokens of a combined spec here and keep one vocabulary.
    ///
    /// # Errors
    /// A human-readable message on a malformed token.
    pub fn parse_token(&mut self, tok: &str) -> Result<(), String> {
        if tok == "nosnapshot" {
            self.snapshot = false;
            return Ok(());
        }
        if let Some(seed) = tok.strip_prefix("seed:") {
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("bad fault seed `{tok}`"))?;
            self.points.extend(seeded_points(seed));
            return Ok(());
        }
        let rest = tok
            .strip_prefix('r')
            .ok_or_else(|| format!("bad fault point `{tok}` (want r<R>c<C>:panic)"))?;
        let (coords, kind) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad fault point `{tok}` (missing `:kind`)"))?;
        let (region, chunk) = coords
            .split_once('c')
            .ok_or_else(|| format!("bad fault point `{tok}` (want r<R>c<C>)"))?;
        let region: u64 = region
            .parse()
            .map_err(|_| format!("bad region in `{tok}`"))?;
        let chunk: u64 = chunk.parse().map_err(|_| format!("bad chunk in `{tok}`"))?;
        let kind = match kind {
            "panic" => FaultKind::Panic,
            "allocfail" => FaultKind::AllocFail,
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        self.points.push(FaultPoint {
            region,
            chunk,
            kind,
        });
        Ok(())
    }
}

/// Expand a seed into a small deterministic set of fault points with
/// an LCG (Knuth's MMIX constants). Regions and chunks are kept small
/// so the points actually land on real kernels.
fn seeded_points(seed: u64) -> Vec<FaultPoint> {
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    (0..4)
        .map(|_| {
            let region = next() % 8;
            let chunk = next() % 8;
            let kind = if next() % 2 == 0 {
                FaultKind::Panic
            } else {
                FaultKind::AllocFail
            };
            FaultPoint {
                region,
                chunk,
                kind,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_trips_at_zero_with_original_limit() {
        let mut m = Meter::new(Limits {
            fuel: Some(3),
            mem_bytes: None,
        });
        assert!(m.charge_fuel().is_ok());
        assert!(m.charge_fuel().is_ok());
        assert!(m.charge_fuel().is_ok());
        assert_eq!(
            m.charge_fuel(),
            Err(RuntimeError::FuelExhausted { limit: 3 })
        );
        // Exhausted meters stay exhausted.
        assert!(m.charge_fuel().is_err());
    }

    #[test]
    fn unlimited_meter_never_trips() {
        let mut m = Meter::unlimited();
        for _ in 0..10_000 {
            assert!(m.charge_fuel().is_ok());
            assert!(m.charge_mem(1 << 40).is_ok());
        }
        assert!(!m.fuel_limited());
    }

    #[test]
    fn block_charge_matches_per_iteration_charges() {
        // Every (limit, n) pair must leave the block-charged meter in
        // the same state as n sequential charge_fuel calls, returning
        // the same error at the same iteration.
        for limit in [0u64, 1, 3, 7, 100] {
            for n in [0u64, 1, 3, 7, 8, 250] {
                let mut a = Meter::new(Limits {
                    fuel: Some(limit),
                    mem_bytes: None,
                });
                let mut b = a.clone();
                let (done, err) = a.charge_fuel_block(n);
                let mut want_done = n;
                let mut want_err = None;
                for k in 0..n {
                    if let Err(e) = b.charge_fuel() {
                        want_done = k;
                        want_err = Some(e);
                        break;
                    }
                }
                assert_eq!((done, err), (want_done, want_err), "limit {limit} n {n}");
                assert_eq!(a.fuel_left(), b.fuel_left(), "limit {limit} n {n}");
            }
        }
    }

    #[test]
    fn block_charge_on_unlimited_meter_covers_everything() {
        let mut m = Meter::unlimited();
        assert_eq!(m.charge_fuel_block(u64::MAX), (u64::MAX, None));
    }

    #[test]
    fn reduction_block_charge_prices_one_unit_per_iteration() {
        // A fused reduction over n iterations costs exactly n — the
        // fold itself is free, matching the scalar tape where only the
        // LoopHead charges. A budget of exactly n covers the kernel
        // and leaves the meter on its last legal unit... spent.
        let n = 37u64;
        let mut m = Meter::new(Limits {
            fuel: Some(n),
            mem_bytes: None,
        });
        assert_eq!(m.charge_fuel_block(n), (n, None));
        assert_eq!(m.fuel_left(), 0);
        assert_eq!(
            m.charge_fuel(),
            Err(RuntimeError::FuelExhausted { limit: n })
        );
    }

    #[test]
    fn reduction_block_shortfall_issues_one_genuine_failing_charge() {
        // Mid-kernel exhaustion: the block covers `limit` iterations,
        // then surfaces the error the (limit+1)-th scalar charge would
        // raise — so a dot kernel that dies mid-fold reports the same
        // payload at the same iteration as the dispatch loop, and the
        // kernel must have stored exactly `limit` partial sums.
        let mut m = Meter::new(Limits {
            fuel: Some(5),
            mem_bytes: None,
        });
        let (done, err) = m.charge_fuel_block(12);
        assert_eq!(done, 5);
        assert_eq!(err, Some(RuntimeError::FuelExhausted { limit: 5 }));
        assert_eq!(m.fuel_left(), 0);
        // Exhausted meters stay exhausted for the retry.
        assert!(m.charge_fuel().is_err());
    }

    #[test]
    fn sub_meter_block_charge_reports_original_limit() {
        // A reduction running inside one chunk of an outer parallel
        // region (the matvec shape) charges the chunk's sub-meter; a
        // shortfall there must carry the *run's* limit, not the
        // chunk's share, so the structured error is engine-invariant.
        let parent = Meter::new(Limits {
            fuel: Some(1000),
            mem_bytes: None,
        });
        let mut chunk = parent.sub_meter(8);
        assert_eq!(chunk.charge_fuel_block(8), (8, None));
        let (done, err) = chunk.charge_fuel_block(3);
        assert_eq!(done, 0);
        assert_eq!(err, Some(RuntimeError::FuelExhausted { limit: 1000 }));
    }

    #[test]
    fn lazy_meter_block_charge_replays_refill_boundaries() {
        // Lease-backed meters draw fuel in FUEL_BLOCK slabs; a bulk
        // charge must replay those refill boundaries so the pool sees
        // the same draws as n scalar charges. Sweep block sizes that
        // land before, on, and after a slab edge, plus pool
        // exhaustion mid-kernel.
        for n in [
            1u64,
            FUEL_BLOCK - 1,
            FUEL_BLOCK,
            FUEL_BLOCK + 3,
            3 * FUEL_BLOCK,
        ] {
            let pool = Limits {
                fuel: Some(2 * FUEL_BLOCK + 7),
                mem_bytes: None,
            };
            let ca = SharedCeiling::new(pool, 2);
            let cb = SharedCeiling::new(pool, 2);
            let mut a = Meter::admit(Limits::unlimited(), &ca).unwrap();
            let mut b = Meter::admit(Limits::unlimited(), &cb).unwrap();
            assert!(a.draws_lazily());
            let got = a.charge_fuel_block(n);
            let mut want = (n, None);
            for k in 0..n {
                if let Err(e) = b.charge_fuel() {
                    want = (k, Some(e));
                    break;
                }
            }
            assert_eq!(got, want, "n {n}");
            assert_eq!(a.fuel_left(), b.fuel_left(), "n {n}");
            a.settle();
            b.settle();
            assert_eq!(ca.fuel_available(), cb.fuel_available(), "n {n}");
        }
    }

    #[test]
    fn mem_reports_used_and_requested() {
        let mut m = Meter::new(Limits {
            fuel: None,
            mem_bytes: Some(100),
        });
        assert!(m.charge_mem(64).is_ok());
        assert_eq!(
            m.charge_mem(64),
            Err(RuntimeError::MemLimitExceeded {
                limit: 100,
                used: 64,
                requested: 64,
            })
        );
        // A smaller allocation still fits.
        assert!(m.charge_mem(36).is_ok());
    }

    #[test]
    fn sub_meter_reports_original_limit() {
        let m = Meter::new(Limits {
            fuel: Some(1000),
            mem_bytes: None,
        });
        let mut sub = m.sub_meter(0);
        assert_eq!(
            sub.charge_fuel(),
            Err(RuntimeError::FuelExhausted { limit: 1000 })
        );
    }

    fn caps(fuel: u64, mem: u64) -> Limits {
        Limits {
            fuel: Some(fuel),
            mem_bytes: Some(mem),
        }
    }

    #[test]
    fn ceiling_admission_is_all_or_nothing() {
        let c = SharedCeiling::new(caps(100, 1000), 4);
        let mut a = Meter::admit(caps(60, 400), &c).unwrap();
        assert_eq!(c.fuel_available(), 40);
        assert_eq!(c.mem_available(), 600);
        // Second request over-asks on fuel: nothing is held.
        let err = Meter::admit(caps(50, 100), &c).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::CeilingExhausted {
                resource: "fuel",
                requested: 50,
                available: 40,
            }
        ));
        assert_eq!(c.mem_available(), 600, "failed admission holds nothing");
        // Memory shortfall rolls the fuel hold back too.
        let err = Meter::admit(caps(10, 700), &c).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::CeilingExhausted {
                resource: "memory",
                ..
            }
        ));
        assert_eq!(c.fuel_available(), 40, "fuel hold rolled back");
        a.settle();
    }

    #[test]
    fn settlement_refunds_unspent_fuel_and_all_memory() {
        for stripes in [1, 2, 4, 8] {
            let c = SharedCeiling::new(caps(100, 1000), stripes);
            let mut m = Meter::admit(caps(60, 400), &c).unwrap();
            for _ in 0..25 {
                m.charge_fuel().unwrap();
            }
            m.charge_mem(128).unwrap();
            m.settle();
            assert_eq!(c.fuel_available(), 75, "spent fuel stays spent");
            assert_eq!(c.mem_available(), 1000, "memory returns in full");
            // Settle is idempotent.
            m.settle();
            assert_eq!(c.fuel_available(), 75);
        }
    }

    #[test]
    fn local_exhaustion_is_ceiling_independent() {
        // An admitted meter trips exactly like a plain one: same
        // charge, same payload — the ceiling never changes the point.
        for stripes in [1, 3, 8] {
            let c = SharedCeiling::new(caps(1000, 10_000), stripes);
            let mut plain = Meter::new(caps(3, 64));
            let mut admitted = Meter::admit(caps(3, 64), &c).unwrap();
            for _ in 0..3 {
                plain.charge_fuel().unwrap();
                admitted.charge_fuel().unwrap();
            }
            assert_eq!(plain.charge_fuel(), admitted.charge_fuel());
            assert_eq!(plain.charge_mem(100), admitted.charge_mem(100));
            admitted.settle();
        }
    }

    #[test]
    fn lazy_meter_draws_blocks_and_exhausts_on_empty_pool() {
        let c = SharedCeiling::new(
            Limits {
                fuel: Some(FUEL_BLOCK + 7),
                mem_bytes: None,
            },
            4,
        );
        let mut m = Meter::admit(Limits::unlimited(), &c).unwrap();
        assert!(m.draws_lazily());
        for _ in 0..(FUEL_BLOCK + 7) {
            m.charge_fuel().unwrap();
        }
        assert_eq!(
            m.charge_fuel(),
            Err(RuntimeError::CeilingExhausted {
                resource: "fuel",
                requested: 1,
                available: 0,
            })
        );
        m.settle();
        assert_eq!(c.fuel_available(), 0, "every drawn unit was spent");
    }

    #[test]
    fn lazy_mem_draws_and_refunds_exact_bytes() {
        let c = SharedCeiling::new(
            Limits {
                fuel: None,
                mem_bytes: Some(256),
            },
            2,
        );
        let mut m = Meter::admit(Limits::unlimited(), &c).unwrap();
        m.charge_mem(200).unwrap();
        assert_eq!(c.mem_available(), 56);
        assert!(matches!(
            m.charge_mem(100),
            Err(RuntimeError::CeilingExhausted {
                resource: "memory",
                requested: 100,
                ..
            })
        ));
        m.settle();
        assert_eq!(c.mem_available(), 256, "memory returns on settle");
    }

    #[test]
    fn clone_and_sub_meter_carry_no_lease() {
        let c = SharedCeiling::new(caps(100, 100), 2);
        let mut m = Meter::admit(caps(40, 40), &c).unwrap();
        let clone = m.clone();
        let sub = m.sub_meter(10);
        drop(clone);
        drop(sub);
        m.settle();
        assert_eq!(c.fuel_available(), 100, "only the original refunds");
        assert_eq!(c.mem_available(), 100);
    }

    #[test]
    fn racing_reservations_never_overcommit() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Hammer the pool from many threads; an atomic tally of
        // outstanding grants proves the sum never exceeds the pool.
        const POOL: u64 = 10_000;
        for stripes in [1, 4, 8] {
            let c = SharedCeiling::new(
                Limits {
                    fuel: Some(POOL),
                    mem_bytes: None,
                },
                stripes,
            );
            let outstanding = AtomicU64::new(0);
            let granted = AtomicU64::new(0);
            std::thread::scope(|s| {
                for t in 0..8u64 {
                    let c = &c;
                    let outstanding = &outstanding;
                    let granted = &granted;
                    s.spawn(move || {
                        let mut x = t.wrapping_mul(0x9E3779B97F4A7C15).max(1);
                        for _ in 0..2000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let amount = x % 700 + 1;
                            if c.reserve_fuel(amount) {
                                let now = outstanding.fetch_add(amount, Ordering::SeqCst) + amount;
                                assert!(now <= POOL, "over-committed: {now} > {POOL}");
                                granted.fetch_add(amount, Ordering::Relaxed);
                                outstanding.fetch_sub(amount, Ordering::SeqCst);
                                c.refund_fuel(amount);
                            }
                        }
                    });
                }
            });
            assert!(granted.load(Ordering::Relaxed) > 0, "some grants happened");
            assert_eq!(
                c.fuel_available(),
                POOL,
                "full refunds restore the pool exactly (stripes={stripes})"
            );
        }
    }

    #[test]
    fn reservation_ordinals_are_dense_and_monotonic() {
        let c = SharedCeiling::new(caps(100, 100), 4);
        assert_eq!(c.reservations(), 0);
        for want in 0..10 {
            assert_eq!(c.take_ordinal(), want);
        }
        assert_eq!(c.reservations(), 10);
        // Uncapped pools hand out ordinals too — the serving layer
        // stamps admissions whether or not resources are finite.
        let open = SharedCeiling::new(Limits::unlimited(), 1);
        assert_eq!(open.take_ordinal(), 0);
        assert_eq!(open.take_ordinal(), 1);
    }

    #[test]
    fn plan_parses_points_flags_and_seeds() {
        let plan = FaultPlan::parse("r0c1:panic, r2c3:allocfail").unwrap();
        assert_eq!(plan.points.len(), 2);
        assert!(plan.snapshot);
        assert_eq!(plan.lookup(0, 1), Some(FaultKind::Panic));
        assert_eq!(plan.lookup(2, 3), Some(FaultKind::AllocFail));
        assert_eq!(plan.lookup(1, 1), None);

        let plan = FaultPlan::parse("nosnapshot,r1c0:panic").unwrap();
        assert!(!plan.snapshot);

        let a = FaultPlan::parse("seed:42").unwrap();
        let b = FaultPlan::parse("seed:42").unwrap();
        assert_eq!(a, b, "seeded plans are deterministic");
        assert_eq!(a.points.len(), 4);

        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("r1c2:fire").is_err());
        assert!(FaultPlan::parse("seed:x").is_err());
    }
}
