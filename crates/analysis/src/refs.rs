//! Reference collection: find every array read and write in a
//! comprehension, with normalized affine subscripts.
//!
//! Each s/v clause *writes* the element named by its subscripts and
//! *reads* every `a!(...)` selection inside its value expression. `let`
//! bindings on the clause's path are inlined first so that subscript
//! analysis sees through common-subexpression naming (§3.1). A
//! reference whose subscript is not linear in the loop indices gets
//! `norm = None` and is treated pessimistically downstream.

use hac_lang::ast::{ClauseId, Comp, Expr};
use hac_lang::env::ConstEnv;
use hac_lang::normalize::{
    inline_path_lets, normalize_nest, normalized_subscript, NormalizeError, NormalizedLoop,
};
use hac_lang::number::{clause_contexts, ClauseContext, PathStep};

use crate::equation::NormRef;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
}

/// One array reference site.
#[derive(Debug, Clone, PartialEq)]
pub struct RefSite {
    pub clause: ClauseId,
    pub array: String,
    pub access: Access,
    /// Normalized subscripts over the clause's nest; `None` when any
    /// dimension is nonlinear in the loop indices.
    pub norm: Option<NormRef>,
    /// `true` when the reference executes only under a guard or inside
    /// an `if` branch — the dependence tests then overestimate, which
    /// is safe.
    pub conditional: bool,
}

/// All references made by one clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseRefs {
    pub ctx: ClauseContext,
    pub nest: Vec<NormalizedLoop>,
    /// The clause's write (to the array being defined/updated).
    pub write: RefSite,
    /// Every read in the value expression, in occurrence order.
    pub reads: Vec<RefSite>,
}

impl ClauseRefs {
    /// The clause id.
    pub fn id(&self) -> ClauseId {
        self.ctx.clause.id
    }

    /// Reads of a particular array.
    pub fn reads_of<'a>(&'a self, array: &'a str) -> impl Iterator<Item = &'a RefSite> {
        self.reads.iter().filter(move |r| r.array == array)
    }

    /// Product of the nest's loop sizes: the number of instances of
    /// this clause (ignoring guards).
    pub fn instance_count(&self) -> i64 {
        self.nest.iter().map(|l| l.size).product()
    }

    /// `true` when the clause sits under at least one guard.
    pub fn guarded(&self) -> bool {
        self.ctx
            .path
            .iter()
            .any(|s| matches!(s, PathStep::Guard(_)))
    }
}

/// Collect references for every clause of a comprehension defining (or
/// updating) the array named `target`. `env` must bind every program
/// parameter used in loop bounds.
///
/// # Errors
/// Propagates [`NormalizeError`] from loop normalization (unbound
/// parameters, triangular bounds).
pub fn collect_refs(
    comp: &Comp,
    target: &str,
    env: &ConstEnv,
) -> Result<Vec<ClauseRefs>, NormalizeError> {
    let mut out = Vec::new();
    for ctx in clause_contexts(comp) {
        let nest = normalize_nest(&ctx, env)?;
        let write_dims: Option<Vec<_>> = ctx
            .clause
            .subs
            .iter()
            .map(|s| normalized_subscript(s, &nest, &ctx, env))
            .collect();
        let guarded = ctx.path.iter().any(|s| matches!(s, PathStep::Guard(_)));
        let write = RefSite {
            clause: ctx.clause.id,
            array: target.to_string(),
            access: Access::Write,
            norm: write_dims.map(|dims| NormRef {
                dims,
                nest: nest.clone(),
            }),
            conditional: guarded,
        };
        let value = inline_path_lets(&ctx, &ctx.clause.value);
        let mut reads = Vec::new();
        collect_reads(&value, &ctx, &nest, env, guarded, &mut reads);
        out.push(ClauseRefs {
            ctx,
            nest,
            write,
            reads,
        });
    }
    Ok(out)
}

fn collect_reads(
    e: &Expr,
    ctx: &ClauseContext,
    nest: &[NormalizedLoop],
    env: &ConstEnv,
    conditional: bool,
    out: &mut Vec<RefSite>,
) {
    match e {
        Expr::Index { array, subs } => {
            let dims: Option<Vec<_>> = subs
                .iter()
                .map(|s| normalized_subscript(s, nest, ctx, env))
                .collect();
            out.push(RefSite {
                clause: ctx.clause.id,
                array: array.clone(),
                access: Access::Read,
                norm: dims.map(|dims| NormRef {
                    dims,
                    nest: nest.to_vec(),
                }),
                conditional,
            });
            // Subscripts may themselves read arrays (then nonlinear for
            // the outer read, but still real reads of the inner array).
            for s in subs {
                collect_reads(s, ctx, nest, env, conditional, out);
            }
        }
        Expr::Num(_) | Expr::Int(_) | Expr::Var(_) => {}
        Expr::Binary { lhs, rhs, .. } => {
            collect_reads(lhs, ctx, nest, env, conditional, out);
            collect_reads(rhs, ctx, nest, env, conditional, out);
        }
        Expr::Unary { expr, .. } => collect_reads(expr, ctx, nest, env, conditional, out),
        Expr::If { cond, then, els } => {
            collect_reads(cond, ctx, nest, env, conditional, out);
            // Branches execute conditionally.
            collect_reads(then, ctx, nest, env, true, out);
            collect_reads(els, ctx, nest, env, true, out);
        }
        Expr::Let { binds, body } => {
            // `inline_path_lets` already inlined expression lets on the
            // main path, but defensive recursion costs nothing.
            for (_, b) in binds {
                collect_reads(b, ctx, nest, env, conditional, out);
            }
            collect_reads(body, ctx, nest, env, conditional, out);
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_reads(a, ctx, nest, env, conditional, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    fn collect(src: &str, target: &str, env: &ConstEnv) -> Vec<ClauseRefs> {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        collect_refs(&c, target, env).unwrap()
    }

    #[test]
    fn wavefront_refs() {
        let env = ConstEnv::from_pairs([("n", 8)]);
        let refs = collect(
            "[ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1) | i <- [2..n], j <- [2..n] ]",
            "a",
            &env,
        );
        assert_eq!(refs.len(), 1);
        let c = &refs[0];
        assert_eq!(c.reads.len(), 3);
        assert!(c.reads.iter().all(|r| r.array == "a" && r.norm.is_some()));
        let w = c.write.norm.as_ref().unwrap();
        assert_eq!(w.dims.len(), 2);
        assert_eq!(c.instance_count(), 49);
        assert!(!c.guarded());
    }

    #[test]
    fn nonlinear_read_flagged() {
        let env = ConstEnv::new();
        let refs = collect("[ i := a!(i*i) | i <- [1..9] ]", "a", &env);
        assert_eq!(refs[0].reads.len(), 1);
        assert!(refs[0].reads[0].norm.is_none());
        assert!(refs[0].write.norm.is_some());
    }

    #[test]
    fn indirect_subscript_reads_both_arrays() {
        // a!(p!i): nonlinear read of `a`, linear read of `p`.
        let env = ConstEnv::new();
        let refs = collect("[ i := a!(p!i) | i <- [1..9] ]", "a", &env);
        let reads = &refs[0].reads;
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].array, "a");
        assert!(reads[0].norm.is_none());
        assert_eq!(reads[1].array, "p");
        assert!(reads[1].norm.is_some());
    }

    #[test]
    fn conditional_reads_marked() {
        let env = ConstEnv::new();
        let refs = collect(
            "[ i := if i == 1 then 1 else a!(i-1) | i <- [1..9] ]",
            "a",
            &env,
        );
        assert_eq!(refs[0].reads.len(), 1);
        assert!(refs[0].reads[0].conditional);
    }

    #[test]
    fn guard_marks_everything_conditional() {
        let env = ConstEnv::new();
        let refs = collect("[ i := a!(i-1) | i <- [1..9], i > 3 ]", "a", &env);
        assert!(refs[0].guarded());
        assert!(refs[0].write.conditional);
        assert!(refs[0].reads[0].conditional);
    }

    #[test]
    fn where_bindings_see_through() {
        let env = ConstEnv::new();
        let refs = collect("[ i := v + 1 where v = a!(i-1) | i <- [2..9] ]", "a", &env);
        assert_eq!(refs[0].reads.len(), 1);
        let norm = refs[0].reads[0].norm.as_ref().unwrap();
        // i ∈ [2..9] normalizes to i = x + 1; subscript i - 1 = x.
        assert_eq!(norm.dims[0].coeff(&refs[0].nest[0].norm_var()), 1);
        assert_eq!(norm.dims[0].constant_part(), 0);
    }

    #[test]
    fn multiple_clauses_collect_separately() {
        let env = ConstEnv::from_pairs([("n", 5)]);
        let refs = collect("[ 1 := 0 ] ++ [ i := a!(i-1) | i <- [2..n] ]", "a", &env);
        assert_eq!(refs.len(), 2);
        assert!(refs[0].nest.is_empty());
        assert_eq!(refs[0].instance_count(), 1);
        assert_eq!(refs[1].nest.len(), 1);
    }
}
