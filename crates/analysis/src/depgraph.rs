//! Dependence-graph construction over s/v clauses (§5, §7, §9).
//!
//! Three kinds of edges, all oriented **source → sink** where the
//! source must be computed before the sink for the optimization that
//! consumes the edge:
//!
//! * **Flow** (true): a write supplies a value a read needs — the paper's
//!   thunkless-compilation edges (§5, §8).
//! * **Output**: two writes hit the same element — write collisions
//!   (§7); for monolithic arrays these are errors/checks, for
//!   accumulated arrays with non-commutative combining they become
//!   ordering constraints.
//! * **Anti**: a read of the old version precedes a write in `bigupd` —
//!   in-place update scheduling (§9).
//!
//! References with nonlinear subscripts produce a single pessimistic
//! edge labeled with the all-`*` vector ("overestimating dependences",
//! §1).

use hac_lang::ast::ClauseId;

use crate::direction::{Dir, DirVec};
use crate::equation::{build_equations, shared_depth, DimEquation};
use crate::refs::{ClauseRefs, RefSite};
use crate::search::{refine_directions, Confidence, TestPolicy, TestStats};

/// Dependence kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    Flow,
    Anti,
    Output,
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepKind::Flow => write!(f, "flow"),
            DepKind::Anti => write!(f, "anti"),
            DepKind::Output => write!(f, "output"),
        }
    }
}

/// One labeled dependence edge between clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct DepEdge {
    pub src: ClauseId,
    pub dst: ClauseId,
    pub kind: DepKind,
    pub array: String,
    /// Direction vector over the shared loops of `src`/`dst`.
    pub dv: DirVec,
    pub confidence: Confidence,
    /// Per-shared-loop constant distance `sink − source`, when the
    /// subscripts force one (drives node-splitting temporaries, §9).
    pub distance: Option<Vec<i64>>,
    /// When the source endpoint is a read, its index into the source
    /// clause's `reads` vector (node splitting redirects it, §9).
    pub src_read: Option<usize>,
    /// When the sink endpoint is a read, its index into the sink
    /// clause's `reads` vector.
    pub dst_read: Option<usize>,
}

impl DepEdge {
    /// `true` when this is a self-edge (same clause).
    pub fn is_self(&self) -> bool {
        self.src == self.dst
    }
}

/// A set of dependence edges over the clauses of one array expression.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DependenceGraph {
    pub edges: Vec<DepEdge>,
    pub stats: TestStats,
}

impl DependenceGraph {
    /// Edges of one kind.
    pub fn of_kind(&self, kind: DepKind) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.kind == kind)
    }

    /// Merge another graph's edges and stats into this one.
    pub fn absorb(&mut self, other: DependenceGraph) {
        self.edges.extend(other.edges);
        self.stats.absorb(&other.stats);
    }
}

/// Test one (source ref, sink ref) pair and append surviving edges.
///
/// `exclude_all_eq` drops the all-`=` vector — used for self-pairs
/// (same reference twice) where the "dependence" of an instance on
/// itself is vacuous, and for write/write self-collisions where only
/// *distinct* instances collide.
#[allow(clippy::too_many_arguments)]
fn test_pair(
    src: &RefSite,
    snk: &RefSite,
    src_refs: &ClauseRefs,
    snk_refs: &ClauseRefs,
    kind: DepKind,
    exclude_all_eq: bool,
    reads: (Option<usize>, Option<usize>),
    policy: &TestPolicy,
    out: &mut DependenceGraph,
) {
    let (src_read, dst_read) = reads;
    let depth = src_refs.ctx.shared_prefix_len(&snk_refs.ctx);
    match (&src.norm, &snk.norm) {
        (Some(s), Some(k)) => {
            let Some(eqs) = build_equations(s, k) else {
                // Rank mismatch: distinct elements can never alias.
                return;
            };
            debug_assert_eq!(shared_depth(s, k), depth);
            let r = refine_directions(&eqs, depth, policy);
            out.stats.absorb(&r.stats);
            for dep in r.dependences {
                if exclude_all_eq && dep.dv.is_loop_independent() {
                    continue;
                }
                let distance = constant_distance(&eqs, &dep.dv);
                out.edges.push(DepEdge {
                    src: src.clause,
                    dst: snk.clause,
                    kind,
                    array: src.array.clone(),
                    dv: dep.dv,
                    confidence: dep.confidence,
                    distance,
                    src_read,
                    dst_read,
                });
            }
        }
        _ => {
            // Nonlinear subscript: assume everything (the pessimistic
            // strategy the paper's analysis exists to avoid).
            let dv = DirVec::any(depth);
            if exclude_all_eq && depth == 0 {
                return;
            }
            out.edges.push(DepEdge {
                src: src.clause,
                dst: snk.clause,
                kind,
                array: src.array.clone(),
                dv,
                confidence: Confidence::Possible,
                distance: None,
                src_read,
                dst_read,
            });
        }
    }
}

/// Flow (true) dependences of a recursively defined monolithic array:
/// every write clause × every read of `target` (§5).
pub fn flow_dependences(refs: &[ClauseRefs], target: &str, policy: &TestPolicy) -> DependenceGraph {
    let mut g = DependenceGraph::default();
    for w in refs {
        for r in refs {
            for (ri, read) in r.reads.iter().enumerate() {
                if read.array != target {
                    continue;
                }
                // Source: the write; sink: the read. A same-clause
                // same-instance "dependence" (write feeding the very
                // instance computing it) is a genuine ⊥ cycle and is
                // kept — the scheduler reports it as unschedulable.
                test_pair(
                    &w.write,
                    read,
                    w,
                    r,
                    DepKind::Flow,
                    false,
                    (None, Some(ri)),
                    policy,
                    &mut g,
                );
            }
        }
    }
    g
}

/// Output dependences / write collisions: every unordered pair of
/// writes, including a clause against its own other instances (§7).
pub fn output_dependences(refs: &[ClauseRefs], policy: &TestPolicy) -> DependenceGraph {
    let mut g = DependenceGraph::default();
    for (i, w1) in refs.iter().enumerate() {
        for w2 in refs.iter().skip(i) {
            let self_pair = w1.id() == w2.id();
            test_pair(
                &w1.write,
                &w2.write,
                w1,
                w2,
                DepKind::Output,
                self_pair, // distinct instances only
                (None, None),
                policy,
                &mut g,
            );
        }
    }
    g
}

/// Anti dependences for `bigupd` (§9): every read of the *base* array
/// (source — must happen first) × every write (sink — the in-place
/// overwrite that would kill the value).
pub fn anti_dependences(refs: &[ClauseRefs], base: &str, policy: &TestPolicy) -> DependenceGraph {
    let mut g = DependenceGraph::default();
    for r in refs {
        for (ri, read) in r.reads.iter().enumerate() {
            if read.array != base {
                continue;
            }
            for w in refs {
                test_pair(
                    read,
                    &w.write,
                    r,
                    w,
                    DepKind::Anti,
                    false,
                    (Some(ri), None),
                    policy,
                    &mut g,
                );
            }
        }
    }
    g
}

/// Derive a constant distance vector `d_k = y_k − x_k` per shared loop
/// when the equations force one. Requires `a_k = b_k` for every shared
/// loop in every dimension (otherwise the offset varies with position)
/// and no unshared loop with a nonzero coefficient. Distances are
/// resolved dimension-by-dimension (a dimension with exactly one
/// not-yet-resolved loop pins that loop) to a fixpoint, then every
/// dimension is verified. Unresolved loops under an `=` constraint
/// default to distance 0.
pub fn constant_distance(eqs: &[DimEquation], dv: &DirVec) -> Option<Vec<i64>> {
    let s = dv.len();
    if eqs.is_empty() {
        return Some(vec![0; s]);
    }
    for eq in eqs {
        if eq.shared.iter().any(|t| t.a != t.b) {
            return None;
        }
        if eq
            .src_only
            .iter()
            .chain(eq.snk_only.iter())
            .any(|t| t.coeff != 0)
        {
            return None;
        }
    }
    // With a_k = b_k: f(x) = g(y) gives a0 + Σ a_k x_k = b0 + Σ a_k y_k,
    // i.e. Σ_k a_k^dim · d_k = a0 − b0 with d_k = y_k − x_k.
    let mut d: Vec<Option<i64>> = vec![None; s];
    for (k, dir) in dv.0.iter().enumerate() {
        if *dir == Dir::Eq {
            d[k] = Some(0);
        }
    }
    loop {
        let mut progressed = false;
        for eq in eqs {
            let mut rem = -eq.rhs();
            let mut unresolved: Option<usize> = None;
            let mut multi = false;
            for (k, t) in eq.shared.iter().enumerate() {
                match d[k] {
                    Some(dk) => rem -= t.a * dk,
                    None if t.a != 0 => {
                        if unresolved.is_some() {
                            multi = true;
                        } else {
                            unresolved = Some(k);
                        }
                    }
                    None => {}
                }
            }
            if multi {
                continue;
            }
            match unresolved {
                Some(k) => {
                    let a = eq.shared[k].a;
                    if rem % a != 0 {
                        return None; // inconsistent: no integer distance
                    }
                    d[k] = Some(rem / a);
                    progressed = true;
                }
                None => {
                    if rem != 0 {
                        return None; // inconsistent dimension
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
    let mut out = Vec::with_capacity(s);
    for (k, dk) in d.iter().enumerate() {
        match dk {
            Some(v) => {
                // Must agree with the direction label (d = y − x).
                let ok = match dv.0[k] {
                    Dir::Lt => *v > 0,
                    Dir::Eq => *v == 0,
                    Dir::Gt => *v < 0,
                    Dir::Any => true,
                };
                if !ok {
                    return None;
                }
                out.push(*v);
            }
            None => return None,
        }
    }
    // Final verification of every dimension.
    for eq in eqs {
        let sum: i64 = eq
            .shared
            .iter()
            .zip(out.iter())
            .map(|(t, dk)| t.a * dk)
            .sum();
        if sum != -eq.rhs() {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::env::ConstEnv;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    use crate::refs::collect_refs;

    fn refs(src: &str, target: &str, env: &ConstEnv) -> Vec<ClauseRefs> {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        collect_refs(&c, target, env).unwrap()
    }

    fn dirs(g: &DependenceGraph, src: u32, dst: u32) -> Vec<String> {
        g.edges
            .iter()
            .filter(|e| e.src == ClauseId(src) && e.dst == ClauseId(dst))
            .map(|e| e.dv.to_string())
            .collect()
    }

    #[test]
    fn section5_example1_graph() {
        // let a = array (1,300)
        //   [* [3*i := ...] ++ [3*i-1 := ... a!(3*(i-1)) ...] ++
        //      [3*i-2 := ... a!(3*i) ...] | i <- [1..100] *]
        let env = ConstEnv::new();
        let r = refs(
            "[* [ 3*i := 1 ] ++ [ 3*i-1 := a!(3*(i-1)) ] ++ [ 3*i-2 := a!(3*i) ] \
             | i <- [1..100] *]",
            "a",
            &env,
        );
        let g = flow_dependences(&r, "a", &TestPolicy::default());
        // The paper's edges: 1→2(<) and 1→3(=) (our ids are 0-based).
        assert_eq!(dirs(&g, 0, 1), vec!["(<)"]);
        assert_eq!(dirs(&g, 0, 2), vec!["(=)"]);
        // No other flow edges.
        assert_eq!(g.edges.len(), 2);
        // Both confirmed by the exact test, with distances.
        assert!(g
            .edges
            .iter()
            .all(|e| matches!(e.confidence, Confidence::Confirmed(_))));
        let e01 = &g.edges[0];
        assert_eq!(e01.distance, Some(vec![1]));
    }

    #[test]
    fn wavefront_self_edges() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let r = refs(
            "[ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1) | i <- [2..n], j <- [2..n] ]",
            "a",
            &env,
        );
        let g = flow_dependences(&r, "a", &TestPolicy::default());
        let mut dvs: Vec<String> = g.edges.iter().map(|e| e.dv.to_string()).collect();
        dvs.sort();
        assert_eq!(dvs, vec!["(<,<)", "(<,=)", "(=,<)"]);
        // All distances constant: (1,0), (0,1), (1,1).
        let mut dists: Vec<Vec<i64>> = g
            .edges
            .iter()
            .map(|e| e.distance.clone().unwrap())
            .collect();
        dists.sort();
        assert_eq!(dists, vec![vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn output_collision_detected_and_located() {
        // Two clauses both write element 5 (i = 5 from first, constant
        // 5 from second).
        let env = ConstEnv::new();
        let r = refs("[ i := 0 | i <- [1..9] ] ++ [ 5 := 1 ]", "a", &env);
        let g = output_dependences(&r, &TestPolicy::default());
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].kind, DepKind::Output);
        assert!(matches!(g.edges[0].confidence, Confidence::Confirmed(_)));
    }

    #[test]
    fn disjoint_writes_no_collision() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let r = refs(
            "[ 2*i := 0 | i <- [1..n] ] ++ [ 2*i-1 := 1 | i <- [1..n] ]",
            "a",
            &env,
        );
        let g = output_dependences(&r, &TestPolicy::default());
        assert!(g.edges.is_empty(), "even/odd writes cannot collide: {g:?}");
    }

    #[test]
    fn self_collision_excludes_same_instance() {
        // One clause writing i: distinct instances never collide.
        let env = ConstEnv::new();
        let r = refs("[ i := 0 | i <- [1..9] ]", "a", &env);
        let g = output_dependences(&r, &TestPolicy::default());
        assert!(g.edges.is_empty());
        // But writing i mod-free constant collides across instances:
        let r2 = refs("[ 3 := i | i <- [1..9] ]", "a", &env);
        let g2 = output_dependences(&r2, &TestPolicy::default());
        assert!(!g2.edges.is_empty());
    }

    #[test]
    fn anti_edges_for_row_swap() {
        // §9 LINPACK row swap: clauses read the row the other writes.
        let env = ConstEnv::from_pairs([("n", 8)]);
        let r = refs(
            "[ (1,j) := a!(2,j) | j <- [1..n] ] ++ [ (2,j) := a!(1,j) | j <- [1..n] ]",
            "a",
            &env,
        );
        let g = anti_dependences(&r, "a", &TestPolicy::default());
        // clause 0 reads (2,j) which clause 1 writes: anti 0→1 (=)...
        // wait: the loops of the two clauses are DIFFERENT generators
        // (unshared), so the direction vector is empty.
        assert_eq!(dirs(&g, 0, 1), vec!["()"]);
        assert_eq!(dirs(&g, 1, 0), vec!["()"]);
        assert_eq!(g.edges.len(), 2, "{g:?}");
    }

    #[test]
    fn nonlinear_gets_pessimistic_edge() {
        let env = ConstEnv::new();
        let r = refs("[ i := a!(i*i) | i <- [1..9] ]", "a", &env);
        let g = flow_dependences(&r, "a", &TestPolicy::default());
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].dv, DirVec::any(1));
        assert_eq!(g.edges[0].distance, None);
    }

    #[test]
    fn distance_none_when_coeffs_differ() {
        let env = ConstEnv::new();
        let r = refs("[ 2*i := a!i | i <- [1..9] ]", "a", &env);
        let g = flow_dependences(&r, "a", &TestPolicy::default());
        for e in &g.edges {
            assert_eq!(e.distance, None, "varying offset has no constant distance");
        }
    }

    #[test]
    fn rank_mismatch_skipped() {
        let env = ConstEnv::new();
        // Value reads a 1-D view name `b`, target is 2-D `a`; reads of
        // `a` with wrong rank would be skipped — construct directly:
        let r = refs("[ (i,i) := b!i | i <- [1..4] ]", "a", &env);
        let g = flow_dependences(&r, "a", &TestPolicy::default());
        assert!(g.edges.is_empty());
    }
}
