//! Dependence direction vectors (§5, §6).
//!
//! A direction vector labels a dependence edge with one component per
//! *shared* loop surrounding both the source and the sink reference,
//! outermost first. Component semantics relate the **source** instance
//! `x_k` to the **sink** instance `y_k` of loop `k`:
//!
//! * `<` — `x_k < y_k`: the source is computed at an "earlier" value of
//!   the loop index than the sink (earlier in *index space*, not time —
//!   the paper is explicit that functional arrays have no a-priori
//!   temporal order).
//! * `=` — `x_k = y_k`: same loop instance.
//! * `>` — `x_k > y_k`: source at a "later" index value.
//! * `*` — unconstrained.

use std::fmt;

/// One direction-vector component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    Lt,
    Eq,
    Gt,
    /// Unconstrained (`*`).
    Any,
}

impl Dir {
    /// The three refinements of `*`; a concrete component refines only
    /// to itself.
    pub fn refinements(self) -> &'static [Dir] {
        match self {
            Dir::Any => &[Dir::Lt, Dir::Eq, Dir::Gt],
            Dir::Lt => &[Dir::Lt],
            Dir::Eq => &[Dir::Eq],
            Dir::Gt => &[Dir::Gt],
        }
    }

    /// Swap `<` and `>` (used when re-orienting an edge).
    pub fn flip(self) -> Dir {
        match self {
            Dir::Lt => Dir::Gt,
            Dir::Gt => Dir::Lt,
            other => other,
        }
    }

    /// `true` if `other` satisfies this constraint (`*` admits all).
    pub fn admits(self, other: Dir) -> bool {
        self == Dir::Any || self == other
    }

    /// The surface symbol.
    pub fn symbol(self) -> char {
        match self {
            Dir::Lt => '<',
            Dir::Eq => '=',
            Dir::Gt => '>',
            Dir::Any => '*',
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A direction vector over the shared loops of an edge, outermost
/// first. The empty vector labels loop-independent dependences between
/// references that share no loop (the paper's `()` edges).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DirVec(pub Vec<Dir>);

impl DirVec {
    /// The all-`*` vector of length `n` (the refinement-tree root).
    pub fn any(n: usize) -> DirVec {
        DirVec(vec![Dir::Any; n])
    }

    /// The all-`=` vector of length `n`.
    pub fn all_eq(n: usize) -> DirVec {
        DirVec(vec![Dir::Eq; n])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty vector.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The outermost component, if any.
    pub fn first(&self) -> Option<Dir> {
        self.0.first().copied()
    }

    /// Drop the outermost component (recursing into an inner loop,
    /// §8.2.3: "strip off the leading `=`").
    pub fn strip_first(&self) -> DirVec {
        DirVec(self.0.iter().skip(1).copied().collect())
    }

    /// Flip every component (re-orient the edge).
    pub fn flip(&self) -> DirVec {
        DirVec(self.0.iter().map(|d| d.flip()).collect())
    }

    /// `true` if `other` (of the same length) refines this vector
    /// componentwise.
    pub fn admits(&self, other: &DirVec) -> bool {
        self.len() == other.len() && self.0.iter().zip(other.0.iter()).all(|(a, b)| a.admits(*b))
    }

    /// Index of the first non-`=` component, i.e. the loop level that
    /// *carries* the dependence (`None` when loop-independent: all `=`
    /// or empty). Level 0 is the outermost loop, matching the paper's
    /// "loop-carried at level 0" terminology.
    pub fn carried_level(&self) -> Option<usize> {
        self.0.iter().position(|d| *d != Dir::Eq)
    }

    /// `true` when all components are `=` (or the vector is empty):
    /// source and sink are in the same instance of every shared loop.
    pub fn is_loop_independent(&self) -> bool {
        self.carried_level().is_none()
    }

    /// A dependence whose outermost non-`=` component is `>` (or `*`,
    /// which includes `>`) is *implausible* as written: it would mean
    /// the source instance follows the sink in every legal sequential
    /// order of that loop... but for functional arrays **no** order is
    /// prescribed, so such vectors are genuine and kept. This helper
    /// instead reports whether the vector could be realized by a
    /// *forward* run of every loop (used to pick default directions).
    pub fn forward_realizable(&self) -> bool {
        match self.carried_level() {
            None => true,
            Some(k) => matches!(self.0[k], Dir::Lt | Dir::Any),
        }
    }

    /// All fully concrete (no `*`) refinements of this vector, in
    /// lexicographic `<`,`=`,`>` order.
    pub fn concretizations(&self) -> Vec<DirVec> {
        let mut out = vec![Vec::new()];
        for d in &self.0 {
            let mut next = Vec::with_capacity(out.len() * 3);
            for prefix in &out {
                for r in d.refinements() {
                    let mut v = prefix.clone();
                    v.push(*r);
                    next.push(v);
                }
            }
            out = next;
        }
        out.into_iter().map(DirVec).collect()
    }
}

impl fmt::Display for DirVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Dir>> for DirVec {
    fn from(v: Vec<Dir>) -> DirVec {
        DirVec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let dv = DirVec(vec![Dir::Eq, Dir::Gt]);
        assert_eq!(dv.to_string(), "(=,>)");
        assert_eq!(DirVec::default().to_string(), "()");
        assert_eq!(DirVec::any(3).to_string(), "(*,*,*)");
    }

    #[test]
    fn carried_level() {
        assert_eq!(DirVec(vec![Dir::Eq, Dir::Lt]).carried_level(), Some(1));
        assert_eq!(DirVec(vec![Dir::Gt, Dir::Lt]).carried_level(), Some(0));
        assert_eq!(DirVec(vec![Dir::Eq, Dir::Eq]).carried_level(), None);
        assert!(DirVec::default().is_loop_independent());
    }

    #[test]
    fn admits_and_refine() {
        let root = DirVec::any(2);
        let leaf = DirVec(vec![Dir::Lt, Dir::Gt]);
        assert!(root.admits(&leaf));
        assert!(!leaf.admits(&root));
        assert!(!root.admits(&DirVec::any(3)));
        assert_eq!(root.concretizations().len(), 9);
        assert_eq!(leaf.concretizations(), vec![leaf.clone()]);
    }

    #[test]
    fn flip_swaps_lt_gt() {
        let dv = DirVec(vec![Dir::Lt, Dir::Eq, Dir::Gt, Dir::Any]);
        assert_eq!(dv.flip(), DirVec(vec![Dir::Gt, Dir::Eq, Dir::Lt, Dir::Any]));
        assert_eq!(dv.flip().flip(), dv);
    }

    #[test]
    fn strip_first_for_inner_loops() {
        let dv = DirVec(vec![Dir::Eq, Dir::Lt]);
        assert_eq!(dv.strip_first(), DirVec(vec![Dir::Lt]));
        assert_eq!(dv.first(), Some(Dir::Eq));
    }

    #[test]
    fn forward_realizability() {
        assert!(DirVec(vec![Dir::Lt, Dir::Gt]).forward_realizable());
        assert!(!DirVec(vec![Dir::Eq, Dir::Gt]).forward_realizable());
        assert!(DirVec(vec![Dir::Eq, Dir::Eq]).forward_realizable());
    }
}
