//! The exact bounded-integer-solution test (§6, "linear diophantine
//! equation theory gives us an exact test ... but it is exponential in
//! the number of surrounding loops").
//!
//! A depth-first search assigns each shared loop's `(x_k, y_k)` pair
//! (honoring the direction constraint) and each unshared loop's index,
//! pruning with per-dimension interval bounds of the remaining terms.
//! Unlike the per-dimension GCD/Banerjee tests, the search solves all
//! subscript dimensions *simultaneously*, so "dependent" comes with a
//! concrete witness. A node budget bounds the exponential blow-up; when
//! it is exhausted the result is [`ExactResult::Unknown`] and callers
//! fall back to the inexact verdicts.

use crate::direction::{Dir, DirVec};
use crate::equation::DimEquation;

/// A concrete solution of the dependence equation, in *normalized*
/// loop coordinates (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// `(x_k, y_k)` per shared loop, outermost first.
    pub shared: Vec<(i64, i64)>,
    /// Source-only loop indices.
    pub src_only: Vec<i64>,
    /// Sink-only loop indices.
    pub snk_only: Vec<i64>,
}

/// Outcome of the exact test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactResult {
    /// An integer solution exists; the dependence is real.
    Dependent(Witness),
    /// No integer solution exists inside the region; independence is
    /// proven.
    Independent,
    /// The node budget was exhausted before the search completed.
    Unknown,
}

impl ExactResult {
    /// `true` when a dependence must be *assumed* (proven or unknown).
    pub fn must_assume_dependence(&self) -> bool {
        !matches!(self, ExactResult::Independent)
    }
}

/// Default search budget (explored assignments).
pub const DEFAULT_BUDGET: u64 = 2_000_000;

/// Run the exact test for a set of simultaneous per-dimension
/// equations (all built from the same reference pair, hence sharing
/// loop structure) under a direction vector.
pub fn exact_test(eqs: &[DimEquation], dv: &DirVec, budget: u64) -> ExactResult {
    if eqs.is_empty() {
        // No dimensions: the references trivially coincide.
        return ExactResult::Dependent(Witness {
            shared: vec![],
            src_only: vec![],
            snk_only: vec![],
        });
    }
    debug_assert!(eqs.iter().all(|e| e.shared.len() == eqs[0].shared.len()
        && e.src_only.len() == eqs[0].src_only.len()
        && e.snk_only.len() == eqs[0].snk_only.len()));
    if eqs.iter().any(|e| e.has_empty_loop()) {
        return ExactResult::Independent;
    }

    let s = eqs[0].shared.len();
    let p = eqs[0].src_only.len();
    let q = eqs[0].snk_only.len();
    let groups = s + p + q;
    let ndims = eqs.len();

    // suffix[t][dim] = (lo, hi) of Σ of groups t.. for that dim;
    // suffix[groups][dim] = (0, 0).
    let mut suffix = vec![vec![(0i64, 0i64); ndims]; groups + 1];
    for t in (0..groups).rev() {
        for (dim, eq) in eqs.iter().enumerate() {
            let b = if t < s {
                eq.shared[t].bounds(dv.0[t])
            } else if t < s + p {
                eq.src_only[t - s].bounds()
            } else {
                eq.snk_only[t - s - p].bounds()
            };
            let Some((lo, hi)) = b else {
                // Constrained region empty for some loop.
                return ExactResult::Independent;
            };
            let (nlo, nhi) = suffix[t + 1][dim];
            suffix[t][dim] = (lo + nlo, hi + nhi);
        }
    }

    struct Search<'a> {
        eqs: &'a [DimEquation],
        dv: &'a DirVec,
        suffix: Vec<Vec<(i64, i64)>>,
        s: usize,
        p: usize,
        budget: u64,
        nodes: u64,
        witness: Witness,
    }

    enum Found {
        Yes,
        No,
        OutOfBudget,
    }

    impl Search<'_> {
        fn go(&mut self, t: usize, partial: &mut [i64]) -> Found {
            self.nodes += 1;
            if self.nodes > self.budget {
                return Found::OutOfBudget;
            }
            let groups = self.suffix.len() - 1;
            // Prune on every dimension's remaining interval.
            for (dim, eq) in self.eqs.iter().enumerate() {
                let need = eq.rhs() - partial[dim];
                let (lo, hi) = self.suffix[t][dim];
                if need < lo || need > hi {
                    return Found::No;
                }
            }
            if t == groups {
                return Found::Yes; // all dims hit rhs exactly (pruning above)
            }
            if t < self.s {
                let term = self.eqs[0].shared[t];
                let m = term.size;
                let all_zero = self
                    .eqs
                    .iter()
                    .all(|e| e.shared[t].a == 0 && e.shared[t].b == 0);
                let dir = self.dv.0[t];
                let canonical: (i64, i64) = match dir {
                    Dir::Eq | Dir::Any => (1, 1),
                    Dir::Lt => (1, 2),
                    Dir::Gt => (2, 1),
                };
                let pairs: Box<dyn Iterator<Item = (i64, i64)>> = if all_zero {
                    // Coefficients vanish in every dimension: only
                    // feasibility matters, one representative suffices.
                    Box::new(std::iter::once(canonical))
                } else {
                    match dir {
                        Dir::Eq => Box::new((1..=m).map(|x| (x, x))),
                        Dir::Lt => {
                            Box::new((1..=m).flat_map(move |x| ((x + 1)..=m).map(move |y| (x, y))))
                        }
                        Dir::Gt => Box::new((1..=m).flat_map(move |x| (1..x).map(move |y| (x, y)))),
                        Dir::Any => {
                            Box::new((1..=m).flat_map(move |x| (1..=m).map(move |y| (x, y))))
                        }
                    }
                };
                for (x, y) in pairs {
                    for (dim, eq) in self.eqs.iter().enumerate() {
                        partial[dim] += eq.shared[t].a * x - eq.shared[t].b * y;
                    }
                    self.witness.shared.push((x, y));
                    match self.go(t + 1, partial) {
                        Found::Yes => return Found::Yes,
                        Found::OutOfBudget => return Found::OutOfBudget,
                        Found::No => {}
                    }
                    self.witness.shared.pop();
                    for (dim, eq) in self.eqs.iter().enumerate() {
                        partial[dim] -= eq.shared[t].a * x - eq.shared[t].b * y;
                    }
                }
                Found::No
            } else {
                let (is_src, idx) = if t < self.s + self.p {
                    (true, t - self.s)
                } else {
                    (false, t - self.s - self.p)
                };
                let coeff_of = |eq: &DimEquation| {
                    if is_src {
                        eq.src_only[idx].coeff
                    } else {
                        eq.snk_only[idx].coeff
                    }
                };
                let m = if is_src {
                    self.eqs[0].src_only[idx].size
                } else {
                    self.eqs[0].snk_only[idx].size
                };
                let all_zero = self.eqs.iter().all(|e| coeff_of(e) == 0);
                let xs: Box<dyn Iterator<Item = i64>> = if all_zero {
                    Box::new(std::iter::once(1))
                } else {
                    Box::new(1..=m)
                };
                for x in xs {
                    for (dim, eq) in self.eqs.iter().enumerate() {
                        partial[dim] += coeff_of(eq) * x;
                    }
                    if is_src {
                        self.witness.src_only.push(x);
                    } else {
                        self.witness.snk_only.push(x);
                    }
                    match self.go(t + 1, partial) {
                        Found::Yes => return Found::Yes,
                        Found::OutOfBudget => return Found::OutOfBudget,
                        Found::No => {}
                    }
                    if is_src {
                        self.witness.src_only.pop();
                    } else {
                        self.witness.snk_only.pop();
                    }
                    for (dim, eq) in self.eqs.iter().enumerate() {
                        partial[dim] -= coeff_of(eq) * x;
                    }
                }
                Found::No
            }
        }
    }

    let mut search = Search {
        eqs,
        dv,
        suffix,
        s,
        p,
        budget,
        nodes: 0,
        witness: Witness {
            shared: Vec::new(),
            src_only: Vec::new(),
            snk_only: Vec::new(),
        },
    };
    let mut partial = vec![0i64; ndims];
    match search.go(0, &mut partial) {
        Found::Yes => ExactResult::Dependent(search.witness),
        Found::No => ExactResult::Independent,
        Found::OutOfBudget => ExactResult::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equation::{LoopTerm, UnsharedTerm};

    fn eq1(size: i64, a: i64, b: i64, a0: i64, b0: i64) -> DimEquation {
        DimEquation {
            shared: vec![LoopTerm { size, a, b }],
            src_only: vec![],
            snk_only: vec![],
            a0,
            b0,
        }
    }

    fn run(eqs: &[DimEquation], dv: &DirVec) -> ExactResult {
        exact_test(eqs, dv, DEFAULT_BUDGET)
    }

    #[test]
    fn finds_witness() {
        // 3x = 3y - 3 under (<): x = 1, y = 2.
        let eq = eq1(100, 3, 3, 0, -3);
        match run(&[eq], &DirVec(vec![Dir::Lt])) {
            ExactResult::Dependent(w) => {
                let (x, y) = w.shared[0];
                assert!(x < y);
                assert_eq!(3 * x - 3 * y, -3);
            }
            other => panic!("expected dependent, got {other:?}"),
        }
    }

    #[test]
    fn gcd_style_independence() {
        let eq = eq1(100, 2, 2, 0, 1);
        assert_eq!(run(&[eq], &DirVec::any(1)), ExactResult::Independent);
    }

    #[test]
    fn banerjee_blind_spot_caught() {
        // 2x - y = 0 with x,y ∈ [1..3]: solutions (1,2). Banerjee and
        // GCD both pass; exact confirms with a witness.
        let eq = eq1(3, 2, 1, 0, 0);
        assert!(matches!(
            run(&[eq], &DirVec::any(1)),
            ExactResult::Dependent(_)
        ));
        // But under (>) — x > y — 2x - y = 0 needs y = 2x > x > y:
        // impossible. GCD still passes; exact proves independence.
        assert_eq!(
            run(&[eq1(3, 2, 1, 0, 0)], &DirVec(vec![Dir::Gt])),
            ExactResult::Independent
        );
        assert!(crate::gcd::gcd_test_dim(
            &eq1(3, 2, 1, 0, 0),
            &DirVec(vec![Dir::Gt])
        ));
    }

    #[test]
    fn simultaneous_dimensions() {
        // dim0: x - y = 0 (needs x = y); dim1: x - y = 1 with the SAME
        // x, y — jointly unsatisfiable even though each dim alone is
        // satisfiable under (*).
        let d0 = eq1(10, 1, 1, 0, 0);
        let d1 = eq1(10, 1, 1, 0, 1);
        assert!(matches!(
            run(std::slice::from_ref(&d0), &DirVec::any(1)),
            ExactResult::Dependent(_)
        ));
        assert!(matches!(
            run(std::slice::from_ref(&d1), &DirVec::any(1)),
            ExactResult::Dependent(_)
        ));
        assert_eq!(run(&[d0, d1], &DirVec::any(1)), ExactResult::Independent);
    }

    #[test]
    fn unshared_loops_searched() {
        // f = 2x (shared M=4), g = y' (sink-only M=3): 2x - y' = 5 →
        // x=3, y'=1 works.
        let eq = DimEquation {
            shared: vec![LoopTerm {
                size: 4,
                a: 2,
                b: 0,
            }],
            src_only: vec![],
            snk_only: vec![UnsharedTerm { coeff: -1, size: 3 }],
            a0: 0,
            b0: 5,
        };
        assert!(matches!(
            run(&[eq], &DirVec::any(1)),
            ExactResult::Dependent(_)
        ));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // x - y + 10x' - 10y' = 5 with M = 3 everywhere:
        // x - y ∈ [-2, 2], so 5 - (x - y) ∈ [3, 7] is never a multiple
        // of 10 — independent, but only after searching both loops.
        let eq = DimEquation {
            shared: vec![
                LoopTerm {
                    size: 3,
                    a: 1,
                    b: 1,
                },
                LoopTerm {
                    size: 3,
                    a: 10,
                    b: 10,
                },
            ],
            src_only: vec![],
            snk_only: vec![],
            a0: 0,
            b0: 5,
        };
        assert_eq!(
            run(std::slice::from_ref(&eq), &DirVec::any(2)),
            ExactResult::Independent
        );
        assert_eq!(exact_test(&[eq], &DirVec::any(2), 3), ExactResult::Unknown);
    }

    #[test]
    fn zero_coefficient_loops_skipped_cheaply() {
        // Ten shared loops with zero coefficients around a simple
        // equation: must finish in far fewer nodes than the budget.
        let mut shared = vec![
            LoopTerm {
                size: 1000,
                a: 0,
                b: 0
            };
            10
        ];
        shared.push(LoopTerm {
            size: 1000,
            a: 1,
            b: 1,
        });
        let eq = DimEquation {
            shared,
            src_only: vec![],
            snk_only: vec![],
            a0: 0,
            b0: 0,
        };
        assert!(matches!(
            exact_test(&[eq], &DirVec::any(11), 10_000),
            ExactResult::Dependent(_)
        ));
    }

    #[test]
    fn exact_matches_brute_force() {
        // Exhaustive cross-check on small instances.
        for a in -2..=2i64 {
            for b in -2..=2i64 {
                for rhs in -3..=3i64 {
                    for m in 1..=4i64 {
                        for dir in [Dir::Any, Dir::Lt, Dir::Eq, Dir::Gt] {
                            let eq = eq1(m, a, b, 0, rhs);
                            let mut solvable = false;
                            for x in 1..=m {
                                for y in 1..=m {
                                    let ok = match dir {
                                        Dir::Any => true,
                                        Dir::Lt => x < y,
                                        Dir::Eq => x == y,
                                        Dir::Gt => x > y,
                                    };
                                    if ok && a * x - b * y == rhs {
                                        solvable = true;
                                    }
                                }
                            }
                            let got = run(&[eq], &DirVec(vec![dir]));
                            assert_eq!(
                                matches!(got, ExactResult::Dependent(_)),
                                solvable,
                                "a={a} b={b} rhs={rhs} m={m} dir={dir}"
                            );
                        }
                    }
                }
            }
        }
    }
}
