//! Multi-loop-per-dimension analysis cases (§6's 1-D theory applied to
//! coupled subscripts like `a!(i+j)` and linearized accesses
//! `a!(n*i + j)`), exercised as focused tests of the general machinery.
//!
//! Nothing here adds new algorithms — the refinement search, GCD, and
//! Banerjee already handle several loops per dimension — but coupled
//! subscripts are where inexact tests earn their keep, so this module
//! pins their behaviour with tests and provides [`linearize`], the §6
//! "linearization of the array" alternative to per-dimension ANDing.

use crate::equation::DimEquation;

/// Collapse a multi-dimensional equation set into a single linearized
/// equation over row-major offsets, given the array's per-dimension
/// extents. Where per-dimension testing ANDs necessary conditions,
/// the linearized test checks the *combined* offset equality — the §6
/// alternative. (Both are necessary-only once inexact tests are used;
/// the exact test subsumes both.)
///
/// Returns `None` when the equations disagree on loop structure.
pub fn linearize(eqs: &[DimEquation], extents: &[i64]) -> Option<DimEquation> {
    if eqs.is_empty() || eqs.len() != extents.len() {
        return None;
    }
    let first = &eqs[0];
    for eq in eqs {
        if eq.shared.len() != first.shared.len()
            || eq.src_only.len() != first.src_only.len()
            || eq.snk_only.len() != first.snk_only.len()
        {
            return None;
        }
    }
    // Row-major weights: dim k weight = product of extents after k.
    let mut weights = vec![1i64; eqs.len()];
    for k in (0..eqs.len().saturating_sub(1)).rev() {
        weights[k] = weights[k + 1] * extents[k + 1];
    }
    let mut out = DimEquation {
        shared: first
            .shared
            .iter()
            .map(|t| crate::equation::LoopTerm {
                size: t.size,
                a: 0,
                b: 0,
            })
            .collect(),
        src_only: first
            .src_only
            .iter()
            .map(|t| crate::equation::UnsharedTerm {
                coeff: 0,
                size: t.size,
            })
            .collect(),
        snk_only: first
            .snk_only
            .iter()
            .map(|t| crate::equation::UnsharedTerm {
                coeff: 0,
                size: t.size,
            })
            .collect(),
        a0: 0,
        b0: 0,
    };
    for (eq, w) in eqs.iter().zip(weights.iter()) {
        for (t, ot) in eq.shared.iter().zip(out.shared.iter_mut()) {
            ot.a += t.a * w;
            ot.b += t.b * w;
        }
        for (t, ot) in eq.src_only.iter().zip(out.src_only.iter_mut()) {
            ot.coeff += t.coeff * w;
        }
        for (t, ot) in eq.snk_only.iter().zip(out.snk_only.iter_mut()) {
            ot.coeff += t.coeff * w;
        }
        out.a0 += eq.a0 * w;
        out.b0 += eq.b0 * w;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banerjee::banerjee_test_dim;
    use crate::depgraph::flow_dependences;
    use crate::direction::{Dir, DirVec};
    use crate::gcd::gcd_test_dim;
    use crate::refs::collect_refs;
    use crate::search::TestPolicy;
    use hac_lang::env::ConstEnv;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    fn flow_dirs(src: &str, env: &ConstEnv) -> Vec<String> {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let refs = collect_refs(&c, "a", env).unwrap();
        let g = flow_dependences(&refs, "a", &TestPolicy::default());
        let mut out: Vec<String> = g.edges.iter().map(|e| e.dv.to_string()).collect();
        out.sort();
        out
    }

    #[test]
    fn coupled_subscript_antidiagonal() {
        // a!(i+j) written over a 2-D nest, reading a!(i+j-1): the
        // anti-diagonal recurrence. Dependences exist at many
        // directions; crucially (=,=) must be excluded (distance 1).
        let env = ConstEnv::from_pairs([("n", 6)]);
        let dirs = flow_dirs(
            "[ 1 := 0 ] ++ [ i + j := a!(i+j-1) | i <- [1..n], j <- [1..n], i + j > 2 ]",
            &env,
        );
        assert!(!dirs.contains(&"(=,=)".to_string()), "{dirs:?}");
        assert!(dirs.contains(&"(=,<)".to_string()), "{dirs:?}");
        assert!(
            dirs.contains(&"(<,>)".to_string()),
            "same sum, mixed: {dirs:?}"
        );
    }

    #[test]
    fn linearized_row_access_independent() {
        // a!(n*i + j) with j ∈ [1..n] never collides across rows: the
        // per-dimension view can't see it (it's 1-D), but the combined
        // coefficients prove independence for distinct (i, j).
        let env = ConstEnv::from_pairs([("n", 5)]);
        // write n*i + j, read n*i + j - 1 (previous element, possibly
        // previous row's last).
        let dirs = flow_dirs(
            "[ 1 := 0 ] ++ \
             [ 5*i + j := a!(5*i + j - 1) | i <- [0..n-1], j <- [1..5], 5*i + j > 1 ]",
            &env,
        );
        // Distance is exactly 1 in the linear space: only (=,<) (same
        // row, previous column) and (<,>) (previous row's last: i−1,
        // j jumps 5→... within bounds j range) style vectors; never
        // (=,=) or (<,<).
        assert!(!dirs.contains(&"(=,=)".to_string()), "{dirs:?}");
        assert!(dirs.contains(&"(=,<)".to_string()), "{dirs:?}");
    }

    #[test]
    fn linearize_combines_dimensions() {
        use crate::equation::LoopTerm;
        // 2-D refs: write (i, j), read (i, j+1) on a 10×10 array.
        let eqs = vec![
            DimEquation {
                shared: vec![
                    LoopTerm {
                        size: 10,
                        a: 1,
                        b: 1,
                    },
                    LoopTerm {
                        size: 10,
                        a: 0,
                        b: 0,
                    },
                ],
                src_only: vec![],
                snk_only: vec![],
                a0: 0,
                b0: 0,
            },
            DimEquation {
                shared: vec![
                    LoopTerm {
                        size: 10,
                        a: 0,
                        b: 0,
                    },
                    LoopTerm {
                        size: 10,
                        a: 1,
                        b: 1,
                    },
                ],
                src_only: vec![],
                snk_only: vec![],
                a0: 0,
                b0: 1,
            },
        ];
        let lin = linearize(&eqs, &[10, 10]).unwrap();
        // Row-major: offset = 10·dim0 + dim1 → coefficients 10 and 1.
        assert_eq!(lin.shared[0].a, 10);
        assert_eq!(lin.shared[1].a, 1);
        assert_eq!(lin.rhs(), 1);
        // The linearized tests agree with the per-dim AND here.
        let dv = DirVec(vec![Dir::Eq, Dir::Eq]);
        assert!(
            !banerjee_test_dim(&lin, &dv),
            "offset differs by 1 under (=,=)"
        );
        assert!(gcd_test_dim(&lin, &DirVec::any(2)));
    }

    #[test]
    fn linearize_rejects_mismatched_shapes() {
        use crate::equation::LoopTerm;
        let e1 = DimEquation {
            shared: vec![LoopTerm {
                size: 4,
                a: 1,
                b: 1,
            }],
            src_only: vec![],
            snk_only: vec![],
            a0: 0,
            b0: 0,
        };
        let e2 = DimEquation {
            shared: vec![],
            src_only: vec![],
            snk_only: vec![],
            a0: 0,
            b0: 0,
        };
        assert!(linearize(&[e1.clone(), e2], &[4, 4]).is_none());
        assert!(linearize(&[e1], &[4, 4]).is_none(), "extent arity mismatch");
        assert!(linearize(&[], &[]).is_none());
    }

    #[test]
    fn sum_subscript_distance_depends_on_direction() {
        // a!(i+j) ← a!(i+j-1): under a fully pinning direction vector
        // like (<,=) the distance is forced ([1,0]); under mixed
        // (<,>)/(>,<) labels many (di,dj) satisfy di+dj=1, so no
        // constant distance exists.
        let env = ConstEnv::from_pairs([("n", 4)]);
        let mut c = parse_comp(
            "[ 1 := 0 ] ++ [ i + j := a!(i+j-1) | i <- [1..n], j <- [1..n], i + j > 2 ]",
        )
        .unwrap();
        number_clauses(&mut c);
        let refs = collect_refs(&c, "a", &env).unwrap();
        let g = flow_dependences(&refs, "a", &TestPolicy::default());
        for e in g.edges.iter().filter(|e| e.src == e.dst) {
            match e.dv.to_string().as_str() {
                "(<,=)" => assert_eq!(e.distance, Some(vec![1, 0]), "{e:?}"),
                "(=,<)" => assert_eq!(e.distance, Some(vec![0, 1]), "{e:?}"),
                "(<,>)" | "(>,<)" => assert_eq!(e.distance, None, "{e:?}"),
                _ => {}
            }
        }
    }
}
