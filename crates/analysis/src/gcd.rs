//! The GCD test (§6, Theorem 1: *any integer solution*).
//!
//! Dropping the region bounds, `Σ a_k·x_k - Σ b_k·y_k = b0 - a0` has an
//! integer solution iff the gcd of the coefficients divides the
//! right-hand side. Under a direction-vector partition, loops in `Q=`
//! contribute the single coefficient `a_k - b_k` (since `x_k = y_k`),
//! while loops in `Q<`, `Q>`, `Q*` and unshared loops contribute `a_k`
//! and `b_k` independently (inequality constraints do not affect
//! divisibility). The test is *necessary but not sufficient*: failure
//! proves independence; success says nothing.

use crate::direction::{Dir, DirVec};
use crate::equation::DimEquation;

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Run the GCD test for one dimension under a direction vector.
/// Returns `true` when a dependence is *possible* (the test cannot rule
/// it out), `false` when independence is proven.
pub fn gcd_test_dim(eq: &DimEquation, dv: &DirVec) -> bool {
    debug_assert_eq!(dv.len(), eq.shared.len());
    if eq.has_empty_loop() {
        return false;
    }
    let mut g = 0i64;
    for (t, d) in eq.shared.iter().zip(dv.0.iter()) {
        match d {
            Dir::Eq => g = gcd(g, t.a - t.b),
            Dir::Lt | Dir::Gt | Dir::Any => {
                g = gcd(g, t.a);
                g = gcd(g, t.b);
            }
        }
    }
    for t in eq.src_only.iter().chain(eq.snk_only.iter()) {
        g = gcd(g, t.coeff);
    }
    let rhs = eq.rhs();
    if g == 0 {
        // All variable terms vanish: solvable iff rhs is zero.
        rhs == 0
    } else {
        rhs % g == 0
    }
}

/// The GCD test over every dimension (per-dimension tests ANDed, §6):
/// a dependence is possible only if it is possible in *every*
/// dimension.
pub fn gcd_test(eqs: &[DimEquation], dv: &DirVec) -> bool {
    eqs.iter().all(|eq| gcd_test_dim(eq, dv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equation::{LoopTerm, UnsharedTerm};

    fn eq1(size: i64, a: i64, b: i64, a0: i64, b0: i64) -> DimEquation {
        DimEquation {
            shared: vec![LoopTerm { size, a, b }],
            src_only: vec![],
            snk_only: vec![],
            a0,
            b0,
        }
    }

    #[test]
    fn classic_even_odd_independence() {
        // a!(2i) vs a!(2i+1): 2x - 2y = 1 has no integer solution.
        let eq = eq1(100, 2, 2, 0, 1);
        assert!(!gcd_test_dim(&eq, &DirVec::any(1)));
    }

    #[test]
    fn divisible_rhs_possible() {
        // a!(2i) vs a!(2i+4): gcd(2,2)=2 | 4.
        let eq = eq1(100, 2, 2, 0, 4);
        assert!(gcd_test_dim(&eq, &DirVec::any(1)));
    }

    #[test]
    fn eq_constraint_uses_difference() {
        // a!(3i) vs a!(3i+1) under (=): (3-3)x = 1 → g = 0, rhs ≠ 0.
        let eq = eq1(100, 3, 3, 0, 1);
        assert!(!gcd_test_dim(&eq, &DirVec(vec![Dir::Eq])));
        // Under (*) the coefficients enter separately: gcd(3,3)=3 ∤ 1.
        assert!(!gcd_test_dim(&eq, &DirVec::any(1)));
        // a!(3i) vs a!(3i+3) under (*): 3 | 3.
        let eq2 = eq1(100, 3, 3, 0, 3);
        assert!(gcd_test_dim(&eq2, &DirVec::any(1)));
    }

    #[test]
    fn constant_subscripts() {
        // a!5 vs a!5 and a!5 vs a!6 with no loop coefficients.
        let same = eq1(100, 0, 0, 5, 5);
        let diff = eq1(100, 0, 0, 5, 6);
        assert!(gcd_test_dim(&same, &DirVec::any(1)));
        assert!(!gcd_test_dim(&diff, &DirVec::any(1)));
    }

    #[test]
    fn empty_loop_kills_dependence() {
        let eq = eq1(0, 1, 1, 0, 0);
        assert!(!gcd_test_dim(&eq, &DirVec::any(1)));
    }

    #[test]
    fn unshared_coefficients_enter() {
        // f = 2x (shared), g = 4y' (sink-only loop): 2x - 4y' = 1?
        let eq = DimEquation {
            shared: vec![LoopTerm {
                size: 10,
                a: 2,
                b: 0,
            }],
            src_only: vec![],
            snk_only: vec![UnsharedTerm {
                coeff: -4,
                size: 10,
            }],
            a0: 0,
            b0: 1,
        };
        assert!(!gcd_test_dim(&eq, &DirVec::any(1)));
    }

    #[test]
    fn multi_dim_ands() {
        // dim0 passes, dim1 fails → overall independence.
        let pass = eq1(10, 1, 1, 0, 0);
        let fail = eq1(10, 2, 2, 0, 1);
        assert!(!gcd_test(&[pass.clone(), fail], &DirVec::any(1)));
        assert!(gcd_test(&[pass.clone(), pass], &DirVec::any(1)));
    }
}
