//! The dependence equation (§6).
//!
//! For two references `m!(f x1...xd)` and `m!(g y1...yd)` the question
//! "can they touch the same element?" becomes: does
//!
//! ```text
//! h(x, y) = f(x1..xd) - g(y1..yd) = 0
//! ```
//!
//! have an integer solution inside the region of interest `R` (the loop
//! bounds, possibly sharpened by direction constraints on each shared
//! loop)? [`DimEquation`] is the per-dimension normal form consumed by
//! the GCD, Banerjee and exact tests; multi-dimensional subscripts AND
//! the per-dimension tests together (§6).

use hac_lang::affine::Affine;
use hac_lang::normalize::NormalizedLoop;

use crate::direction::{Dir, DirVec};

/// One shared loop's contribution `a·x_k - b·y_k`, with both instances
/// ranging over `[1..size]` (possibly constrained relative to each
/// other by a direction-vector component).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopTerm {
    /// Iteration count `M_k` of the normalized loop.
    pub size: i64,
    /// Coefficient of the source instance `x_k` in `f`.
    pub a: i64,
    /// Coefficient of the sink instance `y_k` in `g`.
    pub b: i64,
}

impl LoopTerm {
    /// Exact bounds of `a·x - b·y` over `x, y ∈ [1..size]` under the
    /// direction constraint, or `None` when the constrained region is
    /// empty (e.g. `x < y` inside a loop with fewer than 2 iterations).
    ///
    /// The term is linear and each constrained region is a (possibly
    /// degenerate) lattice polytope, so the extrema sit at vertices;
    /// enumerating them yields exactly the closed-form Banerjee bounds
    /// of the paper's §6 theorem.
    pub fn bounds(&self, dir: Dir) -> Option<(i64, i64)> {
        let m = self.size;
        if m < 1 {
            return None;
        }
        // i128 internally: saturating back to i64 keeps the interval an
        // over-approximation (sound for a necessary test) even for
        // adversarially large coefficients/extents.
        let val = |x: i64, y: i64| self.a as i128 * x as i128 - self.b as i128 * y as i128;
        let verts: &[(i64, i64)] = match dir {
            Dir::Any => &[(1, 1), (1, m), (m, 1), (m, m)],
            Dir::Eq => &[(1, 1), (m, m)],
            Dir::Lt => {
                if m < 2 {
                    return None;
                }
                &[(1, 2), (1, m), (m - 1, m)]
            }
            Dir::Gt => {
                if m < 2 {
                    return None;
                }
                &[(2, 1), (m, 1), (m, m - 1)]
            }
        };
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for &(x, y) in verts {
            let v = val(x, y);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((clamp_i64(lo), clamp_i64(hi)))
    }
}

fn clamp_i64(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// A loop surrounding only one of the two references (§6, final lemma).
/// Contributes `coeff · x` with `x ∈ [1..size]` (the caller bakes the
/// sign into `coeff`: source-only terms carry `+a_k`, sink-only `-b_k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsharedTerm {
    pub coeff: i64,
    pub size: i64,
}

impl UnsharedTerm {
    /// Bounds of `coeff·x` over `x ∈ [1..size]`, or `None` for an empty
    /// loop.
    pub fn bounds(&self) -> Option<(i64, i64)> {
        if self.size < 1 {
            return None;
        }
        let p = self.coeff as i128;
        let q = self.coeff as i128 * self.size as i128;
        Some((clamp_i64(p.min(q)), clamp_i64(p.max(q))))
    }
}

/// The dependence equation for one subscript dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimEquation {
    /// Shared loops, outermost first (direction constraints apply here).
    pub shared: Vec<LoopTerm>,
    /// Loops surrounding only the source reference (`+a_k` baked in).
    pub src_only: Vec<UnsharedTerm>,
    /// Loops surrounding only the sink reference (`-b_k` baked in).
    pub snk_only: Vec<UnsharedTerm>,
    /// Constant part of the source subscript `f`.
    pub a0: i64,
    /// Constant part of the sink subscript `g`.
    pub b0: i64,
}

impl DimEquation {
    /// The right-hand side the variable terms must sum to:
    /// `Σ terms = b0 - a0`.
    pub fn rhs(&self) -> i64 {
        self.b0 - self.a0
    }

    /// `true` when any surrounding loop has zero iterations (then no
    /// instance exists and no dependence is possible).
    pub fn has_empty_loop(&self) -> bool {
        self.shared.iter().any(|t| t.size < 1)
            || self.src_only.iter().any(|t| t.size < 1)
            || self.snk_only.iter().any(|t| t.size < 1)
    }
}

/// A normalized reference ready for dependence testing: one affine
/// subscript per dimension over the normalized loop variables of `nest`.
#[derive(Debug, Clone, PartialEq)]
pub struct NormRef {
    pub dims: Vec<Affine>,
    pub nest: Vec<NormalizedLoop>,
}

impl NormRef {
    /// Depth of the surrounding loop nest.
    pub fn depth(&self) -> usize {
        self.nest.len()
    }
}

/// Build the per-dimension dependence equations between a source and a
/// sink reference. The shared loops are the common *prefix* of the two
/// nests (nests come from one comprehension tree, so any common loops
/// form a prefix); the remainder of each nest contributes unshared
/// terms. Returns `None` if the references have different ranks.
pub fn build_equations(src: &NormRef, snk: &NormRef) -> Option<Vec<DimEquation>> {
    if src.dims.len() != snk.dims.len() {
        return None;
    }
    let shared_len = src
        .nest
        .iter()
        .zip(snk.nest.iter())
        .take_while(|(a, b)| a.id == b.id)
        .count();
    let mut out = Vec::with_capacity(src.dims.len());
    for (f, g) in src.dims.iter().zip(snk.dims.iter()) {
        let shared = (0..shared_len)
            .map(|k| LoopTerm {
                size: src.nest[k].size,
                a: f.coeff(&src.nest[k].norm_var()),
                b: g.coeff(&snk.nest[k].norm_var()),
            })
            .collect();
        let src_only = src.nest[shared_len..]
            .iter()
            .map(|nl| UnsharedTerm {
                coeff: f.coeff(&nl.norm_var()),
                size: nl.size,
            })
            .collect();
        let snk_only = snk.nest[shared_len..]
            .iter()
            .map(|nl| UnsharedTerm {
                coeff: -g.coeff(&nl.norm_var()),
                size: nl.size,
            })
            .collect();
        out.push(DimEquation {
            shared,
            src_only,
            snk_only,
            a0: f.constant_part(),
            b0: g.constant_part(),
        });
    }
    Some(out)
}

/// Number of shared loops between the two references (for building the
/// direction-vector universe).
pub fn shared_depth(src: &NormRef, snk: &NormRef) -> usize {
    src.nest
        .iter()
        .zip(snk.nest.iter())
        .take_while(|(a, b)| a.id == b.id)
        .count()
}

/// Exact min/max of an affine subscript over its nest's box (used for
/// out-of-bounds and empties analysis). Returns `None` for an empty
/// nest box.
pub fn affine_range(a: &Affine, nest: &[NormalizedLoop]) -> Option<(i64, i64)> {
    let mut lo = a.constant_part() as i128;
    let mut hi = a.constant_part() as i128;
    for nl in nest {
        if nl.size < 1 {
            return None;
        }
        let k = a.coeff(&nl.norm_var()) as i128;
        let (p, q) = (k, k * nl.size as i128);
        lo += p.min(q);
        hi += p.max(q);
    }
    Some((clamp_i64(lo), clamp_i64(hi)))
}

/// Check the direction constraints' joint feasibility and return the
/// per-loop bounds of the whole equation under a direction vector:
/// `Σ_k bounds(shared_k, dv_k) + Σ bounds(unshared)`. `None` when the
/// constrained region is empty.
pub fn equation_bounds(eq: &DimEquation, dv: &DirVec) -> Option<(i64, i64)> {
    debug_assert_eq!(dv.len(), eq.shared.len(), "direction vector arity");
    let mut lo = 0i128;
    let mut hi = 0i128;
    for (t, d) in eq.shared.iter().zip(dv.0.iter()) {
        let (l, h) = t.bounds(*d)?;
        lo += l as i128;
        hi += h as i128;
    }
    for t in eq.src_only.iter().chain(eq.snk_only.iter()) {
        let (l, h) = t.bounds()?;
        lo += l as i128;
        hi += h as i128;
    }
    Some((clamp_i64(lo), clamp_i64(hi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::ast::LoopId;

    fn nl(id: u32, size: i64) -> NormalizedLoop {
        NormalizedLoop {
            id: LoopId(id),
            var: format!("v{id}"),
            size,
            lo: 1,
            step: 1,
        }
    }

    /// Brute-force bounds oracle for a shared term.
    fn brute(t: &LoopTerm, dir: Dir) -> Option<(i64, i64)> {
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for x in 1..=t.size {
            for y in 1..=t.size {
                let ok = match dir {
                    Dir::Any => true,
                    Dir::Lt => x < y,
                    Dir::Eq => x == y,
                    Dir::Gt => x > y,
                };
                if ok {
                    let v = t.a * x - t.b * y;
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        if lo == i64::MAX {
            None
        } else {
            Some((lo, hi))
        }
    }

    #[test]
    fn term_bounds_match_brute_force() {
        for a in -3..=3 {
            for b in -3..=3 {
                for m in 0..=5 {
                    let t = LoopTerm { size: m, a, b };
                    for dir in [Dir::Any, Dir::Lt, Dir::Eq, Dir::Gt] {
                        assert_eq!(t.bounds(dir), brute(&t, dir), "a={a} b={b} m={m} dir={dir}");
                    }
                }
            }
        }
    }

    #[test]
    fn unshared_bounds() {
        assert_eq!(UnsharedTerm { coeff: 3, size: 4 }.bounds(), Some((3, 12)));
        assert_eq!(UnsharedTerm { coeff: -2, size: 4 }.bounds(), Some((-8, -2)));
        assert_eq!(UnsharedTerm { coeff: 5, size: 0 }.bounds(), None);
        assert_eq!(UnsharedTerm { coeff: 0, size: 3 }.bounds(), Some((0, 0)));
    }

    #[test]
    fn build_shared_prefix() {
        // src nest: L0(10), L1(20); snk nest: L0(10), L2(5)
        let src = NormRef {
            dims: vec![Affine::term("L0", 2).add(&Affine::term("L1", 1))],
            nest: vec![nl(0, 10), nl(1, 20)],
        };
        let snk = NormRef {
            dims: vec![Affine::term("L0", 1).add(&Affine::term("L2", 3))],
            nest: vec![nl(0, 10), nl(2, 5)],
        };
        let eqs = build_equations(&src, &snk).unwrap();
        assert_eq!(shared_depth(&src, &snk), 1);
        let eq = &eqs[0];
        assert_eq!(
            eq.shared,
            vec![LoopTerm {
                size: 10,
                a: 2,
                b: 1
            }]
        );
        assert_eq!(eq.src_only, vec![UnsharedTerm { coeff: 1, size: 20 }]);
        assert_eq!(eq.snk_only, vec![UnsharedTerm { coeff: -3, size: 5 }]);
    }

    #[test]
    fn rank_mismatch_rejected() {
        let src = NormRef {
            dims: vec![Affine::constant(1)],
            nest: vec![],
        };
        let snk = NormRef {
            dims: vec![Affine::constant(1), Affine::constant(2)],
            nest: vec![],
        };
        assert!(build_equations(&src, &snk).is_none());
    }

    #[test]
    fn affine_range_over_box() {
        // 3x - 2y + 1, x ∈ [1..4], y ∈ [1..5]
        let a = Affine::term("L0", 3)
            .add(&Affine::term("L1", -2))
            .add(&Affine::constant(1));
        let nest = vec![nl(0, 4), nl(1, 5)];
        assert_eq!(affine_range(&a, &nest), Some((3 - 10 + 1, 12 - 2 + 1)));
        assert_eq!(affine_range(&a, &[nl(0, 0)]), None);
    }

    #[test]
    fn equation_bounds_sum_terms() {
        let eq = DimEquation {
            shared: vec![LoopTerm {
                size: 10,
                a: 1,
                b: 1,
            }],
            src_only: vec![],
            snk_only: vec![],
            a0: 0,
            b0: 0,
        };
        // x - y under (<): x < y → term ∈ [-(M-1), -1]
        assert_eq!(equation_bounds(&eq, &DirVec(vec![Dir::Lt])), Some((-9, -1)));
        assert_eq!(equation_bounds(&eq, &DirVec(vec![Dir::Eq])), Some((0, 0)));
        assert_eq!(equation_bounds(&eq, &DirVec(vec![Dir::Gt])), Some((1, 9)));
    }
}
