//! Direction-vector refinement by hierarchical search (§6: "[Burke &
//! Cytron] suggests a search tree approach to refining the constraints
//! on the region R for the Banerjee test. In many cases the search tree
//! approach gives complete information on any possible dependence ...
//! in O(n) or even O(1) time.").
//!
//! The tree's root is the unconstrained vector `(*,...,*)`. A node is
//! tested with the cheap necessary tests (GCD then Banerjee); if they
//! prove independence the whole subtree is pruned — failing at the root
//! is the `O(1)` case. Otherwise the leftmost `*` is split into
//! `<`, `=`, `>` and the children are searched. Surviving leaves are
//! the possible direction vectors; optionally the exact test then
//! confirms or kills each leaf.

use crate::banerjee::banerjee_test;
use crate::direction::{Dir, DirVec};
use crate::equation::DimEquation;
use crate::exact::{exact_test, ExactResult, Witness};
use crate::gcd::gcd_test;

/// How hard to try per leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct TestPolicy {
    /// Run the exact test on surviving leaves.
    pub use_exact: bool,
    /// Node budget per exact-test invocation.
    pub exact_budget: u64,
}

impl Default for TestPolicy {
    fn default() -> TestPolicy {
        TestPolicy {
            use_exact: true,
            exact_budget: crate::exact::DEFAULT_BUDGET,
        }
    }
}

/// Counters for experiment E12 (test cost comparison).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TestStats {
    pub gcd_calls: u64,
    pub banerjee_calls: u64,
    pub exact_calls: u64,
    /// Search-tree nodes visited.
    pub nodes: u64,
}

impl TestStats {
    /// Accumulate another run's counters.
    pub fn absorb(&mut self, other: &TestStats) {
        self.gcd_calls += other.gcd_calls;
        self.banerjee_calls += other.banerjee_calls;
        self.exact_calls += other.exact_calls;
        self.nodes += other.nodes;
    }
}

/// How certain we are that a surviving direction vector is real.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Confidence {
    /// Only the necessary tests passed; the dependence *may* exist.
    Possible,
    /// The exact test produced a witness; the dependence is real.
    Confirmed(Witness),
}

/// One surviving leaf of the refinement tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectedDependence {
    pub dv: DirVec,
    pub confidence: Confidence,
}

/// Result of refinement: all direction vectors under which a dependence
/// may (or does) exist, in lexicographic `<`,`=`,`>` order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RefinementResult {
    pub dependences: Vec<DirectedDependence>,
    pub stats: TestStats,
}

impl RefinementResult {
    /// `true` when independence is proven for every direction.
    pub fn independent(&self) -> bool {
        self.dependences.is_empty()
    }

    /// Just the direction vectors.
    pub fn vectors(&self) -> Vec<DirVec> {
        self.dependences.iter().map(|d| d.dv.clone()).collect()
    }
}

/// Run the refinement search for a reference pair's equations with
/// `depth` shared loops.
pub fn refine_directions(
    eqs: &[DimEquation],
    depth: usize,
    policy: &TestPolicy,
) -> RefinementResult {
    let mut result = RefinementResult::default();
    let root = DirVec::any(depth);
    descend(eqs, root, policy, &mut result);
    result
}

fn passes_inexact(eqs: &[DimEquation], dv: &DirVec, stats: &mut TestStats) -> bool {
    stats.gcd_calls += 1;
    if !gcd_test(eqs, dv) {
        return false;
    }
    stats.banerjee_calls += 1;
    banerjee_test(eqs, dv)
}

fn descend(eqs: &[DimEquation], dv: DirVec, policy: &TestPolicy, result: &mut RefinementResult) {
    result.stats.nodes += 1;
    if !passes_inexact(eqs, &dv, &mut result.stats) {
        return;
    }
    // Find the leftmost unconstrained component.
    match dv.0.iter().position(|d| *d == Dir::Any) {
        Some(k) => {
            for r in [Dir::Lt, Dir::Eq, Dir::Gt] {
                let mut child = dv.clone();
                child.0[k] = r;
                descend(eqs, child, policy, result);
            }
        }
        None => {
            // A concrete leaf that the necessary tests cannot kill.
            let confidence = if policy.use_exact {
                result.stats.exact_calls += 1;
                match exact_test(eqs, &dv, policy.exact_budget) {
                    ExactResult::Dependent(w) => Confidence::Confirmed(w),
                    ExactResult::Independent => return, // killed exactly
                    ExactResult::Unknown => Confidence::Possible,
                }
            } else {
                Confidence::Possible
            };
            result
                .dependences
                .push(DirectedDependence { dv, confidence });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equation::LoopTerm;

    fn eq1(size: i64, a: i64, b: i64, a0: i64, b0: i64) -> DimEquation {
        DimEquation {
            shared: vec![LoopTerm { size, a, b }],
            src_only: vec![],
            snk_only: vec![],
            a0,
            b0,
        }
    }

    #[test]
    fn section5_example1_refines_to_lt() {
        // write 3i vs read 3(i-1): only (<) survives, confirmed.
        let eq = eq1(100, 3, 3, 0, -3);
        let r = refine_directions(&[eq], 1, &TestPolicy::default());
        assert_eq!(r.vectors(), vec![DirVec(vec![Dir::Lt])]);
        assert!(matches!(
            r.dependences[0].confidence,
            Confidence::Confirmed(_)
        ));
    }

    #[test]
    fn independence_prunes_at_root() {
        // 2i vs 2i+1 dies at the root (*): O(1) behavior.
        let eq = eq1(100, 2, 2, 0, 1);
        let r = refine_directions(&[eq], 1, &TestPolicy::default());
        assert!(r.independent());
        assert_eq!(r.stats.nodes, 1);
        assert_eq!(r.stats.exact_calls, 0);
    }

    #[test]
    fn self_dependence_yields_eq() {
        // write i vs read i: exactly (=).
        let eq = eq1(50, 1, 1, 0, 0);
        let r = refine_directions(&[eq], 1, &TestPolicy::default());
        assert_eq!(r.vectors(), vec![DirVec(vec![Dir::Eq])]);
    }

    #[test]
    fn two_level_nest_example2() {
        // §5 example 2-style: write (i, j), read (i, j+1) in a 10×20
        // nest. Dim 0 pins the outer loops equal; dim 1 needs
        // x2 - y2 = 1, i.e. the source at a *later* inner index: (=,>).
        let eqs = vec![
            DimEquation {
                shared: vec![
                    LoopTerm {
                        size: 10,
                        a: 1,
                        b: 1,
                    },
                    LoopTerm {
                        size: 20,
                        a: 0,
                        b: 0,
                    },
                ],
                src_only: vec![],
                snk_only: vec![],
                a0: 0,
                b0: 0,
            },
            DimEquation {
                shared: vec![
                    LoopTerm {
                        size: 10,
                        a: 0,
                        b: 0,
                    },
                    LoopTerm {
                        size: 20,
                        a: 1,
                        b: 1,
                    },
                ],
                src_only: vec![],
                snk_only: vec![],
                a0: 0,
                b0: 1,
            },
        ];
        let r = refine_directions(&eqs, 2, &TestPolicy::default());
        assert_eq!(r.vectors(), vec![DirVec(vec![Dir::Eq, Dir::Gt])]);
    }

    #[test]
    fn without_exact_leaves_stay_possible() {
        let eq = eq1(50, 1, 1, 0, 0);
        let r = refine_directions(
            &[eq],
            1,
            &TestPolicy {
                use_exact: false,
                exact_budget: 0,
            },
        );
        assert_eq!(r.dependences.len(), 1);
        assert!(matches!(r.dependences[0].confidence, Confidence::Possible));
        assert_eq!(r.stats.exact_calls, 0);
    }

    #[test]
    fn exact_kills_banerjee_survivor() {
        // 3x - 5y = -8 with x, y ∈ [1..4]. Under (<) the achievable
        // values are {-7,-9,-11,-12,-14,-17}: a Frobenius-style gap at
        // -8 that neither GCD (gcd(3,5)=1 | 8) nor Banerjee (interval
        // [-17,-7] brackets -8) can see — only the exact test kills the
        // (<) leaf. Under (=) the dependence is real (x = y = 4).
        let eq = eq1(4, 3, 5, 0, -8);
        let with_exact = refine_directions(std::slice::from_ref(&eq), 1, &TestPolicy::default());
        assert_eq!(with_exact.vectors(), vec![DirVec(vec![Dir::Eq])]);
        let without = refine_directions(
            &[eq],
            1,
            &TestPolicy {
                use_exact: false,
                exact_budget: 0,
            },
        );
        assert_eq!(
            without.vectors(),
            vec![DirVec(vec![Dir::Lt]), DirVec(vec![Dir::Eq])],
            "without the exact test the spurious (<) leaf survives"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut total = TestStats::default();
        let eq = eq1(50, 1, 1, 0, 0);
        let r = refine_directions(&[eq], 1, &TestPolicy::default());
        total.absorb(&r.stats);
        total.absorb(&r.stats);
        assert_eq!(total.nodes, 2 * r.stats.nodes);
    }
}
