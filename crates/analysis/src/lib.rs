//! # hac-analysis
//!
//! Subscript analysis for functional monolithic arrays — the core of
//! the `hac` reproduction of Anderson & Hudak (PLDI 1990), §§5–7.
//!
//! Given an array comprehension whose subscripts are linear in the
//! (normalized) loop indices, this crate decides, for every pair of
//! array references, whether they can touch the same element — and
//! under which *direction vectors* — using three tests of increasing
//! cost:
//!
//! * the **GCD test** ([`gcd`]) — `O(n)`, integrality only;
//! * the **Banerjee inequality test** ([`banerjee`]) — `O(n)`, bounds
//!   only, direction-constraint aware;
//! * the **exact bounded-integer test** ([`exact`]) — exponential
//!   worst case, budget-limited, witness-producing.
//!
//! The [`search`] module refines direction vectors Burke–Cytron style;
//! [`depgraph`] assembles labeled flow/anti/output dependence edges
//! between s/v clauses; [`analyze`] adds the paper's whole-array
//! verdicts (write collisions §7, empties §4, bounds).
//!
//! # Example
//!
//! ```
//! use hac_analysis::{analyze_array, TestPolicy};
//! use hac_lang::{parse_program, ConstEnv, number_clauses};
//!
//! let mut p = parse_program(
//!     "param n;\n\
//!      letrec* a = array (1,n)\n\
//!        ([ 1 := 1 ] ++ [ i := a!(i-1) * 2 | i <- [2..n] ]);\n",
//! )?;
//! let def = match &mut p.bindings[0] {
//!     hac_lang::Binding::LetrecStar(ds) => &mut ds[0],
//!     _ => unreachable!(),
//! };
//! number_clauses(&mut def.comp);
//! let env = ConstEnv::from_pairs([("n", 100)]);
//! let analysis = analyze_array(def, &env, &TestPolicy::default()).unwrap();
//! assert!(analysis.collisions.checks_elidable());
//! assert!(analysis.empties.checks_elidable());
//! assert_eq!(analysis.flow.edges.len(), 2); // c0→c1 (), c1→c1 (<)
//! # Ok::<(), hac_lang::ParseError>(())
//! ```

pub mod analyze;
pub mod banerjee;
pub mod cost;
pub mod depgraph;
pub mod direction;
pub mod equation;
pub mod exact;
pub mod gcd;
pub mod multidim;
pub mod parallel;
pub mod refs;
pub mod search;

pub use analyze::{
    analyze_array, analyze_bigupd, AnalysisError, ArrayAnalysis, BoundsVerdict, CollisionVerdict,
    EmptiesVerdict, OobSite, UpdateAnalysis,
};
pub use banerjee::{banerjee_test, banerjee_test_dim};
pub use cost::{Bound, CostCert, Poly};
pub use depgraph::{
    anti_dependences, constant_distance, flow_dependences, output_dependences, DepEdge, DepKind,
    DependenceGraph,
};
pub use direction::{Dir, DirVec};
pub use equation::{build_equations, DimEquation, LoopTerm, NormRef, UnsharedTerm};
pub use exact::{exact_test, ExactResult, Witness, DEFAULT_BUDGET};
pub use gcd::{gcd_test, gcd_test_dim};
pub use multidim::linearize;
pub use parallel::{loop_parallelism, parallelism_summary, LoopParallelism};
pub use refs::{collect_refs, Access, ClauseRefs, RefSite};
pub use search::{
    refine_directions, Confidence, DirectedDependence, RefinementResult, TestPolicy, TestStats,
};
