//! The Banerjee inequality test (§6, Theorem 2: *bounded rational
//! solution*).
//!
//! Dropping integrality, the equation `h(x,y) = 0` can hold inside the
//! (direction-constrained) region `R` only if the interval
//! `[min_R Σterms, max_R Σterms]` brackets the right-hand side
//! `b0 - a0`. Per-term bounds come from [`LoopTerm::bounds`] /
//! [`UnsharedTerm::bounds`] — exact vertex extrema of each constrained
//! term, identical to the paper's closed-form `t⁺`/`t⁻` expressions.
//! Like the GCD test the Banerjee test is necessary but not
//! sufficient, and runs in `O(n)` for nest depth `n`.
//!
//! [`LoopTerm::bounds`]: crate::equation::LoopTerm::bounds
//! [`UnsharedTerm::bounds`]: crate::equation::UnsharedTerm::bounds

use crate::direction::DirVec;
use crate::equation::{equation_bounds, DimEquation};

/// Run the Banerjee test for one dimension under a direction vector.
/// Returns `true` when a dependence is *possible* under the given
/// constraints, `false` when independence is proven (bounds exclude
/// the RHS, or the constrained region is empty).
pub fn banerjee_test_dim(eq: &DimEquation, dv: &DirVec) -> bool {
    match equation_bounds(eq, dv) {
        None => false,
        Some((lo, hi)) => {
            let rhs = eq.rhs();
            lo <= rhs && rhs <= hi
        }
    }
}

/// The Banerjee test over every dimension (ANDed, §6).
pub fn banerjee_test(eqs: &[DimEquation], dv: &DirVec) -> bool {
    eqs.iter().all(|eq| banerjee_test_dim(eq, dv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direction::Dir;
    use crate::equation::{LoopTerm, UnsharedTerm};

    fn eq1(size: i64, a: i64, b: i64, a0: i64, b0: i64) -> DimEquation {
        DimEquation {
            shared: vec![LoopTerm { size, a, b }],
            src_only: vec![],
            snk_only: vec![],
            a0,
            b0,
        }
    }

    #[test]
    fn section5_example1_edges() {
        // §5 example 1, loop i ∈ [1..100]:
        //   clause 1 writes 3i, clause 2 reads 3(i-1) = 3i - 3.
        // Dependence of write (source, x) on read (sink, y):
        //   3x = 3y - 3, i.e. 3x - 3y = -3.
        let eq = eq1(100, 3, 3, 0, -3);
        // Under (<): x < y — possible (x = y - 1). The paper's 1→2(<).
        assert!(banerjee_test_dim(&eq, &DirVec(vec![Dir::Lt])));
        // Under (=) and (>): impossible.
        assert!(!banerjee_test_dim(&eq, &DirVec(vec![Dir::Eq])));
        assert!(!banerjee_test_dim(&eq, &DirVec(vec![Dir::Gt])));

        // clause 1 writes 3i, clause 3 reads 3i: 1→3(=).
        let eq2 = eq1(100, 3, 3, 0, 0);
        assert!(banerjee_test_dim(&eq2, &DirVec(vec![Dir::Eq])));
        assert!(!banerjee_test_dim(&eq2, &DirVec(vec![Dir::Lt])));
        assert!(!banerjee_test_dim(&eq2, &DirVec(vec![Dir::Gt])));
    }

    #[test]
    fn disjoint_ranges_independent() {
        // write i (i ∈ [1..10]), read i + 100: never equal.
        let eq = eq1(10, 1, 1, 0, 100);
        assert!(!banerjee_test_dim(&eq, &DirVec::any(1)));
    }

    #[test]
    fn empty_constraint_region() {
        // (<) inside a single-iteration loop is infeasible.
        let eq = eq1(1, 1, 1, 0, 0);
        assert!(!banerjee_test_dim(&eq, &DirVec(vec![Dir::Lt])));
        assert!(banerjee_test_dim(&eq, &DirVec(vec![Dir::Eq])));
    }

    #[test]
    fn banerjee_weaker_than_exact() {
        // 2x - 2y = 1 is rationally solvable inside bounds (x = y + ½)
        // so Banerjee says "possible" — the GCD test is needed to kill
        // it. This is the textbook complementarity of the two tests.
        let eq = eq1(100, 2, 2, 0, 1);
        assert!(banerjee_test_dim(&eq, &DirVec::any(1)));
        assert!(!crate::gcd::gcd_test_dim(&eq, &DirVec::any(1)));
    }

    #[test]
    fn unshared_loops_contribute() {
        // f = x (shared, M=10), g = y' + 50 (sink-only, M=10):
        // x - y' = 50; bounds of x - y' are [1-10, 10-1] = [-9, 9].
        let eq = DimEquation {
            shared: vec![LoopTerm {
                size: 10,
                a: 1,
                b: 0,
            }],
            src_only: vec![],
            snk_only: vec![UnsharedTerm {
                coeff: -1,
                size: 10,
            }],
            a0: 0,
            b0: 50,
        };
        assert!(!banerjee_test_dim(&eq, &DirVec::any(1)));
        let eq_near = DimEquation { b0: 5, ..eq };
        assert!(banerjee_test_dim(&eq_near, &DirVec::any(1)));
    }

    #[test]
    fn multi_dim_ands() {
        // dim0: possible under (=); dim1: impossible under (=) → AND fails.
        let d0 = eq1(10, 1, 1, 0, 0);
        let d1 = eq1(10, 1, 1, 0, 1); // x - y = 1 impossible with x = y
        let dv = DirVec(vec![Dir::Eq]);
        assert!(banerjee_test_dim(&d0, &dv));
        assert!(!banerjee_test_dim(&d1, &dv));
        assert!(!banerjee_test(&[d0, d1], &dv));
    }

    #[test]
    fn brute_force_soundness_sweep() {
        // Whenever an integer solution exists in the constrained
        // region, Banerjee must report "possible".
        for a in -2..=2i64 {
            for b in -2..=2i64 {
                for rhs in -4..=4i64 {
                    for m in 1..=4i64 {
                        let eq = eq1(m, a, b, 0, rhs);
                        for dir in [Dir::Any, Dir::Lt, Dir::Eq, Dir::Gt] {
                            let mut solvable = false;
                            for x in 1..=m {
                                for y in 1..=m {
                                    let ok = match dir {
                                        Dir::Any => true,
                                        Dir::Lt => x < y,
                                        Dir::Eq => x == y,
                                        Dir::Gt => x > y,
                                    };
                                    if ok && a * x - b * y == rhs {
                                        solvable = true;
                                    }
                                }
                            }
                            let dv = DirVec(vec![dir]);
                            if solvable {
                                assert!(
                                    banerjee_test_dim(&eq, &dv),
                                    "unsound: a={a} b={b} rhs={rhs} m={m} dir={dir}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
