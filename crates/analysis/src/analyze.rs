//! Whole-array analysis: dependence graphs plus the paper's §4/§7
//! compile-time verdicts — write collisions, "empties", and
//! out-of-bounds definitions.

use std::fmt;

use hac_lang::ast::{ArrayDef, ArrayKind, ClauseId};
use hac_lang::env::ConstEnv;
use hac_lang::normalize::NormalizeError;
use hac_lang::Affine;
use hac_lang::Comp;

use crate::depgraph::{anti_dependences, flow_dependences, output_dependences, DependenceGraph};
use crate::equation::affine_range;
use crate::exact::Witness;
use crate::refs::{collect_refs, ClauseRefs};
use crate::search::{Confidence, TestPolicy, TestStats};

/// An analysis failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    Normalize(NormalizeError),
    /// An array bound did not fold to a constant.
    NonConstantArrayBound {
        array: String,
        dim: usize,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Normalize(e) => write!(f, "{e}"),
            AnalysisError::NonConstantArrayBound { array, dim } => {
                write!(f, "array `{array}` dimension {dim} bound is not constant")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<NormalizeError> for AnalysisError {
    fn from(e: NormalizeError) -> Self {
        AnalysisError::Normalize(e)
    }
}

/// Verdict on write collisions (§7).
#[derive(Debug, Clone, PartialEq)]
pub enum CollisionVerdict {
    /// Subscript analysis proved no two instances write one element:
    /// compile no collision checks.
    Impossible,
    /// Collisions cannot be ruled out: compile runtime checks and warn.
    Possible(Vec<(ClauseId, ClauseId)>),
    /// The exact test found an unconditional witness: flag a
    /// compile-time error.
    Certain {
        pair: (ClauseId, ClauseId),
        witness: Witness,
        /// The colliding element's index (original subscript space),
        /// when derivable from the witness.
        element: Option<Vec<i64>>,
    },
}

impl CollisionVerdict {
    /// `true` when runtime collision checks can be elided.
    pub fn checks_elidable(&self) -> bool {
        matches!(self, CollisionVerdict::Impossible)
    }
}

/// Verdict on undefined elements (§4).
#[derive(Debug, Clone, PartialEq)]
pub enum EmptiesVerdict {
    /// Every element provably receives exactly one definition: compile
    /// no definedness checks.
    Impossible,
    /// Could not prove totality; the reason names the failed condition.
    Possible(String),
}

impl EmptiesVerdict {
    /// `true` when runtime definedness checks can be elided.
    pub fn checks_elidable(&self) -> bool {
        matches!(self, EmptiesVerdict::Impossible)
    }
}

/// One potential out-of-bounds definition.
#[derive(Debug, Clone, PartialEq)]
pub struct OobSite {
    pub clause: ClauseId,
    pub dim: usize,
    /// Range the subscript can take.
    pub subscript_range: (i64, i64),
    /// Declared bounds for the dimension.
    pub bounds: (i64, i64),
}

/// Verdict on out-of-bounds definitions.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundsVerdict {
    /// All writes provably in bounds: lift/elide bounds checks.
    InBounds,
    /// Some write may (or must) escape the declared bounds.
    MayExceed(Vec<OobSite>),
}

/// Complete analysis of one monolithic (or accumulated) array
/// definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayAnalysis {
    pub array: String,
    /// Folded per-dimension bounds.
    pub bounds: Vec<(i64, i64)>,
    pub refs: Vec<ClauseRefs>,
    /// Flow dependences on the array itself (drives thunkless
    /// scheduling).
    pub flow: DependenceGraph,
    /// Output dependences among writes.
    pub output: DependenceGraph,
    pub collisions: CollisionVerdict,
    pub empties: EmptiesVerdict,
    pub oob: BoundsVerdict,
    /// Combined test counters.
    pub stats: TestStats,
}

impl ArrayAnalysis {
    /// Number of elements in the array.
    pub fn element_count(&self) -> i64 {
        self.bounds
            .iter()
            .map(|(lo, hi)| (hi - lo + 1).max(0))
            .product()
    }
}

/// Complete analysis of one `bigupd` (§9).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateAnalysis {
    /// The old array being overwritten.
    pub base: String,
    /// The name bound to the updated array (its reads are *new*
    /// values, producing flow dependences — the paper's Gauss–Seidel).
    pub result: String,
    pub refs: Vec<ClauseRefs>,
    /// Flow dependences (reads of the result's new values).
    pub flow: DependenceGraph,
    /// Anti dependences (read-of-old before overwrite).
    pub anti: DependenceGraph,
    /// Output dependences among the update's writes.
    pub output: DependenceGraph,
    pub collisions: CollisionVerdict,
    /// `true` when some clause's *subscript* reads the old array — the
    /// update must copy (subscript reads are outside the dependence
    /// analysis, which only covers element values).
    pub subs_read_base: bool,
    /// `true` when some clause's subscript reads the *result* array:
    /// unsupported (no dependence edges constrain it).
    pub subs_read_result: bool,
    pub stats: TestStats,
}

fn fold_bounds(def: &ArrayDef, env: &ConstEnv) -> Result<Vec<(i64, i64)>, AnalysisError> {
    def.bounds
        .iter()
        .enumerate()
        .map(|(dim, (lo, hi))| {
            let f = |e| match Affine::from_expr(e, env) {
                Some(a) if a.is_constant() => Some(a.constant_part()),
                _ => None,
            };
            match (f(lo), f(hi)) {
                (Some(l), Some(h)) => Ok((l, h)),
                _ => Err(AnalysisError::NonConstantArrayBound {
                    array: def.name.clone(),
                    dim,
                }),
            }
        })
        .collect()
}

fn collision_verdict(output: &DependenceGraph, refs: &[ClauseRefs]) -> CollisionVerdict {
    if output.edges.is_empty() {
        return CollisionVerdict::Impossible;
    }
    let guarded = |id: ClauseId| {
        refs.iter()
            .find(|r| r.id() == id)
            .map(|r| r.guarded())
            .unwrap_or(true)
    };
    for e in &output.edges {
        if let Confidence::Confirmed(w) = &e.confidence {
            // A witness is a real runtime collision only when neither
            // clause is guarded (a guard could filter the instance).
            if !guarded(e.src) && !guarded(e.dst) {
                let element = refs
                    .iter()
                    .find(|r| r.id() == e.src)
                    .and_then(|r| witness_element(r, w));
                return CollisionVerdict::Certain {
                    pair: (e.src, e.dst),
                    witness: w.clone(),
                    element,
                };
            }
        }
    }
    let mut pairs: Vec<(ClauseId, ClauseId)> =
        output.edges.iter().map(|e| (e.src, e.dst)).collect();
    pairs.sort();
    pairs.dedup();
    CollisionVerdict::Possible(pairs)
}

/// Evaluate the source clause's write subscripts at the witness's
/// source coordinates, recovering the concrete colliding element.
fn witness_element(src: &ClauseRefs, w: &Witness) -> Option<Vec<i64>> {
    let norm = src.write.norm.as_ref()?;
    // Source instance coordinates: shared-prefix x values, then the
    // source-only loop indices.
    let shared_len = w.shared.len();
    if norm.nest.len() != shared_len + w.src_only.len() {
        return None;
    }
    let mut assignment = std::collections::BTreeMap::new();
    for (k, nl) in norm.nest.iter().enumerate() {
        let v = if k < shared_len {
            w.shared[k].0
        } else {
            w.src_only[k - shared_len]
        };
        assignment.insert(nl.norm_var(), v);
    }
    Some(norm.dims.iter().map(|a| a.eval(&assignment)).collect())
}

fn bounds_verdict(refs: &[ClauseRefs], bounds: &[(i64, i64)]) -> BoundsVerdict {
    let mut sites = Vec::new();
    for r in refs {
        match &r.write.norm {
            Some(norm) => {
                for (dim, a) in norm.dims.iter().enumerate() {
                    // `None` = empty nest: no instances, no writes.
                    if let Some((lo, hi)) = affine_range(a, &norm.nest) {
                        let (blo, bhi) = bounds[dim];
                        if lo < blo || hi > bhi {
                            sites.push(OobSite {
                                clause: r.id(),
                                dim,
                                subscript_range: (lo, hi),
                                bounds: (blo, bhi),
                            });
                        }
                    }
                }
            }
            None => {
                // Nonlinear subscript: cannot prove in-bounds.
                for (dim, b) in bounds.iter().enumerate() {
                    sites.push(OobSite {
                        clause: r.id(),
                        dim,
                        subscript_range: (i64::MIN, i64::MAX),
                        bounds: *b,
                    });
                }
            }
        }
    }
    if sites.is_empty() {
        BoundsVerdict::InBounds
    } else {
        BoundsVerdict::MayExceed(sites)
    }
}

fn empties_verdict(
    refs: &[ClauseRefs],
    collisions: &CollisionVerdict,
    oob: &BoundsVerdict,
    element_count: i64,
) -> EmptiesVerdict {
    // §4: no collisions + no out-of-bounds + pair count = element count
    // ⇒ the subscripts are a permutation of the index space.
    if !matches!(collisions, CollisionVerdict::Impossible) {
        return EmptiesVerdict::Possible("write collisions not ruled out".into());
    }
    if !matches!(oob, BoundsVerdict::InBounds) {
        return EmptiesVerdict::Possible("out-of-bounds definitions not ruled out".into());
    }
    if refs.iter().any(|r| r.guarded()) {
        return EmptiesVerdict::Possible(
            "guarded clauses make the pair count unknown at compile time".into(),
        );
    }
    let pairs: i64 = refs.iter().map(|r| r.instance_count()).sum();
    if pairs == element_count {
        EmptiesVerdict::Impossible
    } else {
        EmptiesVerdict::Possible(format!(
            "{pairs} subscript/value pairs for {element_count} elements"
        ))
    }
}

/// Analyze a monolithic or accumulated array definition.
///
/// # Errors
/// Fails when loop or array bounds do not fold to constants under
/// `env`.
pub fn analyze_array(
    def: &ArrayDef,
    env: &ConstEnv,
    policy: &TestPolicy,
) -> Result<ArrayAnalysis, AnalysisError> {
    let bounds = fold_bounds(def, env)?;
    let refs = collect_refs(&def.comp, &def.name, env)?;
    let flow = flow_dependences(&refs, &def.name, policy);
    let output = output_dependences(&refs, policy);
    let mut stats = TestStats::default();
    stats.absorb(&flow.stats);
    stats.absorb(&output.stats);
    let collisions = match &def.kind {
        ArrayKind::Monolithic => collision_verdict(&output, &refs),
        // Accumulated arrays *combine* colliding writes instead of
        // erroring; collisions are ordering constraints, not errors.
        ArrayKind::Accumulated { .. } => CollisionVerdict::Impossible,
    };
    let oob = bounds_verdict(&refs, &bounds);
    let element_count: i64 = bounds.iter().map(|(lo, hi)| (hi - lo + 1).max(0)).product();
    let empties = match &def.kind {
        ArrayKind::Monolithic => empties_verdict(&refs, &collisions, &oob, element_count),
        // Accumulated arrays have a default element: empties are fine.
        ArrayKind::Accumulated { .. } => EmptiesVerdict::Impossible,
    };
    Ok(ArrayAnalysis {
        array: def.name.clone(),
        bounds,
        refs,
        flow,
        output,
        collisions,
        empties,
        oob,
        stats,
    })
}

/// Analyze a `result = bigupd base comp` update (§9).
///
/// A `base!` selection reads the *old* version (anti dependences: the
/// read must precede the overwrite); a `result!` selection reads the
/// *new* version (flow dependences, exactly as in a recursive
/// monolithic array — this is how the paper's Gauss–Seidel/SOR step
/// mixes "already updated" and "not yet updated" neighbors).
///
/// # Errors
/// Fails when loop bounds do not fold to constants under `env`.
pub fn analyze_bigupd(
    base: &str,
    result: &str,
    comp: &Comp,
    env: &ConstEnv,
    policy: &TestPolicy,
) -> Result<UpdateAnalysis, AnalysisError> {
    let refs = collect_refs(comp, base, env)?;
    let flow = flow_dependences(&refs, result, policy);
    let anti = anti_dependences(&refs, base, policy);
    let output = output_dependences(&refs, policy);
    let mut stats = TestStats::default();
    stats.absorb(&flow.stats);
    stats.absorb(&anti.stats);
    stats.absorb(&output.stats);
    let collisions = collision_verdict(&output, &refs);
    let mut subs_read_base = false;
    let mut subs_read_result = false;
    for r in &refs {
        for sub in &r.ctx.clause.subs {
            let inlined = hac_lang::normalize::inline_path_lets(&r.ctx, sub);
            for a in inlined.referenced_arrays() {
                if a == base {
                    subs_read_base = true;
                }
                if a == result {
                    subs_read_result = true;
                }
            }
        }
    }
    Ok(UpdateAnalysis {
        base: base.to_string(),
        result: result.to_string(),
        refs,
        flow,
        anti,
        output,
        collisions,
        subs_read_base,
        subs_read_result,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_program;

    fn analyzed(src: &str, name: &str, env: &ConstEnv) -> ArrayAnalysis {
        let mut p = parse_program(src).unwrap();
        let (mut c, mut l) = (0, 0);
        for b in &mut p.bindings {
            match b {
                hac_lang::ast::Binding::Let(d) => {
                    hac_lang::number::number_comp(&mut d.comp, &mut c, &mut l)
                }
                hac_lang::ast::Binding::LetrecStar(ds) => {
                    for d in ds {
                        hac_lang::number::number_comp(&mut d.comp, &mut c, &mut l);
                    }
                }
                _ => {}
            }
        }
        let def = p.array_def(name).unwrap();
        analyze_array(def, env, &TestPolicy::default()).unwrap()
    }

    #[test]
    fn wavefront_is_clean() {
        let env = ConstEnv::from_pairs([("n", 8)]);
        let a = analyzed(
            r#"
param n;
letrec* a = array ((1,1),(n,n))
   ([ (1,j) := 1 | j <- [1..n] ] ++
    [ (i,1) := 1 | i <- [2..n] ] ++
    [ (i,j) := a!(i-1,j) + a!(i,j-1) + a!(i-1,j-1)
       | i <- [2..n], j <- [2..n] ]);
"#,
            "a",
            &env,
        );
        assert!(a.collisions.checks_elidable(), "{:?}", a.collisions);
        assert!(a.empties.checks_elidable(), "{:?}", a.empties);
        assert_eq!(a.oob, BoundsVerdict::InBounds);
        assert_eq!(a.element_count(), 64);
        assert!(!a.flow.edges.is_empty());
    }

    #[test]
    fn missing_element_reported() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        // Covers [2..n] only: element 1 is empty.
        let a = analyzed(
            "param n;\nlet a = array (1,n) [ i := 0 | i <- [2..n] ];\n",
            "a",
            &env,
        );
        assert!(!a.empties.checks_elidable());
        assert_eq!(a.oob, BoundsVerdict::InBounds);
    }

    #[test]
    fn certain_collision_flagged_with_element() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let a = analyzed(
            "param n;\nlet a = array (1,n) ([ i := 0 | i <- [1..n] ] ++ [ 5 := 1 ]);\n",
            "a",
            &env,
        );
        match &a.collisions {
            CollisionVerdict::Certain { element, .. } => {
                assert_eq!(element.as_deref(), Some(&[5][..]), "names element 5");
            }
            other => panic!("expected certain collision, got {other:?}"),
        }
        assert!(!a.empties.checks_elidable());
    }

    #[test]
    fn guarded_collision_only_possible() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let a = analyzed(
            "param n;\nlet a = array (1,n) \
             ([ i := 0 | i <- [1..n], i < 5 ] ++ [ 3 := 1 ]);\n",
            "a",
            &env,
        );
        assert!(matches!(a.collisions, CollisionVerdict::Possible(_)));
    }

    #[test]
    fn out_of_bounds_detected() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let a = analyzed(
            "param n;\nlet a = array (1,n) [ i + 5 := 0 | i <- [1..n] ];\n",
            "a",
            &env,
        );
        match &a.oob {
            BoundsVerdict::MayExceed(sites) => {
                assert_eq!(sites[0].subscript_range, (6, 15));
                assert_eq!(sites[0].bounds, (1, 10));
            }
            other => panic!("expected MayExceed, got {other:?}"),
        }
    }

    #[test]
    fn accumulated_array_tolerates_collisions_and_empties() {
        let env = ConstEnv::from_pairs([("n", 100)]);
        let a = analyzed(
            "param n;\nlet h = accumArray (+) 0 (1,10) [ i mod 10 + 1 := 1.0 | i <- [1..n] ];\n",
            "h",
            &env,
        );
        assert!(a.collisions.checks_elidable());
        assert!(a.empties.checks_elidable());
    }

    #[test]
    fn bigupd_row_swap_analysis() {
        let env = ConstEnv::from_pairs([("n", 8)]);
        let mut p = parse_program(
            r#"
param n;
input a ((1,2),(1,n));
b = bigupd a ([ (1,j) := a!(2,j) | j <- [1..n] ] ++
              [ (2,j) := a!(1,j) | j <- [1..n] ]);
"#,
        )
        .unwrap();
        let (mut cc, mut ll) = (0, 0);
        let (base, comp) = match &mut p.bindings[1] {
            hac_lang::ast::Binding::BigUpd { base, comp, .. } => {
                hac_lang::number::number_comp(comp, &mut cc, &mut ll);
                (base.clone(), comp.clone())
            }
            _ => unreachable!(),
        };
        let u = analyze_bigupd(&base, "b", &comp, &env, &TestPolicy::default()).unwrap();
        // The paper: "The two s/v clauses are involved in an
        // antidependence cycle, each edge of which is labeled (=)" —
        // with unshared per-clause loops our label is the empty vector,
        // the loop-independent `()`; the cycle 0→1, 1→0 is what matters.
        assert_eq!(u.anti.edges.len(), 2);
        assert!(u.collisions.checks_elidable());
    }

    #[test]
    fn non_constant_array_bound_is_error() {
        let mut p = parse_program("param n;\nlet a = array (1,n) [ 1 := 0 ];\n").unwrap();
        let def = match &mut p.bindings[0] {
            hac_lang::ast::Binding::Let(d) => {
                number_clauses(&mut d.comp);
                d.clone()
            }
            _ => unreachable!(),
        };
        let err = analyze_array(&def, &ConstEnv::new(), &TestPolicy::default()).unwrap_err();
        assert!(matches!(err, AnalysisError::NonConstantArrayBound { .. }));
    }
}
