//! §10 extension: vectorization/parallelization candidates.
//!
//! "As with imperative languages, such transformations on functional
//! language programs needs to focus on finding innermost loops with no
//! loop-carried dependences." This module classifies every generator of
//! a comprehension: a loop *carries* a dependence when some edge's
//! direction vector has its first non-`=` component at that loop's
//! level; innermost loops carrying nothing are vectorization
//! candidates, and any non-carrying loop can run its iterations
//! independently.

use std::collections::{BTreeMap, BTreeSet};

use hac_lang::ast::{Comp, LoopId};
use hac_lang::number::clause_contexts;

use crate::depgraph::DepEdge;
use crate::direction::Dir;

/// Classification of one generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopParallelism {
    pub id: LoopId,
    pub var: String,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// No generator nested below this one.
    pub innermost: bool,
    /// Some dependence is carried at this loop's level.
    pub carries_dependence: bool,
}

impl LoopParallelism {
    /// Innermost and carries nothing → vectorizable (§10).
    pub fn vectorizable(&self) -> bool {
        self.innermost && !self.carries_dependence
    }

    /// Iterations are mutually independent → parallelizable.
    pub fn parallelizable(&self) -> bool {
        !self.carries_dependence
    }
}

/// Classify every generator of `comp` against a set of dependence
/// edges (flow for monolithic arrays; flow + anti for in-place
/// updates). `*` components are treated as possibly-carried.
pub fn loop_parallelism(comp: &Comp, edges: &[DepEdge]) -> Vec<LoopParallelism> {
    // Collect loops with depth and innermost-ness, in source order.
    let mut loops: Vec<LoopParallelism> = Vec::new();
    collect(comp, 0, &mut loops);

    // Which loop ids carry a dependence? An edge's direction vector
    // indexes the shared prefix of its endpoints' nests.
    let ctxs = clause_contexts(comp);
    let ctx_of = |id| ctxs.iter().find(|c| c.clause.id == id);
    let mut carried: BTreeSet<LoopId> = BTreeSet::new();
    for e in edges {
        let (Some(sc), Some(dc)) = (ctx_of(e.src), ctx_of(e.dst)) else {
            continue;
        };
        let shared: Vec<LoopId> = sc
            .loops()
            .iter()
            .zip(dc.loops().iter())
            .take_while(|(a, b)| a.id == b.id)
            .map(|(a, _)| a.id)
            .collect();
        // Every level whose component could be the first non-`=` one
        // is (possibly) carrying. For concrete vectors that is exactly
        // the carried level; leading `*`s make the prefix ambiguous.
        for (k, d) in e.dv.0.iter().enumerate() {
            match d {
                Dir::Eq => continue,
                Dir::Any => {
                    if let Some(l) = shared.get(k) {
                        carried.insert(*l);
                    }
                    continue; // a `*` may be `=`: keep scanning
                }
                Dir::Lt | Dir::Gt => {
                    if let Some(l) = shared.get(k) {
                        carried.insert(*l);
                    }
                    break; // definite carried level found
                }
            }
        }
    }

    for lp in &mut loops {
        lp.carries_dependence = carried.contains(&lp.id);
    }
    loops
}

fn collect(comp: &Comp, depth: usize, out: &mut Vec<LoopParallelism>) {
    match comp {
        Comp::Append(cs) => {
            for c in cs {
                collect(c, depth, out);
            }
        }
        Comp::Guard { body, .. } | Comp::Let { body, .. } => collect(body, depth, out),
        Comp::Gen { id, var, body, .. } => {
            let mut has_inner = false;
            body.walk(&mut |c| {
                if matches!(c, Comp::Gen { .. }) {
                    has_inner = true;
                }
            });
            out.push(LoopParallelism {
                id: *id,
                var: var.clone(),
                depth,
                innermost: !has_inner,
                carries_dependence: false,
            });
            collect(body, depth + 1, out);
        }
        Comp::Clause(_) => {}
    }
}

/// A rendered summary grouped by verdict (for reports).
pub fn parallelism_summary(loops: &[LoopParallelism]) -> BTreeMap<&'static str, Vec<String>> {
    let mut out: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    for l in loops {
        let label = format!("{} ({})", l.var, l.id);
        if l.vectorizable() {
            out.entry("vectorizable").or_default().push(label);
        } else if l.parallelizable() {
            out.entry("parallelizable").or_default().push(label);
        } else {
            out.entry("sequential").or_default().push(label);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::flow_dependences;
    use crate::refs::collect_refs;
    use crate::search::TestPolicy;
    use hac_lang::env::ConstEnv;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    fn classify(src: &str, env: &ConstEnv) -> Vec<LoopParallelism> {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let refs = collect_refs(&c, "a", env).unwrap();
        let flow = flow_dependences(&refs, "a", &TestPolicy::default());
        loop_parallelism(&c, &flow.edges)
    }

    #[test]
    fn elementwise_loop_vectorizable() {
        let env = ConstEnv::from_pairs([("n", 100)]);
        let loops = classify("[ i := u!i * 2 | i <- [1..n] ]", &env);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].vectorizable());
        assert!(loops[0].parallelizable());
    }

    #[test]
    fn recurrence_loop_sequential() {
        let env = ConstEnv::from_pairs([("n", 100)]);
        let loops = classify("[ 1 := 1 ] ++ [ i := a!(i-1) | i <- [2..n] ]", &env);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].carries_dependence);
        assert!(!loops[0].vectorizable());
    }

    #[test]
    fn wavefront_both_loops_carry() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let loops = classify(
            "[ (1,j) := 1 | j <- [1..n] ] ++ [ (i,1) := 1 | i <- [2..n] ] ++ \
             [ (i,j) := a!(i-1,j) + a!(i,j-1) | i <- [2..n], j <- [2..n] ]",
            &env,
        );
        // Border loops carry nothing; interior i and j both carry.
        let by_var: Vec<(&str, bool, bool)> = loops
            .iter()
            .map(|l| (l.var.as_str(), l.carries_dependence, l.innermost))
            .collect();
        assert_eq!(by_var.len(), 4);
        assert!(!loops[0].carries_dependence, "border j loop");
        assert!(!loops[1].carries_dependence, "border i loop");
        assert!(
            loops[2].carries_dependence,
            "interior i: (<,=) carried at 0"
        );
        assert!(
            loops[3].carries_dependence,
            "interior j: (=,<) carried at 1"
        );
        assert!(loops[0].vectorizable());
    }

    #[test]
    fn row_recurrence_inner_loop_vectorizable() {
        // a(i,j) = a(i-1,j) + 1: carried only at the outer loop; the
        // inner loop is the §10 vectorization candidate.
        let env = ConstEnv::from_pairs([("n", 10)]);
        let loops = classify(
            "[ (1,j) := 1 | j <- [1..n] ] ++ \
             [ (i,j) := a!(i-1,j) + 1 | i <- [2..n], j <- [1..n] ]",
            &env,
        );
        let interior_i = &loops[1];
        let interior_j = &loops[2];
        assert!(interior_i.carries_dependence);
        assert!(!interior_i.innermost);
        assert!(interior_j.vectorizable(), "{loops:?}");
    }

    #[test]
    fn star_components_conservative() {
        use crate::depgraph::{DepEdge, DepKind};
        use crate::direction::DirVec;
        use crate::search::Confidence;
        use hac_lang::ast::ClauseId;

        let mut c = parse_comp("[ (i,j) := 0 | i <- [1..4], j <- [1..4] ]").unwrap();
        number_clauses(&mut c);
        let edge = DepEdge {
            src: ClauseId(0),
            dst: ClauseId(0),
            kind: DepKind::Flow,
            array: "a".into(),
            dv: DirVec(vec![Dir::Any, Dir::Any]),
            confidence: Confidence::Possible,
            distance: None,
            src_read: None,
            dst_read: None,
        };
        let loops = loop_parallelism(&c, &[edge]);
        assert!(loops.iter().all(|l| l.carries_dependence));
    }

    #[test]
    fn summary_groups() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let loops = classify(
            "[ (1,j) := 1 | j <- [1..n] ] ++ \
             [ (i,j) := a!(i-1,j) + 1 | i <- [2..n], j <- [1..n] ]",
            &env,
        );
        let s = parallelism_summary(&loops);
        assert!(s.contains_key("vectorizable"));
        assert!(s.contains_key("sequential"));
    }
}
