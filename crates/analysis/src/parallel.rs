//! §10 extension: vectorization/parallelization candidates.
//!
//! "As with imperative languages, such transformations on functional
//! language programs needs to focus on finding innermost loops with no
//! loop-carried dependences." This module classifies every generator of
//! a comprehension: a loop *carries* a dependence when some edge's
//! direction vector has its first non-`=` component at that loop's
//! level; innermost loops carrying nothing are vectorization
//! candidates, and any non-carrying loop can run its iterations
//! independently.
//!
//! Carried loops get one further verdict: when *every* dependence a
//! loop carries is a self flow edge at distance one whose clause folds
//! the carried cell through a reassociable operator (`a!(i-1) + e`,
//! `min`/`max`), the loop is a *reduction* — its iterations are still
//! ordered, but the carry is a strict left fold the backend may
//! execute as a fused accumulator kernel without changing a single FP
//! operation (see `hac_codegen::fuse`).

use std::collections::BTreeMap;

use hac_lang::ast::{BinOp, Comp, Expr, LoopId};
use hac_lang::number::clause_contexts;

use crate::depgraph::{DepEdge, DepKind};
use crate::direction::Dir;

/// Classification of one generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopParallelism {
    pub id: LoopId,
    pub var: String,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// No generator nested below this one.
    pub innermost: bool,
    /// Some dependence is carried at this loop's level.
    pub carries_dependence: bool,
    /// Every dependence carried at this level is a reassociable
    /// accumulator recurrence: a self flow edge at distance exactly one
    /// whose clause value folds the carried cell with `+`/`min`/`max`.
    /// Meaningless (false) when nothing is carried.
    pub reduction: bool,
}

impl LoopParallelism {
    /// Innermost and carries nothing → vectorizable (§10).
    pub fn vectorizable(&self) -> bool {
        self.innermost && !self.carries_dependence
    }

    /// Iterations are mutually independent → parallelizable.
    pub fn parallelizable(&self) -> bool {
        !self.carries_dependence
    }

    /// Carried, but only by reassociable accumulator recurrences: the
    /// loop is a strict left fold (`acc = acc ⊕ e`).
    pub fn reducible(&self) -> bool {
        self.carries_dependence && self.reduction
    }
}

/// Classify every generator of `comp` against a set of dependence
/// edges (flow for monolithic arrays; flow + anti for in-place
/// updates). `*` components are treated as possibly-carried.
pub fn loop_parallelism(comp: &Comp, edges: &[DepEdge]) -> Vec<LoopParallelism> {
    // Collect loops with depth and innermost-ness, in source order.
    let mut loops: Vec<LoopParallelism> = Vec::new();
    collect(comp, 0, &mut loops);

    // Which loop ids carry a dependence? An edge's direction vector
    // indexes the shared prefix of its endpoints' nests. Alongside the
    // carried set, track whether *every* edge carried at a level is a
    // reduction-shaped recurrence (one non-reduction edge poisons the
    // level).
    let ctxs = clause_contexts(comp);
    let ctx_of = |id| ctxs.iter().find(|c| c.clause.id == id);
    let mut carried: BTreeMap<LoopId, bool> = BTreeMap::new();
    let mark = |carried: &mut BTreeMap<LoopId, bool>, l: LoopId, red: bool| {
        carried.entry(l).and_modify(|r| *r &= red).or_insert(red);
    };
    for e in edges {
        let (Some(sc), Some(dc)) = (ctx_of(e.src), ctx_of(e.dst)) else {
            continue;
        };
        let shared: Vec<LoopId> = sc
            .loops()
            .iter()
            .zip(dc.loops().iter())
            .take_while(|(a, b)| a.id == b.id)
            .map(|(a, _)| a.id)
            .collect();
        // Every level whose component could be the first non-`=` one
        // is (possibly) carrying. For concrete vectors that is exactly
        // the carried level; leading `*`s make the prefix ambiguous.
        for (k, d) in e.dv.0.iter().enumerate() {
            match d {
                Dir::Eq => continue,
                Dir::Any => {
                    if let Some(l) = shared.get(k) {
                        // An ambiguous component is never a proven
                        // distance-one recurrence.
                        mark(&mut carried, *l, false);
                    }
                    continue; // a `*` may be `=`: keep scanning
                }
                Dir::Lt | Dir::Gt => {
                    if let Some(l) = shared.get(k) {
                        mark(&mut carried, *l, reduction_edge(e, k, &dc.clause.value));
                    }
                    break; // definite carried level found
                }
            }
        }
    }

    for lp in &mut loops {
        lp.carries_dependence = carried.contains_key(&lp.id);
        lp.reduction = carried.get(&lp.id).copied().unwrap_or(false);
    }
    loops
}

/// Is `e`, carried at shared-loop level `k`, a reduction-shaped
/// recurrence? Requires a self flow edge with a constant distance
/// vector that is ±1 at `k` and 0 everywhere else (the clause reads
/// exactly the cell it wrote one iteration ago), and a sink value that
/// folds that cell through a reassociable operator. The tape-level
/// recognizer re-verifies the access pattern on the compiled streams
/// (`hac_codegen::fuse`); this verdict only licenses the attempt.
fn reduction_edge(e: &DepEdge, k: usize, sink_value: &Expr) -> bool {
    if e.src != e.dst || e.kind != DepKind::Flow {
        return false;
    }
    let Some(dist) = &e.distance else {
        return false;
    };
    let unit_at_k = dist
        .iter()
        .enumerate()
        .all(|(j, &d)| if j == k { d.abs() == 1 } else { d == 0 });
    unit_at_k && reassociable_fold(sink_value, &e.array)
}

/// Does `value` have the shape `a!(...) ⊕ e` (either operand order)
/// with `⊕ ∈ {+, min, max}` and `e` free of references to `array`?
/// Strictly *left-to-right* execution of such a fold is what the fused
/// kernels reproduce — reassociativity is never exploited, it merely
/// names the class of operators whose single carried read is the
/// running accumulator itself.
fn reassociable_fold(value: &Expr, array: &str) -> bool {
    match value {
        // `let` binders may precede the fold as long as none of them
        // touch the target array (they lower to loop-body temporaries).
        Expr::Let { binds, body } => {
            binds.iter().all(|(_, e)| !mentions(e, array)) && reassociable_fold(body, array)
        }
        Expr::Binary {
            op: BinOp::Add | BinOp::Min | BinOp::Max,
            lhs,
            rhs,
        } => {
            let is_acc = |e: &Expr| matches!(e, Expr::Index { array: a, subs } if a == array && subs.iter().all(|s| !mentions(s, array)));
            (is_acc(lhs) && !mentions(rhs, array)) || (is_acc(rhs) && !mentions(lhs, array))
        }
        _ => false,
    }
}

/// Does `e` reference `array` anywhere?
fn mentions(e: &Expr, array: &str) -> bool {
    match e {
        Expr::Num(_) | Expr::Int(_) | Expr::Var(_) => false,
        Expr::Index { array: a, subs } => a == array || subs.iter().any(|s| mentions(s, array)),
        Expr::Binary { lhs, rhs, .. } => mentions(lhs, array) || mentions(rhs, array),
        Expr::Unary { expr, .. } => mentions(expr, array),
        Expr::If { cond, then, els } => {
            mentions(cond, array) || mentions(then, array) || mentions(els, array)
        }
        Expr::Let { binds, body } => {
            binds.iter().any(|(_, b)| mentions(b, array)) || mentions(body, array)
        }
        Expr::Call { args, .. } => args.iter().any(|a| mentions(a, array)),
    }
}

fn collect(comp: &Comp, depth: usize, out: &mut Vec<LoopParallelism>) {
    match comp {
        Comp::Append(cs) => {
            for c in cs {
                collect(c, depth, out);
            }
        }
        Comp::Guard { body, .. } | Comp::Let { body, .. } => collect(body, depth, out),
        Comp::Gen { id, var, body, .. } => {
            let mut has_inner = false;
            body.walk(&mut |c| {
                if matches!(c, Comp::Gen { .. }) {
                    has_inner = true;
                }
            });
            out.push(LoopParallelism {
                id: *id,
                var: var.clone(),
                depth,
                innermost: !has_inner,
                carries_dependence: false,
                reduction: false,
            });
            collect(body, depth + 1, out);
        }
        Comp::Clause(_) => {}
    }
}

/// A rendered summary grouped by verdict (for reports).
pub fn parallelism_summary(loops: &[LoopParallelism]) -> BTreeMap<&'static str, Vec<String>> {
    let mut out: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    for l in loops {
        let label = format!("{} ({})", l.var, l.id);
        if l.vectorizable() {
            out.entry("vectorizable").or_default().push(label);
        } else if l.parallelizable() {
            out.entry("parallelizable").or_default().push(label);
        } else if l.reducible() {
            out.entry("reduction").or_default().push(label);
        } else {
            out.entry("sequential").or_default().push(label);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::flow_dependences;
    use crate::refs::collect_refs;
    use crate::search::TestPolicy;
    use hac_lang::env::ConstEnv;
    use hac_lang::number::number_clauses;
    use hac_lang::parser::parse_comp;

    fn classify(src: &str, env: &ConstEnv) -> Vec<LoopParallelism> {
        let mut c = parse_comp(src).unwrap();
        number_clauses(&mut c);
        let refs = collect_refs(&c, "a", env).unwrap();
        let flow = flow_dependences(&refs, "a", &TestPolicy::default());
        loop_parallelism(&c, &flow.edges)
    }

    #[test]
    fn elementwise_loop_vectorizable() {
        let env = ConstEnv::from_pairs([("n", 100)]);
        let loops = classify("[ i := u!i * 2 | i <- [1..n] ]", &env);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].vectorizable());
        assert!(loops[0].parallelizable());
    }

    #[test]
    fn recurrence_loop_sequential() {
        let env = ConstEnv::from_pairs([("n", 100)]);
        let loops = classify("[ 1 := 1 ] ++ [ i := a!(i-1) | i <- [2..n] ]", &env);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].carries_dependence);
        assert!(!loops[0].vectorizable());
    }

    #[test]
    fn wavefront_both_loops_carry() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let loops = classify(
            "[ (1,j) := 1 | j <- [1..n] ] ++ [ (i,1) := 1 | i <- [2..n] ] ++ \
             [ (i,j) := a!(i-1,j) + a!(i,j-1) | i <- [2..n], j <- [2..n] ]",
            &env,
        );
        // Border loops carry nothing; interior i and j both carry.
        let by_var: Vec<(&str, bool, bool)> = loops
            .iter()
            .map(|l| (l.var.as_str(), l.carries_dependence, l.innermost))
            .collect();
        assert_eq!(by_var.len(), 4);
        assert!(!loops[0].carries_dependence, "border j loop");
        assert!(!loops[1].carries_dependence, "border i loop");
        assert!(
            loops[2].carries_dependence,
            "interior i: (<,=) carried at 0"
        );
        assert!(
            loops[3].carries_dependence,
            "interior j: (=,<) carried at 1"
        );
        assert!(loops[0].vectorizable());
    }

    #[test]
    fn row_recurrence_inner_loop_vectorizable() {
        // a(i,j) = a(i-1,j) + 1: carried only at the outer loop; the
        // inner loop is the §10 vectorization candidate.
        let env = ConstEnv::from_pairs([("n", 10)]);
        let loops = classify(
            "[ (1,j) := 1 | j <- [1..n] ] ++ \
             [ (i,j) := a!(i-1,j) + 1 | i <- [2..n], j <- [1..n] ]",
            &env,
        );
        let interior_i = &loops[1];
        let interior_j = &loops[2];
        assert!(interior_i.carries_dependence);
        assert!(!interior_i.innermost);
        assert!(interior_j.vectorizable(), "{loops:?}");
    }

    #[test]
    fn star_components_conservative() {
        use crate::depgraph::{DepEdge, DepKind};
        use crate::direction::DirVec;
        use crate::search::Confidence;
        use hac_lang::ast::ClauseId;

        let mut c = parse_comp("[ (i,j) := 0 | i <- [1..4], j <- [1..4] ]").unwrap();
        number_clauses(&mut c);
        let edge = DepEdge {
            src: ClauseId(0),
            dst: ClauseId(0),
            kind: DepKind::Flow,
            array: "a".into(),
            dv: DirVec(vec![Dir::Any, Dir::Any]),
            confidence: Confidence::Possible,
            distance: None,
            src_read: None,
            dst_read: None,
        };
        let loops = loop_parallelism(&c, &[edge]);
        assert!(loops.iter().all(|l| l.carries_dependence));
    }

    #[test]
    fn running_sum_is_a_reduction() {
        let env = ConstEnv::from_pairs([("n", 100)]);
        let loops = classify("[ 1 := 0 ] ++ [ k := a!(k-1) + u!k | k <- [2..n] ]", &env);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].carries_dependence);
        assert!(loops[0].reducible(), "{loops:?}");
        assert!(!loops[0].parallelizable());
        assert!(!loops[0].vectorizable());
    }

    #[test]
    fn min_max_folds_are_reductions() {
        let env = ConstEnv::from_pairs([("n", 50)]);
        for fold in ["max(a!(k-1), u!k)", "min(u!k, a!(k-1))"] {
            let src = format!("[ 1 := 0 ] ++ [ k := {fold} | k <- [2..n] ]");
            let loops = classify(&src, &env);
            assert!(loops[0].reducible(), "{fold}: {loops:?}");
        }
    }

    #[test]
    fn non_reassociable_carries_are_not_reductions() {
        let env = ConstEnv::from_pairs([("n", 50)]);
        for value in [
            // The fold operator is not reassociable.
            "a!(k-1) - u!k",
            "u!k / a!(k-1)",
            // The accumulator appears on both sides.
            "a!(k-1) + a!(k-1)",
            // Not the previous iteration's cell.
            "a!(k-2) + u!k",
        ] {
            let src = format!("[ 1 := 1 ] ++ [ 2 := 1 ] ++ [ k := {value} | k <- [3..n] ]");
            let loops = classify(&src, &env);
            assert!(loops[0].carries_dependence, "{value}: {loops:?}");
            assert!(!loops[0].reducible(), "{value}: {loops:?}");
        }
    }

    #[test]
    fn matmul_shape_inner_k_is_a_reduction() {
        // The accumulation clause of the matmul recurrence: a flat
        // partial-sum array scanned along k. The i and j loops stay
        // parallelizable; only k carries — and reduces.
        let env = ConstEnv::from_pairs([("n", 8)]);
        let loops = classify(
            "[ (i,j,1) := 0 | i <- [1..n], j <- [1..n] ] ++ \
             [ (i,j,k) := a!(i,j,k-1) + u!(i,k) * u!(k,j) \
               | i <- [1..n], j <- [1..n], k <- [2..n] ]",
            &env,
        );
        let k = loops.iter().find(|l| l.var == "k").unwrap();
        assert!(k.reducible(), "{loops:?}");
        for var in ["i", "j"] {
            assert!(
                loops
                    .iter()
                    .filter(|l| l.var == var)
                    .all(LoopParallelism::parallelizable),
                "{var} loops stay parallel: {loops:?}"
            );
        }
        let s = parallelism_summary(&loops);
        assert_eq!(s["reduction"], vec![format!("k ({})", k.id)]);
    }

    #[test]
    fn summary_groups() {
        let env = ConstEnv::from_pairs([("n", 10)]);
        let loops = classify(
            "[ (1,j) := 1 | j <- [1..n] ] ++ \
             [ (i,j) := a!(i-1,j) / 2 | i <- [2..n], j <- [1..n] ]",
            &env,
        );
        let s = parallelism_summary(&loops);
        assert!(s.contains_key("vectorizable"));
        assert!(s.contains_key("sequential"));
        assert!(!s.contains_key("reduction"));
    }
}
