//! Static cost certificates: symbolic worst-case fuel and peak-memory
//! bounds over the program parameters.
//!
//! The paper's §7 normalization makes every schedulable loop range an
//! affine function of the parameters, so trip counts — and with them
//! the fuel a run draws under the metering contract — are polynomials
//! in those parameters. This module holds the *vocabulary* of the cost
//! analysis: [`Poly`] (a multivariate integer polynomial), [`Bound`]
//! (a closed polynomial bound or an open verdict with a reason), and
//! [`CostCert`] (the fuel + memory pair attached to every compiled
//! program). The derivation itself lives next to the IRs it walks:
//! `hac_codegen::cost` computes the concrete figures from lowered Limp,
//! and `hac_core::cost` assembles per-unit contributions and calibrates
//! the symbolic form against the concrete walker.
//!
//! A certificate is **exact-or-over** by construction: for every
//! engine (tree walk, tape, parallel tape at any thread count, fused
//! or not) a successful run's metered usage is `<=` the evaluated
//! bound, and for an `exact` bound it is `==`.

use std::collections::BTreeMap;

use hac_lang::ast::{BinOp, Expr};

/// A monomial: variable name → power. The empty map is the constant
/// monomial `1`.
pub type Monomial = BTreeMap<String, u32>;

/// A multivariate polynomial with integer coefficients over the
/// program parameters, e.g. `12n^2+4n+7`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    /// Monomial → coefficient; zero coefficients are never stored.
    terms: BTreeMap<Monomial, i64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: i64) -> Poly {
        let mut p = Poly::default();
        if c != 0 {
            p.terms.insert(Monomial::new(), c);
        }
        p
    }

    /// The polynomial `name`.
    pub fn var(name: &str) -> Poly {
        let mut m = Monomial::new();
        m.insert(name.to_string(), 1);
        let mut p = Poly::default();
        p.terms.insert(m, 1);
        p
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// `Some(c)` when the polynomial is the constant `c`.
    pub fn as_constant(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 => self.terms.get(&Monomial::new()).copied(),
            _ => None,
        }
    }

    fn insert(&mut self, m: Monomial, c: i64) {
        if c == 0 {
            return;
        }
        let slot = self.terms.entry(m).or_insert(0);
        *slot = slot.saturating_add(c);
        if *slot == 0 {
            let m: Vec<Monomial> = self
                .terms
                .iter()
                .filter(|(_, &c)| c == 0)
                .map(|(m, _)| m.clone())
                .collect();
            for m in m {
                self.terms.remove(&m);
            }
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, &c) in &other.terms {
            out.insert(m.clone(), c);
        }
        out
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, &c) in &other.terms {
            out.insert(m.clone(), c.saturating_neg());
        }
        out
    }

    /// `self * other`.
    #[must_use]
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::default();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &other.terms {
                let mut m = ma.clone();
                for (v, &p) in mb {
                    *m.entry(v.clone()).or_insert(0) += p;
                }
                out.insert(m, ca.saturating_mul(cb));
            }
        }
        out
    }

    /// Translate an AST expression into a polynomial, when it is one:
    /// integer literals, variables, and `+`/`-`/`*` over those. Returns
    /// `None` for anything else (division, conditionals, array reads).
    pub fn from_expr(e: &Expr) -> Option<Poly> {
        match e {
            Expr::Int(v) => Some(Poly::constant(*v)),
            Expr::Num(v) if v.fract() == 0.0 && v.abs() < EXACT_F64_INT => {
                Some(Poly::constant(*v as i64))
            }
            Expr::Var(n) => Some(Poly::var(n)),
            Expr::Binary { op, lhs, rhs } => {
                let l = Poly::from_expr(lhs)?;
                let r = Poly::from_expr(rhs)?;
                match op {
                    BinOp::Add => Some(l.add(&r)),
                    BinOp::Sub => Some(l.sub(&r)),
                    BinOp::Mul => Some(l.mul(&r)),
                    _ => None,
                }
            }
            Expr::Unary {
                op: hac_lang::ast::UnOp::Neg,
                expr,
            } => Some(Poly::zero().sub(&Poly::from_expr(expr)?)),
            _ => None,
        }
    }

    /// Evaluate at the parameter values supplied by `lookup`, clamped
    /// into `u64` (resource bounds are non-negative; saturates on
    /// overflow, which over-approximates and stays sound). `None` when
    /// a variable has no value.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<i64>) -> Option<u64> {
        let mut total: i128 = 0;
        for (m, &c) in &self.terms {
            let mut term: i128 = c as i128;
            for (v, &p) in m {
                let val = lookup(v)? as i128;
                for _ in 0..p {
                    term = match term.checked_mul(val) {
                        Some(t) => t,
                        None => return Some(u64::MAX),
                    };
                }
            }
            total = match total.checked_add(term) {
                Some(t) => t,
                None => return Some(u64::MAX),
            };
        }
        Some(total.clamp(0, u64::MAX as i128) as u64)
    }

    /// Render in the report notation: `12n^2+4n+7`, multi-variable
    /// monomials joined with `*` (`4m*n`), the zero polynomial as `0`.
    pub fn render(&self) -> String {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        let mut terms: Vec<(&Monomial, i64)> = self.terms.iter().map(|(m, &c)| (m, c)).collect();
        terms.sort_by(|a, b| {
            let da: u32 = a.0.values().sum();
            let db: u32 = b.0.values().sum();
            db.cmp(&da).then_with(|| a.0.cmp(b.0))
        });
        let mut out = String::new();
        for (m, c) in terms {
            let mono = m
                .iter()
                .map(|(v, &p)| {
                    if p == 1 {
                        v.clone()
                    } else {
                        format!("{v}^{p}")
                    }
                })
                .collect::<Vec<_>>()
                .join("*");
            let first = out.is_empty();
            if c < 0 {
                out.push('-');
            } else if !first {
                out.push('+');
            }
            let mag = c.unsigned_abs();
            if mono.is_empty() {
                out.push_str(&mag.to_string());
            } else if mag == 1 {
                out.push_str(&mono);
            } else {
                out.push_str(&format!("{mag}{mono}"));
            }
        }
        out
    }
}

/// `2^53`: integers below this are exactly representable in `f64`.
const EXACT_F64_INT: f64 = 9_007_199_254_740_992.0;

/// One resource bound of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// The bound closed: a successful run uses at most `value` units
    /// of the resource at the parameters the program was compiled
    /// with, and `poly` is the symbolic form over the parameters
    /// (calibrated so `poly(params) == value`).
    Closed {
        value: u64,
        poly: Poly,
        /// `true` when a successful run uses *exactly* `value` on
        /// every engine — the license for all-or-nothing admission.
        /// `false` keeps the bound sound but only as an upper bound
        /// (runtime checks or data-dependent branches may stop early
        /// or take a cheaper path).
        exact: bool,
    },
    /// The bound did not close (data-dependent shape); the run falls
    /// back to the metered path.
    Open { reason: String },
}

impl Bound {
    /// The evaluated bound, when closed.
    pub fn closed_value(&self) -> Option<u64> {
        match self {
            Bound::Closed { value, .. } => Some(*value),
            Bound::Open { .. } => None,
        }
    }

    /// Whether this bound is closed *and* exact.
    pub fn is_exact(&self) -> bool {
        matches!(self, Bound::Closed { exact: true, .. })
    }
}

/// The cost certificate attached to every compiled program: worst-case
/// fuel and peak memory as (calibrated) polynomials over the program
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostCert {
    pub fuel: Bound,
    pub mem: Bound,
}

impl CostCert {
    /// A fully open certificate.
    pub fn open(reason: &str) -> CostCert {
        CostCert {
            fuel: Bound::Open {
                reason: reason.to_string(),
            },
            mem: Bound::Open {
                reason: reason.to_string(),
            },
        }
    }

    /// Whether both bounds closed.
    pub fn is_closed(&self) -> bool {
        matches!(self.fuel, Bound::Closed { .. }) && matches!(self.mem, Bound::Closed { .. })
    }

    /// Whether both bounds closed exactly.
    pub fn is_exact(&self) -> bool {
        self.fuel.is_exact() && self.mem.is_exact()
    }

    /// The evaluated fuel bound, when closed.
    pub fn fuel_value(&self) -> Option<u64> {
        self.fuel.closed_value()
    }

    /// The evaluated memory bound in bytes, when closed.
    pub fn mem_value(&self) -> Option<u64> {
        self.mem.closed_value()
    }

    /// The report line: `cost fuel: n-1 = 999, mem: 8n = 8000` for a
    /// closed certificate (suffixed ` (upper bound)` when not exact),
    /// `cost: open (<reason>)` otherwise.
    pub fn render(&self) -> String {
        match (&self.fuel, &self.mem) {
            (
                Bound::Closed {
                    value: fv,
                    poly: fp,
                    ..
                },
                Bound::Closed {
                    value: mv,
                    poly: mp,
                    ..
                },
            ) => {
                let tail = if self.is_exact() {
                    ""
                } else {
                    " (upper bound)"
                };
                format!(
                    "cost fuel: {} = {fv}, mem: {} = {mv}{tail}",
                    fp.render(),
                    mp.render()
                )
            }
            (Bound::Open { reason }, _) | (_, Bound::Open { reason }) => {
                format!("cost: open ({reason})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_lang::ast::Expr;

    fn n(v: i64) -> Option<i64> {
        Some(v)
    }

    #[test]
    fn poly_arithmetic_and_eval() {
        let p = Poly::var("n").mul(&Poly::var("n")).add(&Poly::constant(7));
        assert_eq!(p.render(), "n^2+7");
        assert_eq!(p.eval(&|_| n(10)), Some(107));
        let q = p
            .mul(&Poly::constant(12))
            .add(&Poly::var("n").mul(&Poly::constant(4)));
        assert_eq!(q.render(), "12n^2+4n+84");
    }

    #[test]
    fn render_orders_by_degree_and_handles_signs() {
        let p = Poly::constant(3)
            .sub(&Poly::var("n"))
            .add(&Poly::var("m").mul(&Poly::var("n")));
        assert_eq!(p.render(), "m*n-n+3");
        assert_eq!(Poly::zero().render(), "0");
    }

    #[test]
    fn from_expr_covers_affine_and_rejects_division() {
        let e = Expr::Binary {
            op: BinOp::Sub,
            lhs: Box::new(Expr::Var("n".to_string())),
            rhs: Box::new(Expr::Int(1)),
        };
        let p = Poly::from_expr(&e).unwrap();
        assert_eq!(p.render(), "n-1");
        assert_eq!(p.eval(&|_| n(1000)), Some(999));
        let d = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::Var("n".to_string())),
            rhs: Box::new(Expr::Int(2)),
        };
        assert!(Poly::from_expr(&d).is_none());
    }

    #[test]
    fn eval_clamps_negative_to_zero() {
        let p = Poly::constant(-5);
        assert_eq!(p.eval(&|_| None), Some(0));
    }

    #[test]
    fn cert_render_forms() {
        let cert = CostCert {
            fuel: Bound::Closed {
                value: 999,
                poly: Poly::var("n").sub(&Poly::constant(1)),
                exact: true,
            },
            mem: Bound::Closed {
                value: 8000,
                poly: Poly::var("n").mul(&Poly::constant(8)),
                exact: true,
            },
        };
        assert_eq!(cert.render(), "cost fuel: n-1 = 999, mem: 8n = 8000");
        assert_eq!(
            CostCert::open("thunked evaluation is demand-driven").render(),
            "cost: open (thunked evaluation is demand-driven)"
        );
    }
}
