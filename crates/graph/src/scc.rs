//! Strongly connected components (iterative Tarjan) and the
//! condensation (quotient) graph used by the scheduler (§8.1.2:
//! "Consider the quotient graph we get by collapsing each SCC to a
//! single vertex").

use crate::digraph::{DiGraph, NodeId};

/// The SCC decomposition of a graph.
///
/// Components are numbered in *reverse topological order of discovery*;
/// [`Sccs::condensation`] returns a DAG whose vertices are components.
#[derive(Debug, Clone, PartialEq)]
pub struct Sccs {
    /// `component[v]` = index of v's component.
    pub component: Vec<usize>,
    /// Members of each component, in graph order.
    pub members: Vec<Vec<NodeId>>,
}

impl Sccs {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the graph had no vertices.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Component index of a vertex.
    pub fn component_of(&self, n: NodeId) -> usize {
        self.component[n.0]
    }

    /// `true` if the component is a genuine cycle: more than one member,
    /// or a single member with a self-loop in `g`.
    pub fn is_cyclic<L>(&self, idx: usize, g: &DiGraph<L>) -> bool {
        if self.members[idx].len() > 1 {
            return true;
        }
        let v = self.members[idx][0];
        g.out_edges(v).any(|(_, e)| e.dst == v)
    }

    /// Build the condensation: one vertex per component, one edge per
    /// original cross-component edge (labels preserved, parallel edges
    /// kept). Intra-component edges are discarded.
    pub fn condensation<L: Clone>(&self, g: &DiGraph<L>) -> DiGraph<L> {
        let mut q: DiGraph<L> = DiGraph::with_nodes(self.len());
        for (_, e) in g.edges() {
            let cs = self.component[e.src.0];
            let cd = self.component[e.dst.0];
            if cs != cd {
                q.add_edge(NodeId(cs), NodeId(cd), e.label.clone());
            }
        }
        q
    }
}

/// Compute SCCs with an iterative Tarjan's algorithm,
/// `O(max(|V|, |E|))`.
pub fn tarjan_scc<L>(g: &DiGraph<L>) -> Sccs {
    let n = g.node_count();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut component = vec![UNSET; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS frames: (node, iterator position over successors).
    enum Frame {
        Enter(usize),
        Continue(usize, usize), // node, next successor position
    }

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        let mut frames = vec![Frame::Enter(start)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, mut pos) => {
                    let succs: Vec<usize> = g.successors(NodeId(v)).map(|m| m.0).collect();
                    let mut descended = false;
                    while pos < succs.len() {
                        let w = succs[pos];
                        pos += 1;
                        if index[w] == UNSET {
                            frames.push(Frame::Continue(v, pos));
                            frames.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors done: maybe pop a component.
                    if lowlink[v] == index[v] {
                        let cid = members.len();
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component[w] = cid;
                            comp.push(NodeId(w));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        members.push(comp);
                    }
                    // Propagate lowlink to parent.
                    if let Some(Frame::Continue(p, _)) = frames.last() {
                        let p = *p;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                }
            }
        }
    }

    Sccs { component, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_component() {
        let mut g: DiGraph<()> = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(2), ());
        g.add_edge(NodeId(2), NodeId(0), ());
        let s = tarjan_scc(&g);
        assert_eq!(s.len(), 1);
        assert!(s.is_cyclic(0, &g));
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut g: DiGraph<()> = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(2), ());
        g.add_edge(NodeId(0), NodeId(3), ());
        let s = tarjan_scc(&g);
        assert_eq!(s.len(), 4);
        for i in 0..4 {
            assert!(!s.is_cyclic(i, &g));
        }
    }

    #[test]
    fn self_loop_is_cyclic_singleton() {
        let mut g: DiGraph<()> = DiGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(0), ());
        let s = tarjan_scc(&g);
        assert_eq!(s.len(), 2);
        let c0 = s.component_of(NodeId(0));
        assert!(s.is_cyclic(c0, &g));
        let c1 = s.component_of(NodeId(1));
        assert!(!s.is_cyclic(c1, &g));
    }

    #[test]
    fn mixed_graph_components() {
        // 0<->1 cycle, 2->0, 2->3, 3 isolated-ish
        let mut g: DiGraph<i32> = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(0), 2);
        g.add_edge(NodeId(2), NodeId(0), 3);
        g.add_edge(NodeId(2), NodeId(3), 4);
        let s = tarjan_scc(&g);
        assert_eq!(s.len(), 3);
        assert_eq!(s.component_of(NodeId(0)), s.component_of(NodeId(1)));
        assert_ne!(s.component_of(NodeId(2)), s.component_of(NodeId(0)));
    }

    #[test]
    fn condensation_is_dag_with_labels() {
        let mut g: DiGraph<&'static str> = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), "in-scc");
        g.add_edge(NodeId(1), NodeId(0), "in-scc");
        g.add_edge(NodeId(1), NodeId(2), "cross-a");
        g.add_edge(NodeId(0), NodeId(2), "cross-b");
        g.add_edge(NodeId(2), NodeId(3), "cross-c");
        let s = tarjan_scc(&g);
        let q = s.condensation(&g);
        assert_eq!(q.node_count(), 3);
        assert_eq!(q.edge_count(), 3, "intra-SCC edges dropped, parallel kept");
        // Condensation of any graph is acyclic.
        let qs = tarjan_scc(&q);
        assert_eq!(qs.len(), q.node_count());
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 10_000-node path exercises the iterative DFS.
        let n = 10_000;
        let mut g: DiGraph<()> = DiGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId(i), NodeId(i + 1), ());
        }
        let s = tarjan_scc(&g);
        assert_eq!(s.len(), n);
    }

    #[test]
    fn two_cycles_bridged() {
        // (0,1) cycle -> (2,3) cycle
        let mut g: DiGraph<()> = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(0), ());
        g.add_edge(NodeId(1), NodeId(2), ());
        g.add_edge(NodeId(2), NodeId(3), ());
        g.add_edge(NodeId(3), NodeId(2), ());
        let s = tarjan_scc(&g);
        assert_eq!(s.len(), 2);
        let q = s.condensation(&g);
        assert_eq!(q.edge_count(), 1);
    }
}
