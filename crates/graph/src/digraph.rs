//! A small labeled directed multigraph.
//!
//! Vertices are dense indices ([`NodeId`]); edges carry an arbitrary
//! label. Parallel edges and self-loops are allowed — dependence graphs
//! need both (a clause can have several differently-labeled edges to
//! another clause, and self-cyclic edges arise when inner loops are
//! collapsed to single entities, §8.2).

use std::fmt;

/// A dense vertex index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A dense edge index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// One labeled edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge<L> {
    pub src: NodeId,
    pub dst: NodeId,
    pub label: L,
}

/// A labeled directed multigraph with dense vertex ids.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiGraph<L> {
    node_count: usize,
    edges: Vec<Edge<L>>,
    /// Outgoing edge ids per node.
    out_adj: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    in_adj: Vec<Vec<EdgeId>>,
}

impl<L> DiGraph<L> {
    /// An empty graph.
    pub fn new() -> DiGraph<L> {
        DiGraph {
            node_count: 0,
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }

    /// A graph with `n` vertices and no edges.
    pub fn with_nodes(n: usize) -> DiGraph<L> {
        let mut g = DiGraph::new();
        for _ in 0..n {
            g.add_node();
        }
        g
    }

    /// Add a vertex, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Add a labeled edge.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, label: L) -> EdgeId {
        assert!(
            src.0 < self.node_count && dst.0 < self.node_count,
            "node out of range"
        );
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { src, dst, label });
        self.out_adj[src.0].push(id);
        self.in_adj[dst.0].push(id);
        id
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All vertex ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count).map(NodeId)
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge<L>)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// The edge with the given id.
    pub fn edge(&self, id: EdgeId) -> &Edge<L> {
        &self.edges[id.0]
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &Edge<L>)> {
        self.out_adj[n.0]
            .iter()
            .map(move |&id| (id, &self.edges[id.0]))
    }

    /// Incoming edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &Edge<L>)> {
        self.in_adj[n.0]
            .iter()
            .map(move |&id| (id, &self.edges[id.0]))
    }

    /// Successor vertices of `n` (with multiplicity).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(n).map(|(_, e)| e.dst)
    }

    /// Predecessor vertices of `n` (with multiplicity).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(n).map(|(_, e)| e.src)
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_adj[n.0].len()
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_adj[n.0].len()
    }

    /// Build a new graph with the same vertices, keeping only edges for
    /// which `keep` returns `true`.
    pub fn filter_edges(&self, mut keep: impl FnMut(&Edge<L>) -> bool) -> DiGraph<L>
    where
        L: Clone,
    {
        let mut g = DiGraph::with_nodes(self.node_count);
        for (_, e) in self.edges() {
            if keep(e) {
                g.add_edge(e.src, e.dst, e.label.clone());
            }
        }
        g
    }

    /// The node set reachable from `starts` (including the starts).
    pub fn reachable_from(&self, starts: &[NodeId]) -> Vec<bool> {
        let mut seen = vec![false; self.node_count];
        let mut stack: Vec<NodeId> = starts.to_vec();
        for s in starts {
            seen[s.0] = true;
        }
        while let Some(n) = stack.pop() {
            for m in self.successors(n) {
                if !seen[m.0] {
                    seen[m.0] = true;
                    stack.push(m);
                }
            }
        }
        seen
    }

    /// `true` if any directed path leads from `a` to `b`.
    pub fn has_path(&self, a: NodeId, b: NodeId) -> bool {
        self.reachable_from(&[a])[b.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<&'static str> {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), "a");
        g.add_edge(NodeId(0), NodeId(2), "b");
        g.add_edge(NodeId(1), NodeId(3), "c");
        g.add_edge(NodeId(2), NodeId(3), "d");
        g
    }

    #[test]
    fn degrees_and_adjacency() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        let succ: Vec<_> = g.successors(NodeId(0)).collect();
        assert_eq!(succ, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(0), NodeId(1), 2);
        g.add_edge(NodeId(1), NodeId(1), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.out_degree(NodeId(1)), 1);
        assert_eq!(g.in_degree(NodeId(1)), 3);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(g.has_path(NodeId(0), NodeId(3)));
        assert!(!g.has_path(NodeId(3), NodeId(0)));
        assert!(
            g.has_path(NodeId(1), NodeId(1)),
            "trivially reachable from self"
        );
        let seen = g.reachable_from(&[NodeId(1)]);
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn filter_edges_keeps_nodes() {
        let g = diamond();
        let f = g.filter_edges(|e| e.label == "a");
        assert_eq!(f.node_count(), 4);
        assert_eq!(f.edge_count(), 1);
    }
}
