//! Topological sorting (Kahn's algorithm).
//!
//! Used for ordering entities within a single loop instance by `(=)`
//! edges (§8.1.4) and for ordering SCCs / passes of the condensation.

use crate::digraph::{DiGraph, NodeId};

/// Result of a topological sort attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum TopoResult {
    /// A valid topological order (sources first). Deterministic: among
    /// ready vertices, the smallest id is emitted first.
    Sorted(Vec<NodeId>),
    /// The graph has a cycle; the returned vertices are those on cycles
    /// (every vertex that could not be scheduled).
    Cycle(Vec<NodeId>),
}

impl TopoResult {
    /// The order, if acyclic.
    pub fn order(&self) -> Option<&[NodeId]> {
        match self {
            TopoResult::Sorted(v) => Some(v),
            TopoResult::Cycle(_) => None,
        }
    }

    /// `true` when a cycle was found.
    pub fn is_cyclic(&self) -> bool {
        matches!(self, TopoResult::Cycle(_))
    }
}

/// Topologically sort the graph. Self-loops count as cycles.
pub fn topo_sort<L>(g: &DiGraph<L>) -> TopoResult {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|v| g.in_degree(NodeId(v))).collect();
    // A min-heap over ready vertices for deterministic output.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut ready: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    for (v, &d) in indeg.iter().enumerate() {
        if d == 0 {
            ready.push(Reverse(v));
        }
    }
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(v)) = ready.pop() {
        order.push(NodeId(v));
        for m in g.successors(NodeId(v)) {
            indeg[m.0] -= 1;
            if indeg[m.0] == 0 {
                ready.push(Reverse(m.0));
            }
        }
    }
    if order.len() == n {
        TopoResult::Sorted(order)
    } else {
        let scheduled: Vec<bool> = {
            let mut s = vec![false; n];
            for v in &order {
                s[v.0] = true;
            }
            s
        };
        TopoResult::Cycle((0..n).filter(|&v| !scheduled[v]).map(NodeId).collect())
    }
}

/// Verify that `order` is a topological order of `g` (every edge goes
/// forward). Useful as a test oracle.
pub fn is_topological<L>(g: &DiGraph<L>, order: &[NodeId]) -> bool {
    if order.len() != g.node_count() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.node_count()];
    for (i, v) in order.iter().enumerate() {
        pos[v.0] = i;
    }
    if pos.contains(&usize::MAX) {
        return false;
    }
    g.edges().all(|(_, e)| {
        // Self-loops can never be satisfied.
        e.src != e.dst && pos[e.src.0] < pos[e.dst.0]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_a_dag() {
        let mut g: DiGraph<()> = DiGraph::with_nodes(4);
        g.add_edge(NodeId(2), NodeId(0), ());
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(3), ());
        match topo_sort(&g) {
            TopoResult::Sorted(order) => {
                assert!(is_topological(&g, &order));
                assert_eq!(order[0], NodeId(2));
            }
            other => panic!("expected sorted, got {other:?}"),
        }
    }

    #[test]
    fn reports_cycle_members() {
        let mut g: DiGraph<()> = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(0), ());
        match topo_sort(&g) {
            TopoResult::Cycle(vs) => assert_eq!(vs, vec![NodeId(0), NodeId(1)]),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_is_cycle() {
        let mut g: DiGraph<()> = DiGraph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0), ());
        assert!(topo_sort(&g).is_cyclic());
    }

    #[test]
    fn deterministic_among_ready() {
        let g: DiGraph<()> = DiGraph::with_nodes(3);
        match topo_sort(&g) {
            TopoResult::Sorted(order) => {
                assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2)]);
            }
            other => panic!("expected sorted, got {other:?}"),
        }
    }

    #[test]
    fn oracle_rejects_bad_order() {
        let mut g: DiGraph<()> = DiGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), ());
        assert!(!is_topological(&g, &[NodeId(1), NodeId(0)]));
        assert!(is_topological(&g, &[NodeId(0), NodeId(1)]));
        assert!(!is_topological(&g, &[NodeId(0)]));
    }
}
