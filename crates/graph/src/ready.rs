//! The paper's 'ready' / 'not-ready' marking (§8.1.3).
//!
//! > A node must be marked as 'not-ready' for a forward direction loop
//! > pass if it is reachable from any root (a node of in-degree zero)
//! > in the DAG via any path that includes at least one `(>)` edge.
//!
//! The marking drives the multi-pass static scheduling of acyclic
//! dependence graphs that contain both `(<)` and `(>)` edges: all
//! 'ready' nodes are emitted as one loop pass, deleted, and the marking
//! repeats on the remainder.
//!
//! Implemented exactly as the paper's *modified depth-first search*: a
//! node already visited via a 'ready' path is re-visited (and its
//! descendants re-marked) when reached again via a 'not-ready' path, so
//! each node is visited at most twice and each edge crossed at most
//! twice — `O(max(|V|, |E|))`, the same bound as DFS.

use crate::digraph::{DiGraph, NodeId};

/// Mark every node 'not-ready' (`true`) that is reachable from a root
/// via a path containing at least one edge for which `against` holds.
///
/// `against(label)` identifies the edges that conflict with the
/// candidate pass direction (for a forward pass, the `(>)` edges).
///
/// # Panics
/// Debug-asserts that the graph is acyclic; on a cyclic graph the
/// marking is not meaningful (the scheduler condenses SCCs first).
pub fn mark_not_ready<L>(g: &DiGraph<L>, against: impl Fn(&L) -> bool) -> Vec<bool> {
    debug_assert!(
        !crate::topo::topo_sort(g).is_cyclic(),
        "mark_not_ready requires a DAG"
    );
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut not_ready = vec![false; n];

    // Iterative DFS. Each stack entry carries the state `s` of the path
    // so far: `true` = the path contains an against-edge ('not-ready').
    let mut stack: Vec<(NodeId, bool)> = Vec::new();
    for r in g.nodes() {
        if g.in_degree(r) == 0 {
            stack.push((r, false));
        }
    }
    while let Some((v, s)) = stack.pop() {
        if !visited[v.0] {
            visited[v.0] = true;
            not_ready[v.0] = s;
        } else if s && !not_ready[v.0] {
            // Re-visit: upgrade 'ready' → 'not-ready' and re-mark
            // descendants (the paper's fourth case).
            not_ready[v.0] = true;
        } else {
            // Already visited with an equal-or-stronger marking.
            continue;
        }
        for (_, e) in g.out_edges(v) {
            let child_state = s || against(&e.label);
            // Only descend when the child's marking could change.
            if !visited[e.dst.0] || (child_state && !not_ready[e.dst.0]) {
                stack.push((e.dst, child_state));
            }
        }
    }
    not_ready
}

/// The 'ready' node set (complement of [`mark_not_ready`]).
pub fn ready_nodes<L>(g: &DiGraph<L>, against: impl Fn(&L) -> bool) -> Vec<NodeId> {
    mark_not_ready(g, against)
        .into_iter()
        .enumerate()
        .filter_map(|(v, nr)| if nr { None } else { Some(NodeId(v)) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle: enumerate all simple paths from roots.
    fn oracle<L>(g: &DiGraph<L>, against: &impl Fn(&L) -> bool) -> Vec<bool> {
        let n = g.node_count();
        let mut not_ready = vec![false; n];
        // DFS over (node, has_against) states; paths in a DAG are finite.
        fn go<L>(
            g: &DiGraph<L>,
            v: NodeId,
            s: bool,
            against: &impl Fn(&L) -> bool,
            not_ready: &mut Vec<bool>,
        ) {
            if s {
                not_ready[v.0] = true;
            }
            for (_, e) in g.out_edges(v) {
                go(g, e.dst, s || against(&e.label), against, not_ready);
            }
        }
        for r in g.nodes() {
            if g.in_degree(r) == 0 {
                go(g, r, false, against, &mut not_ready);
            }
        }
        not_ready
    }

    /// `>` edges are against a forward pass.
    fn against(l: &char) -> bool {
        *l == '>'
    }

    #[test]
    fn paper_example_a_b_c() {
        // §8.1.2: A→B(<), B→C(>), A→C(=). For a forward pass, C is
        // not-ready (path A→B→C crosses a `>`), A and B are ready.
        let mut g: DiGraph<char> = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), '<');
        g.add_edge(NodeId(1), NodeId(2), '>');
        g.add_edge(NodeId(0), NodeId(2), '=');
        let nr = mark_not_ready(&g, against);
        assert_eq!(nr, vec![false, false, true]);
        assert_eq!(ready_nodes(&g, against), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn upgrade_remarks_descendants() {
        // Visit order can reach node 2 first via the ready path
        // 0→2 (=), then via 0→1(>)→2(=): 2 and its descendant 3 must
        // both end not-ready.
        let mut g: DiGraph<char> = DiGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(2), '=');
        g.add_edge(NodeId(0), NodeId(1), '>');
        g.add_edge(NodeId(1), NodeId(2), '=');
        g.add_edge(NodeId(2), NodeId(3), '<');
        let nr = mark_not_ready(&g, against);
        assert_eq!(nr, vec![false, true, true, true]);
    }

    #[test]
    fn no_against_edges_all_ready() {
        let mut g: DiGraph<char> = DiGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), '<');
        g.add_edge(NodeId(1), NodeId(2), '=');
        assert_eq!(ready_nodes(&g, against).len(), 3);
    }

    #[test]
    fn matches_oracle_on_random_dags() {
        // Deterministic pseudo-random DAGs (edges only low → high, so
        // acyclic by construction).
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let n = 2 + (next() % 8) as usize;
            let mut g: DiGraph<char> = DiGraph::with_nodes(n);
            for a in 0..n {
                for b in (a + 1)..n {
                    match next() % 4 {
                        0 => {
                            g.add_edge(NodeId(a), NodeId(b), '<');
                        }
                        1 => {
                            g.add_edge(NodeId(a), NodeId(b), '>');
                        }
                        2 => {
                            g.add_edge(NodeId(a), NodeId(b), '=');
                        }
                        _ => {}
                    }
                }
            }
            assert_eq!(
                mark_not_ready(&g, against),
                oracle(&g, &against),
                "mismatch on graph {g:?}"
            );
        }
    }
}
