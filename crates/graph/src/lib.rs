//! # hac-graph
//!
//! Graph substrate for the `hac` reproduction of Anderson & Hudak
//! (PLDI 1990): a labeled directed multigraph, Tarjan's strongly
//! connected components with condensation, topological sorting, and the
//! paper's 'ready'/'not-ready' marking algorithm (§8.1.3) that drives
//! multi-pass loop scheduling.
//!
//! # Example
//!
//! ```
//! use hac_graph::{DiGraph, NodeId, tarjan_scc, topo_sort, TopoResult};
//!
//! let mut g: DiGraph<&str> = DiGraph::with_nodes(3);
//! g.add_edge(NodeId(0), NodeId(1), "flow");
//! g.add_edge(NodeId(1), NodeId(2), "anti");
//! assert_eq!(tarjan_scc(&g).len(), 3);
//! match topo_sort(&g) {
//!     TopoResult::Sorted(order) => assert_eq!(order[0], NodeId(0)),
//!     TopoResult::Cycle(_) => unreachable!(),
//! }
//! ```

pub mod digraph;
pub mod ready;
pub mod scc;
pub mod topo;

pub use digraph::{DiGraph, Edge, EdgeId, NodeId};
pub use ready::{mark_not_ready, ready_nodes};
pub use scc::{tarjan_scc, Sccs};
pub use topo::{is_topological, topo_sort, TopoResult};
